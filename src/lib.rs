//! # pogo — a Rust reproduction of the Pogo mobile-phone-sensing middleware
//!
//! This umbrella crate re-exports the whole workspace and provides the
//! glue that wires the paper's flagship *localization application*
//! (§4.1) together: the PogoScript sources of `scan.js`,
//! `clustering.js`, and `collect.js`, conversions between middleware
//! messages and the native clustering types, the `geolocate` extension
//! native, and ground-truth reconstruction from device logs.
//!
//! See `DESIGN.md` for the architecture and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use pogo::core::{DeviceSetup, ExperimentSpec, Testbed};
//! use pogo::core::proto::ScriptSpec;
//! use pogo::sim::{Sim, SimDuration};
//!
//! let sim = Sim::new();
//! let mut testbed = Testbed::new(&sim);
//! testbed.add(DeviceSetup::named("phone-1"));
//! testbed.collector()
//!     .deployment(&ExperimentSpec {
//!         id: "hello".into(),
//!         scripts: vec![ScriptSpec {
//!             name: "hello.js".into(),
//!             source: "publish('greetings', { hi: true });".into(),
//!         }],
//!     })
//!     .to(&[testbed.devices()[0].jid()])
//!     .send()
//!     .expect("scripts pass pre-deployment analysis");
//! sim.run_for(SimDuration::from_mins(90));
//! ```
//!
//! To record what happened, build the testbed with
//! [`Testbed::with_obs`](core::Testbed::with_obs) and an
//! [`ObsConfig`](core::ObsConfig); dump the trace with
//! [`obs::export`] or the `pogo-trace` CLI.

pub use pogo_chaos as chaos;
pub use pogo_cluster as cluster;
pub use pogo_core as core;
pub use pogo_ingest as ingest;
pub use pogo_mobility as mobility;
pub use pogo_net as net;
pub use pogo_obs as obs;
pub use pogo_platform as platform;
pub use pogo_script as script;
pub use pogo_sim as sim;

pub mod chaos_workloads;
pub mod error;
pub mod glue;

pub use error::{Error, ErrorCode};
