//! # pogo — a Rust reproduction of the Pogo mobile-phone-sensing middleware
//!
//! This umbrella crate re-exports the whole workspace and provides the
//! glue that wires the paper's flagship *localization application*
//! (§4.1) together: the PogoScript sources of `scan.js`,
//! `clustering.js`, and `collect.js`, conversions between middleware
//! messages and the native clustering types, the `geolocate` extension
//! native, and ground-truth reconstruction from device logs.
//!
//! See `DESIGN.md` for the architecture and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use pogo::core::{ExperimentSpec, Testbed};
//! use pogo::core::proto::ScriptSpec;
//! use pogo::sim::{Sim, SimDuration};
//!
//! let sim = Sim::new();
//! let mut testbed = Testbed::new(&sim);
//! testbed.add_device(
//!     "phone-1",
//!     pogo::platform::PhoneConfig::default(),
//!     |cfg| cfg,
//!     pogo::core::sensor::SensorSources::default(),
//! );
//! testbed.collector().deploy(
//!     &ExperimentSpec {
//!         id: "hello".into(),
//!         scripts: vec![pogo::core::proto::ScriptSpec {
//!             name: "hello.js".into(),
//!             source: "publish('greetings', { hi: true });".into(),
//!         }],
//!     },
//!     &[testbed.devices()[0].jid()],
//! ).expect("scripts pass pre-deployment analysis");
//! sim.run_for(SimDuration::from_mins(90));
//! ```

pub use pogo_cluster as cluster;
pub use pogo_core as core;
pub use pogo_mobility as mobility;
pub use pogo_net as net;
pub use pogo_platform as platform;
pub use pogo_script as script;
pub use pogo_sim as sim;

pub mod glue;
