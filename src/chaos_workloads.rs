//! Chaos workloads: the paper's real experiments under fault injection.
//!
//! [`WorkloadSpec`] implementations that put the localization pipeline
//! (§4.1), RogueFinder (§5.1), and the Table 4 cohort replay (§5.3)
//! under the same delivery-invariant harness that audits the synthetic
//! counter soak. Each workload's device scripts are patched with a
//! *chaos sequence counter*: a `cseq` frozen before every publish and
//! mirrored to a device log in the same atomic script step, giving the
//! harness a per-channel exactly-once / no-phantom / monotonicity
//! oracle without changing what the scripts compute.

use std::cell::RefCell;

use pogo_chaos::{ChannelAudit, SoakConfig, WorkloadSpec};
use pogo_core::proto::ScriptSpec;
use pogo_core::sensor::{LocationFix, SensorSources, WifiReading};
use pogo_core::{DeviceNode, DeviceSetup, ExperimentSpec, FleetSpec, Testbed};
use pogo_mobility::{
    paper_cohort, GeolocationService, ScanSynthesizer, UserScenario, UserSpec, Whereabouts, World,
};
use pogo_net::{FlushPolicy, Jid};
use pogo_platform::{Bearer, NetAppConfig, PeriodicNetApp, Phone};
use pogo_sim::{Sim, SimDuration, SimRng, SimTime};

use crate::glue;

const STORE_FLUSH: SimDuration = SimDuration::from_secs(90);

/// `clustering.js` with the chaos sequence counter: every closed
/// cluster carries a `cseq` frozen before the publish and mirrored to
/// the `chaos-sent-locations` log in the same script step. Uses the
/// freeze slot the paper's deployment leaves free (`USE_FREEZE` off),
/// so the counter survives reboots even though the cluster state does
/// not — exactly the property the frozen-monotonicity invariant needs.
pub fn clustering_js_chaos() -> String {
    let with_seq = glue::CLUSTERING_JS.replace(
        "var saved = thaw();",
        "var saved = thaw();\nvar cseq = saved == null ? 0 : saved.cseq;",
    );
    assert_ne!(with_seq, glue::CLUSTERING_JS, "thaw line must exist");
    let publish_block = "    publish('locations', {\n        \
         entry: ms[0].t,\n        \
         exit: ms[ms.length - 1].t,\n        \
         n: ms.length,\n        \
         rep: nearestToMean(ms)\n    \
         });";
    let chaos_block = "    cseq = cseq + 1;\n    \
         freeze({ cseq: cseq });\n    \
         publish('locations', {\n        \
         entry: ms[0].t,\n        \
         exit: ms[ms.length - 1].t,\n        \
         n: ms.length,\n        \
         cseq: cseq,\n        \
         rep: nearestToMean(ms)\n    \
         });\n    \
         logTo('chaos-sent-locations', cseq);";
    let patched = with_seq.replace(publish_block, chaos_block);
    assert_ne!(patched, with_seq, "closeCluster publish block must exist");
    patched
}

/// `roguefinder.js` with the chaos sequence counter on the geofenced
/// `filtered-scans` stream; same freeze-before-publish discipline as
/// [`clustering_js_chaos`].
pub fn roguefinder_js_chaos() -> String {
    let descr = "setDescription('RogueFinder: scan for APs inside a target area');";
    let with_seq = glue::ROGUEFINDER_JS.replace(
        descr,
        "setDescription('RogueFinder: scan for APs inside a target area');\n\
         var st = thaw();\n\
         var cseq = st == null ? 0 : st.cseq;",
    );
    assert_ne!(
        with_seq,
        glue::ROGUEFINDER_JS,
        "description line must exist"
    );
    let patched = with_seq.replace(
        "        publish(msg, 'filtered-scans');",
        "        cseq = cseq + 1;\n        \
         freeze({ cseq: cseq });\n        \
         msg.cseq = cseq;\n        \
         publish(msg, 'filtered-scans');\n        \
         logTo('chaos-sent-filtered', cseq);",
    );
    assert_ne!(patched, with_seq, "filtered-scans publish must exist");
    patched
}

fn localization_audit() -> ChannelAudit {
    ChannelAudit::new("loc", "locations", "chaos-sent-locations", "cseq")
}

/// Installs `collect.js` (with the geolocation native over `world`) and
/// deploys the localization experiment, clustering patched with the
/// chaos counter, to every device.
fn deploy_localization(testbed: &Testbed, world: World) {
    let service = GeolocationService::new(world);
    testbed
        .collector()
        .install_collector_script("loc", "collect.js", glue::COLLECT_JS, |host| {
            glue::register_geolocate(host, service);
        })
        .expect("collect.js loads");
    let mut experiment = glue::localization_experiment("loc");
    experiment.scripts[1].source = clustering_js_chaos();
    let jids: Vec<Jid> = testbed.devices().iter().map(DeviceNode::jid).collect();
    testbed
        .collector()
        .deployment(&experiment)
        .to(&jids)
        .send()
        .expect("scripts pass pre-deployment analysis");
}

/// The localization pipeline (§4.1) as a chaos workload: `cfg.phones`
/// synthetic devices, each alternating between two disjoint AP
/// neighbourhoods every 30 minutes so `clustering.js` closes about two
/// clusters per device-hour onto the audited `locations` channel.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalizationWorkload;

impl WorkloadSpec for LocalizationWorkload {
    fn name(&self) -> &'static str {
        "localization"
    }

    fn setup(&self, testbed: &mut Testbed, cfg: &SoakConfig) {
        let age = cfg.max_msg_age;
        testbed.add_fleet(
            FleetSpec::new(cfg.phones)
                .prefix("phone")
                .configure(move |_, c| {
                    c.with_flush_policy(FlushPolicy::Interval(STORE_FLUSH))
                        .with_max_msg_age(age)
                })
                .sensors(|i, _| SensorSources {
                    wifi_scan: Some(Box::new(move |t_ms| {
                        // Two disjoint AP sets per device, alternating every
                        // 30 minutes: each switch is cosine distance 1 from
                        // the open cluster, forcing a close-and-publish.
                        let side = (t_ms / 1_800_000) % 2;
                        Some(
                            (0..5u64)
                                .map(|j| WifiReading {
                                    bssid: format!("00:{i:02x}:00:00:0{side}:{j:02x}"),
                                    rssi_dbm: -55.0 - j as f64,
                                })
                                .collect(),
                        )
                    })),
                    ..SensorSources::default()
                }),
        );
    }

    fn deploy(&self, testbed: &Testbed, cfg: &SoakConfig) {
        // The geolocation stand-in resolves nothing for the synthetic
        // APs; collect.js still exercises its annotate-and-log path.
        let mut rng = SimRng::seed_from_u64(cfg.seed);
        let world = World::new(20, &mut rng);
        deploy_localization(testbed, world);
    }

    fn audits(&self) -> Vec<ChannelAudit> {
        vec![localization_audit()]
    }
}

/// RogueFinder (§5.1) as a chaos workload: `cfg.phones` walkers loop
/// through the target triangle (offset along the walk so the geofence
/// keeps opening and closing across the fleet), publishing on the
/// audited `filtered-scans` channel only while inside.
#[derive(Debug, Clone, Copy, Default)]
pub struct RogueFinderWorkload;

impl WorkloadSpec for RogueFinderWorkload {
    fn name(&self) -> &'static str {
        "roguefinder"
    }

    fn setup(&self, testbed: &mut Testbed, cfg: &SoakConfig) {
        let age = cfg.max_msg_age;
        testbed.add_fleet(
            FleetSpec::new(cfg.phones)
                .prefix("phone")
                .configure(move |_, c| {
                    c.with_flush_policy(FlushPolicy::Interval(STORE_FLUSH))
                        .with_max_msg_age(age)
                })
                .sensors(|i, _| {
                    let phase = i as f64 * 0.3;
                    SensorSources {
                        location: Some(Box::new(move |t_ms| {
                            // Loop east through the target triangle {(1,1),
                            // (2,2),(3,0)} at 2.5 units/hour, wrapping at x=5.
                            let x = (t_ms as f64 / 3_600_000.0 * 2.5 + phase) % 5.0;
                            Some(LocationFix {
                                lon: x,
                                lat: 1.2,
                                provider: "GPS".into(),
                            })
                        })),
                        wifi_scan: Some(Box::new(move |t_ms| {
                            Some(vec![WifiReading {
                                bssid: format!(
                                    "00:{:02x}:00:00:00:{:02x}",
                                    i,
                                    (t_ms / 600_000) % 64
                                ),
                                rssi_dbm: -63.0,
                            }])
                        })),
                        ..SensorSources::default()
                    }
                }),
        );
    }

    fn deploy(&self, testbed: &Testbed, _cfg: &SoakConfig) {
        testbed
            .collector()
            .install_script("rogue", "collect.js", glue::ROGUEFINDER_COLLECT_JS)
            .expect("collector script loads");
        let jids: Vec<Jid> = testbed.devices().iter().map(DeviceNode::jid).collect();
        testbed
            .collector()
            .deployment(&ExperimentSpec {
                id: "rogue".into(),
                scripts: vec![ScriptSpec {
                    name: "roguefinder.js".into(),
                    source: roguefinder_js_chaos(),
                }],
            })
            .to(&jids)
            .send()
            .expect("scripts pass pre-deployment analysis");
    }

    fn audits(&self) -> Vec<ChannelAudit> {
        vec![ChannelAudit::new(
            "rogue",
            "filtered-scans",
            "chaos-sent-filtered",
            "cseq",
        )]
    }
}

/// The Table 4 deployment (§5.3) as a chaos workload: the paper's
/// eight-phone cohort (user 2's replacement phone stands in for both 2a
/// and 2b) carrying the localization experiment through their full
/// movement traces, nightly phone-offs, scenario reboots, roaming and
/// outage data gaps — with the fault plan injected *on top of* all of
/// that. The headline CI soak.
#[derive(Debug)]
pub struct Table4ChaosWorkload {
    days: u64,
    world: RefCell<Option<World>>,
}

impl Table4ChaosWorkload {
    /// A cohort replay truncated (or extended) to `days` days.
    pub fn new(days: u64) -> Self {
        Table4ChaosWorkload {
            days: days.max(1),
            world: RefCell::new(None),
        }
    }
}

impl WorkloadSpec for Table4ChaosWorkload {
    fn name(&self) -> &'static str {
        "table4"
    }

    fn duration(&self, _cfg: &SoakConfig) -> SimDuration {
        SimDuration::from_days(self.days)
    }

    fn setup(&self, testbed: &mut Testbed, cfg: &SoakConfig) {
        let sim = testbed.sim().clone();
        let mut rng = SimRng::seed_from_u64(cfg.seed ^ 0x007a_b1e4); // "table4"
        let mut world = World::new(600, &mut rng);
        let age = cfg.max_msg_age;
        // The paper's eight phones: user 2's early phone (2a) is folded
        // into its replacement, and every session is stretched to the
        // full window so the whole fleet stays under fire.
        let days = self.days;
        let specs: Vec<UserSpec> = paper_cohort()
            .into_iter()
            .filter(|s| s.name != "User 2a")
            .map(|mut s| {
                s.start_day = 0;
                s.end_day = days;
                s.roaming_days = s
                    .roaming_days
                    .and_then(|(a, b)| (a < days).then_some((a, b.min(days))));
                s.outage_days = s
                    .outage_days
                    .and_then(|(a, b)| (a < days).then_some((a, b.min(days))));
                s
            })
            .collect();
        for spec in &specs {
            let scenario = spec.build(&mut world, &mut rng);
            let trace = scenario.trace.clone();
            let world2 = world.clone();
            let synth = RefCell::new(ScanSynthesizer::new(rng.fork(spec.seed_salt)));
            let failure_rng = RefCell::new(rng.fork(spec.seed_salt ^ 0xF41));
            let scan_failure_prob = spec.scan_failure_prob;
            let sources = SensorSources {
                wifi_scan: Some(Box::new(move |t_ms| {
                    let w = trace.whereabouts(t_ms);
                    if failure_rng.borrow_mut().chance(scan_failure_prob) {
                        return None; // the chipset returned nothing
                    }
                    synth
                        .borrow_mut()
                        .scan(&world2, w, t_ms)
                        .map(|raw| glue::readings_from_raw(&raw))
                })),
                ..SensorSources::default()
            };
            let node_name = spec.name.to_lowercase().replace(' ', "-");
            let (device, phone) = testbed.add(
                DeviceSetup::named(&node_name)
                    .sensors(sources)
                    .configure(move |c| {
                        c.with_flush_policy(FlushPolicy::Interval(STORE_FLUSH))
                            .with_max_msg_age(age)
                    }),
            );
            // Background e-mail traffic for tail synchronization, like
            // the §5.2 measurement phones. The app keeps itself alive
            // through its own alarms; the handle can be dropped.
            let _ = PeriodicNetApp::install(&phone, NetAppConfig::email());
            drive_connectivity(&sim, &phone, &scenario);
            schedule_reboots(&sim, &device, &scenario);
        }
        *self.world.borrow_mut() = Some(world);
    }

    fn deploy(&self, testbed: &Testbed, _cfg: &SoakConfig) {
        let world = self
            .world
            .borrow()
            .clone()
            .expect("setup populates the world");
        deploy_localization(testbed, world);
    }

    fn audits(&self) -> Vec<ChannelAudit> {
        vec![localization_audit()]
    }
}

/// The movement/connectivity schedule from the Table 4 sessions:
/// cellular normally, no data during roaming/outage gaps, Wi-Fi only at
/// home/office for the wifi-only user, nothing while the phone is off.
/// The chaos controller's own bearer manipulation interleaves with
/// these breakpoints, which is the point.
fn drive_connectivity(sim: &Sim, phone: &Phone, scenario: &UserScenario) {
    let mut breakpoints: Vec<u64> = scenario.trace.segments().iter().map(|&(t, _)| t).collect();
    for &(a, b) in &scenario.disruptions.data_gaps {
        breakpoints.push(a);
        breakpoints.push(b);
    }
    breakpoints.push(0);
    breakpoints.sort_unstable();
    breakpoints.dedup();

    let desired = {
        let trace = scenario.trace.clone();
        let disruptions = scenario.disruptions.clone();
        let wifi_places = scenario.wifi_places.clone();
        move |t: u64| -> Option<Bearer> {
            match trace.whereabouts(t) {
                Whereabouts::PhoneOff => None,
                w => {
                    if disruptions.wifi_only {
                        match w {
                            Whereabouts::At(p) if wifi_places.contains(&p) => Some(Bearer::Wifi),
                            _ => None,
                        }
                    } else if disruptions.in_data_gap(t) {
                        None
                    } else {
                        Some(Bearer::Cellular)
                    }
                }
            }
        }
    };
    for t in breakpoints {
        let conn = phone.connectivity().clone();
        let desired = desired.clone();
        sim.schedule_at(SimTime::from_millis(t), move || {
            conn.set_active(desired(t));
        });
    }
}

/// Scenario reboots plus the morning middleware restart after every
/// phone-off night. A scenario reboot landing inside a chaos
/// battery-death window is a harmless no-op (the device refuses to boot
/// while powered off). The researchers' script redeployments are left
/// out: a redeploy racing an injected server outage would fail the
/// deployment, which is a test-harness artifact, not a middleware bug.
fn schedule_reboots(sim: &Sim, device: &DeviceNode, scenario: &UserScenario) {
    let mut reboots = scenario.disruptions.reboots.clone();
    let segments = scenario.trace.segments();
    for pair in segments.windows(2) {
        if pair[0].1 == Whereabouts::PhoneOff && pair[1].1 != Whereabouts::PhoneOff {
            reboots.push(pair[1].0);
        }
    }
    for t in reboots {
        let device = device.clone();
        sim.schedule_at(SimTime::from_millis(t), move || device.reboot());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_script_variants_parse() {
        for (name, src) in [
            ("clustering-chaos", clustering_js_chaos()),
            ("roguefinder-chaos", roguefinder_js_chaos()),
        ] {
            pogo_script::parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn chaos_variants_carry_the_counter() {
        let c = clustering_js_chaos();
        assert!(c.contains("freeze({ cseq: cseq })"));
        assert!(c.contains("logTo('chaos-sent-locations', cseq)"));
        let r = roguefinder_js_chaos();
        assert!(r.contains("freeze({ cseq: cseq })"));
        assert!(r.contains("logTo('chaos-sent-filtered', cseq)"));
    }
}
