//! Glue between the middleware, the scripts, and the native clustering —
//! everything needed to stand up the paper's localization experiment.

use pogo_cluster::{ClusterSummary, RawScan, Scan};
use pogo_core::proto::{ExperimentSpec, ScriptSpec};
use pogo_core::sensor::WifiReading;
use pogo_core::{Msg, ScriptHost};
use pogo_mobility::GeolocationService;
use pogo_script::{ObjMap, ScriptError, Value};

/// `scan.js` source (Figure 1 / Table 2).
pub const SCAN_JS: &str = include_str!("../assets/scripts/scan.js");
/// `clustering.js` source (Figure 1 / Table 2) — freeze/thaw disabled, as
/// in the paper's deployment.
pub const CLUSTERING_JS: &str = include_str!("../assets/scripts/clustering.js");
/// `collect.js` source (Figure 1 / Table 2).
pub const COLLECT_JS: &str = include_str!("../assets/scripts/collect.js");
/// `roguefinder.js` source (Listing 2 / Table 2).
pub const ROGUEFINDER_JS: &str = include_str!("../assets/scripts/roguefinder.js");
/// RogueFinder's collector endpoint (Table 2).
pub const ROGUEFINDER_COLLECT_JS: &str = include_str!("../assets/scripts/roguefinder-collect.js");

/// The localization experiment's device-side scripts, ready to deploy.
pub fn localization_experiment(id: &str) -> ExperimentSpec {
    ExperimentSpec {
        id: id.to_owned(),
        scripts: vec![
            ScriptSpec {
                name: "scan.js".into(),
                source: SCAN_JS.to_owned(),
            },
            ScriptSpec {
                name: "clustering.js".into(),
                source: CLUSTERING_JS.to_owned(),
            },
        ],
    }
}

/// `clustering.js` with freeze/thaw persistence enabled — §5.3's fix,
/// exercised by the freeze ablation.
pub fn clustering_js_with_freeze() -> String {
    let patched = CLUSTERING_JS.replace("var USE_FREEZE = false;", "var USE_FREEZE = true;");
    assert_ne!(patched, CLUSTERING_JS, "USE_FREEZE flag must exist");
    patched
}

/// Converts a raw simulated scan into the readings the Wi-Fi sensor
/// publishes.
pub fn readings_from_raw(raw: &RawScan) -> Vec<WifiReading> {
    raw.readings
        .iter()
        .map(|r| WifiReading {
            bssid: r.bssid.to_string(),
            rssi_dbm: r.rssi_dbm,
        })
        .collect()
}

/// Parses a sanitized scan message (`{t, aps: [{b, l}]}` as published by
/// `scan.js` or carried in a cluster's `rep` field) into a native [`Scan`].
pub fn scan_from_msg(msg: &Msg) -> Option<Scan> {
    let t = msg.get("t").and_then(Msg::as_num)? as u64;
    let aps = msg.get("aps")?.as_arr()?;
    let mut parts = Vec::with_capacity(aps.len());
    for ap in aps {
        let bssid: pogo_cluster::Bssid = ap.get("b")?.as_str()?.parse().ok()?;
        let level = ap.get("l").and_then(Msg::as_num)?;
        parts.push((bssid, level));
    }
    Some(Scan::from_parts(t, parts))
}

/// Parses a raw sensor scan message (`{timestamp, aps: [{bssid, rssi}]}`
/// as logged by `scan.js` to `raw-scans`) into a native [`RawScan`].
pub fn raw_scan_from_msg(msg: &Msg) -> Option<RawScan> {
    let timestamp_ms = msg.get("timestamp").and_then(Msg::as_num)? as u64;
    let aps = msg.get("aps")?.as_arr()?;
    let mut readings = Vec::with_capacity(aps.len());
    for ap in aps {
        readings.push(pogo_cluster::ApReading {
            bssid: ap.get("bssid")?.as_str()?.parse().ok()?,
            rssi_dbm: ap.get("rssi").and_then(Msg::as_num)?,
        });
    }
    Some(RawScan {
        timestamp_ms,
        readings,
    })
}

/// Parses a `locations` message (`{entry, exit, n, rep}` as published by
/// `clustering.js`) into a native [`ClusterSummary`].
pub fn summary_from_msg(msg: &Msg) -> Option<ClusterSummary> {
    Some(ClusterSummary {
        entry_ms: msg.get("entry").and_then(Msg::as_num)? as u64,
        exit_ms: msg.get("exit").and_then(Msg::as_num)? as u64,
        samples: msg.get("n").and_then(Msg::as_num)? as usize,
        representative: scan_from_msg(msg.get("rep")?)?,
    })
}

/// Registers the `geolocate` extension native (the Google-geolocation
/// stand-in, §4.1) on a collector script host.
pub fn register_geolocate(host: &ScriptHost, service: GeolocationService) {
    host.register_native("geolocate", move |_, args: &[Value]| {
        let msg = args
            .first()
            .map(Msg::from_script)
            .ok_or_else(|| ScriptError::host("geolocate: expected a scan"))?;
        let Some(scan) = scan_from_msg(&msg) else {
            return Ok(Value::Null);
        };
        match service.locate(&scan) {
            Some(point) => {
                let mut obj = ObjMap::new();
                obj.insert("lat", Value::from(point.lat));
                obj.insert("lon", Value::from(point.lon));
                Ok(Value::object(obj))
            }
            None => Ok(Value::Null),
        }
    });
}

/// Reconstructs ground truth the way §5.3 does: parse the device's
/// `raw-scans` log, sanitize, and run the (native) streaming clusterer
/// over the complete, uninterrupted trace.
pub fn ground_truth_from_log(
    lines: &[String],
    cfg: pogo_cluster::StreamConfig,
) -> Vec<ClusterSummary> {
    let mut clusterer = pogo_cluster::StreamClusterer::new(cfg);
    let mut out = Vec::new();
    for line in lines {
        let Ok(msg) = Msg::from_json(line) else {
            continue;
        };
        let Some(raw) = raw_scan_from_msg(&msg) else {
            continue;
        };
        out.extend(clusterer.push(raw.sanitize()));
    }
    out.extend(clusterer.finish());
    out
}

/// Parses the collector's `places` log (written by `collect.js`) back
/// into per-user summaries: `(user_jid, summary, located)`.
pub fn places_from_log(lines: &[String]) -> Vec<(String, ClusterSummary, bool)> {
    let mut out = Vec::new();
    for line in lines {
        let Ok(msg) = Msg::from_json(line) else {
            continue;
        };
        let Some(user) = msg.get("user").and_then(Msg::as_str) else {
            continue;
        };
        let summary = ClusterSummary {
            entry_ms: match msg.get("entry").and_then(Msg::as_num) {
                Some(v) => v as u64,
                None => continue,
            },
            exit_ms: match msg.get("exit").and_then(Msg::as_num) {
                Some(v) => v as u64,
                None => continue,
            },
            samples: msg.get("n").and_then(Msg::as_num).unwrap_or(0.0) as usize,
            representative: match msg.get("rep").and_then(scan_from_msg) {
                Some(s) => s,
                None => continue,
            },
        };
        let located = msg.get("lat").is_some();
        out.push((user.to_owned(), summary, located));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pogo_cluster::Bssid;

    #[test]
    fn scan_msg_roundtrip() {
        let msg = Msg::obj([
            ("t", Msg::Num(60_000.0)),
            (
                "aps",
                Msg::Arr(vec![Msg::obj([
                    ("b", Msg::str("00:10:00:00:00:01")),
                    ("l", Msg::Num(0.5)),
                ])]),
            ),
        ]);
        let scan = scan_from_msg(&msg).unwrap();
        assert_eq!(scan.timestamp_ms, 60_000);
        assert_eq!(scan.len(), 1);
        assert_eq!(
            scan.aps()[0].0,
            "00:10:00:00:00:01".parse::<Bssid>().unwrap()
        );
    }

    #[test]
    fn malformed_scan_msgs_are_none() {
        assert!(scan_from_msg(&Msg::Null).is_none());
        assert!(scan_from_msg(&Msg::obj([("t", Msg::Num(1.0))])).is_none());
        let bad_bssid = Msg::obj([
            ("t", Msg::Num(1.0)),
            (
                "aps",
                Msg::Arr(vec![Msg::obj([
                    ("b", Msg::str("zz")),
                    ("l", Msg::Num(0.1)),
                ])]),
            ),
        ]);
        assert!(scan_from_msg(&bad_bssid).is_none());
    }

    #[test]
    fn summary_msg_roundtrip() {
        let msg = Msg::obj([
            ("entry", Msg::Num(60_000.0)),
            ("exit", Msg::Num(300_000.0)),
            ("n", Msg::Num(5.0)),
            (
                "rep",
                Msg::obj([
                    ("t", Msg::Num(120_000.0)),
                    (
                        "aps",
                        Msg::Arr(vec![Msg::obj([
                            ("b", Msg::str("00:10:00:00:00:01")),
                            ("l", Msg::Num(0.8)),
                        ])]),
                    ),
                ]),
            ),
        ]);
        let summary = summary_from_msg(&msg).unwrap();
        assert_eq!(summary.entry_ms, 60_000);
        assert_eq!(summary.exit_ms, 300_000);
        assert_eq!(summary.samples, 5);
        assert_eq!(summary.representative.len(), 1);
        // Missing fields are rejected, not defaulted.
        assert!(summary_from_msg(&Msg::obj([("entry", Msg::Num(1.0))])).is_none());
    }

    #[test]
    fn ground_truth_skips_malformed_log_lines() {
        let lines = vec![
            "not json".to_owned(),
            "{\"timestamp\":0,\"aps\":[]}".to_owned(),
            "{\"unrelated\":true}".to_owned(),
        ];
        let truth = ground_truth_from_log(&lines, pogo_cluster::StreamConfig::default());
        assert!(truth.is_empty(), "garbage tolerated, nothing fabricated");
    }

    #[test]
    fn freeze_variant_differs() {
        let v = clustering_js_with_freeze();
        assert!(v.contains("USE_FREEZE = true"));
    }

    #[test]
    fn localization_spec_carries_both_scripts() {
        let spec = localization_experiment("loc");
        assert_eq!(spec.scripts.len(), 2);
        assert_eq!(spec.scripts[0].name, "scan.js");
        assert_eq!(spec.scripts[1].name, "clustering.js");
    }

    #[test]
    fn all_bundled_scripts_parse() {
        for (name, src) in [
            ("scan.js", SCAN_JS),
            ("clustering.js", CLUSTERING_JS),
            ("collect.js", COLLECT_JS),
            ("roguefinder.js", ROGUEFINDER_JS),
            ("roguefinder-collect.js", ROGUEFINDER_COLLECT_JS),
        ] {
            pogo_script::parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
