//! Chaos soak CLI: run a seeded fault-injection soak of a real
//! workload and report.
//!
//! ```text
//! chaos_soak [--workload W] [--seed N] [--phones N] [--hours N]
//!            [--days N] [--trace PATH] [--check] [--list-faults]
//! ```
//!
//! Workloads: `counter` (default, the synthetic counting script),
//! `localization` (§4.1 scan/cluster/collect pipeline), `roguefinder`
//! (§5.1 geofenced scanning), `table4` (§5.3 eight-phone cohort replay
//! — the headline CI soak).
//!
//! `--check` is the CI gate: the soak runs **twice** with the same
//! config, the two obs traces must match byte for byte, at least 100
//! faults across at least 3 classes must inject (4 classes including
//! bearer-flap and clock-skew for table4), and no invariant may break.
//! Exit status 1 on any failure.

use pogo::chaos::{run_workload_soak, CounterWorkload, SoakConfig, SoakReport, WorkloadSpec};
use pogo::chaos_workloads::{LocalizationWorkload, RogueFinderWorkload, Table4ChaosWorkload};
use pogo::sim::SimDuration;

fn usage() -> ! {
    eprintln!(
        "usage: chaos_soak [--workload W] [--seed N] [--phones N] [--hours N] [--days N]\n\
         \x20                 [--trace PATH] [--check] [--list-faults]\n\
         \n\
         --workload W  counter | localization | roguefinder | table4 (default counter)\n\
         --seed N      fault-plan seed (decimal or 0x-hex; default {:#x})\n\
         --phones N    fleet size (default 8; table4 always runs the 8-phone cohort)\n\
         --hours N     simulated soak length (default 48; ignored by table4)\n\
         --days N      table4 window in days (default 24)\n\
         --trace PATH  write the obs trace as JSONL\n\
         --check       CI gate: run twice, require identical traces,\n\
                       >=100 faults over >=3 classes (table4: >=4 classes\n\
                       including bearer-flap and clock-skew), zero violations\n\
         --list-faults print the fault classes the plan generator draws from",
        SoakConfig::default().seed
    );
    std::process::exit(2);
}

fn list_faults() -> ! {
    println!(
        "fault classes (pogo-chaos FaultKind):\n\
         \x20 reboot          middleware restart; RAM state lost, frozen state survives\n\
         \x20 link-degrade    per-device packet loss + jitter window\n\
         \x20 server-restart  switchboard bounce; sessions drop, roster survives\n\
         \x20 server-outage   switchboard down for a window (refcounted overlap)\n\
         \x20 battery-death   phone dark for up to 90 min; expiry is the one allowed loss\n\
         \x20 roster-churn    device unfriended from the collector, rejoins later\n\
         \x20 bearer-flap     Wifi<->Cellular handover storm; in-flight envelopes drop\n\
         \x20 clock-skew      device RTC steps + drifts, NITZ-style fix at window end"
    );
    std::process::exit(0);
}

fn parse_u64(flag: &str, value: Option<String>) -> u64 {
    let Some(value) = value else {
        eprintln!("chaos_soak: {flag} needs a value");
        usage();
    };
    let parsed = match value.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => value.parse(),
    };
    parsed.unwrap_or_else(|_| {
        eprintln!("chaos_soak: bad {flag} value {value:?}");
        usage();
    })
}

fn main() {
    let mut cfg = SoakConfig::default();
    let mut workload_name = "counter".to_owned();
    let mut days = 24u64;
    let mut check = false;
    let mut trace_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workload" => workload_name = args.next().unwrap_or_else(|| usage()),
            "--seed" => cfg.seed = parse_u64("--seed", args.next()),
            "--phones" => cfg.phones = parse_u64("--phones", args.next()) as usize,
            "--hours" => cfg.duration = SimDuration::from_hours(parse_u64("--hours", args.next())),
            "--days" => days = parse_u64("--days", args.next()).max(1),
            "--trace" => trace_path = args.next().or_else(|| usage()),
            "--check" => check = true,
            "--list-faults" => list_faults(),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("chaos_soak: unknown argument {other:?}");
                usage();
            }
        }
    }
    cfg.capture_trace = check || trace_path.is_some();

    let workload: Box<dyn WorkloadSpec> = match workload_name.as_str() {
        "counter" => Box::new(CounterWorkload),
        "localization" => Box::new(LocalizationWorkload),
        "roguefinder" => Box::new(RogueFinderWorkload),
        "table4" => {
            // The cohort replay runs the paper's window with the paper's
            // 24-hour expiry; a fault roughly every two hours keeps the
            // whole 24 days under pressure (~280 faults).
            cfg.max_msg_age = SimDuration::from_hours(24);
            cfg.mean_fault_gap = SimDuration::from_hours(2);
            Box::new(Table4ChaosWorkload::new(days))
        }
        other => {
            eprintln!("chaos_soak: unknown workload {other:?}");
            usage();
        }
    };

    let report = run_workload_soak(&cfg, workload.as_ref());
    print!("{}", report.summary());
    if let Some(path) = &trace_path {
        std::fs::write(path, &report.trace_jsonl).unwrap_or_else(|e| {
            eprintln!("chaos_soak: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("trace: {path} ({} bytes)", report.trace_jsonl.len());
    }

    if check {
        let failures = check_failures(&report, &run_workload_soak(&cfg, workload.as_ref()));
        if failures.is_empty() {
            println!(
                "chaos check: PASS [{}] ({} faults, {} classes, deterministic trace)",
                report.workload,
                report.faults_injected,
                report.classes()
            );
        } else {
            for f in &failures {
                eprintln!("chaos check: FAIL: {f}");
            }
            std::process::exit(1);
        }
    }
}

/// The CI gate conditions; `second` is the same config re-run.
fn check_failures(report: &SoakReport, second: &SoakReport) -> Vec<String> {
    let mut failures: Vec<String> = Vec::new();
    if report.trace_jsonl != second.trace_jsonl {
        failures.push("two runs of the same seed produced different obs traces".into());
    }
    if report.faults_injected < 100 {
        failures.push(format!(
            "only {} faults injected, need >=100",
            report.faults_injected
        ));
    }
    let min_classes = if report.workload == "table4" { 4 } else { 3 };
    if report.classes() < min_classes {
        failures.push(format!(
            "only {} fault classes injected, need >={min_classes}",
            report.classes()
        ));
    }
    if report.workload == "table4" {
        for class in ["bearer-flap", "clock-skew"] {
            if !report.faults_by_class.contains_key(class) {
                failures.push(format!("fault class {class} never injected"));
            }
        }
    }
    if !report.violations.is_empty() {
        failures.push(format!("{} invariant violations", report.violations.len()));
    }
    failures
}
