//! The unified `pogo::Error` hierarchy.
//!
//! The workspace crates each define their own narrow error type
//! ([`NetError`], [`DeployError`], [`ParseJidError`], [`ScriptError`]) —
//! right for a library layer, awkward for application code and chaos
//! tests that want to assert on *kind* without string-matching. This
//! module folds them into one [`enum@Error`] with:
//!
//! - a stable, machine-readable [`ErrorCode`] per variant (what chaos
//!   and CI assertions key on);
//! - [`std::error::Error::source`] chaining back to the underlying
//!   crate-level error;
//! - `From` impls so `?` lifts any crate error into `pogo::Error`.

use std::fmt;

use pogo_core::DeployError;
use pogo_ingest::IngestError;
use pogo_net::{NetError, ParseJidError};
use pogo_script::ScriptError;

/// Stable error codes for every failure the middleware can report.
///
/// The string form ([`ErrorCode::as_str`]) is part of the public
/// contract: codes are never renamed, only added.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// A JID with no account on the switchboard.
    NetUnknownAccount,
    /// Sender and recipient are not roster buddies.
    NetNotAuthorized,
    /// The session was already disconnected.
    NetNotConnected,
    /// The switchboard is down and refusing connections.
    NetServerDown,
    /// A malformed JID string.
    JidInvalid,
    /// A deployment rejected by the pre-flight static analyzer.
    DeployRejected,
    /// A script failed to parse or execute.
    ScriptError,
    /// A sample that does not match its channel's declared schema.
    IngestSchemaMismatch,
    /// A channel registered twice with incompatible schemas.
    IngestChannelConflict,
    /// An ingest operation on a channel nobody registered.
    IngestUnknownChannel,
}

impl ErrorCode {
    /// The stable string form of this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::NetUnknownAccount => "NET_UNKNOWN_ACCOUNT",
            ErrorCode::NetNotAuthorized => "NET_NOT_AUTHORIZED",
            ErrorCode::NetNotConnected => "NET_NOT_CONNECTED",
            ErrorCode::NetServerDown => "NET_SERVER_DOWN",
            ErrorCode::JidInvalid => "JID_INVALID",
            ErrorCode::DeployRejected => "DEPLOY_REJECTED",
            ErrorCode::ScriptError => "SCRIPT_ERROR",
            ErrorCode::IngestSchemaMismatch => "INGEST_SCHEMA_MISMATCH",
            ErrorCode::IngestChannelConflict => "INGEST_CHANNEL_CONFLICT",
            ErrorCode::IngestUnknownChannel => "INGEST_UNKNOWN_CHANNEL",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Any error the Pogo middleware can surface, wrapping the narrow
/// per-crate error types.
#[non_exhaustive]
#[derive(Debug)]
pub enum Error {
    /// A switchboard / session failure.
    Net(NetError),
    /// A malformed JID.
    Jid(ParseJidError),
    /// A deployment rejected by static analysis.
    Deploy(DeployError),
    /// A script load or runtime failure.
    Script(ScriptError),
    /// An ingestion pipeline / sample store failure.
    Ingest(IngestError),
}

impl Error {
    /// The stable code for this error.
    pub fn code(&self) -> ErrorCode {
        match self {
            Error::Net(NetError::UnknownAccount(_)) => ErrorCode::NetUnknownAccount,
            Error::Net(NetError::NotAuthorized { .. }) => ErrorCode::NetNotAuthorized,
            Error::Net(NetError::NotConnected) => ErrorCode::NetNotConnected,
            Error::Net(NetError::ServerDown) => ErrorCode::NetServerDown,
            Error::Jid(_) => ErrorCode::JidInvalid,
            Error::Deploy(_) => ErrorCode::DeployRejected,
            Error::Script(_) => ErrorCode::ScriptError,
            Error::Ingest(IngestError::SchemaMismatch { .. }) => ErrorCode::IngestSchemaMismatch,
            Error::Ingest(IngestError::ChannelConflict { .. }) => ErrorCode::IngestChannelConflict,
            Error::Ingest(IngestError::UnknownChannel { .. }) => ErrorCode::IngestUnknownChannel,
            // IngestError is #[non_exhaustive]; future variants get a
            // code before they get a release.
            Error::Ingest(_) => ErrorCode::IngestUnknownChannel,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Net(e) => write!(f, "[{}] {e}", self.code()),
            Error::Jid(e) => write!(f, "[{}] {e}", self.code()),
            Error::Deploy(e) => write!(f, "[{}] {e}", self.code()),
            Error::Script(e) => write!(f, "[{}] {e}", self.code()),
            Error::Ingest(e) => write!(f, "[{}] {e}", self.code()),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Net(e) => Some(e),
            Error::Jid(e) => Some(e),
            Error::Deploy(e) => Some(e),
            Error::Script(e) => Some(e),
            Error::Ingest(e) => Some(e),
        }
    }
}

impl From<NetError> for Error {
    fn from(e: NetError) -> Self {
        Error::Net(e)
    }
}

impl From<ParseJidError> for Error {
    fn from(e: ParseJidError) -> Self {
        Error::Jid(e)
    }
}

impl From<DeployError> for Error {
    fn from(e: DeployError) -> Self {
        Error::Deploy(e)
    }
}

impl From<ScriptError> for Error {
    fn from(e: ScriptError) -> Self {
        Error::Script(e)
    }
}

impl From<IngestError> for Error {
    fn from(e: IngestError) -> Self {
        Error::Ingest(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pogo_net::Jid;

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(ErrorCode::NetServerDown.as_str(), "NET_SERVER_DOWN");
        assert_eq!(ErrorCode::DeployRejected.to_string(), "DEPLOY_REJECTED");
    }

    #[test]
    fn from_impls_and_code_mapping() {
        let e: Error = NetError::NotConnected.into();
        assert_eq!(e.code(), ErrorCode::NetNotConnected);
        let jid = Jid::new("ghost@pogo").unwrap();
        let e: Error = NetError::UnknownAccount(jid).into();
        assert_eq!(e.code(), ErrorCode::NetUnknownAccount);
        let e: Error = Jid::new("not a jid").unwrap_err().into();
        assert_eq!(e.code(), ErrorCode::JidInvalid);
        let e: Error = IngestError::UnknownChannel {
            exp: "e".into(),
            channel: "c".into(),
        }
        .into();
        assert_eq!(e.code(), ErrorCode::IngestUnknownChannel);
    }

    #[test]
    fn ingest_codes_agree_with_the_crate_level_strings() {
        // The umbrella code and the crate's own `code()` spell the
        // same stable string — chaos/CI assertions can use either.
        let mismatch = IngestError::SchemaMismatch {
            exp: "e".into(),
            channel: "c".into(),
            device: "d@pogo".into(),
            expected: pogo_ingest::Template::I64,
            got: "string".into(),
        };
        assert_eq!(
            Error::from(mismatch.clone()).code().as_str(),
            mismatch.code()
        );
        let conflict = IngestError::ChannelConflict {
            exp: "e".into(),
            channel: "c".into(),
        };
        assert_eq!(
            Error::from(conflict.clone()).code().as_str(),
            conflict.code()
        );
        assert!(Error::from(conflict)
            .to_string()
            .starts_with("[INGEST_CHANNEL_CONFLICT]"));
    }

    #[test]
    fn source_chains_to_the_crate_error() {
        use std::error::Error as _;
        let e: Error = NetError::ServerDown.into();
        let source = e.source().expect("chained");
        assert_eq!(source.to_string(), NetError::ServerDown.to_string());
        assert!(e.to_string().starts_with("[NET_SERVER_DOWN]"));
    }
}
