#!/usr/bin/env bash
# Tier-1 verification plus the lint and perf regression gates.
#
#   scripts/ci.sh              build + tests + lint gates + perf check
#   scripts/ci.sh --no-perf    skip the perf_smoke regression gate
#   scripts/ci.sh --no-lint    skip fmt/clippy/pogo-lint (e.g. older toolchain)
#   scripts/ci.sh --no-chaos   skip the chaos_soak fault-injection gate
#
# Lint gates (Rust- and script-side static analysis):
#   * cargo fmt --check and cargo clippy -D warnings over the workspace;
#   * pogo-lint over every deployable script in assets/scripts/ (as one
#     bundle, so cross-script channel typos are caught) — `geolocate` is
#     allowed because collect.js expects the collector to register it as
#     an extension native;
#   * pogo-lint --rust-embedded over the inline scripts in examples/.
#
# The perf gate re-runs `perf_smoke` and fails if any bench regressed by
# more than 25% per op against the committed baseline. The baseline was
# recorded with the release profile in the workspace Cargo.toml (thin
# LTO); absolute numbers vary per machine, which is why the tolerance is
# generous — the gate catches "someone reintroduced the linear scan",
# not single-digit drift. The additional --min-speedup floor holds the
# bytecode VM to its contract: delivering one callback event into a
# loaded script must stay >=25x cheaper than the recorded cost of a full
# tree-walk evaluation (the pre-VM way to run any script code).
set -euo pipefail
cd "$(dirname "$0")/.."

run_perf=1
run_lint=1
run_chaos=1
for arg in "$@"; do
    case "$arg" in
        --no-perf) run_perf=0 ;;
        --no-lint) run_lint=0 ;;
        --no-chaos) run_chaos=0 ;;
        *)
            echo "ci.sh: unknown flag $arg" >&2
            exit 2
            ;;
    esac
done

cargo build --release --workspace
cargo test -q

if [[ "$run_lint" == 1 ]]; then
    cargo fmt --check
    cargo clippy --all-targets -- -D warnings
    ./target/release/pogo-lint --allow-native geolocate assets/scripts/*.js
    ./target/release/pogo-lint --rust-embedded examples/*.rs
    # Verifier + cost gate over the deployable bundle, on exact rule
    # codes: any structural VERIFY_* defect or guaranteed-over-budget
    # P301 fails CI; unbounded/may-exceed cost (P302/P303) and publish
    # fan-out (P304) stay warnings here, mirroring the deploy gate.
    gate_json="$(./target/release/pogo-lint --allow-native geolocate \
        --verify --cost --json assets/scripts/*.js)"
    if echo "$gate_json" | grep -E '"code":"(VERIFY_[A-Z_]+|P301)"' ; then
        echo "ci.sh: verifier/cost gate found blocking findings" >&2
        exit 1
    fi
    if echo "$gate_json" | grep '"severity":"error"' ; then
        echo "ci.sh: verifier/cost gate found error-severity findings" >&2
        exit 1
    fi
fi

if [[ "$run_perf" == 1 ]]; then
    ./target/release/perf_smoke --check BENCH_pr9.json --tolerance 0.25 \
        --min-speedup script_vm:25
    # Fleet gate: the 10k-device localization soak must hold at least
    # half the recorded device-sim-seconds/sec (wall-clock, so the
    # floor is generous) and must not bloat the deterministic uplink
    # bytes/device by more than 10%.
    ./target/release/fleet_soak --check BENCH_pr10.json
fi

# Chaos gate: the fixed-seed table4 cohort replay (24 days, 8 phones)
# must inject >=100 faults over >=4 classes — bearer-flap and clock-skew
# among them — with zero delivery-invariant violations, and two
# back-to-back runs must produce byte-identical obs traces.
if [[ "$run_chaos" == 1 ]]; then
    ./target/release/chaos_soak --workload table4 --check
fi

# pogo-trace smoke: the quickstart workload with tracing on must emit
# non-empty, well-formed JSONL (every line a {"t":...,"cat":...} object).
trace_tmp="$(mktemp -t pogo-trace-smoke.XXXXXX)"
trap 'rm -f "$trace_tmp"' EXIT
./target/release/pogo-trace --workload quickstart -o "$trace_tmp"
test -s "$trace_tmp" || { echo "pogo-trace smoke: empty trace" >&2; exit 1; }
grep -vq '^{"t":[0-9]*,.*"cat":".*","ev":".*"' "$trace_tmp" \
    && { echo "pogo-trace smoke: malformed JSONL line" >&2; exit 1; }
# Round-trip: the CLI must re-read its own dump.
./target/release/pogo-trace "$trace_tmp" --top >/dev/null
echo "pogo-trace smoke: ok ($(wc -l < "$trace_tmp") events)"
