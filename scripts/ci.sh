#!/usr/bin/env bash
# Tier-1 verification plus the perf regression gate.
#
#   scripts/ci.sh              build + tests + perf check vs BENCH_pr1.json
#   scripts/ci.sh --no-perf    build + tests only (e.g. on a loaded box)
#
# The perf gate re-runs `perf_smoke` and fails if any bench regressed by
# more than 25% per op against the committed baseline. The baseline was
# recorded with the release profile in the workspace Cargo.toml (thin
# LTO); absolute numbers vary per machine, which is why the tolerance is
# generous — the gate catches "someone reintroduced the linear scan",
# not single-digit drift.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

if [[ "${1:-}" != "--no-perf" ]]; then
    ./target/release/perf_smoke --check BENCH_pr1.json --tolerance 0.25
fi
