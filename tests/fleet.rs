//! Fleet-scale invariants: sharding is pure partitioning.
//!
//! The 100k-device testbed's headline promise is that the broker shard
//! count is an *operational* knob, not a semantic one — any N produces
//! the run a single switchboard would have produced. These tests pin
//! that: the same fleet spec and seed through 1, 2, and 8 shards must
//! yield byte-identical observability traces and an identical sample
//! store, with or without lock-step stepping.

use pogo::core::{FleetSpec, ObsConfig, Testbed};
use pogo::ingest::{ChannelSchema, Row, ScanQuery};
use pogo::net::{FlushPolicy, Jid};
use pogo::obs::export;
use pogo::sim::{DeviceId, Sim, SimDuration};
use pogo_core::sensor::{SensorSources, WifiReading};

const FLEET: usize = 24;
const RUN: SimDuration = SimDuration::from_mins(20);

/// A miniature localization fleet: every device publishes a `report`
/// with a per-device cadence drawn from its jitter stream.
fn fleet_spec() -> FleetSpec {
    FleetSpec::new(FLEET)
        .prefix("phone")
        .seed(42)
        .battery_jitter(0.2)
        .configure(|_, c| c.with_flush_policy(FlushPolicy::Interval(SimDuration::from_secs(90))))
        .sensors(|i, rng| {
            let phase = rng.range_u64(0, 120_000);
            SensorSources {
                wifi_scan: Some(Box::new(move |t_ms| {
                    let slot = (t_ms + phase) / 600_000;
                    Some(vec![WifiReading {
                        bssid: format!("00:{:02x}:00:00:00:{:02x}", i, slot % 16),
                        rssi_dbm: -60.0,
                    }])
                })),
                ..SensorSources::default()
            }
        })
}

/// Runs the fleet on `shards` broker shards; `lockstep` switches
/// between `Sim::run_for` and `Testbed::run_lockstep`. Returns the
/// JSONL event trace and the collector's full sample store contents.
fn run_sharded(shards: usize, lockstep: bool) -> (String, Vec<Row>) {
    let sim = Sim::new();
    let mut testbed = Testbed::with_obs_sharded(&sim, ObsConfig::on(), shards);
    let fleet = testbed.add_fleet(fleet_spec());
    assert_eq!(fleet.len(), FLEET);

    testbed
        .collector()
        .registry()
        .register("fleet", "reports", ChannelSchema::json())
        .expect("fresh channel registers");
    testbed
        .collector()
        .deployment(&pogo::core::proto::ExperimentSpec {
            id: "fleet".into(),
            scripts: vec![pogo::core::proto::ScriptSpec {
                name: "report.js".into(),
                source: "subscribe('wifi-scan', function (msg) {\n\
                             publish('reports', { n: msg.aps.length, t: msg.timestamp });\n\
                         }, { interval: 5 * 60 * 1000 });"
                    .into(),
            }],
        })
        .to(&fleet.jids())
        .send()
        .expect("scripts pass pre-deployment analysis");

    if lockstep {
        testbed.run_lockstep(RUN, SimDuration::from_mins(1));
    } else {
        sim.run_for(RUN);
    }
    let trace = export::to_jsonl(&testbed.obs().events());
    let rows = testbed.collector().store().scan(&ScanQuery::exp("fleet"));
    assert!(!rows.is_empty(), "fleet must land samples");
    (trace, rows)
}

#[test]
fn shard_count_is_invisible_in_traces_and_store() {
    let (trace_1, rows_1) = run_sharded(1, false);
    for shards in [2, 8] {
        let (trace_n, rows_n) = run_sharded(shards, false);
        assert_eq!(trace_1, trace_n, "{shards}-shard trace diverged");
        assert_eq!(rows_1, rows_n, "{shards}-shard store diverged");
    }
}

#[test]
fn lockstep_stepping_changes_nothing_but_metrics() {
    let (trace_straight, rows_straight) = run_sharded(4, false);
    let (trace_lockstep, rows_lockstep) = run_sharded(4, true);
    assert_eq!(trace_straight, trace_lockstep);
    assert_eq!(rows_straight, rows_lockstep);
}

#[test]
fn fleet_ids_round_trip_through_interned_jids() {
    let sim = Sim::new();
    let mut testbed = Testbed::sharded(&sim, 4);
    let fleet = testbed.add_fleet(FleetSpec::new(32).prefix("node"));
    for (i, member) in fleet.iter().enumerate() {
        assert_eq!(member.id, DeviceId::new(i));
        // Dense id -> device -> JID -> dense id.
        let device = testbed.device(member.id).expect("id resolves");
        let jid = device.jid();
        assert_eq!(testbed.device_id(&jid), Some(member.id));
        // Interning: re-parsing the text yields the same record.
        let reparsed = Jid::new(jid.as_str()).expect("valid JID");
        assert_eq!(reparsed, jid);
        assert_eq!(reparsed.uid(), jid.uid());
        assert_eq!(reparsed.salt(), jid.salt());
    }
}
