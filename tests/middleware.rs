//! Cross-crate integration tests of middleware behaviours the paper's
//! deployment depended on: deterministic replay, disruption recovery,
//! message expiry, multi-device fan-in, and the §5.3 freeze/thaw fix.

use std::cell::RefCell;
use std::rc::Rc;

use pogo::core::proto::ScriptSpec;
use pogo::core::sensor::{SensorSources, WifiReading};
use pogo::core::{ChannelFilter, DeviceSetup, ExperimentSpec, Testbed};
use pogo::glue;
use pogo::net::FlushPolicy;
use pogo::platform::Bearer;
use pogo::sim::{Sim, SimDuration, SimTime};

const MIN: u64 = 60_000;

/// A stable fake environment: always "at home" with three APs.
fn home_sources() -> SensorSources {
    SensorSources {
        wifi_scan: Some(Box::new(|t_ms| {
            Some(
                (0..3)
                    .map(|i| WifiReading {
                        bssid: format!("00:10:00:00:00:0{i}"),
                        rssi_dbm: -60.0 - i as f64 * 5.0 - ((t_ms / MIN) % 3) as f64,
                    })
                    .collect(),
            )
        })),
        ..SensorSources::default()
    }
}

fn immediate(cfg: pogo::core::DeviceConfig) -> pogo::core::DeviceConfig {
    cfg.with_flush_policy(FlushPolicy::Immediate)
}

#[test]
fn identical_seeds_replay_identically() {
    // The entire stack — simulation, middleware, scripts, network — is
    // deterministic: two runs produce byte-identical collector logs.
    let run = || {
        let sim = Sim::new();
        let mut testbed = Testbed::new(&sim);
        let (device, _phone) = testbed.add(
            DeviceSetup::named("phone")
                .configure(immediate)
                .sensors(home_sources()),
        );
        testbed
            .collector()
            .install_script(
                "exp",
                "log.js",
                "subscribe('scans', function (m, from) { logTo('out', from + ' ' + json(m)); });",
            )
            .unwrap();
        testbed
            .collector()
            .deployment(&glue::localization_experiment("exp"))
            .to(&[device.jid()])
            .send()
            .expect("scripts pass pre-deployment analysis");
        sim.run_for(SimDuration::from_hours(3));
        testbed.collector().logs().lines("out").join("\n")
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "replays diverged");
}

#[test]
fn offline_device_buffers_and_recovers_without_loss() {
    let sim = Sim::new();
    let mut testbed = Testbed::new(&sim);
    let (device, phone) = testbed.add(
        DeviceSetup::named("phone")
            .configure(immediate)
            .sensors(home_sources()),
    );
    let received = Rc::new(RefCell::new(Vec::new()));
    let r = received.clone();
    testbed
        .collector()
        .attach_listener(ChannelFilter::exp("exp").channel("ticks"), move |event| {
            r.borrow_mut().push(
                event
                    .msg
                    .get("n")
                    .and_then(pogo::core::Msg::as_num)
                    .unwrap(),
            );
        });
    testbed
        .collector()
        .deployment(&ExperimentSpec {
            id: "exp".into(),
            scripts: vec![ScriptSpec {
                name: "tick.js".into(),
                source: r#"
                    var n = 0;
                    function tick() {
                        n = n + 1;
                        publish('ticks', { n: n });
                        setTimeout(tick, 10 * 60 * 1000);
                    }
                    tick();
                "#
                .into(),
            }],
        })
        .to(&[device.jid()])
        .send()
        .expect("scripts pass pre-deployment analysis");
    sim.run_for(SimDuration::from_mins(25)); // ticks 1, 2, 3 delivered
    phone.connectivity().set_active(None); // tunnel / airplane mode
    sim.run_for(SimDuration::from_hours(2)); // ticks pile up in the store
    assert!(device.buffered() > 5);
    phone.connectivity().set_active(Some(Bearer::Cellular));
    sim.run_for(SimDuration::from_mins(5));
    let got = received.borrow().clone();
    // Every tick arrived exactly once, in order.
    let expected: Vec<f64> = (1..=got.len() as u64).map(|n| n as f64).collect();
    assert_eq!(got, expected);
    assert!(got.len() >= 14, "2h25m of 10-min ticks: {}", got.len());
    assert_eq!(device.buffered(), 0, "store drained after recovery");
}

#[test]
fn wifi_to_cellular_handover_loses_nothing_end_to_end() {
    let sim = Sim::new();
    let mut testbed = Testbed::new(&sim);
    let (device, phone) = testbed.add(
        DeviceSetup::named("phone")
            .configure(immediate)
            .sensors(home_sources()),
    );
    let count = Rc::new(RefCell::new(0u64));
    let c = count.clone();
    testbed
        .collector()
        .attach_listener(ChannelFilter::exp("exp").channel("ticks"), move |_event| {
            *c.borrow_mut() += 1
        });
    testbed
        .collector()
        .deployment(&ExperimentSpec {
            id: "exp".into(),
            scripts: vec![ScriptSpec {
                name: "tick.js".into(),
                source: r#"
                    function tick() { publish('ticks', {}); setTimeout(tick, 60 * 1000); }
                    tick();
                "#
                .into(),
            }],
        })
        .to(&[device.jid()])
        .send()
        .expect("scripts pass pre-deployment analysis");
    // Flip the bearer every 7 minutes for 2 hours.
    for i in 1..=17u64 {
        let conn = phone.connectivity().clone();
        let bearer = if i % 2 == 0 {
            Bearer::Cellular
        } else {
            Bearer::Wifi
        };
        sim.schedule_at(SimTime::from_millis(i * 7 * MIN), move || {
            conn.set_active(Some(bearer));
        });
    }
    sim.run_for(SimDuration::from_hours(2));
    sim.run_for(SimDuration::from_mins(3)); // drain
    let delivered = *count.borrow();
    assert!(
        delivered >= 118,
        "one tick per minute for 2h, none lost: {delivered}"
    );
}

#[test]
fn message_expiry_drops_exactly_the_stale_window() {
    let sim = Sim::new();
    let mut testbed = Testbed::new(&sim);
    let (device, phone) = testbed.add(
        DeviceSetup::named("phone")
            .configure(immediate)
            .sensors(home_sources()),
    );
    testbed
        .collector()
        .attach_listener(ChannelFilter::exp("exp").channel("ticks"), |_event| {});
    testbed
        .collector()
        .deployment(&ExperimentSpec {
            id: "exp".into(),
            scripts: vec![ScriptSpec {
                name: "tick.js".into(),
                source: r#"
                    function tick() { publish('ticks', {}); setTimeout(tick, 60 * 60 * 1000); }
                    tick();
                "#
                .into(),
            }],
        })
        .to(&[device.jid()])
        .send()
        .expect("scripts pass pre-deployment analysis");
    sim.run_for(SimDuration::from_mins(5));
    // The user-2a scenario: abroad with data off for 3 days.
    phone.connectivity().set_active(None);
    sim.run_for(SimDuration::from_days(3));
    phone.connectivity().set_active(Some(Bearer::Cellular));
    sim.run_for(SimDuration::from_mins(10));
    // Hourly ticks for 3 days = 72; everything older than 24 h purged.
    let purged = device.purged();
    assert!(
        (44..=52).contains(&(purged as i64)),
        "roughly two days of messages purged: {purged}"
    );
    assert_eq!(device.buffered(), 0, "the fresh day was delivered");
}

#[test]
fn many_devices_fan_in_with_attribution() {
    let sim = Sim::new();
    let mut testbed = Testbed::new(&sim);
    for i in 0..8 {
        testbed.add(
            DeviceSetup::named(&format!("d{i}"))
                .configure(immediate)
                .sensors(home_sources()),
        );
    }
    let seen = Rc::new(RefCell::new(
        std::collections::BTreeMap::<String, u64>::new(),
    ));
    let s = seen.clone();
    testbed
        .collector()
        .attach_listener(ChannelFilter::exp("exp").channel("hello"), move |event| {
            *s.borrow_mut().entry(event.device.to_owned()).or_default() += 1;
        });
    let jids: Vec<_> = testbed.devices().iter().map(|d| d.jid()).collect();
    testbed
        .collector()
        .deployment(&ExperimentSpec {
            id: "exp".into(),
            scripts: vec![ScriptSpec {
                name: "hello.js".into(),
                source: "publish('hello', { hi: 1 });".into(),
            }],
        })
        .to(&jids)
        .send()
        .expect("scripts pass pre-deployment analysis");
    sim.run_for(SimDuration::from_mins(5));
    let seen = seen.borrow();
    assert_eq!(seen.len(), 8, "all devices reported: {seen:?}");
    assert!(
        seen.values().all(|&n| n == 1),
        "exactly once each: {seen:?}"
    );
}

#[test]
fn freeze_fix_preserves_clusters_across_reboots() {
    // The §5.3 ablation in miniature: a dwell interrupted by a reboot is
    // reported whole with freeze/thaw, truncated without.
    let moving_sources = || -> SensorSources {
        SensorSources {
            wifi_scan: Some(Box::new(|t_ms| {
                if t_ms < 3 * 60 * MIN {
                    // At home.
                    Some(
                        (0..3)
                            .map(|i| WifiReading {
                                bssid: format!("00:10:00:00:00:0{i}"),
                                rssi_dbm: -60.0 - i as f64 * 5.0,
                            })
                            .collect(),
                    )
                } else {
                    // Walking: a different street AP every scan.
                    Some(vec![WifiReading {
                        bssid: format!(
                            "00:20:00:00:{:02x}:{:02x}",
                            (t_ms / MIN) % 199,
                            (t_ms / MIN) % 251
                        ),
                        rssi_dbm: -88.0,
                    }])
                }
            })),
            ..SensorSources::default()
        }
    };
    let run = |use_freeze: bool| -> Vec<(u64, u64)> {
        let sim = Sim::new();
        let mut testbed = Testbed::new(&sim);
        let (device, _phone) = testbed.add(
            DeviceSetup::named("phone")
                .configure(immediate)
                .sensors(moving_sources()),
        );
        let places = Rc::new(RefCell::new(Vec::new()));
        let p = places.clone();
        testbed.collector().attach_listener(
            ChannelFilter::exp("loc").channel("locations"),
            move |event| {
                let msg = event.msg;
                p.borrow_mut().push((
                    msg.get("entry").and_then(pogo::core::Msg::as_num).unwrap() as u64,
                    msg.get("exit").and_then(pogo::core::Msg::as_num).unwrap() as u64,
                ));
            },
        );
        let mut spec = glue::localization_experiment("loc");
        if use_freeze {
            spec.scripts[1].source = glue::clustering_js_with_freeze();
        }
        testbed
            .collector()
            .deployment(&spec)
            .to(&[device.jid()])
            .send()
            .expect("scripts pass pre-deployment analysis");
        // Dwell 0–3h with a reboot at 2h, then an hour of walking: the
        // dissimilar transit scans close the home cluster.
        let d = device.clone();
        sim.schedule_at(SimTime::from_millis(2 * 60 * MIN), move || d.reboot());
        sim.run_for(SimDuration::from_hours(4));
        let result = places.borrow().clone();
        result
    };
    // Without freeze, the morning half restarts the cluster: when the
    // cluster eventually closes it will carry a post-reboot entry time.
    // (The run ends before a close, so compare the device-side open state
    // indirectly through a second phase — easiest: look at what a gap
    // reset right before the end emits.)
    // For a crisp observable, use the freeze run's ability to span the
    // reboot: with freeze the FIRST reported cluster must start near 0
    // even though the reboot happened mid-dwell.
    let frozen = run(true);
    let unfrozen = run(false);
    // A cluster that starts near arrival AND ends after the reboot can
    // only exist if clustering state survived the restart.
    let spans_reboot = |places: &[(u64, u64)]| {
        places
            .iter()
            .any(|&(e, x)| e < 30 * MIN && x > 2 * 60 * MIN)
    };
    assert!(
        spans_reboot(&frozen),
        "with freeze, the home dwell is reported whole: {frozen:?}"
    );
    assert!(
        !spans_reboot(&unfrozen),
        "without freeze, no cluster can span the reboot: {unfrozen:?}"
    );
    // The paper's exact artefact: "some clusters ... had a later start
    // time" — the unfrozen run still reports the post-reboot half.
    assert!(
        unfrozen.iter().any(|&(e, x)| e > 2 * 60 * MIN && x > e),
        "unfrozen run reports the truncated half: {unfrozen:?}"
    );
}

#[test]
fn watchdog_errors_are_contained_per_script() {
    let sim = Sim::new();
    let mut testbed = Testbed::new(&sim);
    let (device, _phone) = testbed.add(
        DeviceSetup::named("phone")
            .configure(immediate)
            .sensors(home_sources()),
    );
    let good = Rc::new(RefCell::new(0));
    let g = good.clone();
    testbed
        .collector()
        .attach_listener(ChannelFilter::exp("exp").channel("ok"), move |_event| {
            *g.borrow_mut() += 1
        });
    testbed
        .collector()
        .deployment(&ExperimentSpec {
            id: "exp".into(),
            scripts: vec![
                ScriptSpec {
                    name: "evil.js".into(),
                    source: "subscribe('wifi-scan', function (m) { while (true) {} });".into(),
                },
                ScriptSpec {
                    name: "good.js".into(),
                    source: "subscribe('wifi-scan', function (m) { publish('ok', {}); });".into(),
                },
            ],
        })
        .to(&[device.jid()])
        .send()
        .expect("scripts pass pre-deployment analysis");
    sim.run_for(SimDuration::from_mins(10));
    let ctx = device.context("exp").unwrap();
    let evil = &ctx.scripts()[0];
    assert!(
        evil.watchdog_trips() >= 5,
        "runaway callback killed each time"
    );
    assert!(*good.borrow() >= 5, "well-behaved script unaffected");
}
