//! Chaos-layer integration tests: determinism of seeded soaks, the
//! reliability machinery under forced switchboard failures, dedup under
//! duplicated retransmits, and stable error codes for chaos assertions.

use std::cell::RefCell;
use std::rc::Rc;

use pogo::chaos::{run_soak, SoakConfig};
use pogo::core::proto::ScriptSpec;
use pogo::core::{DeviceSetup, ExperimentSpec, ObsConfig, Testbed};
use pogo::net::{FlushPolicy, LinkFate, Payload};
use pogo::sim::{Sim, SimDuration};
use pogo::{Error, ErrorCode};

/// A per-device counter script: freeze + log + publish in one atomic
/// script step, the contract the invariant harness relies on.
fn counter_script(period_ms: u64) -> String {
    format!(
        "var st = thaw();\n\
         var n = st == null ? 0 : st.n;\n\
         function tick() {{\n\
             n = n + 1;\n\
             freeze({{ n: n }});\n\
             publish('chaos-data', {{ n: n }});\n\
             logTo('chaos-sent', n);\n\
             setTimeout(tick, {period_ms});\n\
         }}\n\
         tick();\n"
    )
}

fn deploy_counter(tb: &Testbed, period_ms: u64) {
    let jids: Vec<_> = tb.devices().iter().map(|d| d.jid()).collect();
    tb.collector()
        .deployment(&ExperimentSpec {
            id: "chaos".into(),
            scripts: vec![ScriptSpec {
                name: "tick.js".into(),
                source: counter_script(period_ms),
            }],
        })
        .to(&jids)
        .send()
        .expect("counter script passes the lint gate");
}

/// Collects delivered sample counters per publish, in arrival order.
fn collect_delivered(tb: &Testbed) -> Rc<RefCell<Vec<i64>>> {
    let delivered = Rc::new(RefCell::new(Vec::new()));
    let sink = delivered.clone();
    tb.collector().attach_listener(
        pogo::core::ChannelFilter::exp("chaos").channel("chaos-data"),
        move |event| {
            let n = event
                .msg
                .get("n")
                .and_then(pogo::core::Msg::as_num)
                .unwrap_or(-1.0) as i64;
            sink.borrow_mut().push(n);
        },
    );
    delivered
}

#[test]
fn same_seed_soaks_produce_byte_identical_traces() {
    let cfg = SoakConfig {
        seed: 99,
        phones: 2,
        duration: SimDuration::from_hours(2),
        mean_fault_gap: SimDuration::from_mins(12),
        capture_trace: true,
        ..SoakConfig::default()
    };
    let first = run_soak(&cfg);
    let second = run_soak(&cfg);
    assert!(!first.trace_jsonl.is_empty());
    assert_eq!(
        first.trace_jsonl, second.trace_jsonl,
        "same seed must replay the exact same trace"
    );
    assert!(first.passed(), "{}", first.summary());

    // The sample-store exports are deterministic too: same seed, byte-
    // identical CSV and JSONL of the audited channels.
    assert!(
        first.store_csv.lines().count() > 1,
        "store export carries rows: {}",
        first.store_csv
    );
    assert_eq!(
        first.store_csv, second.store_csv,
        "same seed must export the exact same CSV"
    );
    assert_eq!(
        first.store_jsonl, second.store_jsonl,
        "same seed must export the exact same JSONL"
    );

    let other = run_soak(&SoakConfig {
        seed: 100,
        ..cfg.clone()
    });
    assert_ne!(
        first.trace_jsonl, other.trace_jsonl,
        "a different seed explores a different schedule"
    );
}

#[test]
fn store_and_forward_rides_out_outage_and_restart() {
    let sim = Sim::new();
    let mut tb = Testbed::new(&sim);
    tb.add(
        DeviceSetup::named("phone-0")
            .configure(|c| c.with_flush_policy(FlushPolicy::Interval(SimDuration::from_secs(30)))),
    );
    let delivered = collect_delivered(&tb);
    deploy_counter(&tb, 30_000);
    sim.run_for(SimDuration::from_mins(2));

    // Hard outage: sessions die, reconnects are refused for 90 s. The
    // script keeps publishing into the store the whole time.
    tb.server().set_down(true);
    sim.run_for(SimDuration::from_secs(90));
    tb.server().set_down(false);
    sim.run_for(SimDuration::from_mins(3));

    // Bounce the server again with no grace at all.
    tb.server().restart();
    sim.run_for(SimDuration::from_mins(5));

    let got = delivered.borrow();
    let max = *got.iter().max().expect("samples arrived");
    let mut sorted: Vec<i64> = got.clone();
    sorted.sort_unstable();
    assert_eq!(
        sorted,
        (1..=max).collect::<Vec<i64>>(),
        "every published sample arrives exactly once, in spite of the outage"
    );
    assert!(max >= 15, "publishing continued across the faults");
    assert!(tb.server().restarts() >= 1);
    assert_eq!(tb.devices()[0].buffered(), 0, "store fully drained");
}

#[test]
fn dedup_absorbs_duplicated_retransmits_when_acks_vanish() {
    let sim = Sim::new();
    let mut tb = Testbed::with_obs(&sim, ObsConfig::on());
    tb.add(DeviceSetup::named("phone-0").configure(|c| {
        c.with_flush_policy(FlushPolicy::Immediate)
            .with_retransmit_timeout(SimDuration::from_secs(30))
    }));
    let device = tb.devices()[0].clone();
    let delivered = collect_delivered(&tb);
    deploy_counter(&tb, 60_000);

    // Black-hole every ack crossing phone-0's link: data keeps flowing,
    // nothing is ever confirmed, so the sender retransmits over and over.
    tb.server().set_link_chaos(&device.jid(), |env| {
        if matches!(env.payload, Payload::Ack(_)) {
            LinkFate::Drop
        } else {
            LinkFate::Deliver
        }
    });
    sim.run_for(SimDuration::from_mins(10));

    let dedup_drops = tb
        .obs()
        .metrics()
        .counter_for(Some("collector@pogo"), "net.dedup_drops");
    assert!(
        dedup_drops > 0,
        "ack loss must actually force duplicate retransmits"
    );
    {
        let got = delivered.borrow();
        let mut sorted: Vec<i64> = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            got.len(),
            "dedup filter lets every sample through exactly once"
        );
    }

    // Heal the link: acks flow again and the store drains.
    tb.server().clear_link_chaos(&device.jid());
    sim.run_for(SimDuration::from_mins(3));
    assert_eq!(device.buffered(), 0, "store drains once acks return");
}

#[test]
fn chaos_failures_surface_stable_error_codes() {
    let sim = Sim::new();
    let tb = Testbed::new(&sim);
    tb.server().set_down(true);
    let jid = tb.collector().jid();
    let err = tb
        .server()
        .connect(&jid, SimDuration::from_millis(5))
        .expect_err("switchboard is down");
    let err: Error = err.into();
    assert_eq!(err.code(), ErrorCode::NetServerDown);
    assert_eq!(err.code().as_str(), "NET_SERVER_DOWN");
    let source = std::error::Error::source(&err).expect("chains to NetError");
    assert!(source.to_string().contains("down"));
}
