//! End-to-end integration test of the paper's localization application
//! (§4.1): scan.js → clustering.js on a simulated phone, collect.js on
//! the collector, with the geolocation service — plus the differential
//! check that the PogoScript clustering matches the native
//! implementation scan-for-scan.

use std::cell::RefCell;

use pogo::cluster::{match_clusters, MatchParams, StreamConfig};
use pogo::core::sensor::SensorSources;
use pogo::core::Testbed;
use pogo::glue;
use pogo::mobility::{GeolocationService, MovementTrace, ScanSynthesizer, Whereabouts, World};
use pogo::net::FlushPolicy;
use pogo::sim::{Sim, SimDuration, SimRng};

const MIN: u64 = 60_000;
const HOUR: u64 = 3_600_000;

/// A day in the life: home, commute, office, commute, home, late walk.
fn day_trace(home_end: u64) -> MovementTrace {
    let mut t = MovementTrace::new(14 * HOUR);
    t.push(0, Whereabouts::At(pogo::mobility::PlaceId(0)));
    t.push(4 * HOUR, Whereabouts::Transit);
    t.push(
        4 * HOUR + 20 * MIN,
        Whereabouts::At(pogo::mobility::PlaceId(1)),
    );
    t.push(9 * HOUR, Whereabouts::Transit);
    t.push(
        9 * HOUR + 20 * MIN,
        Whereabouts::At(pogo::mobility::PlaceId(0)),
    );
    t.push(home_end, Whereabouts::Transit); // long final walk closes the cluster
    t
}

struct Setup {
    sim: Sim,
    testbed: Testbed,
    world: World,
}

fn launch() -> Setup {
    let sim = Sim::new();
    let mut rng = SimRng::seed_from_u64(2024);
    // A realistic street-AP population: transit scans rarely repeat an
    // AP within the clustering window, so walking does not form places.
    let mut world = World::new(600, &mut rng);
    world.add_place("home", 8, &mut rng);
    world.add_place("office", 12, &mut rng);

    let mut testbed = Testbed::new(&sim);
    let trace = day_trace(13 * HOUR);
    let world2 = world.clone();
    let synth = RefCell::new(ScanSynthesizer::new(rng.fork(7)));
    let sources = SensorSources {
        wifi_scan: Some(Box::new(move |t_ms| {
            let w = trace.whereabouts(t_ms);
            synth
                .borrow_mut()
                .scan(&world2, w, t_ms)
                .map(|raw| glue::readings_from_raw(&raw))
        })),
        ..SensorSources::default()
    };
    testbed.add(
        pogo::core::DeviceSetup::named("phone-1")
            .configure(|cfg| cfg.with_flush_policy(FlushPolicy::Immediate))
            .sensors(sources),
    );
    Setup {
        sim,
        testbed,
        world,
    }
}

fn deploy_localization(setup: &Setup) {
    let service = GeolocationService::new(setup.world.clone());
    setup
        .testbed
        .collector()
        .install_collector_script("loc", "collect.js", glue::COLLECT_JS, |host| {
            glue::register_geolocate(host, service);
        })
        .expect("collect.js loads");
    let jids: Vec<_> = setup.testbed.devices().iter().map(|d| d.jid()).collect();
    setup
        .testbed
        .collector()
        .deployment(&glue::localization_experiment("loc"))
        .to(&jids)
        .send()
        .expect("scripts pass pre-deployment analysis");
}

#[test]
fn localization_pipeline_finds_home_and_office() {
    let setup = launch();
    deploy_localization(&setup);
    setup.sim.run_for(SimDuration::from_hours(15));

    // The collector's places log has the dwelling sessions. Brief street
    // coincidences can add tiny clusters; real dwells are long.
    let lines = setup.testbed.collector().logs().lines("places");
    let all_places = glue::places_from_log(&lines);
    let places: Vec<_> = all_places
        .iter()
        .filter(|(_, s, _)| s.samples >= 15)
        .collect();
    assert_eq!(places.len(), 3, "home, office, home again: {lines:?}");
    for (user, _summary, located) in &places {
        assert_eq!(user, "phone-1@pogo");
        assert!(located, "geolocation service annotated the place");
    }
    // Entry/exit shape: first home session covers the first four hours.
    let first = &places[0].1;
    assert!(first.entry_ms < 10 * MIN);
    assert!((first.exit_ms as i64 - 4 * HOUR as i64).unsigned_abs() < 5 * MIN);
    // Office session is the second one.
    let office = &places[1].1;
    assert!(office.entry_ms >= 4 * HOUR);
    assert!(office.exit_ms <= 9 * HOUR + 5 * MIN);

    // Geolocation put home and office at their true coordinates.
    let home_place = setup.world.place(pogo::mobility::PlaceId(0));
    let lines = &lines[0];
    assert!(lines.contains("lat"), "annotated: {lines}");
    let msg = pogo::core::Msg::from_json(lines).unwrap();
    let lat = msg.get("lat").and_then(pogo::core::Msg::as_num).unwrap();
    assert!((lat - home_place.lat).abs() < 0.01, "home at home");
}

#[test]
fn script_clustering_matches_native_ground_truth_exactly() {
    let setup = launch();
    deploy_localization(&setup);
    setup.sim.run_for(SimDuration::from_hours(15));

    // §5.3's methodology: recompute clusters offline from the raw SD-card
    // log with the native implementation.
    let raw_lines = setup.testbed.devices()[0].logs().lines("raw-scans");
    assert!(
        raw_lines.len() > 700,
        "one scan per minute for ~14h: {}",
        raw_lines.len()
    );
    let truth = glue::ground_truth_from_log(&raw_lines, StreamConfig::default());

    let collected: Vec<_> =
        glue::places_from_log(&setup.testbed.collector().logs().lines("places"))
            .into_iter()
            .map(|(_, s, _)| s)
            .collect();

    // With no disruptions the device-side script and the native offline
    // run must agree 100% — the Table 4 baseline.
    assert_eq!(collected.len(), truth.len(), "same cluster count");
    for (a, b) in truth.iter().zip(&collected) {
        assert_eq!(a.entry_ms, b.entry_ms, "entry timestamps in lock-step");
        assert_eq!(a.exit_ms, b.exit_ms, "exit timestamps in lock-step");
        assert_eq!(a.samples, b.samples, "member counts in lock-step");
    }
    let report = match_clusters(&truth, &collected, MatchParams::default());
    assert_eq!(report.match_pct(), 100.0);
    assert_eq!(report.partial_pct(), 100.0);
}

#[test]
fn data_reduction_is_dramatic() {
    // §5.3: "we reduced the total amount of data transferred by 98.3% by
    // making use of on-line clustering as opposed to sending all data
    // back to the collector node."
    let setup = launch();
    deploy_localization(&setup);
    setup.sim.run_for(SimDuration::from_hours(15));

    let raw_bytes: usize = setup.testbed.devices()[0]
        .logs()
        .lines("raw-scans")
        .iter()
        .map(String::len)
        .sum();
    let location_bytes: usize = setup
        .testbed
        .collector()
        .logs()
        .lines("places")
        .iter()
        .map(String::len)
        .sum();
    assert!(
        raw_bytes > 100_000,
        "raw corpus is substantial: {raw_bytes}"
    );
    let reduction = 100.0 * (1.0 - location_bytes as f64 / raw_bytes as f64);
    assert!(
        reduction > 95.0,
        "on-line clustering reduces transfer: {reduction:.1}% (raw {raw_bytes}, locations {location_bytes})"
    );
}
