//! Integration tests for the observability layer (`pogo-obs`) and the
//! builder-style testbed API it rides on: zero-overhead off mode,
//! deterministic traces, category filtering, and the unified log stream
//! (script logs and `pogo-lint` warnings in one trace).

use pogo::core::proto::ScriptSpec;
use pogo::core::sensor::{AccelSample, SensorSources};
use pogo::core::{DeviceSetup, ExperimentSpec, LintPolicy, ObsConfig, Testbed};
use pogo::net::FlushPolicy;
use pogo::obs::export;
use pogo::sim::{Sim, SimDuration, SimRng};
use std::cell::RefCell;

const ACCEL_LOGGER_JS: &str = r#"
    setDescription('Accelerometer logger');
    subscribe('accelerometer', function (m) {
        log('magnitude ' + m.magnitude);
        publish('magnitudes', { m: m.magnitude });
    }, { interval: 60 * 1000 });
"#;

/// A seeded workload: one device with a jittery accelerometer, the
/// logger script above, 30 simulated minutes.
fn run_workload(seed: u64, obs_config: ObsConfig) -> Testbed {
    let sim = Sim::new();
    let mut testbed = Testbed::with_obs(&sim, obs_config);
    let rng = RefCell::new(SimRng::seed_from_u64(seed));
    let sources = SensorSources {
        accelerometer: Some(Box::new(move |_t_ms| {
            let jitter = rng.borrow_mut().range_f64(0.0, 1.0);
            Some(AccelSample {
                x: 0.1 * jitter,
                y: 0.0,
                z: 9.81,
            })
        })),
        ..SensorSources::default()
    };
    let (device, _phone) = testbed.add(
        DeviceSetup::named("phone-1")
            .configure(|cfg| cfg.with_flush_policy(FlushPolicy::Immediate))
            .sensors(sources),
    );
    testbed.collector().attach_listener(
        pogo::core::ChannelFilter::exp("accel").channel("magnitudes"),
        |_event| {},
    );
    testbed
        .collector()
        .deployment(&ExperimentSpec {
            id: "accel".into(),
            scripts: vec![ScriptSpec {
                name: "logger.js".into(),
                source: ACCEL_LOGGER_JS.into(),
            }],
        })
        .to(&[device.jid()])
        .send()
        .expect("scripts pass pre-deployment analysis");
    sim.run_for(SimDuration::from_mins(30));
    testbed
}

#[test]
fn off_config_records_nothing() {
    let testbed = run_workload(1, ObsConfig::off());
    let obs = testbed.obs();
    assert!(!obs.is_enabled());
    assert!(obs.events().is_empty());
    assert!(obs.metrics().snapshot().is_empty());
    assert!(!testbed.devices()[0].obs().is_enabled());
    // ... while the workload itself ran normally.
    assert!(testbed.devices()[0].flushes() > 0);
}

#[test]
fn same_seed_gives_byte_identical_jsonl() {
    let a = export::to_jsonl(&run_workload(7, ObsConfig::on()).obs().events());
    let b = export::to_jsonl(&run_workload(7, ObsConfig::on()).obs().events());
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must serialize to identical bytes");

    let c = export::to_jsonl(&run_workload(8, ObsConfig::on()).obs().events());
    assert_ne!(a, c, "the seed reaches the trace via the logged jitter");
}

#[test]
fn trace_is_one_ordered_stream_across_nodes() {
    let testbed = run_workload(3, ObsConfig::on());
    let events = testbed.obs().events();
    // Device and collector events interleave in one trace...
    assert!(events
        .iter()
        .any(|e| e.device.as_deref() == Some("phone-1@pogo")));
    assert!(events
        .iter()
        .any(|e| e.device.as_deref() == Some("collector@pogo")));
    // ...in non-decreasing time order.
    assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    // Script `log()` lines ride the same stream as middleware events.
    assert!(events
        .iter()
        .any(|e| e.category.as_ref() == "log" && e.name.as_ref() == "logger.js"));
    let metrics = testbed.obs().metrics();
    assert!(metrics.counter_for(Some("phone-1@pogo"), "log.lines") > 0);
    assert!(metrics.counter_for(Some("phone-1@pogo"), "broker.published") > 0);
}

#[test]
fn lint_warnings_share_the_log_stream() {
    let sim = Sim::new();
    let mut testbed = Testbed::with_obs(&sim, ObsConfig::on());
    let (device, _phone) = testbed.add(DeviceSetup::named("phone-1"));
    testbed
        .collector()
        .deployment(&ExperimentSpec {
            id: "exp".into(),
            scripts: vec![ScriptSpec {
                name: "broken.js".into(),
                source: "publish('ch', missing_variable);".into(),
            }],
        })
        .to(&[device.jid()])
        .lint(LintPolicy::WarnOnly)
        .send()
        .expect("WarnOnly never blocks");
    sim.run_for(SimDuration::from_mins(1));

    // The analyzer finding is in the collector's LogStore...
    let lint_log = testbed.collector().logs().lines("pogo-lint").join("\n");
    assert!(lint_log.contains("broken.js"), "{lint_log:?}");
    // ...and, because the store is wired to obs, in the trace too.
    assert!(testbed.obs().events().iter().any(|e| {
        e.category.as_ref() == "log"
            && e.name.as_ref() == "pogo-lint"
            && e.device.as_deref() == Some("collector@pogo")
    }));
}

#[test]
fn lint_skip_runs_no_analysis() {
    let sim = Sim::new();
    let mut testbed = Testbed::with_obs(&sim, ObsConfig::on());
    let (device, _phone) = testbed.add(DeviceSetup::named("phone-1"));
    testbed
        .collector()
        .deployment(&ExperimentSpec {
            id: "exp".into(),
            scripts: vec![ScriptSpec {
                name: "broken.js".into(),
                source: "publish('ch', missing_variable);".into(),
            }],
        })
        .to(&[device.jid()])
        .lint(LintPolicy::Skip)
        .send()
        .expect("Skip never blocks");
    sim.run_for(SimDuration::from_mins(1));
    assert!(device.context("exp").is_some(), "deployed unchecked");
    assert!(testbed.collector().logs().lines("pogo-lint").is_empty());
}

#[test]
fn category_allowlist_filters_events_not_metrics() {
    let sim = Sim::new();
    let mut testbed = Testbed::with_obs(&sim, ObsConfig::on().only_categories(["pogo"]));
    let (device, _phone) = testbed.add(DeviceSetup::named("phone-1"));
    testbed
        .collector()
        .deployment(&ExperimentSpec {
            id: "exp".into(),
            scripts: vec![],
        })
        .to(&[device.jid()])
        .send()
        .expect("empty experiment lints clean");
    sim.run_for(SimDuration::from_mins(30));

    let events = testbed.obs().events();
    assert!(!events.is_empty());
    assert!(events.iter().all(|e| e.category.as_ref() == "pogo"));
    // Metrics are unaffected by the event allowlist: the device
    // received at least the experiment push.
    assert!(
        testbed
            .obs()
            .metrics()
            .counter_for(Some("phone-1@pogo"), "net.messages_received")
            > 0
    );
}
