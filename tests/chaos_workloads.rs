//! The real workloads under the chaos harness: miniature soaks of the
//! localization pipeline, RogueFinder, and the Table 4 cohort replay.
//! The full-size runs live in the `chaos_soak` binary (CI runs the
//! table4 one with `--check`).

use pogo::chaos::{run_workload_soak, SoakConfig};
use pogo::chaos_workloads::{LocalizationWorkload, RogueFinderWorkload, Table4ChaosWorkload};
use pogo::sim::SimDuration;

fn small(seed: u64, phones: usize, hours: u64) -> SoakConfig {
    SoakConfig {
        seed,
        phones,
        duration: SimDuration::from_hours(hours),
        mean_fault_gap: SimDuration::from_mins(15),
        capture_trace: false,
        ..SoakConfig::default()
    }
}

#[test]
fn localization_soak_holds_the_invariants() {
    let report = run_workload_soak(&small(21, 3, 5), &LocalizationWorkload);
    assert_eq!(report.workload, "localization");
    assert!(report.faults_injected >= 8, "{}", report.summary());
    assert!(report.passed(), "{}", report.summary());
    assert!(
        report.delivered_distinct >= 10,
        "clusters flowed: {}",
        report.summary()
    );
}

#[test]
fn roguefinder_soak_holds_the_invariants() {
    let report = run_workload_soak(&small(22, 2, 5), &RogueFinderWorkload);
    assert_eq!(report.workload, "roguefinder");
    assert!(report.faults_injected >= 8, "{}", report.summary());
    assert!(report.passed(), "{}", report.summary());
    assert!(
        report.delivered_distinct >= 10,
        "geofenced scans flowed: {}",
        report.summary()
    );
}

#[test]
fn table4_soak_holds_the_invariants() {
    let cfg = SoakConfig {
        seed: 23,
        duration: SimDuration::ZERO, // workload supplies its own length
        mean_fault_gap: SimDuration::from_mins(45),
        max_msg_age: SimDuration::from_hours(24),
        capture_trace: false,
        ..SoakConfig::default()
    };
    let report = run_workload_soak(&cfg, &Table4ChaosWorkload::new(2));
    assert_eq!(report.workload, "table4");
    assert!(report.faults_injected >= 20, "{}", report.summary());
    assert!(report.classes() >= 3, "{}", report.summary());
    assert!(report.passed(), "{}", report.summary());
    assert!(report.delivered_distinct > 0, "{}", report.summary());
}
