//! Watchdog attribution across engines (§4.5).
//!
//! The instruction budget is the deterministic analogue of the paper's
//! 100 ms callback watchdog. These tests pin the *granularity* rule:
//! a single long-running native operation — one string concatenation
//! or one `join` that renders megabytes — is billed by its output
//! size, so a script cannot hide unbounded work behind a handful of
//! budget steps. Both engines must kill such a script with the same
//! error kind and the same stable `SCRIPT_ERROR` code the middleware
//! reports upstream.

use pogo::script::{Engine, ErrorKind, Interpreter};
use pogo::{Error, ErrorCode};

const BUDGET: u64 = 10_000;

/// ~16 iterations of doubling: a few hundred budget *steps*, but the
/// final concatenations each produce tens of kilobytes — far past the
/// budget once output bytes are attributed.
const DOUBLING_SOURCE: &str = "\
var s = 'x';
for (var i = 0; i < 16; i++) {
    s = s + s;
}
s.length;";

/// Builds a small array whose elements stringify large, then `join`s:
/// the element-count charge alone (8) would never trip the watchdog.
const JOIN_SOURCE: &str = "\
var chunk = 'y';
for (var i = 0; i < 11; i++) {
    chunk = chunk + chunk;
}
var parts = [];
for (var j = 0; j < 8; j++) {
    parts.push(chunk);
}
parts.join('-').length;";

fn run_budgeted(
    engine: Engine,
    source: &str,
    budget: u64,
) -> Result<(), pogo::script::ScriptError> {
    let mut interp = Interpreter::with_engine(engine);
    interp.set_budget(Some(budget));
    interp.eval(source).map(|_| ())
}

#[test]
fn long_native_work_is_attributed_to_the_budget_under_both_engines() {
    for source in [DOUBLING_SOURCE, JOIN_SOURCE] {
        for engine in [Engine::Bytecode, Engine::TreeWalk] {
            let err = run_budgeted(engine, source, BUDGET)
                .expect_err("budget-exceeding script must be killed");
            assert_eq!(
                err.kind(),
                ErrorKind::Timeout,
                "{engine:?}: expected the watchdog, got: {err}"
            );
            assert_eq!(
                Error::from(err).code(),
                ErrorCode::ScriptError,
                "{engine:?}: the middleware-facing code must stay SCRIPT_ERROR"
            );
        }
        // The same work fits comfortably once the budget covers the
        // produced bytes — the kill above is attribution, not a
        // blanket ban on string work.
        for engine in [Engine::Bytecode, Engine::TreeWalk] {
            run_budgeted(engine, source, 10_000_000)
                .unwrap_or_else(|e| panic!("{engine:?}: generous budget still trips: {e}"));
        }
    }
}

#[test]
fn watchdog_code_is_the_stable_script_error_string() {
    assert_eq!(ErrorCode::ScriptError.as_str(), "SCRIPT_ERROR");
}
