//! §3.1's organization in one integration test: multiple researchers
//! sharing one device pool through the administrator's matchmaking
//! (the §6 future-work automation), with experiments staying sandboxed
//! and each researcher only ever talking to their granted devices.

use std::cell::RefCell;
use std::rc::Rc;

use pogo::core::assignment::{Admin, DeviceProfile, DeviceRequest};
use pogo::core::proto::ScriptSpec;
use pogo::core::sensor::{SensorSources, WifiReading};
use pogo::core::{CollectorNode, DeviceConfig, DeviceNode, ExperimentSpec};
use pogo::net::{FlushPolicy, Jid, Switchboard};
use pogo::platform::{Phone, PhoneConfig};
use pogo::sim::{Sim, SimDuration};

fn sources() -> SensorSources {
    SensorSources {
        wifi_scan: Some(Box::new(|_t| {
            Some(vec![WifiReading {
                bssid: "00:10:00:00:00:01".into(),
                rssi_dbm: -60.0,
            }])
        })),
        ..SensorSources::default()
    }
}

fn spawn_device(sim: &Sim, server: &Switchboard, jid: &Jid) -> DeviceNode {
    let phone = Phone::new(sim, PhoneConfig::default());
    let mut cfg = DeviceConfig::new(jid.clone());
    cfg.flush_policy = FlushPolicy::Immediate;
    let node = DeviceNode::new(&phone, server, cfg, sources());
    node.boot();
    node
}

#[test]
fn two_researchers_share_a_pool_without_crosstalk() {
    let sim = Sim::new();
    let server = Switchboard::new(&sim);
    let admin = Admin::new(&server);

    // Six volunteers join the pool; half also share location.
    let mut devices = Vec::new();
    for i in 0..6 {
        let jid = Jid::new(&format!("d{i}@pogo")).unwrap();
        let mut profile = DeviceProfile::new(jid.clone(), ["battery", "wifi-scan"]);
        if i % 2 == 0 {
            profile.sensors.insert("location".to_owned());
        }
        admin.register_device(profile);
        devices.push(spawn_device(&sim, &server, &jid));
    }

    // Two researchers request devices through the admin.
    let alice_jid = Jid::new("alice@tudelft").unwrap();
    let bob_jid = Jid::new("bob@tudelft").unwrap();
    let alice_devices = admin
        .assign(
            &alice_jid,
            &DeviceRequest {
                count: 3,
                required_sensors: vec!["location".into()],
                region: None,
            },
        )
        .expect("three location-capable devices exist");
    let bob_devices = admin
        .assign(
            &bob_jid,
            &DeviceRequest {
                count: 6,
                required_sensors: vec!["wifi-scan".into()],
                region: None,
            },
        )
        .expect("every device scans Wi-Fi; sharing is allowed");

    let alice = CollectorNode::new(&sim, &server, &alice_jid);
    let bob = CollectorNode::new(&sim, &server, &bob_jid);

    // Each runs their own experiment on their own grant.
    let alice_seen: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    let a = alice_seen.clone();
    alice.attach_listener(
        pogo::core::ChannelFilter::exp("alice-exp").channel("pings"),
        move |event| {
            a.borrow_mut().push(event.device.to_owned());
        },
    );
    alice
        .deployment(&ExperimentSpec {
            id: "alice-exp".into(),
            scripts: vec![ScriptSpec {
                name: "ping.js".into(),
                source: "publish('pings', { who: 'alice' });".into(),
            }],
        })
        .to(&alice_devices)
        .send()
        .expect("scripts pass pre-deployment analysis");

    let bob_seen: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    let b = bob_seen.clone();
    bob.attach_listener(
        pogo::core::ChannelFilter::exp("bob-exp").channel("pings"),
        move |event| {
            b.borrow_mut().push(event.device.to_owned());
        },
    );
    bob.deployment(&ExperimentSpec {
        id: "bob-exp".into(),
        scripts: vec![ScriptSpec {
            name: "ping.js".into(),
            source: "publish('pings', { who: 'bob' });".into(),
        }],
    })
    .to(&bob_devices)
    .send()
    .expect("scripts pass pre-deployment analysis");

    sim.run_for(SimDuration::from_mins(5));

    // Alice hears exactly her three; Bob hears all six; the shared
    // devices run both experiments concurrently in separate contexts.
    assert_eq!(alice_seen.borrow().len(), 3, "{:?}", alice_seen.borrow());
    assert_eq!(bob_seen.borrow().len(), 6, "{:?}", bob_seen.borrow());
    let shared = &devices[0];
    assert!(shared.context("alice-exp").is_some());
    assert!(shared.context("bob-exp").is_some());

    // Device-to-device communication is impossible: devices are never
    // each other's roster buddies.
    assert!(!server.roster(&devices[0].jid()).contains(&devices[1].jid()));
}

#[test]
fn released_devices_stop_accepting_researcher_traffic() {
    let sim = Sim::new();
    let server = Switchboard::new(&sim);
    let admin = Admin::new(&server);
    let jid = Jid::new("d0@pogo").unwrap();
    admin.register_device(DeviceProfile::new(jid.clone(), ["battery"]));
    let _device = spawn_device(&sim, &server, &jid);

    let researcher = Jid::new("eve@lab").unwrap();
    let granted = admin
        .assign(
            &researcher,
            &DeviceRequest {
                count: 1,
                ..Default::default()
            },
        )
        .unwrap();
    let collector = CollectorNode::new(&sim, &server, &researcher);
    collector
        .deployment(&ExperimentSpec {
            id: "exp".into(),
            scripts: vec![],
        })
        .to(&granted)
        .send()
        .expect("scripts pass pre-deployment analysis");
    sim.run_for(SimDuration::from_mins(1));

    // The assignment ends; the roster association is revoked.
    admin.release(&researcher, &granted);
    // Further deployments are refused by the switchboard's authorization
    // (the control messages queue but never authorize through).
    collector
        .deployment(&ExperimentSpec {
            id: "exp2".into(),
            scripts: vec![ScriptSpec {
                name: "late.js".into(),
                source: "publish('x', 1);".into(),
            }],
        })
        .to(&granted)
        .send()
        .expect("scripts pass pre-deployment analysis");
    sim.run_for(SimDuration::from_mins(2));
    let device = _device;
    assert!(
        device.context("exp2").is_none(),
        "post-release deployment never reaches the device"
    );
}
