//! Offline placeholder for `proptest`.
//!
//! The build environment has no crates.io access, so the workspace
//! resolves `proptest` here. The proptest-based test files are gated
//! behind each crate's `heavy-tests` feature and therefore never compile
//! against this placeholder; enabling `heavy-tests` requires restoring
//! the real dependency (remove the `vendor/proptest` path override in the
//! workspace `Cargo.toml` on a machine with network access).
//!
//! Default-on randomized property tests live next to the gated files and
//! use `pogo_sim::SimRng` instead — see e.g.
//! `crates/core/tests/broker_equivalence.rs`.
