//! Offline mini-criterion.
//!
//! The build environment has no crates.io access, so the workspace
//! resolves `criterion` to this path crate. It implements the small API
//! surface the `micro` bench target uses — `Criterion::bench_function`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple median-of-batches timer
//! instead of criterion's full statistics. Good enough to eyeball hot
//! paths; the committed perf trajectory uses `perf_smoke` instead.

use std::hint;
use std::time::Instant;

/// Opaque value barrier, forwarding to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`, storing a median-of-batches nanoseconds-per-iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and size the batch so one batch is ~1 ms.
        let start = Instant::now();
        let mut warmup_iters = 0u64;
        while start.elapsed().as_millis() < 20 {
            black_box(f());
            warmup_iters += 1;
        }
        let per = start.elapsed().as_nanos() as f64 / warmup_iters.max(1) as f64;
        let batch = ((1_000_000.0 / per.max(1.0)) as u64).clamp(1, 1_000_000);
        let mut samples = Vec::with_capacity(15);
        for _ in 0..15 {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// Benchmark registry/runner, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Sample-count knob — accepted and ignored (fixed batches here).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Runs one named benchmark and prints its median time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        println!("{name:<40} {:>12.1} ns/iter", b.ns_per_iter);
        self
    }
}

/// Declares a benchmark group; supports both the plain and the
/// `name/config/targets` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
