//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `rand` to this path crate. It reimplements exactly the API
//! subset the repository uses — `SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen::<u64>/<f64>` and `Rng::gen_range` over integer ranges —
//! **bit-compatibly** with rand 0.8.5 on 64-bit platforms:
//!
//! * `SmallRng` is xoshiro256++ (as in rand 0.8 on 64-bit targets);
//! * `seed_from_u64` expands the seed with rand_core 0.6's PCG32 stream;
//! * `gen::<f64>()` takes the top 53 bits scaled by 2⁻⁵³;
//! * `gen_range` uses the widening-multiply rejection zone of
//!   `UniformInt::sample_single{,_inclusive}`.
//!
//! Seeded simulation streams therefore reproduce the same workloads as
//! they would with the real dependency.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with the PCG32
    /// stream rand_core 0.6 uses (bit-identical).
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let state = *state;
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let p = pcg32(&mut state);
            chunk.copy_from_slice(&p[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A value samplable from the uniform "standard" distribution.
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // rand 0.8 `Standard` for f64: top 53 bits, scaled by 2^-53.
        let scale = 1.0 / ((1u64 << 53) as f64);
        scale * (rng.next_u64() >> 11) as f64
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn wmul(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

/// rand 0.8 `UniformInt::<u64>::sample_single` (half-open).
#[inline]
fn sample_single_u64<R: RngCore + ?Sized>(low: u64, high: u64, rng: &mut R) -> u64 {
    assert!(low < high, "cannot sample empty range");
    let range = high.wrapping_sub(low);
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let (hi, lo) = wmul(v, range);
        if lo <= zone {
            return low.wrapping_add(hi);
        }
    }
}

/// rand 0.8 `UniformInt::<u64>::sample_single_inclusive`.
#[inline]
fn sample_single_inclusive_u64<R: RngCore + ?Sized>(low: u64, high: u64, rng: &mut R) -> u64 {
    assert!(low <= high, "cannot sample empty range");
    let range = high.wrapping_sub(low).wrapping_add(1);
    if range == 0 {
        // The full u64 span.
        return rng.next_u64();
    }
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let (hi, lo) = wmul(v, range);
        if lo <= zone {
            return low.wrapping_add(hi);
        }
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        sample_single_u64(self.start, self.end, rng)
    }
}

impl SampleRange<u64> for RangeInclusive<u64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        sample_single_inclusive_u64(*self.start(), *self.end(), rng)
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        sample_single_u64(self.start as u64, self.end as u64, rng) as usize
    }
}

impl SampleRange<usize> for RangeInclusive<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        sample_single_inclusive_u64(*self.start() as u64, *self.end() as u64, rng) as usize
    }
}

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample of a [`StandardSample`] type.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample within a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator namespaces, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — what rand 0.8's `SmallRng` is on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // All-zero state is a fixed point of xoshiro; rand remaps it.
                return Self::seed_from_u64(0);
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn known_xoshiro_vector() {
        // xoshiro256++ reference: state {1,2,3,4} produces these first
        // outputs (from the reference implementation).
        let mut rng = SmallRng::from_seed({
            let mut seed = [0u8; 32];
            seed[0] = 1;
            seed[8] = 2;
            seed[16] = 3;
            seed[24] = 4;
            seed
        });
        let first: Vec<u64> = (0..4).map(|_| rng.gen::<u64>()).collect();
        assert_eq!(
            first,
            vec![41943041, 58720359, 3588806011781223, 3591011842654386]
        );
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let (x, y, z) = (a.gen::<u64>(), b.gen::<u64>(), c.gen::<u64>());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }
}
