//! The paper's flagship application (§4.1, Figure 1): Wi-Fi place
//! clustering. A simulated commuter carries a phone for two days;
//! `scan.js` sanitizes access-point scans, `clustering.js` runs the
//! sliding-window DBSCAN on the device, and `collect.js` geo-annotates
//! the dwelling sessions at the collector.
//!
//! Run with: `cargo run --example localization`

use std::cell::RefCell;

use pogo::core::sensor::SensorSources;
use pogo::core::Testbed;
use pogo::glue;
use pogo::mobility::{Archetype, GeolocationService, ScanSynthesizer, UserSpec, World};
use pogo::sim::{Sim, SimDuration, SimRng};

fn main() {
    let sim = Sim::new();
    let mut rng = SimRng::seed_from_u64(7);
    let mut world = World::new(600, &mut rng);

    // A regular commuter, two days.
    let mut spec = UserSpec::new("commuter", Archetype::Regular, 1);
    spec.end_day = 2;
    let scenario = spec.build(&mut world, &mut rng);

    let mut testbed = Testbed::new(&sim);
    let trace = scenario.trace.clone();
    let world2 = world.clone();
    let synth = RefCell::new(ScanSynthesizer::new(rng.fork(99)));
    let sources = SensorSources {
        wifi_scan: Some(Box::new(move |t_ms| {
            let w = trace.whereabouts(t_ms);
            synth
                .borrow_mut()
                .scan(&world2, w, t_ms)
                .map(|raw| glue::readings_from_raw(&raw))
        })),
        ..SensorSources::default()
    };
    let (device, _phone) = testbed.add(pogo::core::DeviceSetup::named("commuter").sensors(sources));

    // Collector side: collect.js with the geolocation service.
    let service = GeolocationService::new(world.clone());
    testbed
        .collector()
        .install_collector_script("loc", "collect.js", glue::COLLECT_JS, |host| {
            glue::register_geolocate(host, service);
        })
        .expect("collect.js loads");

    // Deploy scan.js + clustering.js to the device.
    testbed
        .collector()
        .deployment(&glue::localization_experiment("loc"))
        .to(&[device.jid()])
        .send()
        .expect("scripts pass pre-deployment analysis");

    println!("running 2 simulated days of commuting ...");
    sim.run_for(SimDuration::from_hours(49));

    // The places database collect.js built:
    let lines = testbed.collector().logs().lines("places");
    println!("\ndiscovered {} dwelling sessions:", lines.len());
    for line in &lines {
        let msg = pogo::core::Msg::from_json(line).expect("collect.js writes JSON");
        let fmt_h = |k: &str| {
            msg.get(k)
                .and_then(pogo::core::Msg::as_num)
                .map(|ms| format!("{:5.1}h", ms / 3_600_000.0))
                .unwrap_or_default()
        };
        println!(
            "  {} -> {}  at ({:.4}, {:.4})  [{} scans]",
            fmt_h("entry"),
            fmt_h("exit"),
            msg.get("lat")
                .and_then(pogo::core::Msg::as_num)
                .unwrap_or(0.0),
            msg.get("lon")
                .and_then(pogo::core::Msg::as_num)
                .unwrap_or(0.0),
            msg.get("n")
                .and_then(pogo::core::Msg::as_num)
                .unwrap_or(0.0),
        );
    }

    // §5.3's headline: on-line clustering slashes what crosses the radio.
    let raw: usize = device
        .logs()
        .lines("raw-scans")
        .iter()
        .map(String::len)
        .sum();
    let loc: usize = lines.iter().map(String::len).sum();
    println!(
        "\nraw scan data: {raw} B; transferred locations: {loc} B; reduction {:.1}%",
        100.0 * (1.0 - loc as f64 / raw as f64)
    );
}
