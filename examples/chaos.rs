//! Breaking the testbed on purpose: a scripted `pogo-chaos` scenario.
//!
//! Two phones run a counting script while an exact, hand-written
//! [`FaultPlan`] bounces the switchboard, degrades a link, reboots a
//! phone, storms the bearer with Wifi↔Cellular handovers, kills a
//! battery, skews a device clock, and churns the roster. The
//! [`InvariantHarness`] then proves the §4.6 reliability contract held:
//! every published sample arrived exactly once, nothing phantom showed
//! up, and the frozen counters never regressed. Seeded plans
//! (`FaultPlan::seeded`) explore whole schedule families — that is what
//! the `chaos_soak` CI gate runs; see DESIGN.md §11.
//!
//! Run with: `cargo run --example chaos`

use pogo::chaos::{ChaosController, Fault, FaultKind, FaultPlan, InvariantHarness};
use pogo::core::proto::ScriptSpec;
use pogo::core::{DeviceSetup, ExperimentSpec, Testbed};
use pogo::net::FlushPolicy;
use pogo::sim::{DeviceId, Sim, SimDuration, SimTime};

fn main() {
    let sim = Sim::new();
    let mut testbed = Testbed::new(&sim);
    for i in 0..2 {
        testbed.add(
            DeviceSetup::named(&format!("phone-{i}")).configure(|c| {
                c.with_flush_policy(FlushPolicy::Interval(SimDuration::from_secs(60)))
            }),
        );
    }

    // Install the harness before deploying, so the collector's
    // subscription is mirrored to the devices from the very first tick.
    let harness = InvariantHarness::install(&testbed, "chaos", "chaos-data");

    // The counter is frozen and logged in the same atomic script step as
    // the publish — reboots can interleave between ticks, never inside
    // one, which is what makes the invariants checkable at all.
    let jids: Vec<_> = testbed.devices().iter().map(|d| d.jid()).collect();
    testbed
        .collector()
        .deployment(&ExperimentSpec {
            id: "chaos".into(),
            scripts: vec![ScriptSpec {
                name: "tick.js".into(),
                source: r#"
                    var st = thaw();
                    var n = st == null ? 0 : st.n;
                    function tick() {
                        n = n + 1;
                        freeze({ n: n });
                        publish('chaos-data', { n: n });
                        logTo('chaos-sent', n);
                        setTimeout(tick, 30 * 1000);
                    }
                    tick();
                "#
                .into(),
            }],
        })
        .to(&jids)
        .send()
        .expect("tick script passes pre-deployment analysis");

    // An afternoon of scripted disasters. Every fault heals itself; the
    // controller refcounts overlapping windows.
    let at = |mins: u64| SimTime::ZERO + SimDuration::from_mins(mins);
    let plan = FaultPlan::scripted(vec![
        Fault {
            at: at(10),
            kind: FaultKind::ServerRestart,
        },
        Fault {
            at: at(20),
            kind: FaultKind::LinkDegrade {
                device: DeviceId::new(0),
                loss: 0.4,
                jitter: SimDuration::from_millis(250),
                duration: SimDuration::from_mins(8),
            },
        },
        Fault {
            at: at(30),
            // 20 handovers in 200 s: every switch drops the session's
            // in-flight envelopes, hammering reconnect and tail-sync.
            kind: FaultKind::BearerFlap {
                device: DeviceId::new(0),
                flaps: 20,
                period: SimDuration::from_secs(10),
            },
        },
        Fault {
            at: at(35),
            kind: FaultKind::Reboot {
                device: DeviceId::new(1),
            },
        },
        Fault {
            at: at(42),
            // Device 1's clock jumps a minute ahead and gains 1% until
            // an NITZ-style fix snaps it back; timers keep true time.
            kind: FaultKind::ClockSkew {
                device: DeviceId::new(1),
                step: SimDuration::from_secs(60),
                drift_ppm: 10_000,
                duration: SimDuration::from_mins(12),
            },
        },
        Fault {
            at: at(50),
            kind: FaultKind::ServerOutage {
                down_for: SimDuration::from_mins(2),
            },
        },
        Fault {
            at: at(65),
            kind: FaultKind::BatteryDeath {
                device: DeviceId::new(0),
                off_for: SimDuration::from_mins(10),
            },
        },
        Fault {
            at: at(85),
            kind: FaultKind::RosterChurn {
                device: DeviceId::new(1),
                rejoin_after: SimDuration::from_mins(5),
            },
        },
    ]);
    let controller = ChaosController::install(&testbed, &plan);

    // Run well past the last heal so the stores drain, then audit.
    sim.run_for(SimDuration::from_hours(2));
    for node in testbed.devices() {
        node.phone().battery().set_charging(true);
    }
    sim.run_for(SimDuration::from_mins(30));
    let new = harness.final_check();

    println!(
        "injected {} faults across {} classes ({} skipped):",
        controller.injected(),
        controller.classes_injected(),
        controller.skipped(),
    );
    for (class, count) in controller.by_class() {
        println!("  {class}: {count}");
    }
    println!(
        "delivered {} samples, {} distinct, across {} reboots",
        harness.delivered_total(),
        harness.delivered_distinct(),
        testbed.devices().iter().map(|d| d.reboots()).sum::<u64>(),
    );
    match (new, harness.violations().len()) {
        (0, 0) => println!("invariants: all hold — exactly-once delivery survived the afternoon"),
        (_, total) => {
            for v in harness.violations() {
                println!("VIOLATION [{}] {} {}: {}", v.at, v.device, v.kind, v.detail);
            }
            panic!("{total} invariant violations");
        }
    }
}
