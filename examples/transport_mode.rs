//! A context-awareness experiment in the style the paper's introduction
//! motivates (reality mining / transportation mode): an in-script
//! activity classifier over the accelerometer, with the cell-id sensor
//! corroborating movement. Shows that non-trivial signal processing fits
//! comfortably in PogoScript — the §3.4 expressiveness argument.
//!
//! Run with: `cargo run --example transport_mode`

use std::cell::RefCell;

use pogo::core::proto::ScriptSpec;
use pogo::core::sensor::{AccelSample, SensorSources};
use pogo::core::{ExperimentSpec, Testbed};
use pogo::mobility::{Archetype, ScanSynthesizer, UserSpec, Whereabouts, World};
use pogo::net::FlushPolicy;
use pogo::sim::{Sim, SimDuration, SimRng};

/// The device-side classifier: a sliding variance window over the
/// accelerometer magnitude; a mode change is published only on
/// transitions (on-line filtering, not raw streaming — §1's argument).
const CLASSIFIER_JS: &str = r#"
setDescription('Transport mode classification');

var WINDOW = 12;           // one minute at 5 s sampling
var ENTER = 1.5;           // hysteresis: variance to call it walking...
var EXIT = 0.4;            // ...and to call it still again
var window_ = [];
var mode = 'unknown';

subscribe('accelerometer', function (m) {
    if (window_.length == WINDOW)
        window_.shift();
    window_.push(m.magnitude);
    if (window_.length < WINDOW)
        return;
    var mean = 0;
    for (var i = 0; i < window_.length; i++)
        mean += window_[i];
    mean /= window_.length;
    var variance = 0;
    for (var j = 0; j < window_.length; j++)
        variance += (window_[j] - mean) * (window_[j] - mean);
    variance /= window_.length;
    var detected = mode;
    if (mode != 'walking' && variance > ENTER)
        detected = 'walking';
    else if (mode != 'still' && variance < EXIT)
        detected = 'still';
    if (detected != mode) {
        mode = detected;
        publish('mode-changes', { mode: mode, variance: variance });
    }
}, { interval: 5 * 1000 });

subscribe('cell-id', function (m) {
    publish('cells', { cell: m.cell });
}, { interval: 5 * 60 * 1000 });
"#;

fn main() {
    let sim = Sim::new();
    let mut rng = SimRng::seed_from_u64(11);
    let mut world = World::new(200, &mut rng);
    let mut spec = UserSpec::new("commuter", Archetype::Regular, 1);
    spec.end_day = 1;
    let scenario = spec.build(&mut world, &mut rng);

    let mut testbed = Testbed::new(&sim);
    let trace = scenario.trace.clone();
    let trace2 = scenario.trace.clone();
    let synth = RefCell::new(ScanSynthesizer::new(rng.fork(3)));
    let synth2 = RefCell::new(ScanSynthesizer::new(rng.fork(4)));
    let sources = SensorSources {
        accelerometer: Some(Box::new(move |t_ms| {
            synth
                .borrow_mut()
                .accel(trace.whereabouts(t_ms))
                .map(|(x, y, z)| AccelSample { x, y, z })
        })),
        cell_id: Some(Box::new(move |t_ms| {
            synth2.borrow_mut().cell_id(trace2.whereabouts(t_ms), t_ms)
        })),
        ..SensorSources::default()
    };
    let (device, _phone) = testbed.add(
        pogo::core::DeviceSetup::named("commuter")
            .configure(|cfg| cfg.with_flush_policy(FlushPolicy::Immediate))
            .sensors(sources),
    );

    let changes = RefCell::new(Vec::new());
    testbed.collector().attach_listener(
        pogo::core::ChannelFilter::exp("mode").channel("mode-changes"),
        move |event| {
            let msg = event.msg;
            changes.borrow_mut().push(msg.clone());
            println!(
                "mode -> {:<8} (variance {:.2})",
                msg.get("mode")
                    .and_then(pogo::core::Msg::as_str)
                    .unwrap_or("?"),
                msg.get("variance")
                    .and_then(pogo::core::Msg::as_num)
                    .unwrap_or(0.0),
            );
        },
    );
    testbed
        .collector()
        .deployment(&ExperimentSpec {
            id: "mode".into(),
            scripts: vec![ScriptSpec {
                name: "classifier.js".into(),
                source: CLASSIFIER_JS.into(),
            }],
        })
        .to(&[device.jid()])
        .send()
        .expect("scripts pass pre-deployment analysis");

    println!("one simulated day of a commuter (mode transitions as detected):\n");
    sim.run_for(SimDuration::from_hours(24));

    // Compare against the ground-truth schedule.
    let transitions = scenario
        .trace
        .segments()
        .windows(2)
        .filter(|w| {
            matches!(
                (w[0].1, w[1].1),
                (Whereabouts::At(_), Whereabouts::Transit)
                    | (Whereabouts::Transit, Whereabouts::At(_))
            )
        })
        .count();
    println!(
        "\nground truth had {} dwell/transit transitions; accounting for the\
         \nclassifier's one-minute confirmation window, that is the shape above.",
        transitions
    );

    // Per-script resource accounting (§6 future work, implemented here).
    let ctx = device.context("mode").expect("deployed");
    let reports: Vec<_> = ctx
        .scripts()
        .iter()
        .map(pogo::core::accounting::report_for)
        .collect();
    println!(
        "\nper-script resource accounting:\n{}",
        pogo::core::accounting::render(&reports)
    );
}
