//! A tour of the middleware itself: two researchers share one device
//! pool, experiments are sandboxed from each other (§4.2), scripts are
//! hot-updated in the field (§3.2), and the device survives a reboot
//! with its frozen state intact (§5.3's freeze/thaw fix).
//!
//! Run with: `cargo run --example testbed_tour`

use pogo::core::proto::ScriptSpec;
use pogo::core::{ChannelFilter, DeviceSetup, ExperimentSpec, Testbed};
use pogo::sim::{Sim, SimDuration};

fn main() {
    let sim = Sim::new();
    let mut testbed = Testbed::new(&sim);
    // Immediate flushing: this tour has no background traffic to piggy-
    // back on, and we want to see messages as they happen (see the
    // `tail_sync` example for the real §4.7 batching behaviour).
    let (device, _phone) = testbed.add(
        DeviceSetup::named("shared-phone")
            .configure(|cfg| cfg.with_flush_policy(pogo::net::FlushPolicy::Immediate)),
    );

    // --- Two concurrent experiments, sandboxed contexts ------------------
    // Experiment A publishes on a channel; experiment B listens on a
    // channel of the same name. Contexts are sandboxes: nothing crosses.
    testbed
        .collector()
        .attach_listener(ChannelFilter::exp("exp-a").channel("pings"), |event| {
            println!("[exp-a] {}: {}", event.device, event.msg)
        });
    testbed
        .collector()
        .attach_listener(ChannelFilter::exp("exp-b").channel("pings"), |event| {
            println!(
                "[exp-b] LEAK from {}! (this must never print)",
                event.device
            )
        });
    testbed
        .collector()
        .deployment(&ExperimentSpec {
            id: "exp-a".into(),
            scripts: vec![ScriptSpec {
                name: "ping.js".into(),
                source: "publish('pings', { from: 'A' });".into(),
            }],
        })
        .to(&[device.jid()])
        .send()
        .expect("scripts pass pre-deployment analysis");
    testbed
        .collector()
        .deployment(&ExperimentSpec {
            id: "exp-b".into(),
            scripts: vec![ScriptSpec {
                name: "quiet.js".into(),
                source: "setDescription('listens, never speaks');".into(),
            }],
        })
        .to(&[device.jid()])
        .send()
        .expect("scripts pass pre-deployment analysis");
    sim.run_for(SimDuration::from_mins(5));

    // --- Hot redeployment (§3.2: "quick redeployment ... is essential") --
    println!("\nresearcher pushes v2 of exp-a ...");
    testbed
        .collector()
        .deployment(&ExperimentSpec {
            id: "exp-a".into(),
            scripts: vec![ScriptSpec {
                name: "ping.js".into(),
                source: r#"
                var state = thaw();
                var n = state == null ? 1 : state.n + 1;
                freeze({ n: n });
                publish('pings', { from: 'A v2', boot: n });
            "#
                .into(),
            }],
        })
        .send()
        .expect("scripts pass pre-deployment analysis");
    sim.run_for(SimDuration::from_mins(5));

    // --- Reboot: scripts restart, frozen state survives ------------------
    println!("\nphone reboots ...");
    device.reboot();
    sim.run_for(SimDuration::from_mins(5));
    println!(
        "device restarted {} time(s); exp-a's script thawed its counter",
        device.reboots()
    );

    let ctx = device.context("exp-a").expect("still deployed");
    println!(
        "running scripts on device: {:?} (version {})",
        ctx.scripts().iter().map(|s| s.name()).collect::<Vec<_>>(),
        ctx.version(),
    );
}
