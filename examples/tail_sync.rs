//! Tail-energy synchronization (§4.7, Figures 3 & 4): watch Pogo detect
//! a foreign 3G tail with a frozen `Thread.sleep` and push its batch
//! inside it — then compare against sending immediately.
//!
//! Run with: `cargo run --example tail_sync`

use pogo::core::{DeviceSetup, Msg, Testbed};
use pogo::net::FlushPolicy;
use pogo::platform::{NetAppConfig, PeriodicNetApp};
use pogo::sim::{Sim, SimDuration};

fn run(policy: FlushPolicy, label: &str) -> (f64, u64) {
    let sim = Sim::new();
    let mut testbed = Testbed::new(&sim);
    let (device, phone) = testbed.add(
        DeviceSetup::named("galaxy-nexus").configure(move |cfg| cfg.with_flush_policy(policy)),
    );

    // The researcher subscribes to battery voltage once a minute.
    let ctx = testbed.collector().create_experiment("power");
    ctx.broker().subscribe(
        "battery",
        Msg::obj([("interval", Msg::Num(60_000.0))]),
        |_, _, _| {},
    );
    testbed
        .collector()
        .deployment(&pogo::core::ExperimentSpec {
            id: "power".into(),
            scripts: vec![],
        })
        .to(&[device.jid()])
        .send()
        .expect("scripts pass pre-deployment analysis");

    // The e-mail app whose tails Pogo piggybacks on (checks every 5 min).
    let _email = PeriodicNetApp::install(&phone, NetAppConfig::email());

    sim.run_for(SimDuration::from_hours(1));
    let joules = phone.meter().total_joules();
    let ramps = phone.modem().ramp_ups();
    println!(
        "{label:<22} {joules:7.2} J   {ramps:3} radio ramp-ups   {} flushes",
        device.flushes()
    );
    (joules, ramps)
}

fn main() {
    println!("one hour, battery sampled 1/min, e-mail checked every 5 min:\n");
    let (tail_j, tail_ramps) = run(FlushPolicy::pogo_default(), "tail-sync (Pogo)");
    let (imm_j, imm_ramps) = run(FlushPolicy::Immediate, "immediate send");
    let _ = (tail_ramps, imm_ramps);
    println!(
        "\ntail synchronization saves {:.0}% of total energy ({:.1} J/h); note the immediate\n\
         policy shows few cold ramp-ups only because it never lets the modem cool down",
        100.0 * (imm_j - tail_j) / imm_j,
        imm_j - tail_j,
    );
    println!("(the paper reports Pogo's total overhead at 4-7% of the phone's energy, §5.2)");
}
