//! RogueFinder (§5.1, Listings 1 & 2): the AnonySense comparison app.
//! Reports Wi-Fi scans once per minute — but only while the device is
//! inside a target polygon. Demonstrates parameterized subscriptions and
//! the Subscription object's `release`/`renew` (§4.3).
//!
//! Run with: `cargo run --example roguefinder`

use std::cell::RefCell;

use pogo::core::sensor::{LocationFix, SensorSources, WifiReading};
use pogo::core::Testbed;
use pogo::glue;
use pogo::sim::{Sim, SimDuration};

fn main() {
    let sim = Sim::new();
    let mut testbed = Testbed::new(&sim);

    // The device drifts east along a line of latitude ~y=1.2, entering
    // the target triangle {(1,1),(2,2),(3,0)} partway through the walk.
    // Coordinates are abstract (x = lon, y = lat), as in Listing 1.
    let sources = SensorSources {
        location: Some(Box::new(|t_ms| {
            let x = t_ms as f64 / 3_600_000.0 * 2.5; // 2.5 units/hour
            Some(LocationFix {
                lon: x,
                lat: 1.2,
                provider: "GPS".into(),
            })
        })),
        wifi_scan: Some(Box::new(|t_ms| {
            Some(vec![WifiReading {
                bssid: format!("00:20:00:00:00:{:02x}", (t_ms / 600_000) % 64),
                rssi_dbm: -63.0,
            }])
        })),
        ..SensorSources::default()
    };
    let (device, _phone) = testbed.add(pogo::core::DeviceSetup::named("walker").sensors(sources));

    // Collector endpoint (Table 2's 5-line collect script).
    testbed
        .collector()
        .install_script("rogue", "collect.js", glue::ROGUEFINDER_COLLECT_JS)
        .expect("collector script loads");
    let received = RefCell::new(0usize);
    testbed.collector().attach_listener(
        pogo::core::ChannelFilter::exp("rogue").channel("filtered-scans"),
        move |_event| {
            *received.borrow_mut() += 1;
        },
    );

    // Deploy Listing 2.
    testbed
        .collector()
        .deployment(&pogo::core::ExperimentSpec {
            id: "rogue".into(),
            scripts: vec![pogo::core::proto::ScriptSpec {
                name: "roguefinder.js".into(),
                source: glue::ROGUEFINDER_JS.into(),
            }],
        })
        .to(&[device.jid()])
        .send()
        .expect("scripts pass pre-deployment analysis");

    println!("walking across the city for 2 simulated hours ...");
    sim.run_for(SimDuration::from_hours(2));

    let lines = testbed.collector().logs().lines("rogue-scans");
    println!(
        "collector received {} filtered scans (only from inside the polygon)",
        lines.len()
    );
    // The triangle spans roughly x in (1.2, 2.6) at y=1.2 — the walker is
    // inside for ~35 minutes of the 2-hour walk, one scan per minute.
    println!("first reports:");
    for line in lines.iter().take(3) {
        println!("  {line}");
    }
    assert!(
        !lines.is_empty() && lines.len() < 60,
        "scanning was geofenced, not always-on"
    );
    println!(
        "\nwifi sensor was duty-cycled by the geofence: {} samples taken",
        device.sensors().sample_count("wifi-scan")
    );
}
