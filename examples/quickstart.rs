//! Quickstart: stand up a tiny Pogo testbed, deploy a one-line sensing
//! script to three simulated phones, and watch battery readings arrive
//! at the researcher's collector.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Set `POGO_TRACE=trace.jsonl` to record a structured event trace of
//! the whole run (inspect it with `pogo-trace`), or `POGO_TRACE=-` to
//! dump the JSONL to stdout.

use std::cell::RefCell;
use std::rc::Rc;

use pogo::core::proto::ScriptSpec;
use pogo::core::{
    ChannelFilter, ChannelSchema, DeviceSetup, ExperimentSpec, ObsConfig, ScanQuery, Template,
    Testbed,
};
use pogo::obs::export;
use pogo::sim::{Sim, SimDuration};

fn main() {
    // 1. A simulation with a switchboard server and a collector node.
    //    POGO_TRACE turns the observability layer on; it is off (and
    //    zero-cost) otherwise.
    let trace_out = std::env::var("POGO_TRACE").ok();
    let obs_config = if trace_out.is_some() {
        ObsConfig::on()
    } else {
        ObsConfig::off()
    };
    let sim = Sim::new();
    let mut testbed = Testbed::with_obs(&sim, obs_config);

    // 2. Three volunteers install Pogo (one click in the app store —
    //    here, one call). The administrator pairs them with the
    //    researcher via the XMPP roster; `Testbed::add` does both.
    for i in 1..=3 {
        testbed.add(DeviceSetup::named(&format!("phone-{i}")));
    }

    // 3. The researcher writes an experiment: a device-side script that
    //    subscribes to the battery sensor and republishes low-battery
    //    alerts, plus a Rust-side listener on the collector.
    let script = r#"
        setDescription('Battery watcher');
        subscribe('battery', function (msg) {
            if (msg.level < 2) {
                publish('alerts', { voltage: msg.voltage });
            }
            publish('readings', { v: msg.voltage, level: msg.level });
        }, { interval: 5 * 60 * 1000 });
    "#;

    //    Registering the channel declares its shape: each reading is the
    //    `v` voltage as a typed f64 column in the collector's store.
    testbed
        .collector()
        .registry()
        .register(
            "quickstart",
            "readings",
            ChannelSchema::new(Template::F64).field("v"),
        )
        .expect("channel registers");
    let readings = Rc::new(RefCell::new(Vec::new()));
    let sink = readings.clone();
    testbed.collector().attach_listener(
        ChannelFilter::exp("quickstart").channel("readings"),
        move |event| {
            sink.borrow_mut()
                .push((event.device.to_owned(), event.msg.clone()));
        },
    );

    // 4. Push-deploy to every device (no user interaction, §3.2).
    let devices: Vec<_> = testbed.devices().iter().map(|d| d.jid()).collect();
    testbed
        .collector()
        .deployment(&ExperimentSpec {
            id: "quickstart".into(),
            scripts: vec![ScriptSpec {
                name: "battery-watch.js".into(),
                source: script.into(),
            }],
        })
        .to(&devices)
        .send()
        .expect("scripts pass pre-deployment analysis");

    // 5. Run two simulated hours.
    sim.run_for(SimDuration::from_hours(2));

    let readings = readings.borrow();
    println!("collected {} battery readings:", readings.len());
    for (from, msg) in readings.iter().take(6) {
        println!("  {from}: {msg}");
    }
    if readings.len() > 6 {
        println!("  ... and {} more", readings.len() - 6);
    }

    // Query the typed sample store and export it — the same rows can
    // leave as CSV, JSONL, or a SenML pack.
    let rows = testbed
        .collector()
        .store()
        .scan(&ScanQuery::exp("quickstart").channel("readings"));
    let csv = pogo::ingest::export::to_csv(&rows);
    println!(
        "\nsample store holds {} typed rows; CSV export is {} bytes:",
        rows.len(),
        csv.len()
    );
    for line in csv.lines().take(4) {
        println!("  {line}");
    }

    // Energy accounting comes free with the platform model:
    for device in testbed.devices() {
        let phone = device.phone();
        println!(
            "{}: {:.1} J consumed, {} radio ramp-ups, {} buffer flushes",
            device.jid(),
            phone.meter().total_joules(),
            phone.modem().ramp_ups(),
            device.flushes(),
        );
    }

    // 6. Dump the structured trace, if one was recorded.
    if let Some(path) = trace_out {
        let jsonl = export::to_jsonl(&testbed.obs().events());
        if path == "-" {
            print!("{jsonl}");
        } else {
            std::fs::write(&path, &jsonl).expect("write trace file");
            println!(
                "wrote {} trace events to {path} (try: cargo run --bin pogo-trace -- {path} --top)",
                jsonl.lines().count()
            );
        }
    }
}
