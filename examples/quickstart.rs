//! Quickstart: stand up a tiny Pogo testbed, deploy a one-line sensing
//! script to three simulated phones, and watch battery readings arrive
//! at the researcher's collector.
//!
//! Run with: `cargo run --example quickstart`

use std::cell::RefCell;
use std::rc::Rc;

use pogo::core::proto::ScriptSpec;
use pogo::core::sensor::SensorSources;
use pogo::core::{ExperimentSpec, Testbed};
use pogo::platform::PhoneConfig;
use pogo::sim::{Sim, SimDuration};

fn main() {
    // 1. A simulation with a switchboard server and a collector node.
    let sim = Sim::new();
    let mut testbed = Testbed::new(&sim);

    // 2. Three volunteers install Pogo (one click in the app store —
    //    here, one call). The administrator pairs them with the
    //    researcher via the XMPP roster; `add_device` does both.
    for i in 1..=3 {
        testbed.add_device(
            &format!("phone-{i}"),
            PhoneConfig::default(),
            |cfg| cfg,
            SensorSources::default(),
        );
    }

    // 3. The researcher writes an experiment: a device-side script that
    //    subscribes to the battery sensor and republishes low-battery
    //    alerts, plus a Rust-side listener on the collector.
    let script = r#"
        setDescription('Battery watcher');
        subscribe('battery', function (msg) {
            if (msg.level < 2) {
                publish('alerts', { voltage: msg.voltage });
            }
            publish('readings', { v: msg.voltage, level: msg.level });
        }, { interval: 5 * 60 * 1000 });
    "#;

    let readings = Rc::new(RefCell::new(Vec::new()));
    let sink = readings.clone();
    testbed
        .collector()
        .on_data("quickstart", "readings", move |msg, from| {
            sink.borrow_mut().push((from.to_owned(), msg.clone()));
        });

    // 4. Push-deploy to every device (no user interaction, §3.2).
    let devices: Vec<_> = testbed.devices().iter().map(|d| d.jid()).collect();
    testbed
        .collector()
        .deploy(
            &ExperimentSpec {
                id: "quickstart".into(),
                scripts: vec![ScriptSpec {
                    name: "battery-watch.js".into(),
                    source: script.into(),
                }],
            },
            &devices,
        )
        .expect("scripts pass pre-deployment analysis");

    // 5. Run two simulated hours.
    sim.run_for(SimDuration::from_hours(2));

    let readings = readings.borrow();
    println!("collected {} battery readings:", readings.len());
    for (from, msg) in readings.iter().take(6) {
        println!("  {from}: {msg}");
    }
    if readings.len() > 6 {
        println!("  ... and {} more", readings.len() - 6);
    }

    // Energy accounting comes free with the platform model:
    for device in testbed.devices() {
        let phone = device.phone();
        println!(
            "{}: {:.1} J consumed, {} radio ramp-ups, {} buffer flushes",
            device.jid(),
            phone.meter().total_joules(),
            phone.modem().ramp_ups(),
            device.flushes(),
        );
    }
}
