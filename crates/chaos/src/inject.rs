//! The fault injector: plays a [`FaultPlan`] against a live testbed.
//!
//! Every fault is injected at its planned instant and *healed* at the
//! end of its window by events the controller schedules up front — so a
//! run that reaches `plan.healed_by()` has seen the complete
//! inject/heal cycle of every fault, and two runs of the same plan
//! schedule byte-identical event sequences.
//!
//! Overlapping windows of the same kind are reference-counted (two
//! overlapping outages keep the switchboard down until *both* end), and
//! faults that land on an already-dead target are counted as skipped
//! rather than injected.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use pogo_core::{DeviceNode, Testbed};
use pogo_net::{Jid, LinkShape, Switchboard};
use pogo_obs::{field, Obs};
use pogo_platform::Bearer;
use pogo_sim::{Sim, SimDuration};

use crate::plan::{FaultKind, FaultPlan};

/// How long a revived phone stays on the charger after a battery death.
const RECHARGE_TIME: SimDuration = SimDuration::from_mins(5);

struct Inner {
    sim: Sim,
    server: Switchboard,
    collector: Jid,
    devices: Vec<DeviceNode>,
    obs: Obs,
    /// Overlap counter for switchboard outages.
    outage_depth: u32,
    /// Per-device overlap counters for link degradation windows.
    degrade_depth: Vec<u32>,
    /// Per-device overlap counters for roster churn windows.
    churn_depth: Vec<u32>,
    /// Per-device overlap counters for bearer-flap storms.
    flap_depth: Vec<u32>,
    /// Bearer to restore when the last overlapping flap storm ends
    /// (outer `Option` = "is a storm running", inner = the pre-storm
    /// bearer, which may itself be offline).
    flap_saved: Vec<Option<Option<Bearer>>>,
    /// Per-device overlap counters for clock-skew windows.
    skew_depth: Vec<u32>,
    /// Bearer to restore when a battery death heals.
    saved_bearer: Vec<Option<Bearer>>,
    injected: u64,
    skipped: u64,
    by_class: BTreeMap<&'static str, u64>,
}

/// Injects a [`FaultPlan`] into a [`Testbed`]; see the module docs.
///
/// Cheap to clone; clones share state.
#[derive(Clone)]
pub struct ChaosController {
    inner: Rc<RefCell<Inner>>,
}

impl std::fmt::Debug for ChaosController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("ChaosController")
            .field("injected", &inner.injected)
            .field("skipped", &inner.skipped)
            .finish()
    }
}

impl ChaosController {
    /// Schedules every fault in `plan` onto the testbed's simulation and
    /// reseeds the switchboard's link-loss RNG from the plan seed, so
    /// the whole run is a pure function of (testbed setup, plan).
    ///
    /// # Panics
    ///
    /// Panics if a fault targets a device index the testbed does not
    /// have.
    pub fn install(testbed: &Testbed, plan: &FaultPlan) -> Self {
        let n = testbed.devices().len();
        for fault in plan.faults() {
            if let Some(d) = fault.kind.device() {
                assert!(d.index() < n, "fault targets device {d}, testbed has {n}");
            }
        }
        testbed
            .server()
            .reseed_link_rng(plan.seed() ^ 0x506f_676f_4c69_6e6b); // "PogoLink"
        let controller = ChaosController {
            inner: Rc::new(RefCell::new(Inner {
                sim: testbed.sim().clone(),
                server: testbed.server().clone(),
                collector: testbed.collector().jid(),
                devices: testbed.devices().to_vec(),
                obs: testbed.obs().clone(),
                outage_depth: 0,
                degrade_depth: vec![0; n],
                churn_depth: vec![0; n],
                flap_depth: vec![0; n],
                flap_saved: vec![None; n],
                skew_depth: vec![0; n],
                saved_bearer: vec![None; n],
                injected: 0,
                skipped: 0,
                by_class: BTreeMap::new(),
            })),
        };
        let sim = testbed.sim();
        for fault in plan.faults() {
            let me = controller.clone();
            let kind = fault.kind.clone();
            sim.schedule_at(fault.at, move || me.apply(&kind));
        }
        controller
    }

    /// Faults actually injected so far.
    pub fn injected(&self) -> u64 {
        self.inner.borrow().injected
    }

    /// Faults skipped because the target was already dead.
    pub fn skipped(&self) -> u64 {
        self.inner.borrow().skipped
    }

    /// Injection counts per fault class.
    pub fn by_class(&self) -> BTreeMap<&'static str, u64> {
        self.inner.borrow().by_class.clone()
    }

    /// Number of distinct fault classes injected.
    pub fn classes_injected(&self) -> usize {
        self.inner.borrow().by_class.len()
    }

    fn apply(&self, kind: &FaultKind) {
        match kind {
            FaultKind::ServerRestart => self.server_restart(),
            FaultKind::ServerOutage { down_for } => self.server_outage(*down_for),
            FaultKind::LinkDegrade {
                device,
                loss,
                jitter,
                duration,
            } => self.link_degrade(device.index(), *loss, *jitter, *duration),
            FaultKind::Reboot { device } => self.reboot(device.index()),
            FaultKind::BatteryDeath { device, off_for } => {
                self.battery_death(device.index(), *off_for)
            }
            FaultKind::RosterChurn {
                device,
                rejoin_after,
            } => self.roster_churn(device.index(), *rejoin_after),
            FaultKind::BearerFlap {
                device,
                flaps,
                period,
            } => self.bearer_flap(device.index(), *flaps, *period),
            FaultKind::ClockSkew {
                device,
                step,
                drift_ppm,
                duration,
            } => self.clock_skew(device.index(), *step, *drift_ppm, *duration),
        }
    }

    fn server_restart(&self) {
        let server = self.inner.borrow().server.clone();
        if server.is_down() {
            self.note_skip("server-restart", None);
            return;
        }
        self.note_inject("server-restart", None, SimDuration::ZERO);
        server.restart();
    }

    fn server_outage(&self, down_for: SimDuration) {
        let (sim, server) = {
            let mut inner = self.inner.borrow_mut();
            inner.outage_depth += 1;
            (inner.sim.clone(), inner.server.clone())
        };
        self.note_inject("server-outage", None, down_for);
        if !server.is_down() {
            server.set_down(true);
        }
        let me = self.clone();
        sim.schedule_in(down_for, move || {
            let back_up = {
                let mut inner = me.inner.borrow_mut();
                inner.outage_depth -= 1;
                inner.outage_depth == 0
            };
            if back_up {
                me.inner.borrow().server.set_down(false);
            }
            me.note_heal("server-outage", None);
        });
    }

    fn link_degrade(&self, device: usize, loss: f64, jitter: SimDuration, duration: SimDuration) {
        let (sim, server, jid) = {
            let mut inner = self.inner.borrow_mut();
            inner.degrade_depth[device] += 1;
            (
                inner.sim.clone(),
                inner.server.clone(),
                inner.devices[device].jid(),
            )
        };
        server.shape_link(
            &jid,
            LinkShape {
                loss,
                jitter,
                extra_latency: SimDuration::ZERO,
            },
        );
        self.note_inject("link-degrade", Some(&jid), duration);
        let me = self.clone();
        sim.schedule_in(duration, move || {
            let healed = {
                let mut inner = me.inner.borrow_mut();
                inner.degrade_depth[device] -= 1;
                inner.degrade_depth[device] == 0
            };
            let jid = {
                let inner = me.inner.borrow();
                if healed {
                    inner.server.clear_link_shape(&jid);
                }
                jid.clone()
            };
            me.note_heal("link-degrade", Some(&jid));
        });
    }

    fn reboot(&self, device: usize) {
        let node = self.inner.borrow().devices[device].clone();
        if node.is_powered_off() {
            self.note_skip("reboot", Some(&node.jid()));
            return;
        }
        self.note_inject("reboot", Some(&node.jid()), SimDuration::ZERO);
        node.reboot();
    }

    fn battery_death(&self, device: usize, off_for: SimDuration) {
        let (sim, node) = {
            let inner = self.inner.borrow();
            (inner.sim.clone(), inner.devices[device].clone())
        };
        if node.is_powered_off() {
            self.note_skip("battery-death", Some(&node.jid()));
            return;
        }
        let phone = node.phone();
        self.inner.borrow_mut().saved_bearer[device] = phone.connectivity().active();
        self.note_inject("battery-death", Some(&node.jid()), off_for);
        node.power_off();
        phone.connectivity().set_active(None);
        let me = self.clone();
        sim.schedule_in(off_for, move || {
            let bearer = me.inner.borrow().saved_bearer[device].unwrap_or(Bearer::Cellular);
            let phone = node.phone();
            phone.battery().set_charging(true);
            phone.connectivity().set_active(Some(bearer));
            node.power_on();
            me.note_heal("battery-death", Some(&node.jid()));
            let sim = me.inner.borrow().sim.clone();
            sim.schedule_in(RECHARGE_TIME, move || {
                phone.battery().set_charging(false);
            });
        });
    }

    fn roster_churn(&self, device: usize, rejoin_after: SimDuration) {
        let (sim, server, jid, collector) = {
            let mut inner = self.inner.borrow_mut();
            inner.churn_depth[device] += 1;
            (
                inner.sim.clone(),
                inner.server.clone(),
                inner.devices[device].jid(),
                inner.collector.clone(),
            )
        };
        if self.inner.borrow().churn_depth[device] == 1 {
            server.unfriend(&jid, &collector);
        }
        self.note_inject("roster-churn", Some(&jid), rejoin_after);
        let me = self.clone();
        sim.schedule_in(rejoin_after, move || {
            let rejoined = {
                let mut inner = me.inner.borrow_mut();
                inner.churn_depth[device] -= 1;
                inner.churn_depth[device] == 0
            };
            if rejoined {
                let (server, jid, collector) = {
                    let inner = me.inner.borrow();
                    (
                        inner.server.clone(),
                        inner.devices[device].jid(),
                        inner.collector.clone(),
                    )
                };
                server
                    .befriend(&jid, &collector)
                    .expect("both ends stay registered across churn");
            }
            me.note_heal("roster-churn", Some(&jid));
        });
    }

    fn bearer_flap(&self, device: usize, flaps: u32, period: SimDuration) {
        let (sim, node) = {
            let inner = self.inner.borrow();
            (inner.sim.clone(), inner.devices[device].clone())
        };
        if node.is_powered_off() {
            self.note_skip("bearer-flap", Some(&node.jid()));
            return;
        }
        {
            let mut inner = self.inner.borrow_mut();
            inner.flap_depth[device] += 1;
            if inner.flap_depth[device] == 1 {
                inner.flap_saved[device] = Some(node.phone().connectivity().active());
            }
        }
        self.note_inject("bearer-flap", Some(&node.jid()), period.mul(flaps as u64));
        for i in 0..flaps {
            let node = node.clone();
            sim.schedule_in(period.mul(i as u64), move || {
                if node.is_powered_off() {
                    return;
                }
                let conn = node.phone().connectivity().clone();
                let next = match conn.active() {
                    Some(Bearer::Wifi) => Bearer::Cellular,
                    _ => Bearer::Wifi,
                };
                conn.set_active(Some(next));
            });
        }
        let me = self.clone();
        sim.schedule_in(period.mul(flaps as u64), move || {
            let restore = {
                let mut inner = me.inner.borrow_mut();
                inner.flap_depth[device] -= 1;
                if inner.flap_depth[device] == 0 {
                    inner.flap_saved[device].take()
                } else {
                    None
                }
            };
            if let Some(bearer) = restore {
                if !node.is_powered_off() {
                    node.phone().connectivity().set_active(bearer);
                }
            }
            me.note_heal("bearer-flap", Some(&node.jid()));
        });
    }

    fn clock_skew(&self, device: usize, step: SimDuration, drift_ppm: i64, duration: SimDuration) {
        let (sim, node) = {
            let mut inner = self.inner.borrow_mut();
            inner.skew_depth[device] += 1;
            (inner.sim.clone(), inner.devices[device].clone())
        };
        // The RTC drifts whether or not the OS is up, so a powered-off
        // target is not a skip: its clock is wrong when it revives.
        node.phone()
            .clock()
            .set_skew(step.as_millis() as i64, drift_ppm);
        self.note_inject("clock-skew", Some(&node.jid()), duration);
        let me = self.clone();
        sim.schedule_in(duration, move || {
            let healed = {
                let mut inner = me.inner.borrow_mut();
                inner.skew_depth[device] -= 1;
                inner.skew_depth[device] == 0
            };
            if healed {
                // NITZ-style time fix: snap back to network truth.
                node.phone().clock().clear();
            }
            me.note_heal("clock-skew", Some(&node.jid()));
        });
    }

    // ------------------------------ bookkeeping ------------------------------

    fn obs_for(&self, device: Option<&Jid>) -> Obs {
        let inner = self.inner.borrow();
        match device {
            Some(jid) => inner.obs.scoped(jid.as_str()),
            None => inner.obs.clone(),
        }
    }

    fn note_inject(&self, class: &'static str, device: Option<&Jid>, window: SimDuration) {
        {
            let mut inner = self.inner.borrow_mut();
            inner.injected += 1;
            *inner.by_class.entry(class).or_insert(0) += 1;
        }
        let obs = self.obs_for(device);
        obs.event("chaos", class, vec![field("window_ms", window.as_millis())]);
        obs.metrics().inc("chaos.faults", 1);
        obs.metrics().inc(class_metric(class), 1);
    }

    fn note_heal(&self, class: &'static str, device: Option<&Jid>) {
        self.obs_for(device)
            .event("chaos", "heal", vec![field("fault", class)]);
    }

    fn note_skip(&self, class: &'static str, device: Option<&Jid>) {
        self.inner.borrow_mut().skipped += 1;
        let obs = self.obs_for(device);
        obs.event("chaos", "skipped", vec![field("fault", class)]);
        obs.metrics().inc("chaos.skipped", 1);
    }
}

/// Static per-class counter names (metrics keys must not allocate on
/// the hot path and must be stable across versions).
fn class_metric(class: &'static str) -> &'static str {
    match class {
        "server-restart" => "chaos.server_restart",
        "server-outage" => "chaos.server_outage",
        "link-degrade" => "chaos.link_degrade",
        "reboot" => "chaos.reboot",
        "battery-death" => "chaos.battery_death",
        "roster-churn" => "chaos.roster_churn",
        "bearer-flap" => "chaos.fault.bearer_flap",
        "clock-skew" => "chaos.fault.clock_skew",
        _ => "chaos.other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Fault;
    use pogo_core::{DeviceSetup, Testbed};
    use pogo_sim::{DeviceId, SimTime};

    fn testbed(sim: &Sim, phones: usize) -> Testbed {
        let mut tb = Testbed::new(sim);
        for i in 0..phones {
            tb.add(DeviceSetup::named(&format!("phone-{i}")));
        }
        tb
    }

    #[test]
    fn outage_overlap_is_refcounted() {
        let sim = Sim::new();
        let tb = testbed(&sim, 1);
        let plan = FaultPlan::scripted(vec![
            Fault {
                at: SimTime::from_millis(1_000),
                kind: FaultKind::ServerOutage {
                    down_for: SimDuration::from_secs(10),
                },
            },
            Fault {
                at: SimTime::from_millis(5_000),
                kind: FaultKind::ServerOutage {
                    down_for: SimDuration::from_secs(10),
                },
            },
        ]);
        let ctl = ChaosController::install(&tb, &plan);
        sim.run_until(SimTime::from_millis(12_000));
        assert!(
            tb.server().is_down(),
            "second outage still holds the server down"
        );
        sim.run_until(SimTime::from_millis(16_000));
        assert!(!tb.server().is_down(), "back up after both windows end");
        assert_eq!(ctl.injected(), 2);
    }

    #[test]
    fn reboot_on_powered_off_device_is_skipped() {
        let sim = Sim::new();
        let tb = testbed(&sim, 1);
        let plan = FaultPlan::scripted(vec![
            Fault {
                at: SimTime::from_millis(1_000),
                kind: FaultKind::BatteryDeath {
                    device: DeviceId::new(0),
                    off_for: SimDuration::from_secs(60),
                },
            },
            Fault {
                at: SimTime::from_millis(10_000),
                kind: FaultKind::Reboot {
                    device: DeviceId::new(0),
                },
            },
        ]);
        let ctl = ChaosController::install(&tb, &plan);
        sim.run_until(SimTime::from_millis(20_000));
        assert_eq!(ctl.injected(), 1);
        assert_eq!(ctl.skipped(), 1);
        sim.run_for(SimDuration::from_mins(3));
        assert!(
            tb.devices()[0].is_booted(),
            "device revives after the battery-death window"
        );
    }

    #[test]
    fn bearer_flap_toggles_and_restores() {
        let sim = Sim::new();
        let tb = testbed(&sim, 1);
        let phone = tb.devices()[0].phone();
        let before = phone.connectivity().active();
        let plan = FaultPlan::scripted(vec![Fault {
            at: SimTime::from_millis(1_000),
            kind: FaultKind::BearerFlap {
                device: DeviceId::new(0),
                flaps: 6,
                period: SimDuration::from_secs(5),
            },
        }]);
        let ctl = ChaosController::install(&tb, &plan);
        sim.run_for(SimDuration::from_secs(60));
        assert_eq!(ctl.injected(), 1);
        // 6 toggles; the restore is a no-op because an even flap count
        // lands back on the pre-storm bearer.
        assert_eq!(phone.connectivity().change_count(), 6);
        assert_eq!(
            phone.connectivity().active(),
            before,
            "pre-storm bearer restored after the heal"
        );
    }

    #[test]
    fn clock_skew_heals_back_to_truth() {
        let sim = Sim::new();
        let tb = testbed(&sim, 1);
        let phone = tb.devices()[0].phone();
        let plan = FaultPlan::scripted(vec![Fault {
            at: SimTime::from_millis(1_000),
            kind: FaultKind::ClockSkew {
                device: DeviceId::new(0),
                step: SimDuration::from_secs(30),
                drift_ppm: 10_000,
                duration: SimDuration::from_mins(2),
            },
        }]);
        let ctl = ChaosController::install(&tb, &plan);
        sim.run_for(SimDuration::from_secs(60));
        assert!(phone.clock().is_skewed(), "skew active mid-window");
        assert!(phone.clock().now_ms() > sim.now().as_millis() as i64);
        sim.run_for(SimDuration::from_mins(3));
        assert!(!phone.clock().is_skewed(), "NITZ fix at window end");
        assert_eq!(phone.clock().now_ms(), sim.now().as_millis() as i64);
        assert_eq!(ctl.injected(), 1);
    }

    #[test]
    fn roster_churn_heals_back_to_friends() {
        let sim = Sim::new();
        let tb = testbed(&sim, 1);
        let jid = tb.devices()[0].jid();
        let plan = FaultPlan::scripted(vec![Fault {
            at: SimTime::from_millis(1_000),
            kind: FaultKind::RosterChurn {
                device: DeviceId::new(0),
                rejoin_after: SimDuration::from_secs(30),
            },
        }]);
        ChaosController::install(&tb, &plan);
        sim.run_until(SimTime::from_millis(2_000));
        assert!(tb.server().roster(&jid).is_empty(), "unfriended");
        sim.run_for(SimDuration::from_secs(60));
        assert_eq!(tb.server().roster(&jid), vec![tb.collector().jid()]);
    }
}
