//! Chaos soak CLI: run a seeded fault-injection soak and report.
//!
//! ```text
//! chaos_soak [--seed N] [--phones N] [--hours N] [--trace PATH] [--check]
//! ```
//!
//! `--check` is the CI gate: the soak runs **twice** with the same
//! config, the two obs traces must match byte for byte, at least 100
//! faults across at least 3 classes must inject, and no invariant may
//! break. Exit status 1 on any failure.

use pogo_chaos::{run_soak, SoakConfig};
use pogo_sim::SimDuration;

fn usage() -> ! {
    eprintln!(
        "usage: chaos_soak [--seed N] [--phones N] [--hours N] [--trace PATH] [--check]\n\
         \n\
         --seed N      fault-plan seed (decimal or 0x-hex; default {:#x})\n\
         --phones N    fleet size (default 8)\n\
         --hours N     simulated soak length (default 48)\n\
         --trace PATH  write the obs trace as JSONL\n\
         --check       CI gate: run twice, require identical traces,\n\
                       >=100 faults over >=3 classes, zero violations",
        SoakConfig::default().seed
    );
    std::process::exit(2);
}

fn parse_u64(flag: &str, value: Option<String>) -> u64 {
    let Some(value) = value else {
        eprintln!("chaos_soak: {flag} needs a value");
        usage();
    };
    let parsed = match value.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => value.parse(),
    };
    parsed.unwrap_or_else(|_| {
        eprintln!("chaos_soak: bad {flag} value {value:?}");
        usage();
    })
}

fn main() {
    let mut cfg = SoakConfig::default();
    let mut check = false;
    let mut trace_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => cfg.seed = parse_u64("--seed", args.next()),
            "--phones" => cfg.phones = parse_u64("--phones", args.next()) as usize,
            "--hours" => cfg.duration = SimDuration::from_hours(parse_u64("--hours", args.next())),
            "--trace" => trace_path = args.next().or_else(|| usage()),
            "--check" => check = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("chaos_soak: unknown argument {other:?}");
                usage();
            }
        }
    }
    cfg.capture_trace = check || trace_path.is_some();

    let report = run_soak(&cfg);
    print!("{}", report.summary());
    if let Some(path) = &trace_path {
        std::fs::write(path, &report.trace_jsonl).unwrap_or_else(|e| {
            eprintln!("chaos_soak: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("trace: {path} ({} bytes)", report.trace_jsonl.len());
    }

    if check {
        let mut failures: Vec<String> = Vec::new();
        let second = run_soak(&cfg);
        if report.trace_jsonl != second.trace_jsonl {
            failures.push("two runs of the same seed produced different obs traces".into());
        }
        if report.faults_injected < 100 {
            failures.push(format!(
                "only {} faults injected, need >=100",
                report.faults_injected
            ));
        }
        if report.classes() < 3 {
            failures.push(format!(
                "only {} fault classes injected, need >=3",
                report.classes()
            ));
        }
        if !report.violations.is_empty() {
            failures.push(format!("{} invariant violations", report.violations.len()));
        }
        if failures.is_empty() {
            println!(
                "chaos check: PASS ({} faults, {} classes, deterministic trace)",
                report.faults_injected,
                report.classes()
            );
        } else {
            for f in &failures {
                eprintln!("chaos check: FAIL: {f}");
            }
            std::process::exit(1);
        }
    }
}
