//! Workload abstraction for the chaos harness.
//!
//! A [`WorkloadSpec`] describes everything the soak driver needs to run
//! delivery-invariant checks against an arbitrary Pogo deployment: how
//! to populate the testbed, how to deploy its experiments, and which
//! channels to audit with which semantics. The original synthetic
//! counter soak is [`CounterWorkload`]; the root crate implements the
//! localization, RogueFinder, and table-4 cohort workloads on the same
//! trait.
//!
//! Each audited channel names a *sent log* — a device-side log stream
//! the script appends the sample's sequence number to in the same
//! atomic script step as the publish — and the message field carrying
//! that number. That pairing is what makes exactly-once / no-phantom
//! checks sound without trusting the transport being tested.

use pogo_core::Testbed;
use pogo_sim::SimDuration;

use crate::soak::SoakConfig;

/// One collector-side channel audited for delivery invariants.
#[derive(Debug, Clone)]
pub struct ChannelAudit {
    /// Experiment id the channel belongs to.
    pub exp: String,
    /// Channel name at the collector.
    pub channel: String,
    /// Device log stream the script appends each published sequence
    /// number to (same script step as the publish).
    pub sent_log: String,
    /// Message field carrying the sequence number.
    pub key_field: String,
    /// Whether the script emits a dense `1, 2, 3, …` sequence that the
    /// frozen-state monotonicity check can assert.
    pub monotonic: bool,
}

impl ChannelAudit {
    /// An audit with the monotonic-sequence check enabled (the common
    /// case: scripts that `freeze()` a counter before publishing).
    pub fn new(exp: &str, channel: &str, sent_log: &str, key_field: &str) -> Self {
        ChannelAudit {
            exp: exp.to_owned(),
            channel: channel.to_owned(),
            sent_log: sent_log.to_owned(),
            key_field: key_field.to_owned(),
            monotonic: true,
        }
    }

    /// Disables the monotonic-sequence check for scripts whose emission
    /// order is not a dense counter.
    pub fn without_monotonic(mut self) -> Self {
        self.monotonic = false;
        self
    }
}

/// A workload the chaos soak can run and audit; see the module docs.
pub trait WorkloadSpec {
    /// Short stable name (used in reports and per-workload metrics).
    fn name(&self) -> &'static str;

    /// Adds devices (and any sensor sources) to the testbed. Runs
    /// before the invariant harness subscribes, so every audited
    /// channel sees traffic from the first sample.
    fn setup(&self, testbed: &mut Testbed, cfg: &SoakConfig);

    /// Deploys the workload's experiments. Runs after the harness has
    /// subscribed to the audited channels.
    fn deploy(&self, testbed: &Testbed, cfg: &SoakConfig);

    /// The channels to audit and their per-channel semantics.
    fn audits(&self) -> Vec<ChannelAudit>;

    /// Simulated length of the faulted phase; defaults to the config's.
    fn duration(&self, cfg: &SoakConfig) -> SimDuration {
        cfg.duration
    }
}

/// The original synthetic workload: every phone runs the counting
/// script and publishes `{ n: 1, 2, 3, … }` on one channel.
#[derive(Debug, Clone, Copy, Default)]
pub struct CounterWorkload;

impl WorkloadSpec for CounterWorkload {
    fn name(&self) -> &'static str {
        "counter"
    }

    fn setup(&self, testbed: &mut Testbed, cfg: &SoakConfig) {
        use pogo_core::DeviceSetup;
        use pogo_net::FlushPolicy;
        let age = cfg.max_msg_age;
        for i in 0..cfg.phones {
            testbed.add(
                DeviceSetup::named(&format!("phone-{i}")).configure(move |c| {
                    c.with_flush_policy(FlushPolicy::Interval(SimDuration::from_secs(90)))
                        .with_max_msg_age(age)
                }),
            );
        }
    }

    fn deploy(&self, testbed: &Testbed, cfg: &SoakConfig) {
        use pogo_core::proto::{ExperimentSpec, ScriptSpec};
        use pogo_core::DeviceNode;
        use pogo_net::Jid;
        let jids: Vec<Jid> = testbed.devices().iter().map(DeviceNode::jid).collect();
        testbed
            .collector()
            .deployment(&ExperimentSpec {
                id: "chaos".into(),
                scripts: vec![ScriptSpec {
                    name: "tick.js".into(),
                    source: crate::soak::tick_script(cfg.publish_period),
                }],
            })
            .to(&jids)
            .send()
            .expect("chaos tick script passes the lint gate");
    }

    fn audits(&self) -> Vec<ChannelAudit> {
        vec![ChannelAudit::new("chaos", "chaos-data", "chaos-sent", "n")]
    }
}
