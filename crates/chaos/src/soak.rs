//! The chaos soak: a whole fleet, days of simulated time, one seed.
//!
//! [`run_workload_soak`] assembles a testbed, runs a
//! [`WorkloadSpec`]'s setup and deployment around the invariant
//! harness, generates a [`FaultPlan`] from the config seed, injects
//! it, checks invariants after every fault window, drains the fleet,
//! and runs the final loss accounting. The returned [`SoakReport`]
//! carries the verdict plus the full obs trace as JSONL — two runs of
//! the same config produce byte-identical traces, which the
//! `chaos_soak --check` CI gate asserts. [`run_soak`] is the original
//! synthetic-counter entry point, now a thin wrapper.

use std::collections::BTreeMap;

use pogo_core::{ObsConfig, ScanQuery, Testbed};
use pogo_platform::Bearer;
use pogo_sim::{Sim, SimDuration, SimTime};

use crate::inject::ChaosController;
use crate::invariant::{InvariantHarness, Violation};
use crate::plan::FaultPlan;
use crate::workload::{CounterWorkload, WorkloadSpec};

/// Quiet time between a fault window closing and the invariant check,
/// so in-flight retransmissions settle.
const SETTLE: SimDuration = SimDuration::from_mins(2);

/// Post-run drain: every phone powered and plugged in, long enough for
/// several retry periods to flush the stores.
const DRAIN: SimDuration = SimDuration::from_mins(30);

/// Configuration for [`run_soak`].
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Seed for the fault plan and all link-loss randomness.
    pub seed: u64,
    /// Fleet size.
    pub phones: usize,
    /// Simulated length of the faulted phase.
    pub duration: SimDuration,
    /// How often each phone publishes a sample.
    pub publish_period: SimDuration,
    /// Mean gap between injected faults (exponential inter-arrivals).
    pub mean_fault_gap: SimDuration,
    /// Store-and-forward age limit; older samples may expire (the one
    /// permitted loss).
    pub max_msg_age: SimDuration,
    /// Whether the report carries the obs trace as JSONL.
    pub capture_trace: bool,
}

impl Default for SoakConfig {
    /// The CI soak: 8 phones for 2 simulated days, a fault every ~20
    /// minutes (~140 faults), hour-long message expiry.
    fn default() -> Self {
        SoakConfig {
            seed: 0x0060_0d5e_ed00,
            phones: 8,
            duration: SimDuration::from_hours(48),
            publish_period: SimDuration::from_secs(120),
            mean_fault_gap: SimDuration::from_mins(20),
            max_msg_age: SimDuration::from_hours(1),
            capture_trace: true,
        }
    }
}

/// What a soak run saw; see [`run_soak`].
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// The workload that was soaked.
    pub workload: String,
    /// The seed the run used.
    pub seed: u64,
    /// Faults injected.
    pub faults_injected: u64,
    /// Faults skipped because the target was already dead.
    pub faults_skipped: u64,
    /// Injection counts per fault class.
    pub faults_by_class: BTreeMap<String, u64>,
    /// Samples published across the fleet (from the `chaos-sent` logs).
    pub published: u64,
    /// Samples delivered at the collector, duplicates included.
    pub delivered: u64,
    /// Distinct samples delivered at the collector.
    pub delivered_distinct: u64,
    /// Samples expired by the store-and-forward age purge.
    pub purged: u64,
    /// Samples still buffered on devices after the drain.
    pub buffered: u64,
    /// Invariant violations (empty on a passing run).
    pub violations: Vec<Violation>,
    /// The obs trace as JSONL, empty unless `capture_trace` was set.
    pub trace_jsonl: String,
    /// The audited channels' sample-store rows exported as CSV —
    /// deterministic per seed, which the determinism gate asserts.
    pub store_csv: String,
    /// The same rows as JSONL.
    pub store_jsonl: String,
}

impl SoakReport {
    /// Number of distinct fault classes injected.
    pub fn classes(&self) -> usize {
        self.faults_by_class.len()
    }

    /// True when no invariant broke.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Multi-line human summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "chaos soak [{workload}] seed=0x{seed:x}: {injected} faults injected \
             ({skipped} skipped) across {classes} classes\n",
            workload = self.workload,
            seed = self.seed,
            injected = self.faults_injected,
            skipped = self.faults_skipped,
            classes = self.classes(),
        ));
        for (class, count) in &self.faults_by_class {
            out.push_str(&format!("  {class}: {count}\n"));
        }
        out.push_str(&format!(
            "delivery: {delivered}/{published} samples (distinct {distinct}), \
             {purged} expired, {buffered} still buffered\n",
            delivered = self.delivered,
            published = self.published,
            distinct = self.delivered_distinct,
            purged = self.purged,
            buffered = self.buffered,
        ));
        out.push_str(&format!("violations: {}\n", self.violations.len()));
        for v in &self.violations {
            out.push_str(&format!(
                "  [{at}] {device} {kind}: {detail}\n",
                at = v.at,
                device = v.device,
                kind = v.kind,
                detail = v.detail,
            ));
        }
        out
    }
}

/// The per-device counting script. `thaw`/`freeze` persist the counter
/// across reboots; the counter is frozen and logged in the same atomic
/// script step as the publish, which is what makes the invariant checks
/// sound.
pub(crate) fn tick_script(period: SimDuration) -> String {
    let period_ms = period.as_millis();
    format!(
        "var st = thaw();\n\
         var n = st == null ? 0 : st.n;\n\
         function tick() {{\n\
             n = n + 1;\n\
             freeze({{ n: n }});\n\
             publish('chaos-data', {{ n: n }});\n\
             logTo('chaos-sent', n);\n\
             setTimeout(tick, {period_ms});\n\
         }}\n\
         tick();\n"
    )
}

/// Runs one soak of the synthetic counter workload; see the module
/// docs.
pub fn run_soak(cfg: &SoakConfig) -> SoakReport {
    run_workload_soak(cfg, &CounterWorkload)
}

/// Runs one soak of an arbitrary [`WorkloadSpec`]; see the module docs.
pub fn run_workload_soak(cfg: &SoakConfig, workload: &dyn WorkloadSpec) -> SoakReport {
    let sim = Sim::new();
    let obs_cfg = ObsConfig::on()
        .ring_capacity(1 << 20)
        .only_categories(["chaos", "pogo"]);
    let mut testbed = Testbed::with_obs(&sim, obs_cfg);
    workload.setup(&mut testbed, cfg);

    let harness = InvariantHarness::for_workload(&testbed, workload.name(), workload.audits());
    workload.deploy(&testbed, cfg);

    let end = SimTime::ZERO + workload.duration(cfg);
    let plan = FaultPlan::seeded(cfg.seed)
        .devices(testbed.devices().len())
        .window(SimTime::ZERO + SimDuration::from_mins(30), end)
        .mean_gap(cfg.mean_fault_gap)
        .build();
    let controller = ChaosController::install(&testbed, &plan);
    for fault in plan.faults() {
        let h = harness.clone();
        sim.schedule_at(fault.at + fault.kind.window() + SETTLE, move || {
            h.check();
        });
    }

    sim.run_until(end + SETTLE);

    // Drain: revive and plug in the whole fleet, then let the retry
    // machinery flush every store before the loss accounting runs.
    for node in testbed.devices() {
        if node.is_powered_off() {
            node.power_on();
        }
        let phone = node.phone();
        phone.battery().set_charging(true);
        if phone.connectivity().active().is_none() {
            phone.connectivity().set_active(Some(Bearer::Wifi));
        }
    }
    sim.run_for(DRAIN);
    harness.final_check();

    let published = harness.sent_total();
    let mut purged = 0u64;
    let mut buffered = 0u64;
    for node in testbed.devices() {
        purged += node.purged();
        buffered += node.buffered() as u64;
    }
    let trace_jsonl = if cfg.capture_trace {
        pogo_obs::export::to_jsonl(&testbed.obs().events())
    } else {
        String::new()
    };
    let store = testbed.collector().store();
    let mut store_rows = Vec::new();
    for audit in workload.audits() {
        store_rows.extend(store.scan(&ScanQuery::exp(&audit.exp).channel(&audit.channel)));
    }
    let store_csv = pogo_ingest::export::to_csv(&store_rows);
    let store_jsonl = pogo_ingest::export::to_jsonl(&store_rows);
    SoakReport {
        workload: workload.name().to_owned(),
        seed: cfg.seed,
        faults_injected: controller.injected(),
        faults_skipped: controller.skipped(),
        faults_by_class: controller
            .by_class()
            .into_iter()
            .map(|(class, count)| (class.to_owned(), count))
            .collect(),
        published,
        delivered: harness.delivered_total(),
        delivered_distinct: harness.delivered_distinct(),
        purged,
        buffered,
        violations: harness.violations(),
        trace_jsonl,
        store_csv,
        store_jsonl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature soak that still crosses several fault windows; the
    /// full-size run lives in the `chaos_soak` binary (CI runs it with
    /// `--check`).
    #[test]
    fn short_soak_holds_the_invariants() {
        let cfg = SoakConfig {
            seed: 11,
            phones: 3,
            duration: SimDuration::from_hours(4),
            mean_fault_gap: SimDuration::from_mins(10),
            capture_trace: false,
            ..SoakConfig::default()
        };
        let report = run_soak(&cfg);
        assert!(report.faults_injected >= 10, "{}", report.summary());
        assert!(report.classes() >= 3, "{}", report.summary());
        assert!(report.passed(), "{}", report.summary());
        assert!(report.delivered_distinct > 0);
    }
}
