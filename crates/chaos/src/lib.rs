//! Deterministic fault injection for Pogo testbeds.
//!
//! The paper's evaluation (§5) runs Pogo on phones that reboot, lose
//! their data connection, and fall off the XMPP server — and claims the
//! store-and-forward layer (§4.6) rides it all out. This crate turns
//! that claim into a checkable property:
//!
//! * [`FaultPlan`] — a seed-driven (or hand-scripted) schedule of
//!   faults: switchboard restarts and outages, per-link loss/jitter
//!   degradation, device reboots, battery deaths, roster churn,
//!   bearer-flap storms, and clock skew.
//! * [`ChaosController`] — injects a plan into a live
//!   [`Testbed`](pogo_core::Testbed), healing every fault window
//!   deterministically and recording each injection as `chaos` obs
//!   events and metrics.
//! * [`WorkloadSpec`] — describes a deployable workload and the
//!   channels to audit; [`CounterWorkload`] is the synthetic original,
//!   and the root crate implements localization, RogueFinder, and the
//!   table-4 cohort replay on the same trait.
//! * [`InvariantHarness`] — watches the collector and asserts the
//!   delivery invariants on every audited channel after every fault
//!   window: exactly-once arrival per device, no phantom data, frozen
//!   script state never regresses, and the only permitted loss is
//!   [`MessageStore`] age expiry.
//! * [`run_workload_soak`] — the whole thing as one function: a
//!   multi-day fleet soak of any workload under a fixed seed,
//!   returning a [`SoakReport`]. [`run_soak`] is the counter-workload
//!   shorthand. The `chaos_soak` binary wraps both for CI (`--check`
//!   runs the soak twice and byte-compares the obs traces).
//!
//! Everything is seeded: the same [`SoakConfig`] produces the same
//! faults, the same packet drops, and byte-identical observability
//! traces on every run — a failing soak replays exactly.
//!
//! [`MessageStore`]: pogo_net::MessageStore

mod inject;
mod invariant;
mod plan;
mod soak;
mod workload;

pub use inject::ChaosController;
pub use invariant::{InvariantHarness, Violation};
pub use plan::{Fault, FaultKind, FaultPlan, FaultPlanBuilder};
pub use soak::{run_soak, run_workload_soak, SoakConfig, SoakReport};
pub use workload::{ChannelAudit, CounterWorkload, WorkloadSpec};
