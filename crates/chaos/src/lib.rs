//! Deterministic fault injection for Pogo testbeds.
//!
//! The paper's evaluation (§5) runs Pogo on phones that reboot, lose
//! their data connection, and fall off the XMPP server — and claims the
//! store-and-forward layer (§4.6) rides it all out. This crate turns
//! that claim into a checkable property:
//!
//! * [`FaultPlan`] — a seed-driven (or hand-scripted) schedule of
//!   faults: switchboard restarts and outages, per-link loss/jitter
//!   degradation, device reboots, battery deaths, roster churn.
//! * [`ChaosController`] — injects a plan into a live
//!   [`Testbed`](pogo_core::Testbed), healing every fault window
//!   deterministically and recording each injection as `chaos` obs
//!   events and metrics.
//! * [`InvariantHarness`] — watches the collector and asserts the
//!   delivery invariants after every fault window: exactly-once arrival
//!   per device, no phantom data, frozen script state never regresses,
//!   and the only permitted loss is [`MessageStore`] age expiry.
//! * [`run_soak`] — the whole thing as one function: an 8-phone,
//!   multi-day soak under a fixed seed, returning a [`SoakReport`].
//!   The `chaos_soak` binary wraps it for CI (`--check` runs the soak
//!   twice and byte-compares the obs traces).
//!
//! Everything is seeded: the same [`SoakConfig`] produces the same
//! faults, the same packet drops, and byte-identical observability
//! traces on every run — a failing soak replays exactly.
//!
//! [`MessageStore`]: pogo_net::MessageStore

mod inject;
mod invariant;
mod plan;
mod soak;

pub use inject::ChaosController;
pub use invariant::{InvariantHarness, Violation};
pub use plan::{Fault, FaultKind, FaultPlan, FaultPlanBuilder};
pub use soak::{run_soak, SoakConfig, SoakReport};
