//! Delivery invariants checked during and after a chaos run.
//!
//! The harness audits N experiment channels at the collector against
//! the per-device *sent logs* each script appends to. Each audited
//! channel is declared on the collector's registry with an integer
//! schema extracting the audit's key field, so the delivered side of
//! every check is a [`SampleStore`](pogo_core::SampleStore) scan — the
//! same queryable store the benches export from — rather than a
//! harness-private callback tally. The checks assert the §4.6
//! reliability contract on every channel:
//!
//! 1. **Exactly-once arrival** — the at-least-once transport plus the
//!    collector's dedup filter never surface the same sample twice.
//! 2. **No phantoms** — everything delivered was actually published by
//!    a device (the log is written in the same atomic script step as
//!    the publish).
//! 3. **Frozen state never regresses** — where a script persists a
//!    counter with `freeze()` before every publish (the audit's
//!    `monotonic` flag), the sent log is exactly `1, 2, 3, …` with no
//!    repeats and no gaps, surviving reboots and battery deaths.
//! 4. **Expiry is the only loss** — after a final drain, every
//!    published sample is delivered, still buffered, or accounted for
//!    by the [`MessageStore`](pogo_net::MessageStore) age purge. Loss
//!    is accounted per device *across* channels, because the purge
//!    counter is store-wide.
//!
//! Which channels to audit, and with what semantics, comes from the
//! workload's [`ChannelAudit`](crate::workload::ChannelAudit) list —
//! the same harness audits the synthetic counter soak, the
//! localization pipeline, RogueFinder's geofenced stream, and the
//! table-4 cohort replay.
//!
//! Violations are deduplicated (a standing failure reports once, not
//! once per check) and mirrored as `chaos`/`violation` obs events so
//! they land in the trace next to the fault that caused them; a
//! per-workload gauge tracks the running violation count.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use pogo_core::{
    ChannelSchema, CollectorNode, DeviceNode, SampleValue, ScanQuery, Template, Testbed,
};
use pogo_obs::{field, Obs};
use pogo_sim::{Sim, SimTime};

use crate::workload::ChannelAudit;

/// One invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Simulated time the violation was detected.
    pub at: SimTime,
    /// JID of the device involved.
    pub device: String,
    /// Audited channel the violation was found on (`*` for cross-channel
    /// checks like loss accounting).
    pub channel: String,
    /// Which invariant broke: `duplicate-delivery`, `phantom-delivery`,
    /// `frozen-state-regression`, or `untracked-loss`.
    pub kind: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

struct Inner {
    sim: Sim,
    devices: Vec<DeviceNode>,
    /// The audited collector; delivered counters are scans of its
    /// sample store (duplicates included — that is the point).
    collector: CollectorNode,
    obs: Obs,
    workload: &'static str,
    audits: Vec<ChannelAudit>,
    /// Dedup keys of violations already reported.
    reported: BTreeSet<String>,
    violations: Vec<Violation>,
    checks: u64,
}

/// Watches a chaos workload and asserts its delivery invariants; see
/// the module docs. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct InvariantHarness {
    inner: Rc<RefCell<Inner>>,
}

impl std::fmt::Debug for InvariantHarness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("InvariantHarness")
            .field("workload", &inner.workload)
            .field("audits", &inner.audits.len())
            .field("checks", &inner.checks)
            .field("violations", &inner.violations.len())
            .finish()
    }
}

impl InvariantHarness {
    /// Registers every audited channel on the testbed collector's
    /// registry (an `i64` schema extracting the audit's key field).
    /// Install *before* deploying the workload so the subscriptions are
    /// mirrored to devices from the start.
    ///
    /// For each audit, device scripts must publish samples carrying the
    /// audit's `key_field` and append the same number to the audit's
    /// `sent_log` in the same script step. A sample *without* the
    /// numeric key is rejected by the schema check and surfaces as
    /// `INGEST_SCHEMA_MISMATCH` in the collector's error log and
    /// stats, instead of reaching the store.
    pub fn for_workload(
        testbed: &Testbed,
        workload: &'static str,
        audits: Vec<ChannelAudit>,
    ) -> Self {
        for audit in &audits {
            testbed
                .collector()
                .registry()
                .register(
                    &audit.exp,
                    &audit.channel,
                    ChannelSchema::new(Template::I64).field(&audit.key_field),
                )
                .expect("audit channel registers on the collector");
        }
        InvariantHarness {
            inner: Rc::new(RefCell::new(Inner {
                sim: testbed.sim().clone(),
                devices: testbed.devices().to_vec(),
                collector: testbed.collector().clone(),
                obs: testbed.obs().clone(),
                workload,
                audits,
                reported: BTreeSet::new(),
                violations: Vec::new(),
                checks: 0,
            })),
        }
    }

    /// The single-channel counter harness: subscribes to `channel` on
    /// experiment `exp`, expecting `{ n: <counter> }` samples mirrored
    /// to a `chaos-sent` log.
    pub fn install(testbed: &Testbed, exp: &str, channel: &str) -> Self {
        Self::for_workload(
            testbed,
            "counter",
            vec![ChannelAudit::new(exp, channel, "chaos-sent", "n")],
        )
    }

    /// Runs the always-valid invariants (exactly-once, no phantoms,
    /// frozen-state monotonicity) on every audited channel and returns
    /// the number of *new* violations found.
    pub fn check(&self) -> usize {
        self.run_check(false)
    }

    /// Runs every invariant including the loss accounting. Call after
    /// the run has drained (devices powered, links clean, retry periods
    /// elapsed); in-flight messages would otherwise count as loss.
    pub fn final_check(&self) -> usize {
        self.run_check(true)
    }

    /// All violations found so far.
    pub fn violations(&self) -> Vec<Violation> {
        self.inner.borrow().violations.clone()
    }

    /// Total samples delivered at the collector across all audited
    /// channels (duplicates included) — a sample-store row count.
    pub fn delivered_total(&self) -> u64 {
        let (collector, audits) = self.collector_and_audits();
        let store = collector.store();
        audits
            .iter()
            .map(|a| {
                store
                    .scan(&ScanQuery::exp(&a.exp).channel(&a.channel))
                    .len() as u64
            })
            .sum()
    }

    /// Distinct samples delivered at the collector, per audited channel
    /// per device.
    pub fn delivered_distinct(&self) -> u64 {
        let (collector, audits) = self.collector_and_audits();
        let store = collector.store();
        let mut total = 0u64;
        for audit in &audits {
            let mut per_device: BTreeMap<String, BTreeSet<i64>> = BTreeMap::new();
            for row in store.scan(&ScanQuery::exp(&audit.exp).channel(&audit.channel)) {
                if let SampleValue::I64(n) = row.value {
                    per_device.entry(row.device).or_default().insert(n);
                }
            }
            total += per_device.values().map(|s| s.len() as u64).sum::<u64>();
        }
        total
    }

    fn collector_and_audits(&self) -> (CollectorNode, Vec<ChannelAudit>) {
        let inner = self.inner.borrow();
        (inner.collector.clone(), inner.audits.clone())
    }

    /// The delivered key sequence for one audit channel and device, in
    /// arrival order, scanned from the collector's sample store.
    fn delivered_seq(&self, audit: &ChannelAudit, jid: &str) -> Vec<i64> {
        let collector = self.inner.borrow().collector.clone();
        collector
            .store()
            .scan(
                &ScanQuery::exp(&audit.exp)
                    .channel(&audit.channel)
                    .device(jid),
            )
            .into_iter()
            .filter_map(|row| match row.value {
                SampleValue::I64(n) => Some(n),
                _ => None,
            })
            .collect()
    }

    /// Total samples the devices logged as sent across all audits.
    pub fn sent_total(&self) -> u64 {
        let inner = self.inner.borrow();
        let mut total = 0u64;
        for audit in &inner.audits {
            for node in &inner.devices {
                total += node.logs().lines(&audit.sent_log).len() as u64;
            }
        }
        total
    }

    /// Number of check passes run.
    pub fn checks_run(&self) -> u64 {
        self.inner.borrow().checks
    }

    fn run_check(&self, full: bool) -> usize {
        let (devices, audits) = {
            let inner = self.inner.borrow();
            (inner.devices.clone(), inner.audits.clone())
        };
        let before = self.inner.borrow().violations.len();
        for audit in &audits {
            for node in &devices {
                let jid = node.jid().to_string();
                let sent = self.sent_log(node, audit);
                let delivered = self.delivered_seq(audit, &jid);
                self.check_exactly_once(&jid, &audit.channel, &delivered);
                self.check_no_phantoms(&jid, &audit.channel, &sent, &delivered);
                if audit.monotonic {
                    self.check_frozen_monotonic(&jid, &audit.channel, &sent);
                }
            }
        }
        if full {
            // Loss is accounted per device across every audited channel:
            // the store's purge counter does not distinguish channels.
            for node in &devices {
                self.check_loss_accounting(node, &audits);
            }
        }
        let (new, checks, workload, total) = {
            let mut inner = self.inner.borrow_mut();
            inner.checks += 1;
            (
                inner.violations.len() - before,
                inner.checks,
                inner.workload,
                inner.violations.len(),
            )
        };
        let obs = self.inner.borrow().obs.clone();
        obs.event(
            "chaos",
            if full {
                "final-check"
            } else {
                "invariant-check"
            },
            vec![field("check", checks), field("new_violations", new)],
        );
        obs.metrics().gauge(violation_gauge(workload), total as f64);
        new
    }

    fn sent_log(&self, node: &DeviceNode, audit: &ChannelAudit) -> Vec<i64> {
        node.logs()
            .lines(&audit.sent_log)
            .iter()
            .filter_map(|line| line.trim().parse::<f64>().ok())
            .map(|v| v as i64)
            .collect()
    }

    fn check_exactly_once(&self, jid: &str, channel: &str, delivered: &[i64]) {
        let mut counts: BTreeMap<i64, usize> = BTreeMap::new();
        for &n in delivered {
            *counts.entry(n).or_insert(0) += 1;
        }
        for (n, count) in counts {
            if count > 1 {
                self.report(
                    jid,
                    channel,
                    "duplicate-delivery",
                    format!("sample n={n} delivered {count} times"),
                );
            }
        }
    }

    fn check_no_phantoms(&self, jid: &str, channel: &str, sent: &[i64], delivered: &[i64]) {
        let sent: BTreeSet<i64> = sent.iter().copied().collect();
        for &n in delivered {
            if !sent.contains(&n) {
                self.report(
                    jid,
                    channel,
                    "phantom-delivery",
                    format!("sample n={n} delivered but never logged as sent"),
                );
            }
        }
    }

    fn check_frozen_monotonic(&self, jid: &str, channel: &str, sent: &[i64]) {
        for (i, &n) in sent.iter().enumerate() {
            let expected = i as i64 + 1;
            if n != expected {
                self.report(
                    jid,
                    channel,
                    "frozen-state-regression",
                    format!("sent log position {i} holds n={n}, expected {expected}"),
                );
                // One report per device: after the first divergence every
                // later position is off by the same shift.
                break;
            }
        }
    }

    fn check_loss_accounting(&self, node: &DeviceNode, audits: &[ChannelAudit]) {
        let jid = node.jid().to_string();
        let mut sent_total = 0u64;
        let mut distinct = 0u64;
        for audit in audits {
            sent_total += self.sent_log(node, audit).len() as u64;
            distinct += self
                .delivered_seq(audit, &jid)
                .iter()
                .collect::<BTreeSet<_>>()
                .len() as u64;
        }
        let purged = node.purged();
        let buffered = node.buffered() as u64;
        if sent_total > distinct + purged + buffered {
            self.report(
                &jid,
                "*",
                "untracked-loss",
                format!(
                    "{sent_total} sent but only {distinct} delivered + {purged} expired \
                     + {buffered} buffered"
                ),
            );
        }
    }

    fn report(&self, device: &str, channel: &str, kind: &'static str, detail: String) {
        let key = format!("{device}|{channel}|{kind}|{detail}");
        {
            let mut inner = self.inner.borrow_mut();
            if !inner.reported.insert(key) {
                return;
            }
            let at = inner.sim.now();
            inner.violations.push(Violation {
                at,
                device: device.to_owned(),
                channel: channel.to_owned(),
                kind,
                detail: detail.clone(),
            });
        }
        let obs = self.inner.borrow().obs.clone();
        obs.event(
            "chaos",
            "violation",
            vec![
                field("kind", kind),
                field("device", device.to_owned()),
                field("channel", channel.to_owned()),
                field("detail", detail),
            ],
        );
        obs.metrics().inc("chaos.violations", 1);
    }
}

/// Static per-workload violation gauge names (metrics keys must not
/// allocate on the hot path and must be stable across versions).
fn violation_gauge(workload: &str) -> &'static str {
    match workload {
        "counter" => "chaos.violations.counter",
        "localization" => "chaos.violations.localization",
        "roguefinder" => "chaos.violations.roguefinder",
        "table4" => "chaos.violations.table4",
        _ => "chaos.violations.workload",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pogo_core::proto::{ExperimentSpec, ScriptSpec};
    use pogo_core::DeviceSetup;
    use pogo_net::FlushPolicy;
    use pogo_sim::SimDuration;

    /// Forges a sample straight into the collector-side broker, as if a
    /// device had published it — it flows through the registry's real
    /// ingest path into the store, which is what the checks scan.
    fn forge(tb: &Testbed, channel: &str, n: f64) {
        use pogo_core::Msg;
        tb.collector()
            .context("chaos")
            .expect("experiment exists")
            .broker()
            .publish_from(
                channel,
                &Msg::obj([("n", Msg::Num(n))]),
                Some("phone-0@pogo"),
            );
    }

    fn ticking_testbed(sim: &Sim) -> (Testbed, InvariantHarness) {
        let mut tb = Testbed::new(sim);
        tb.add(
            DeviceSetup::named("phone-0")
                .configure(|c| c.with_flush_policy(FlushPolicy::Immediate)),
        );
        let harness = InvariantHarness::install(&tb, "chaos", "chaos-data");
        let jids = vec![tb.devices()[0].jid()];
        tb.collector()
            .deployment(&ExperimentSpec {
                id: "chaos".into(),
                scripts: vec![ScriptSpec {
                    name: "tick.js".into(),
                    source: crate::soak::tick_script(SimDuration::from_secs(60)),
                }],
            })
            .to(&jids)
            .send()
            .expect("tick script passes lint");
        (tb, harness)
    }

    #[test]
    fn clean_run_has_no_violations() {
        let sim = Sim::new();
        let (_tb, harness) = ticking_testbed(&sim);
        sim.run_for(SimDuration::from_mins(30));
        assert_eq!(harness.final_check(), 0, "{:?}", harness.violations());
        assert!(harness.delivered_distinct() >= 25);
    }

    #[test]
    fn fabricated_duplicate_is_caught_once() {
        let sim = Sim::new();
        let (tb, harness) = ticking_testbed(&sim);
        sim.run_for(SimDuration::from_mins(10));
        forge(&tb, "chaos-data", 1.0);
        assert_eq!(harness.check(), 1);
        assert_eq!(harness.check(), 0, "standing violation reports once");
        assert_eq!(harness.violations()[0].kind, "duplicate-delivery");
        assert_eq!(harness.violations()[0].channel, "chaos-data");
    }

    #[test]
    fn fabricated_phantom_is_caught() {
        let sim = Sim::new();
        let (tb, harness) = ticking_testbed(&sim);
        sim.run_for(SimDuration::from_mins(10));
        forge(&tb, "chaos-data", 9_999.0);
        harness.check();
        assert!(harness
            .violations()
            .iter()
            .any(|v| v.kind == "phantom-delivery"));
    }

    /// Two audited channels are tracked independently: a duplicate
    /// fabricated on one never bleeds into the other's bookkeeping.
    #[test]
    fn audits_are_tracked_per_channel() {
        let sim = Sim::new();
        let mut tb = Testbed::new(&sim);
        tb.add(
            DeviceSetup::named("phone-0")
                .configure(|c| c.with_flush_policy(FlushPolicy::Immediate)),
        );
        let harness = InvariantHarness::for_workload(
            &tb,
            "dual",
            vec![
                ChannelAudit::new("chaos", "chaos-data", "chaos-sent", "n"),
                ChannelAudit::new("chaos", "chaos-echo", "chaos-echo-sent", "n"),
            ],
        );
        let jids = vec![tb.devices()[0].jid()];
        // One script, two channels, two sent logs.
        let src = "var n = 0;\n\
                   function tick() {\n\
                       n = n + 1;\n\
                       publish('chaos-data', { n: n });\n\
                       logTo('chaos-sent', n);\n\
                       publish('chaos-echo', { n: n });\n\
                       logTo('chaos-echo-sent', n);\n\
                       setTimeout(tick, 60000);\n\
                   }\n\
                   tick();\n";
        tb.collector()
            .deployment(&ExperimentSpec {
                id: "chaos".into(),
                scripts: vec![ScriptSpec {
                    name: "dual.js".into(),
                    source: src.into(),
                }],
            })
            .to(&jids)
            .send()
            .expect("dual script passes lint");
        sim.run_for(SimDuration::from_mins(20));
        assert_eq!(harness.final_check(), 0, "{:?}", harness.violations());
        // Both channels saw the same distinct counters.
        let data_audit = ChannelAudit::new("chaos", "chaos-data", "chaos-sent", "n");
        let echo_audit = ChannelAudit::new("chaos", "chaos-echo", "chaos-echo-sent", "n");
        let a = harness.delivered_seq(&data_audit, "phone-0@pogo");
        let b = harness.delivered_seq(&echo_audit, "phone-0@pogo");
        assert!(!a.is_empty());
        assert_eq!(a, b);
        // A duplicate on channel 1 is attributed to channel 1 only.
        forge(&tb, "chaos-echo", 1.0);
        assert_eq!(harness.check(), 1);
        assert_eq!(harness.violations()[0].channel, "chaos-echo");
    }
}
