//! Delivery invariants checked during and after a chaos run.
//!
//! The harness watches one experiment channel at the collector and the
//! `chaos-sent` log each device script appends to, and asserts the
//! §4.6 reliability contract:
//!
//! 1. **Exactly-once arrival** — the at-least-once transport plus the
//!    collector's dedup filter never surface the same sample twice.
//! 2. **No phantoms** — everything delivered was actually published by
//!    a device (the log is written in the same atomic script step as
//!    the publish).
//! 3. **Frozen state never regresses** — each device's sample counter,
//!    persisted with `freeze()` before every publish, survives reboots
//!    and battery deaths: the sent log is exactly `1, 2, 3, …` with no
//!    repeats and no gaps.
//! 4. **Expiry is the only loss** — after a final drain, every
//!    published sample is delivered, still buffered, or accounted for
//!    by the [`MessageStore`](pogo_net::MessageStore) age purge.
//!
//! Violations are deduplicated (a standing failure reports once, not
//! once per check) and mirrored as `chaos`/`violation` obs events so
//! they land in the trace next to the fault that caused them.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use pogo_core::{DeviceNode, Msg, Testbed};
use pogo_obs::{field, Obs};
use pogo_sim::{Sim, SimTime};

/// One invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Simulated time the violation was detected.
    pub at: SimTime,
    /// JID of the device involved.
    pub device: String,
    /// Which invariant broke: `duplicate-delivery`, `phantom-delivery`,
    /// `frozen-state-regression`, or `untracked-loss`.
    pub kind: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

struct Inner {
    sim: Sim,
    devices: Vec<DeviceNode>,
    obs: Obs,
    /// Sample counters delivered at the collector, per device JID, in
    /// arrival order (duplicates included — that is the point).
    delivered: BTreeMap<String, Vec<i64>>,
    /// Dedup keys of violations already reported.
    reported: BTreeSet<String>,
    violations: Vec<Violation>,
    checks: u64,
}

/// Watches a chaos experiment and asserts its delivery invariants; see
/// the module docs. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct InvariantHarness {
    inner: Rc<RefCell<Inner>>,
}

impl std::fmt::Debug for InvariantHarness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("InvariantHarness")
            .field("checks", &inner.checks)
            .field("violations", &inner.violations.len())
            .finish()
    }
}

impl InvariantHarness {
    /// Subscribes to `channel` on experiment `exp` at the testbed's
    /// collector. Install *before* deploying the experiment so the
    /// subscription is mirrored to devices from the start.
    ///
    /// Device scripts must publish `{ n: <counter> }` samples on the
    /// channel and append the same counter to their `chaos-sent` log in
    /// the same script step.
    pub fn install(testbed: &Testbed, exp: &str, channel: &str) -> Self {
        let harness = InvariantHarness {
            inner: Rc::new(RefCell::new(Inner {
                sim: testbed.sim().clone(),
                devices: testbed.devices().to_vec(),
                obs: testbed.obs().clone(),
                delivered: BTreeMap::new(),
                reported: BTreeSet::new(),
                violations: Vec::new(),
                checks: 0,
            })),
        };
        let inner = harness.inner.clone();
        testbed.collector().on_data(exp, channel, move |msg, from| {
            // A sample without a numeric `n` is recorded as -1: the
            // phantom check flags it, with the device attributed.
            let n = msg
                .get("n")
                .and_then(Msg::as_num)
                .map(|v| v as i64)
                .unwrap_or(-1);
            inner
                .borrow_mut()
                .delivered
                .entry(from.to_owned())
                .or_default()
                .push(n);
        });
        harness
    }

    /// Runs the always-valid invariants (exactly-once, no phantoms,
    /// frozen-state monotonicity) and returns the number of *new*
    /// violations found.
    pub fn check(&self) -> usize {
        self.run_check(false)
    }

    /// Runs every invariant including the loss accounting. Call after
    /// the run has drained (devices powered, links clean, retry periods
    /// elapsed); in-flight messages would otherwise count as loss.
    pub fn final_check(&self) -> usize {
        self.run_check(true)
    }

    /// All violations found so far.
    pub fn violations(&self) -> Vec<Violation> {
        self.inner.borrow().violations.clone()
    }

    /// Total samples delivered at the collector (duplicates included).
    pub fn delivered_total(&self) -> u64 {
        self.inner
            .borrow()
            .delivered
            .values()
            .map(|v| v.len() as u64)
            .sum()
    }

    /// Distinct samples delivered at the collector.
    pub fn delivered_distinct(&self) -> u64 {
        self.inner
            .borrow()
            .delivered
            .values()
            .map(|v| v.iter().collect::<BTreeSet<_>>().len() as u64)
            .sum()
    }

    /// Number of check passes run.
    pub fn checks_run(&self) -> u64 {
        self.inner.borrow().checks
    }

    fn run_check(&self, full: bool) -> usize {
        let devices = self.inner.borrow().devices.clone();
        let before = self.inner.borrow().violations.len();
        for node in &devices {
            let jid = node.jid().to_string();
            let sent: Vec<i64> = node
                .logs()
                .lines("chaos-sent")
                .iter()
                .filter_map(|line| line.trim().parse::<f64>().ok())
                .map(|v| v as i64)
                .collect();
            let delivered = self
                .inner
                .borrow()
                .delivered
                .get(&jid)
                .cloned()
                .unwrap_or_default();
            self.check_exactly_once(&jid, &delivered);
            self.check_no_phantoms(&jid, &sent, &delivered);
            self.check_frozen_monotonic(&jid, &sent);
            if full {
                self.check_loss_accounting(node, &jid, &sent, &delivered);
            }
        }
        let (new, checks) = {
            let mut inner = self.inner.borrow_mut();
            inner.checks += 1;
            (inner.violations.len() - before, inner.checks)
        };
        self.inner.borrow().obs.event(
            "chaos",
            if full {
                "final-check"
            } else {
                "invariant-check"
            },
            vec![field("check", checks), field("new_violations", new)],
        );
        new
    }

    fn check_exactly_once(&self, jid: &str, delivered: &[i64]) {
        let mut counts: BTreeMap<i64, usize> = BTreeMap::new();
        for &n in delivered {
            *counts.entry(n).or_insert(0) += 1;
        }
        for (n, count) in counts {
            if count > 1 {
                self.report(
                    jid,
                    "duplicate-delivery",
                    format!("sample n={n} delivered {count} times"),
                );
            }
        }
    }

    fn check_no_phantoms(&self, jid: &str, sent: &[i64], delivered: &[i64]) {
        let sent: BTreeSet<i64> = sent.iter().copied().collect();
        for &n in delivered {
            if !sent.contains(&n) {
                self.report(
                    jid,
                    "phantom-delivery",
                    format!("sample n={n} delivered but never logged as sent"),
                );
            }
        }
    }

    fn check_frozen_monotonic(&self, jid: &str, sent: &[i64]) {
        for (i, &n) in sent.iter().enumerate() {
            let expected = i as i64 + 1;
            if n != expected {
                self.report(
                    jid,
                    "frozen-state-regression",
                    format!("sent log position {i} holds n={n}, expected {expected}"),
                );
                // One report per device: after the first divergence every
                // later position is off by the same shift.
                break;
            }
        }
    }

    fn check_loss_accounting(&self, node: &DeviceNode, jid: &str, sent: &[i64], delivered: &[i64]) {
        let distinct = delivered.iter().collect::<BTreeSet<_>>().len() as u64;
        let purged = node.purged();
        let buffered = node.buffered() as u64;
        let sent_total = sent.len() as u64;
        if sent_total > distinct + purged + buffered {
            self.report(
                jid,
                "untracked-loss",
                format!(
                    "{sent_total} sent but only {distinct} delivered + {purged} expired \
                     + {buffered} buffered"
                ),
            );
        }
    }

    fn report(&self, device: &str, kind: &'static str, detail: String) {
        let key = format!("{device}|{kind}|{detail}");
        {
            let mut inner = self.inner.borrow_mut();
            if !inner.reported.insert(key) {
                return;
            }
            let at = inner.sim.now();
            inner.violations.push(Violation {
                at,
                device: device.to_owned(),
                kind,
                detail: detail.clone(),
            });
        }
        let obs = self.inner.borrow().obs.clone();
        obs.event(
            "chaos",
            "violation",
            vec![
                field("kind", kind),
                field("device", device.to_owned()),
                field("detail", detail),
            ],
        );
        obs.metrics().inc("chaos.violations", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pogo_core::proto::{ExperimentSpec, ScriptSpec};
    use pogo_core::DeviceSetup;
    use pogo_net::FlushPolicy;
    use pogo_sim::SimDuration;

    fn ticking_testbed(sim: &Sim) -> (Testbed, InvariantHarness) {
        let mut tb = Testbed::new(sim);
        tb.add(
            DeviceSetup::named("phone-0")
                .configure(|c| c.with_flush_policy(FlushPolicy::Immediate)),
        );
        let harness = InvariantHarness::install(&tb, "chaos", "chaos-data");
        let jids = vec![tb.devices()[0].jid()];
        tb.collector()
            .deployment(&ExperimentSpec {
                id: "chaos".into(),
                scripts: vec![ScriptSpec {
                    name: "tick.js".into(),
                    source: crate::soak::tick_script(SimDuration::from_secs(60)),
                }],
            })
            .to(&jids)
            .send()
            .expect("tick script passes lint");
        (tb, harness)
    }

    #[test]
    fn clean_run_has_no_violations() {
        let sim = Sim::new();
        let (_tb, harness) = ticking_testbed(&sim);
        sim.run_for(SimDuration::from_mins(30));
        assert_eq!(harness.final_check(), 0, "{:?}", harness.violations());
        assert!(harness.delivered_distinct() >= 25);
    }

    #[test]
    fn fabricated_duplicate_is_caught_once() {
        let sim = Sim::new();
        let (_tb, harness) = ticking_testbed(&sim);
        sim.run_for(SimDuration::from_mins(10));
        harness
            .inner
            .borrow_mut()
            .delivered
            .get_mut("phone-0@pogo")
            .expect("samples arrived")
            .push(1);
        assert_eq!(harness.check(), 1);
        assert_eq!(harness.check(), 0, "standing violation reports once");
        assert_eq!(harness.violations()[0].kind, "duplicate-delivery");
    }

    #[test]
    fn fabricated_phantom_is_caught() {
        let sim = Sim::new();
        let (_tb, harness) = ticking_testbed(&sim);
        sim.run_for(SimDuration::from_mins(10));
        harness
            .inner
            .borrow_mut()
            .delivered
            .get_mut("phone-0@pogo")
            .expect("samples arrived")
            .push(9_999);
        harness.check();
        assert!(harness
            .violations()
            .iter()
            .any(|v| v.kind == "phantom-delivery"));
    }
}
