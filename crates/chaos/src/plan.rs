//! Fault plans: what goes wrong, when, for how long.
//!
//! A [`FaultPlan`] is data, not behaviour — a sorted list of
//! [`Fault`]s that [`ChaosController`](crate::ChaosController) later
//! schedules onto a simulation. Plans come from two places: scripted
//! by hand (regression tests pinning one exact scenario) or generated
//! from a seed (soaks exploring a whole schedule family). Same seed,
//! same plan, always.

use std::collections::BTreeSet;

use pogo_sim::{DeviceId, SimDuration, SimRng, SimTime};

/// One class of injected failure.
///
/// Device-scoped kinds carry the dense [`DeviceId`] of the target —
/// the device's index in the testbed's creation order, not a JID — so
/// a plan can be generated before the testbed exists.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Bounce the switchboard: every session drops, the server accepts
    /// reconnections immediately.
    ServerRestart,
    /// Take the switchboard down hard: sessions drop and connection
    /// attempts fail with `ServerDown` until the window ends.
    ServerOutage {
        /// How long the switchboard refuses service.
        down_for: SimDuration,
    },
    /// Degrade one device's link: independent per-leg drop probability
    /// plus uniform jitter, for a bounded window.
    LinkDegrade {
        /// Dense id of the target in testbed creation order.
        device: DeviceId,
        /// Per-leg drop probability in `[0, 1]`.
        loss: f64,
        /// Upper bound on extra uniform per-leg delay.
        jitter: SimDuration,
        /// How long the degradation lasts.
        duration: SimDuration,
    },
    /// Reboot one device: volatile state dies, frozen state survives,
    /// the middleware boots again after its configured boot delay.
    Reboot {
        /// Dense id of the target in testbed creation order.
        device: DeviceId,
    },
    /// Hard power loss: the device is off (no middleware, no radio)
    /// until the window ends, then charges back up and boots.
    BatteryDeath {
        /// Dense id of the target in testbed creation order.
        device: DeviceId,
        /// How long the device stays dark.
        off_for: SimDuration,
    },
    /// Administrative roster churn: the device is unfriended from the
    /// collector (sends fail `NotAuthorized`) and re-befriended later.
    RosterChurn {
        /// Dense id of the target in testbed creation order.
        device: DeviceId,
        /// How long until the administrator re-adds the device.
        rejoin_after: SimDuration,
    },
    /// Bearer handover storm: the active interface flaps Wifi↔Cellular
    /// every `period`, `flaps` times, then the pre-storm bearer is
    /// restored. Each handover drops the session's in-flight envelopes
    /// (§4.6), hammering reconnect, tail-sync, and store-and-forward.
    BearerFlap {
        /// Dense id of the target in testbed creation order.
        device: DeviceId,
        /// Number of handovers in the storm.
        flaps: u32,
        /// Gap between consecutive handovers.
        period: SimDuration,
    },
    /// Clock skew: the device's real-time clock steps forward by `step`
    /// and gains `drift_ppm` local ms per 1e6 true ms until the window
    /// ends, when an NITZ-style fix snaps it back to truth. Timers are
    /// unaffected (elapsed-time semantics); sensor timestamps are not.
    ClockSkew {
        /// Dense id of the target in testbed creation order.
        device: DeviceId,
        /// Forward step applied at injection.
        step: SimDuration,
        /// Drift rate while the fault is active (may be negative).
        drift_ppm: i64,
        /// How long the clock stays skewed.
        duration: SimDuration,
    },
}

impl FaultKind {
    /// Stable class name, used for obs events and per-class counters.
    pub fn class(&self) -> &'static str {
        match self {
            FaultKind::ServerRestart => "server-restart",
            FaultKind::ServerOutage { .. } => "server-outage",
            FaultKind::LinkDegrade { .. } => "link-degrade",
            FaultKind::Reboot { .. } => "reboot",
            FaultKind::BatteryDeath { .. } => "battery-death",
            FaultKind::RosterChurn { .. } => "roster-churn",
            FaultKind::BearerFlap { .. } => "bearer-flap",
            FaultKind::ClockSkew { .. } => "clock-skew",
        }
    }

    /// How long the fault stays active before it heals. Instantaneous
    /// faults (restart, reboot) report zero.
    pub fn window(&self) -> SimDuration {
        match self {
            FaultKind::ServerRestart | FaultKind::Reboot { .. } => SimDuration::ZERO,
            FaultKind::ServerOutage { down_for } => *down_for,
            FaultKind::LinkDegrade { duration, .. } => *duration,
            FaultKind::BatteryDeath { off_for, .. } => *off_for,
            FaultKind::RosterChurn { rejoin_after, .. } => *rejoin_after,
            FaultKind::BearerFlap { flaps, period, .. } => period.mul(*flaps as u64),
            FaultKind::ClockSkew { duration, .. } => *duration,
        }
    }

    /// The targeted device id, if this is a device-scoped fault.
    pub fn device(&self) -> Option<DeviceId> {
        match self {
            FaultKind::ServerRestart | FaultKind::ServerOutage { .. } => None,
            FaultKind::LinkDegrade { device, .. }
            | FaultKind::Reboot { device }
            | FaultKind::BatteryDeath { device, .. }
            | FaultKind::RosterChurn { device, .. }
            | FaultKind::BearerFlap { device, .. }
            | FaultKind::ClockSkew { device, .. } => Some(*device),
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    /// When the fault is injected.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// An ordered schedule of faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// A hand-written plan (sorted by injection time; ties keep their
    /// given order). Scripted plans carry seed 0 — per-link loss RNG
    /// still derives from it deterministically.
    pub fn scripted(mut faults: Vec<Fault>) -> Self {
        faults.sort_by_key(|f| f.at);
        FaultPlan { seed: 0, faults }
    }

    /// Starts building a seed-generated plan.
    pub fn seeded(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            seed,
            devices: 1,
            start: SimTime::ZERO + SimDuration::from_mins(30),
            end: SimTime::ZERO + SimDuration::from_hours(48),
            mean_gap: SimDuration::from_mins(20),
        }
    }

    /// The seed the plan was generated from (0 for scripted plans).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The faults, sorted by injection time.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The distinct fault classes present in the plan.
    pub fn classes(&self) -> BTreeSet<&'static str> {
        self.faults.iter().map(|f| f.kind.class()).collect()
    }

    /// The instant by which every fault has been injected *and healed*.
    pub fn healed_by(&self) -> SimTime {
        self.faults
            .iter()
            .map(|f| f.at + f.kind.window())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// The plan plus `extra` hand-picked faults, re-sorted by injection
    /// time. Keeps the seed, so link-loss randomness is unchanged —
    /// used to guarantee specific fault classes appear in a seeded run.
    pub fn extended(mut self, extra: Vec<Fault>) -> Self {
        self.faults.extend(extra);
        self.faults.sort_by_key(|f| f.at);
        self
    }
}

/// Builder for seed-generated fault plans; see [`FaultPlan::seeded`].
#[derive(Debug, Clone)]
pub struct FaultPlanBuilder {
    seed: u64,
    devices: usize,
    start: SimTime,
    end: SimTime,
    mean_gap: SimDuration,
}

impl FaultPlanBuilder {
    /// Number of devices faults may target (testbed creation order).
    pub fn devices(mut self, n: usize) -> Self {
        self.devices = n;
        self
    }

    /// The window faults are injected in. Every fault's heal is clamped
    /// to `end`, so a run to `end` (plus settle time) sees the full
    /// inject/heal cycle of every fault.
    pub fn window(mut self, start: SimTime, end: SimTime) -> Self {
        self.start = start;
        self.end = end;
        self
    }

    /// Mean gap between consecutive faults (exponential inter-arrivals).
    pub fn mean_gap(mut self, gap: SimDuration) -> Self {
        self.mean_gap = gap;
        self
    }

    /// Generates the plan.
    ///
    /// # Panics
    ///
    /// Panics if the builder has zero devices or an empty time window.
    pub fn build(self) -> FaultPlan {
        assert!(self.devices > 0, "a fault plan needs at least one device");
        assert!(self.start < self.end, "empty fault window");
        let mut rng = SimRng::seed_from_u64(self.seed ^ 0x506f_676f_4661_756c); // "PogoFaul"
        let mut faults = Vec::new();
        let mut t = self.start;
        loop {
            let gap_ms = rng.exponential(self.mean_gap.as_millis() as f64).max(1.0);
            t += SimDuration::from_millis(gap_ms as u64);
            if t >= self.end {
                break;
            }
            let remaining = self.end - t;
            let kind = self.pick_kind(&mut rng, remaining);
            faults.push(Fault { at: t, kind });
        }
        FaultPlan {
            seed: self.seed,
            faults,
        }
    }

    /// Weighted kind choice: link trouble, reboots, and bearer handover
    /// storms dominate (they do in the field), server-wide and
    /// administrative faults are rarer; clock trouble is the background
    /// hum every deployment has.
    fn pick_kind(&self, rng: &mut SimRng, remaining: SimDuration) -> FaultKind {
        let device = DeviceId::new(rng.index(self.devices));
        let roll = rng.unit();
        if roll < 0.22 {
            FaultKind::Reboot { device }
        } else if roll < 0.45 {
            FaultKind::LinkDegrade {
                device,
                loss: rng.range_f64(0.05, 0.5),
                jitter: SimDuration::from_millis(rng.range_u64(10, 400)),
                duration: SimDuration::from_mins(rng.range_u64(1, 10)).min(remaining),
            }
        } else if roll < 0.57 {
            FaultKind::ServerRestart
        } else if roll < 0.67 {
            FaultKind::ServerOutage {
                down_for: SimDuration::from_secs(rng.range_u64(30, 300)).min(remaining),
            }
        } else if roll < 0.76 {
            FaultKind::BatteryDeath {
                device,
                // Up to 90 minutes dark: long deaths outlive the default
                // soak's one-hour message age, exercising the expiry path
                // (the one loss the invariants permit).
                off_for: SimDuration::from_mins(rng.range_u64(5, 90)).min(remaining),
            }
        } else if roll < 0.83 {
            FaultKind::RosterChurn {
                device,
                rejoin_after: SimDuration::from_mins(rng.range_u64(1, 15)).min(remaining),
            }
        } else if roll < 0.93 {
            let period = SimDuration::from_secs(rng.range_u64(5, 30)).min(remaining);
            let flaps = rng.range_u64(10, 40) as u32;
            // Clamp the whole storm inside the window so it heals by
            // `end`, like every other fault.
            let max_flaps = (remaining.as_millis() / period.as_millis().max(1)).max(1) as u32;
            FaultKind::BearerFlap {
                device,
                flaps: flaps.min(max_flaps),
                period,
            }
        } else {
            let sign = if rng.chance(0.5) { 1 } else { -1 };
            FaultKind::ClockSkew {
                device,
                step: SimDuration::from_secs(rng.range_u64(1, 120)),
                drift_ppm: sign * rng.range_u64(500, 20_000) as i64,
                duration: SimDuration::from_mins(rng.range_u64(2, 20)).min(remaining),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64) -> FaultPlan {
        FaultPlan::seeded(seed)
            .devices(4)
            .window(
                SimTime::ZERO + SimDuration::from_mins(10),
                SimTime::ZERO + SimDuration::from_hours(24),
            )
            .mean_gap(SimDuration::from_mins(15))
            .build()
    }

    #[test]
    fn same_seed_same_plan() {
        assert_eq!(plan(7).faults(), plan(7).faults());
        assert_ne!(plan(7).faults(), plan(8).faults());
    }

    #[test]
    fn plan_is_sorted_and_heals_inside_window() {
        let p = plan(42);
        assert!(!p.is_empty());
        let end = SimTime::ZERO + SimDuration::from_hours(24);
        for pair in p.faults().windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        assert!(p.healed_by() <= end, "every fault heals by the window end");
    }

    #[test]
    fn seeded_plans_cover_many_classes() {
        let p = plan(1);
        assert!(
            p.classes().len() >= 6,
            "expected a varied plan, got {:?}",
            p.classes()
        );
        assert!(p.classes().contains("bearer-flap"), "{:?}", p.classes());
        assert!(p.classes().contains("clock-skew"), "{:?}", p.classes());
    }

    #[test]
    fn extended_plans_keep_seed_and_stay_sorted() {
        let p = plan(5).extended(vec![Fault {
            at: SimTime::ZERO + SimDuration::from_mins(11),
            kind: FaultKind::BearerFlap {
                device: DeviceId::new(0),
                flaps: 4,
                period: SimDuration::from_secs(10),
            },
        }]);
        assert_eq!(p.seed(), 5);
        assert_eq!(p.len(), plan(5).len() + 1);
        for pair in p.faults().windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }

    #[test]
    fn scripted_plans_sort_by_time() {
        let p = FaultPlan::scripted(vec![
            Fault {
                at: SimTime::from_millis(2_000),
                kind: FaultKind::ServerRestart,
            },
            Fault {
                at: SimTime::from_millis(1_000),
                kind: FaultKind::Reboot {
                    device: DeviceId::new(0),
                },
            },
        ]);
        assert_eq!(
            p.faults()[0].kind,
            FaultKind::Reboot {
                device: DeviceId::new(0),
            }
        );
        assert_eq!(p.seed(), 0);
    }
}
