//! # pogo-cluster — Wi-Fi place clustering (the localization application)
//!
//! The paper's flagship workload (§4.1) finds "locations where the user
//! spends a considerable amount of time" by periodically scanning Wi-Fi
//! access points and clustering the scans by similarity:
//!
//! * scans are *sanitized* — locally administered BSSIDs removed — and
//!   RSSI values normalized so 0 ↦ −100 dBm and 1 ↦ −55 dBm
//!   ([`scan`]);
//! * the distance metric is the cosine coefficient ([`similarity`]);
//! * clustering is "a modified version of the DBSCAN clustering
//!   algorithm … a sliding window of 60 samples from which we extract
//!   core objects", with clusters *closed* when the user moves away and
//!   characterized by the member nearest the cluster mean ([`stream`]);
//! * classic batch DBSCAN is included as the baseline ([`mod@dbscan`]);
//! * [`matching`] computes Table 4's exact/partial match percentages
//!   between a ground-truth clustering and what a collector received.
//!
//! In the deployed system the streaming algorithm runs *inside the
//! PogoScript `clustering.js` script*; this crate is the native reference
//! implementation used for ground-truth post-processing (§5.3 runs the
//! same algorithm over raw SD-card traces) and for differential testing
//! of the script version.

pub mod dbscan;
pub mod matching;
pub mod scan;
pub mod similarity;
pub mod stream;

pub use dbscan::{dbscan, DbscanParams};
pub use matching::{match_clusters, MatchParams, MatchReport};
pub use scan::{normalize_rssi, ApReading, Bssid, RawScan, Scan};
pub use similarity::cosine;
pub use stream::{ClusterSummary, StreamClusterer, StreamConfig};
