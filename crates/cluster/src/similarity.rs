//! The cosine coefficient between scans — the paper's distance metric
//! ("The distance metric used is the cosine coefficient", §4.1).

use crate::scan::Scan;

/// Cosine coefficient between two scans viewed as sparse vectors indexed
/// by BSSID. Returns a value in `[0, 1]` (strengths are non-negative);
/// `0` if either scan is empty.
///
/// # Example
///
/// ```
/// use pogo_cluster::{cosine, Bssid, Scan};
///
/// let a = Scan::from_parts(0, vec![(Bssid::new(1), 0.8), (Bssid::new(2), 0.6)]);
/// let b = Scan::from_parts(1, vec![(Bssid::new(1), 0.8), (Bssid::new(2), 0.6)]);
/// assert!((cosine(&a, &b) - 1.0).abs() < 1e-12);
/// ```
pub fn cosine(a: &Scan, b: &Scan) -> f64 {
    // Norms are cached on the scans; only the dot product needs the
    // merge join (both sides are sorted by BSSID).
    let (norm_a, norm_b) = (a.norm(), b.norm());
    if norm_a == 0.0 || norm_b == 0.0 {
        return 0.0;
    }
    let (aps_a, aps_b) = (a.aps(), b.aps());
    // Disjoint BSSID ranges (both sides are sorted) mean no shared AP, so
    // the dot product is exactly 0 — the common case when comparing a
    // transit scan against a dwelling window. Non-zero norms imply both
    // slices are non-empty.
    if aps_a[aps_a.len() - 1].0 < aps_b[0].0 || aps_b[aps_b.len() - 1].0 < aps_a[0].0 {
        return 0.0;
    }
    // Identical AP layouts — consecutive scans at the same place, the
    // bulk of a dwell — take a branch-light aligned product. The dot
    // accumulates over shared BSSIDs in ascending order either way, so
    // this is bit-identical to the merge join below.
    if aps_a.len() == aps_b.len() {
        let mut dot = 0.0;
        let mut aligned = true;
        for (&(ba, sa), &(bb, sb)) in aps_a.iter().zip(aps_b) {
            if ba != bb {
                aligned = false;
                break;
            }
            dot += sa * sb;
        }
        if aligned {
            return dot / (norm_a * norm_b);
        }
    }
    let mut dot = 0.0;
    let (mut i, mut j) = (0, 0);
    while i < aps_a.len() && j < aps_b.len() {
        let (ba, sa) = aps_a[i];
        let (bb, sb) = aps_b[j];
        match ba.cmp(&bb) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                dot += sa * sb;
                i += 1;
                j += 1;
            }
        }
    }
    dot / (norm_a * norm_b)
}

/// Cosine *distance*: `1 − cosine(a, b)`, in `[0, 1]`.
#[inline]
pub fn cosine_distance(a: &Scan, b: &Scan) -> f64 {
    1.0 - cosine(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::Bssid;

    fn scan(pairs: &[(u64, f64)]) -> Scan {
        Scan::from_parts(0, pairs.iter().map(|&(b, s)| (Bssid::new(b), s)).collect())
    }

    #[test]
    fn identical_scans_have_similarity_one() {
        let a = scan(&[(1, 0.3), (2, 0.9), (3, 0.1)]);
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_scans_have_similarity_zero() {
        let a = scan(&[(1, 0.5), (2, 0.5)]);
        let b = scan(&[(3, 0.5), (4, 0.5)]);
        assert_eq!(cosine(&a, &b), 0.0);
    }

    #[test]
    fn scale_invariance() {
        // Cosine ignores magnitude: same AP profile at different overall
        // signal level is the same place.
        let near = scan(&[(1, 0.9), (2, 0.6)]);
        let far = scan(&[(1, 0.3), (2, 0.2)]);
        assert!((cosine(&near, &far) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_overlap_is_between_zero_and_one() {
        let a = scan(&[(1, 1.0), (2, 1.0)]);
        let b = scan(&[(2, 1.0), (3, 1.0)]);
        let s = cosine(&a, &b);
        assert!(s > 0.0 && s < 1.0);
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_scan_yields_zero() {
        let a = scan(&[]);
        let b = scan(&[(1, 0.5)]);
        assert_eq!(cosine(&a, &b), 0.0);
        assert_eq!(cosine(&a, &a), 0.0);
    }

    #[test]
    fn symmetry() {
        let a = scan(&[(1, 0.2), (3, 0.7), (9, 0.4)]);
        let b = scan(&[(1, 0.9), (2, 0.1), (9, 0.5)]);
        assert_eq!(cosine(&a, &b), cosine(&b, &a));
    }

    #[test]
    fn distance_complements_similarity() {
        let a = scan(&[(1, 1.0)]);
        let b = scan(&[(1, 1.0), (2, 1.0)]);
        assert!((cosine(&a, &b) + cosine_distance(&a, &b) - 1.0).abs() < 1e-12);
    }
}
