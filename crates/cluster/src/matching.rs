//! Cluster matching: computes Table 4's "Match" and "Partial" columns.
//!
//! §5.3: "The 'match' column … shows the percentage of clusters found in
//! the post-processed data set that exactly matched the ones gathered by
//! the collector node. The 'partial' column shows the percentage of
//! `[clusters]` that were matched only partially due to the problems
//! described" (clusters truncated by restarts — "a later start time" —
//! or purged by the 24-hour expiry).

use crate::similarity::cosine;
use crate::stream::ClusterSummary;

/// Matching tolerances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchParams {
    /// Maximum entry/exit timestamp difference for an *exact* match.
    pub time_tolerance_ms: u64,
    /// Minimum representative-scan cosine similarity for any match.
    pub min_similarity: f64,
}

impl Default for MatchParams {
    fn default() -> Self {
        MatchParams {
            time_tolerance_ms: 90_000, // one and a half scan intervals
            min_similarity: 0.75,
        }
    }
}

/// Result of matching a collected cluster set against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatchReport {
    /// Number of ground-truth (post-processed) clusters.
    pub ground_truth: usize,
    /// Ground-truth clusters with an exact counterpart at the collector.
    pub exact: usize,
    /// Ground-truth clusters with at least a partial counterpart
    /// (includes the exact ones, as in the paper's table where
    /// Partial ≥ Match).
    pub partial: usize,
}

impl MatchReport {
    /// The "Match" percentage (0–100).
    pub fn match_pct(&self) -> f64 {
        percentage(self.exact, self.ground_truth)
    }

    /// The "Partial" percentage (0–100).
    pub fn partial_pct(&self) -> f64 {
        percentage(self.partial, self.ground_truth)
    }
}

fn percentage(num: usize, den: usize) -> f64 {
    if den == 0 {
        100.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// Matches `collected` (what reached the collector node) against `truth`
/// (clusters recomputed offline over the complete raw trace).
///
/// A truth cluster matches *exactly* if some collected cluster has a
/// representative within [`MatchParams::min_similarity`] and entry/exit
/// timestamps within [`MatchParams::time_tolerance_ms`]; it matches
/// *partially* if a similar collected cluster overlaps it in time at all
/// (a truncated or split dwelling session).
pub fn match_clusters(
    truth: &[ClusterSummary],
    collected: &[ClusterSummary],
    params: MatchParams,
) -> MatchReport {
    let mut exact = 0;
    let mut partial = 0;
    for t in truth {
        let mut found_exact = false;
        let mut found_partial = false;
        for c in collected {
            if cosine(&t.representative, &c.representative) < params.min_similarity {
                continue;
            }
            let entry_diff = t.entry_ms.abs_diff(c.entry_ms);
            let exit_diff = t.exit_ms.abs_diff(c.exit_ms);
            if entry_diff <= params.time_tolerance_ms && exit_diff <= params.time_tolerance_ms {
                found_exact = true;
                found_partial = true;
                break;
            }
            // Any time overlap counts as partial.
            if c.entry_ms <= t.exit_ms && t.entry_ms <= c.exit_ms {
                found_partial = true;
            }
        }
        if found_exact {
            exact += 1;
        }
        if found_partial {
            partial += 1;
        }
    }
    MatchReport {
        ground_truth: truth.len(),
        exact,
        partial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{Bssid, Scan};

    fn summary(base: u64, entry_min: u64, exit_min: u64) -> ClusterSummary {
        ClusterSummary {
            representative: Scan::from_parts(
                entry_min * 60_000,
                (0..3).map(|i| (Bssid::new(base + i), 0.7)).collect(),
            ),
            entry_ms: entry_min * 60_000,
            exit_ms: exit_min * 60_000,
            samples: (exit_min - entry_min + 1) as usize,
        }
    }

    #[test]
    fn identical_sets_match_100_percent() {
        let truth = vec![summary(10, 0, 60), summary(20, 100, 200)];
        let report = match_clusters(&truth, &truth, MatchParams::default());
        assert_eq!(report.exact, 2);
        assert_eq!(report.partial, 2);
        assert_eq!(report.match_pct(), 100.0);
    }

    #[test]
    fn truncated_cluster_counts_as_partial_only() {
        let truth = vec![summary(10, 0, 100)];
        // Collector saw only the second half (restart mid-cluster).
        let collected = vec![summary(10, 50, 100)];
        let report = match_clusters(&truth, &collected, MatchParams::default());
        assert_eq!(report.exact, 0);
        assert_eq!(report.partial, 1);
        assert_eq!(report.partial_pct(), 100.0);
        assert_eq!(report.match_pct(), 0.0);
    }

    #[test]
    fn missing_cluster_matches_nothing() {
        let truth = vec![summary(10, 0, 60), summary(20, 100, 160)];
        let collected = vec![summary(10, 0, 60)];
        let report = match_clusters(&truth, &collected, MatchParams::default());
        assert_eq!(report.exact, 1);
        assert_eq!(report.partial, 1);
    }

    #[test]
    fn different_place_never_matches_even_with_overlap() {
        let truth = vec![summary(10, 0, 60)];
        let collected = vec![summary(999, 0, 60)]; // disjoint AP sets
        let report = match_clusters(&truth, &collected, MatchParams::default());
        assert_eq!(report.exact, 0);
        assert_eq!(report.partial, 0);
    }

    #[test]
    fn small_timestamp_jitter_still_exact() {
        let truth = vec![summary(10, 10, 60)];
        let mut c = summary(10, 10, 60);
        c.entry_ms += 60_000; // one scan interval late
        let report = match_clusters(&truth, &[c], MatchParams::default());
        assert_eq!(report.exact, 1);
    }

    #[test]
    fn empty_truth_reports_100() {
        let report = match_clusters(&[], &[], MatchParams::default());
        assert_eq!(report.match_pct(), 100.0);
        assert_eq!(report.partial_pct(), 100.0);
    }

    #[test]
    fn partial_includes_exact_like_the_paper() {
        let truth = vec![summary(1, 0, 50), summary(2, 100, 150)];
        let collected = vec![summary(1, 0, 50), summary(2, 120, 150)];
        let report = match_clusters(&truth, &collected, MatchParams::default());
        assert_eq!(report.exact, 1);
        assert_eq!(report.partial, 2, "Partial column is a superset of Match");
    }
}
