//! Classic batch DBSCAN (Ester et al. 1996) over scans — the baseline the
//! paper's streaming variant is derived from.

use crate::scan::Scan;
use crate::similarity::cosine_distance;

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbscanParams {
    /// Neighbourhood radius in cosine distance (`1 − similarity`).
    pub eps: f64,
    /// Minimum neighbourhood size (including the point itself) for a core
    /// point.
    pub min_pts: usize,
}

impl Default for DbscanParams {
    fn default() -> Self {
        DbscanParams {
            eps: 0.35,
            min_pts: 4,
        }
    }
}

/// Runs DBSCAN, returning one label per scan: `Some(cluster_id)` with ids
/// numbered from 0 in order of discovery, or `None` for noise.
///
/// # Example
///
/// ```
/// use pogo_cluster::{dbscan, Bssid, DbscanParams, Scan};
///
/// let home: Vec<Scan> = (0..5)
///     .map(|t| Scan::from_parts(t, vec![(Bssid::new(1), 0.9)]))
///     .collect();
/// let labels = dbscan(&home, DbscanParams { eps: 0.2, min_pts: 3 });
/// assert!(labels.iter().all(|l| *l == Some(0)));
/// ```
pub fn dbscan(scans: &[Scan], params: DbscanParams) -> Vec<Option<usize>> {
    let n = scans.len();
    // Precompute neighbourhoods (O(n²); ground-truth post-processing only).
    let neighbours: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| cosine_distance(&scans[i], &scans[j]) <= params.eps)
                .collect()
        })
        .collect();

    const UNVISITED: usize = usize::MAX;
    const NOISE: usize = usize::MAX - 1;
    let mut labels = vec![UNVISITED; n];
    let mut next_cluster = 0;

    for i in 0..n {
        if labels[i] != UNVISITED {
            continue;
        }
        if neighbours[i].len() < params.min_pts {
            labels[i] = NOISE;
            continue;
        }
        // i is a core point: expand a new cluster from it.
        let cluster = next_cluster;
        next_cluster += 1;
        labels[i] = cluster;
        let mut frontier: Vec<usize> = neighbours[i].clone();
        while let Some(j) = frontier.pop() {
            if labels[j] == NOISE {
                labels[j] = cluster; // border point
            }
            if labels[j] != UNVISITED {
                continue;
            }
            labels[j] = cluster;
            if neighbours[j].len() >= params.min_pts {
                frontier.extend(neighbours[j].iter().copied());
            }
        }
    }

    labels
        .into_iter()
        .map(|l| if l == NOISE { None } else { Some(l) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::Bssid;

    fn place_scan(t: u64, base: u64, strengths: &[f64]) -> Scan {
        Scan::from_parts(
            t,
            strengths
                .iter()
                .enumerate()
                .map(|(i, &s)| (Bssid::new(base + i as u64), s))
                .collect(),
        )
    }

    #[test]
    fn two_places_give_two_clusters() {
        let mut scans = Vec::new();
        for t in 0..6 {
            scans.push(place_scan(t, 100, &[0.9, 0.7, 0.5]));
        }
        for t in 6..12 {
            scans.push(place_scan(t, 200, &[0.6, 0.8]));
        }
        let labels = dbscan(&scans, DbscanParams::default());
        assert!(labels[..6].iter().all(|l| *l == Some(0)));
        assert!(labels[6..].iter().all(|l| *l == Some(1)));
    }

    #[test]
    fn isolated_scans_are_noise() {
        let scans: Vec<Scan> = (0..5)
            .map(|t| place_scan(t, 1000 * (t + 1), &[0.5]))
            .collect();
        let labels = dbscan(&scans, DbscanParams::default());
        assert!(labels.iter().all(Option::is_none));
    }

    #[test]
    fn border_points_join_cluster() {
        // 4 tight core scans plus one partial-overlap border scan.
        let mut scans: Vec<Scan> = (0..4)
            .map(|t| place_scan(t, 10, &[0.9, 0.9, 0.9]))
            .collect();
        scans.push(Scan::from_parts(
            5,
            vec![
                (Bssid::new(10), 0.9),
                (Bssid::new(11), 0.9),
                (Bssid::new(99), 0.9),
            ],
        ));
        // Border scan shares 2 of 3 APs with the core: cosine = 2/3,
        // distance = 1/3, inside eps = 0.35 but itself not core.
        let labels = dbscan(
            &scans,
            DbscanParams {
                eps: 0.35,
                min_pts: 5,
            },
        );
        assert_eq!(labels[4], Some(0), "border point absorbed");
    }

    #[test]
    fn empty_input() {
        assert!(dbscan(&[], DbscanParams::default()).is_empty());
    }

    #[test]
    fn min_pts_one_clusters_everything() {
        let scans: Vec<Scan> = (0..3)
            .map(|t| place_scan(t, 1000 * (t + 1), &[0.5]))
            .collect();
        let labels = dbscan(
            &scans,
            DbscanParams {
                eps: 0.1,
                min_pts: 1,
            },
        );
        // Every point is its own core.
        assert_eq!(labels, vec![Some(0), Some(1), Some(2)]);
    }
}
