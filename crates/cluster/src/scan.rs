//! Access-point scans: raw readings, sanitization, and RSSI normalization.

use std::fmt;
use std::rc::Rc;
use std::str::FromStr;

/// A Wi-Fi access point MAC address (48 bits, stored in the low bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bssid(u64);

impl Bssid {
    /// Creates a BSSID from a 48-bit value.
    ///
    /// # Panics
    ///
    /// Panics if `raw` does not fit in 48 bits.
    pub fn new(raw: u64) -> Self {
        assert!(raw < (1 << 48), "BSSID must fit in 48 bits");
        Bssid(raw)
    }

    /// The raw 48-bit value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// True if the *locally administered* bit (bit 1 of the first octet)
    /// is set. The paper's `scan.js` removes these: they belong to
    /// ad-hoc/virtual interfaces, not infrastructure access points.
    pub fn is_locally_administered(self) -> bool {
        let first_octet = (self.0 >> 40) as u8;
        first_octet & 0x02 != 0
    }
}

impl fmt::Display for Bssid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            (b >> 40) as u8,
            (b >> 32) as u8,
            (b >> 24) as u8,
            (b >> 16) as u8,
            (b >> 8) as u8,
            b as u8
        )
    }
}

/// Error parsing a BSSID from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBssidError(String);

impl fmt::Display for ParseBssidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid BSSID: {}", self.0)
    }
}

impl std::error::Error for ParseBssidError {}

impl FromStr for Bssid {
    type Err = ParseBssidError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let octets: Vec<&str> = s.split(':').collect();
        if octets.len() != 6 {
            return Err(ParseBssidError(s.to_owned()));
        }
        let mut raw: u64 = 0;
        for octet in octets {
            let v = u8::from_str_radix(octet, 16).map_err(|_| ParseBssidError(s.to_owned()))?;
            raw = (raw << 8) | v as u64;
        }
        Ok(Bssid(raw))
    }
}

/// One raw access-point reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApReading {
    /// The access point's MAC address.
    pub bssid: Bssid,
    /// Received signal strength in dBm (typically −100 … −30).
    pub rssi_dbm: f64,
}

/// A raw scan result as the Wi-Fi sensor produces it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RawScan {
    /// Capture time in milliseconds.
    pub timestamp_ms: u64,
    /// The observed access points.
    pub readings: Vec<ApReading>,
}

/// Normalizes RSSI so that "0 and 1 correspond to −100 dBm and −55 dBm
/// respectively" (§4.1), clamping outside that range.
pub fn normalize_rssi(dbm: f64) -> f64 {
    ((dbm + 100.0) / 45.0).clamp(0.0, 1.0)
}

impl RawScan {
    /// Applies `scan.js`'s sanitization: drops locally administered access
    /// points and normalizes signal strengths. The result is sorted by
    /// BSSID (deterministic, and enables merge-join similarity).
    pub fn sanitize(&self) -> Scan {
        let mut aps: Vec<(Bssid, f64)> = self
            .readings
            .iter()
            .filter(|r| !r.bssid.is_locally_administered())
            .map(|r| (r.bssid, normalize_rssi(r.rssi_dbm)))
            .collect();
        aps.sort_by_key(|&(b, _)| b);
        aps.dedup_by_key(|&mut (b, _)| b);
        Scan::sorted(self.timestamp_ms, aps)
    }
}

/// A sanitized, normalized scan: the unit of clustering.
///
/// Scans are immutable once built; the AP table is refcount-shared so
/// cloning one (the streaming clusterer keeps every scan in its sliding
/// window *and* in the open cluster's member list) is two pointer bumps,
/// not a heap copy.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Scan {
    /// Capture time in milliseconds.
    pub timestamp_ms: u64,
    /// `(bssid, normalized strength)` pairs, sorted by BSSID, unique.
    aps: Rc<[(Bssid, f64)]>,
    /// Cached L2 norm of the strength vector, so similarity computations
    /// only walk the merge-join for the dot product.
    norm: f64,
}

impl Scan {
    /// Builds a scan directly from `(bssid, normalized strength)` pairs
    /// (sorted and deduplicated internally).
    pub fn from_parts(timestamp_ms: u64, mut aps: Vec<(Bssid, f64)>) -> Self {
        aps.sort_by_key(|&(b, _)| b);
        aps.dedup_by_key(|&mut (b, _)| b);
        Scan::sorted(timestamp_ms, aps)
    }

    fn sorted(timestamp_ms: u64, aps: Vec<(Bssid, f64)>) -> Self {
        // Accumulated in BSSID order — the same order the old inline
        // merge-join summed squares in, so cosine values stay bit-for-bit
        // identical (the clustering.js differential test depends on that).
        let mut sum_sq = 0.0;
        for &(_, s) in &aps {
            sum_sq += s * s;
        }
        Scan {
            timestamp_ms,
            aps: aps.into(),
            norm: sum_sq.sqrt(),
        }
    }

    /// The `(bssid, strength)` pairs, sorted by BSSID.
    #[inline]
    pub fn aps(&self) -> &[(Bssid, f64)] {
        &self.aps
    }

    /// L2 norm of the strength vector (0 for an empty scan), cached at
    /// construction.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm
    }

    /// Number of access points in the scan.
    pub fn len(&self) -> usize {
        self.aps.len()
    }

    /// True if the scan saw no access points.
    pub fn is_empty(&self) -> bool {
        self.aps.is_empty()
    }

    /// Strength for one BSSID, if present.
    pub fn strength(&self, bssid: Bssid) -> Option<f64> {
        self.aps
            .binary_search_by_key(&bssid, |&(b, _)| b)
            .ok()
            .map(|i| self.aps[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_endpoints_and_clamp() {
        assert_eq!(normalize_rssi(-100.0), 0.0);
        assert_eq!(normalize_rssi(-55.0), 1.0);
        assert!((normalize_rssi(-77.5) - 0.5).abs() < 1e-12);
        assert_eq!(normalize_rssi(-120.0), 0.0);
        assert_eq!(normalize_rssi(-30.0), 1.0);
    }

    #[test]
    fn locally_administered_bit() {
        // 02:xx:... has the locally-administered bit set.
        assert!(Bssid::new(0x02_00_00_00_00_01).is_locally_administered());
        assert!(!Bssid::new(0x00_1a_2b_3c_4d_5e).is_locally_administered());
        assert!(Bssid::new(0x06_00_00_00_00_00).is_locally_administered());
    }

    #[test]
    fn bssid_display_and_parse_roundtrip() {
        let b = Bssid::new(0x00_1a_2b_3c_4d_5e);
        assert_eq!(b.to_string(), "00:1a:2b:3c:4d:5e");
        assert_eq!("00:1a:2b:3c:4d:5e".parse::<Bssid>().unwrap(), b);
        assert!("not-a-mac".parse::<Bssid>().is_err());
        assert!("00:1a:2b:3c:4d".parse::<Bssid>().is_err());
        assert!("zz:1a:2b:3c:4d:5e".parse::<Bssid>().is_err());
    }

    #[test]
    fn sanitize_filters_sorts_and_normalizes() {
        let raw = RawScan {
            timestamp_ms: 42,
            readings: vec![
                ApReading {
                    bssid: Bssid::new(0x00_00_00_00_00_05),
                    rssi_dbm: -55.0,
                },
                ApReading {
                    bssid: Bssid::new(0x02_00_00_00_00_01), // locally administered
                    rssi_dbm: -40.0,
                },
                ApReading {
                    bssid: Bssid::new(0x00_00_00_00_00_01),
                    rssi_dbm: -100.0,
                },
            ],
        };
        let scan = raw.sanitize();
        assert_eq!(scan.timestamp_ms, 42);
        assert_eq!(scan.len(), 2);
        assert_eq!(scan.aps()[0].0, Bssid::new(0x00_00_00_00_00_01));
        assert_eq!(scan.aps()[0].1, 0.0);
        assert_eq!(scan.aps()[1].1, 1.0);
    }

    #[test]
    fn sanitize_dedups_duplicate_bssids() {
        let raw = RawScan {
            timestamp_ms: 0,
            readings: vec![
                ApReading {
                    bssid: Bssid::new(1),
                    rssi_dbm: -60.0,
                },
                ApReading {
                    bssid: Bssid::new(1),
                    rssi_dbm: -90.0,
                },
            ],
        };
        assert_eq!(raw.sanitize().len(), 1);
    }

    #[test]
    fn strength_lookup() {
        let scan = Scan::from_parts(0, vec![(Bssid::new(2), 0.5), (Bssid::new(1), 0.25)]);
        assert_eq!(scan.strength(Bssid::new(1)), Some(0.25));
        assert_eq!(scan.strength(Bssid::new(3)), None);
    }

    #[test]
    #[should_panic(expected = "48 bits")]
    fn oversized_bssid_rejected() {
        Bssid::new(1 << 48);
    }
}
