//! The paper's modified DBSCAN: streaming, sliding-window clustering.
//!
//! §4.1: "clusters (locations) [are extracted] using a modified version of
//! the DBSCAN clustering algorithm. The modification in this case is
//! that we use a sliding window of 60 samples from which we extract core
//! objects. Clusters are 'closed' whenever a user moves away from the
//! place it represents (when a sample is found that is not reachable from
//! the cluster). … When a cluster is closed, a sample is selected that
//! best characterizes the cluster [the nearest neighbour to the mean of
//! all scan results] and sent to the server along with entry and exit
//! timestamps."
//!
//! The paper does not pin down every detail; this implementation fixes
//! the following interpretation (mirrored exactly by the PogoScript
//! version in `assets/scripts/clustering.pogo`, and differentially tested
//! against it):
//!
//! * A scan is a **core object** if at least `min_pts` scans in the
//!   sliding window (itself included) lie within `eps` cosine distance.
//! * With no cluster open, a core object opens one; its window
//!   neighbours within `eps` become the initial members (so the entry
//!   timestamp reflects when the user actually arrived, not when density
//!   was first reached).
//! * A new sample is **reachable** if it lies within `eps` of any of the
//!   cluster's `reach_depth` most recent members.
//! * A non-reachable sample closes the cluster immediately (the paper's
//!   literal rule). Clusters smaller than `min_pts` members are
//!   discarded, which suppresses transit noise.

use std::collections::VecDeque;

use crate::scan::{Bssid, Scan};
use crate::similarity::{cosine, cosine_distance};

/// `(lowest, highest)` BSSID of a scan, or a reversed sentinel for an
/// empty scan so that it overlaps nothing.
fn bssid_range(scan: &Scan) -> (Bssid, Bssid) {
    match (scan.aps().first(), scan.aps().last()) {
        (Some(&(lo, _)), Some(&(hi, _))) => (lo, hi),
        _ => (Bssid::new((1 << 48) - 1), Bssid::new(0)),
    }
}

/// Parameters of the streaming clusterer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Sliding-window length in samples (the paper uses 60).
    pub window: usize,
    /// Neighbourhood radius in cosine distance.
    pub eps: f64,
    /// Core-object density threshold and minimum emitted-cluster size.
    pub min_pts: usize,
    /// How many most-recent members a new sample is compared against for
    /// reachability.
    pub reach_depth: usize,
    /// A gap between consecutive scan timestamps larger than this closes
    /// the open cluster and clears the window: a 60-*sample* window that
    /// silently spans a phone-off night would otherwise fuse the evening
    /// and the next morning into one dwelling session.
    pub max_gap_ms: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            window: 60,
            eps: 0.35,
            min_pts: 4,
            reach_depth: 5,
            max_gap_ms: 30 * 60_000,
        }
    }
}

/// A closed cluster: one dwelling session at some place.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSummary {
    /// The member scan nearest to the cluster mean — "a sample … that
    /// best characterizes the cluster".
    pub representative: Scan,
    /// Timestamp of the first member (arrival).
    pub entry_ms: u64,
    /// Timestamp of the last member (departure).
    pub exit_ms: u64,
    /// Number of member scans.
    pub samples: usize,
}

/// The streaming clusterer. Feed scans in timestamp order with
/// [`StreamClusterer::push`]; closed clusters come back as they happen,
/// plus a final one from [`StreamClusterer::finish`].
///
/// # Example
///
/// ```
/// use pogo_cluster::{Bssid, Scan, StreamClusterer, StreamConfig};
///
/// let mut c = StreamClusterer::new(StreamConfig::default());
/// let mut out = Vec::new();
/// for t in 0..30 {
///     let scan = Scan::from_parts(t * 60_000, vec![(Bssid::new(7), 0.8)]);
///     out.extend(c.push(scan));
/// }
/// out.extend(c.finish());
/// assert_eq!(out.len(), 1); // one dwelling session
/// ```
#[derive(Debug, Clone)]
pub struct StreamClusterer {
    cfg: StreamConfig,
    window: VecDeque<Scan>,
    members: Vec<Scan>,
    emitted: u64,
    /// Run-length-encoded `(lowest, highest, run length)` BSSID ranges of
    /// the window scans, in window order. The seeding pass sweeps this
    /// compact array first and computes a cosine only for scans whose
    /// BSSID range overlaps the new sample's: range-disjoint scans share
    /// no AP, so their cosine is exactly 0 and they cannot be neighbours
    /// for `eps < 1` (the same observation the cosine fast path
    /// exploits). Consecutive scans at one place see the same BSSID range
    /// — the premise of the whole clusterer — so a dwell collapses to a
    /// single run and a transit sample skips it with one comparison. The
    /// filter is conservative: a false positive just falls through to the
    /// exact cosine, so clustering output is bit-identical either way.
    ranges: VecDeque<(Bssid, Bssid, u32)>,
    /// Reusable neighbour-index buffer for the seeding pass, so scans
    /// that don't join a cluster (every transit sample) allocate nothing.
    scratch: Vec<usize>,
}

impl StreamClusterer {
    /// Creates a clusterer.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `min_pts` is zero.
    pub fn new(cfg: StreamConfig) -> Self {
        assert!(cfg.window > 0, "window must be non-empty");
        assert!(cfg.min_pts > 0, "min_pts must be at least 1");
        StreamClusterer {
            cfg,
            window: VecDeque::with_capacity(cfg.window),
            members: Vec::new(),
            emitted: 0,
            ranges: VecDeque::with_capacity(cfg.window),
            scratch: Vec::with_capacity(cfg.window),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> StreamConfig {
        self.cfg
    }

    /// Number of clusters emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// True while a cluster is being built.
    pub fn has_open_cluster(&self) -> bool {
        !self.members.is_empty()
    }

    /// Feeds the next scan; returns a summary if this sample closed a
    /// cluster.
    pub fn push(&mut self, scan: Scan) -> Option<ClusterSummary> {
        // Scan-gap reset: a long silence (phone off) ends the session.
        let mut gap_closed = None;
        if let Some(last) = self.window.back() {
            if scan.timestamp_ms.saturating_sub(last.timestamp_ms) > self.cfg.max_gap_ms {
                gap_closed = self.close();
                self.clear_window();
            }
        }
        if self.window.len() == self.cfg.window {
            self.window.pop_front();
            let front = self.ranges.front_mut().expect("ranges track the window");
            front.2 -= 1;
            if front.2 == 0 {
                self.ranges.pop_front();
            }
        }
        let (lo, hi) = bssid_range(&scan);
        match self.ranges.back_mut() {
            Some(run) if run.0 == lo && run.1 == hi => run.2 += 1,
            _ => self.ranges.push_back((lo, hi, 1)),
        }
        self.window.push_back(scan.clone());

        let mut closed = None;
        if !self.members.is_empty() {
            if self.is_reachable(&scan) {
                self.members.push(scan);
                return gap_closed;
            }
            closed = self.close();
        }
        // No cluster open (or just closed): try to seed a new one. One
        // pass over the window computes the distance row once; it serves
        // both the core-object test and member seeding (these used to be
        // two separate O(window) cosine sweeps). The range prefilter
        // sweeps the compact `ranges` array, so a transit sample amid
        // unfamiliar APs never dereferences the window scans at all.
        // `eps >= 1.0` disables the prefilter: at that degenerate radius
        // even disjoint scans (cosine 0, distance 1) are neighbours.
        let all = self.cfg.eps >= 1.0;
        let (probe_lo, probe_hi) = bssid_range(&scan);
        let mut neighbours = std::mem::take(&mut self.scratch);
        neighbours.clear();
        let mut base = 0usize;
        for &(lo, hi, n) in &self.ranges {
            let n = n as usize;
            if all || (probe_lo <= hi && lo <= probe_hi) {
                for i in base..base + n {
                    if cosine_distance(&scan, &self.window[i]) <= self.cfg.eps {
                        neighbours.push(i);
                    }
                }
            }
            base += n;
        }
        if neighbours.len() >= self.cfg.min_pts {
            self.members = neighbours.iter().map(|&i| self.window[i].clone()).collect();
        }
        self.scratch = neighbours;
        // At most one of the two can be Some: a gap reset empties the
        // window, so the ordinary close path has nothing open.
        gap_closed.or(closed)
    }

    /// Empties the sliding window and its range array.
    fn clear_window(&mut self) {
        self.window.clear();
        self.ranges.clear();
    }

    /// Closes any open cluster (end of trace / script shutdown).
    pub fn finish(&mut self) -> Option<ClusterSummary> {
        self.close()
    }

    /// Drops all clustering state, as a reboot without freeze/thaw would
    /// (§5.3 observed exactly this data loss; the window and any
    /// half-built cluster vanish).
    pub fn reset(&mut self) {
        self.clear_window();
        self.members.clear();
    }

    fn is_reachable(&self, scan: &Scan) -> bool {
        self.members
            .iter()
            .rev()
            .take(self.cfg.reach_depth)
            .any(|m| cosine_distance(scan, m) <= self.cfg.eps)
    }

    fn close(&mut self) -> Option<ClusterSummary> {
        let members = std::mem::take(&mut self.members);
        if members.len() < self.cfg.min_pts {
            return None;
        }
        let representative = nearest_to_mean(&members);
        let summary = ClusterSummary {
            entry_ms: members.first().expect("non-empty").timestamp_ms,
            exit_ms: members.last().expect("non-empty").timestamp_ms,
            samples: members.len(),
            representative,
        };
        self.emitted += 1;
        Some(summary)
    }
}

/// Picks the member scan with the highest cosine similarity to the mean
/// of all members (footnote 6 of the paper).
fn nearest_to_mean(members: &[Scan]) -> Scan {
    let mean = mean_scan(members);
    // One cosine per member (the old max_by recomputed both sides on
    // every comparison); strict `>` keeps the earliest member on ties.
    let mut best = 0;
    let mut best_sim = f64::NEG_INFINITY;
    for (i, s) in members.iter().enumerate() {
        let sim = cosine(s, &mean);
        if sim > best_sim {
            best_sim = sim;
            best = i;
        }
    }
    members[best].clone()
}

/// Component-wise mean of scans as sparse vectors (absent APs count as 0).
fn mean_scan(members: &[Scan]) -> Scan {
    let first = &members[0];
    // Consecutive scans at one place usually see the identical AP set, so
    // the mean is a per-slot average with no binary searches. Per-AP
    // strengths accumulate in member order either way, so the result is
    // bit-identical to the sparse merge below.
    if members[1..].iter().all(|s| same_layout(first, s)) {
        let mut sums = first.aps().to_vec();
        for scan in &members[1..] {
            for (slot, &(_, s)) in sums.iter_mut().zip(scan.aps()) {
                slot.1 += s;
            }
        }
        let n = members.len() as f64;
        for (_, s) in &mut sums {
            *s /= n;
        }
        return Scan::from_parts(first.timestamp_ms, sums);
    }
    let mut sums: Vec<(Bssid, f64)> = Vec::new();
    for scan in members {
        for &(bssid, s) in scan.aps() {
            match sums.binary_search_by_key(&bssid, |&(b, _)| b) {
                Ok(i) => sums[i].1 += s,
                Err(i) => sums.insert(i, (bssid, s)),
            }
        }
    }
    let n = members.len() as f64;
    for (_, s) in &mut sums {
        *s /= n;
    }
    Scan::from_parts(first.timestamp_ms, sums)
}

/// True if both scans report exactly the same BSSIDs in the same order.
fn same_layout(a: &Scan, b: &Scan) -> bool {
    a.len() == b.len() && a.aps().iter().zip(b.aps()).all(|(x, y)| x.0 == y.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stable scan at "place" `base` with small deterministic jitter.
    fn place_scan(t_min: u64, base: u64, jitter: f64) -> Scan {
        Scan::from_parts(
            t_min * 60_000,
            (0..4)
                .map(|i| {
                    let s = 0.5 + 0.1 * i as f64 + jitter * if i % 2 == 0 { 1.0 } else { -1.0 };
                    (Bssid::new(base + i), s.clamp(0.05, 1.0))
                })
                .collect(),
        )
    }

    fn transit_scan(t_min: u64, salt: u64) -> Scan {
        Scan::from_parts(t_min * 60_000, vec![(Bssid::new(90_000 + salt * 17), 0.2)])
    }

    #[test]
    fn single_dwell_yields_one_cluster() {
        let mut c = StreamClusterer::new(StreamConfig::default());
        let mut out = Vec::new();
        for t in 0..30 {
            out.extend(c.push(place_scan(t, 100, 0.01 * (t % 3) as f64)));
        }
        out.extend(c.finish());
        assert_eq!(out.len(), 1);
        let s = &out[0];
        assert_eq!(s.entry_ms, 0);
        assert_eq!(s.exit_ms, 29 * 60_000);
        assert_eq!(s.samples, 30);
    }

    #[test]
    fn moving_between_places_closes_and_reopens() {
        let mut c = StreamClusterer::new(StreamConfig::default());
        let mut out = Vec::new();
        for t in 0..20 {
            out.extend(c.push(place_scan(t, 100, 0.0)));
        }
        // Commute: 8 minutes of unfamiliar APs.
        for t in 20..28 {
            out.extend(c.push(transit_scan(t, t)));
        }
        for t in 28..50 {
            out.extend(c.push(place_scan(t, 500, 0.0)));
        }
        out.extend(c.finish());
        assert_eq!(out.len(), 2, "home then office");
        assert_eq!(out[0].exit_ms, 19 * 60_000);
        assert!(out[1].entry_ms >= 28 * 60_000);
    }

    #[test]
    fn transit_noise_alone_emits_nothing() {
        let mut c = StreamClusterer::new(StreamConfig::default());
        let mut out = Vec::new();
        for t in 0..40 {
            out.extend(c.push(transit_scan(t, t * 31)));
        }
        out.extend(c.finish());
        assert!(out.is_empty());
    }

    #[test]
    fn short_dwell_below_min_pts_is_discarded() {
        let cfg = StreamConfig {
            min_pts: 5,
            ..StreamConfig::default()
        };
        let mut c = StreamClusterer::new(cfg);
        let mut out = Vec::new();
        // Only 3 samples at the place, then away.
        for t in 0..3 {
            out.extend(c.push(place_scan(t, 100, 0.0)));
        }
        for t in 3..20 {
            out.extend(c.push(transit_scan(t, t * 7)));
        }
        out.extend(c.finish());
        assert!(out.is_empty());
    }

    #[test]
    fn representative_is_a_member_and_similar_to_all() {
        let mut c = StreamClusterer::new(StreamConfig::default());
        let scans: Vec<Scan> = (0..12)
            .map(|t| place_scan(t, 77, 0.02 * (t % 4) as f64))
            .collect();
        for s in &scans {
            assert!(c.push(s.clone()).is_none());
        }
        let summary = c.finish().expect("cluster closes on finish");
        assert!(
            scans.contains(&summary.representative),
            "representative must be an actual member scan"
        );
        for s in &scans {
            assert!(cosine(s, &summary.representative) > 0.9);
        }
    }

    #[test]
    fn reset_loses_partial_cluster_like_a_reboot() {
        let mut c = StreamClusterer::new(StreamConfig::default());
        for t in 0..10 {
            c.push(place_scan(t, 100, 0.0));
        }
        assert!(c.has_open_cluster());
        c.reset();
        assert!(!c.has_open_cluster());
        // Continuing at the same place re-forms a cluster with a LATER
        // entry time — exactly the §5.3 "later start time" artefact.
        let mut out = Vec::new();
        for t in 10..25 {
            out.extend(c.push(place_scan(t, 100, 0.0)));
        }
        out.extend(c.finish());
        assert_eq!(out.len(), 1);
        assert!(out[0].entry_ms >= 10 * 60_000);
    }

    #[test]
    fn entry_time_backfills_from_window_neighbours() {
        // Density is reached at the min_pts-th sample, but entry should be
        // the FIRST sample at the place (it is in the window).
        let cfg = StreamConfig {
            min_pts: 4,
            ..StreamConfig::default()
        };
        let mut c = StreamClusterer::new(cfg);
        for t in 0..10 {
            c.push(place_scan(t, 100, 0.0));
        }
        let s = c.finish().unwrap();
        assert_eq!(s.entry_ms, 0);
    }

    #[test]
    fn emitted_counter_tracks_closures() {
        let mut c = StreamClusterer::new(StreamConfig::default());
        for t in 0..10 {
            c.push(place_scan(t, 1, 0.0));
        }
        for t in 10..20 {
            c.push(transit_scan(t, t * 13));
        }
        assert_eq!(c.emitted(), 1);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        StreamClusterer::new(StreamConfig {
            window: 0,
            ..StreamConfig::default()
        });
    }
}
