#![cfg(feature = "heavy-tests")]

//! Property-based tests for the clustering substrate.

use proptest::prelude::*;

use pogo_cluster::{
    cosine, dbscan, ApReading, Bssid, DbscanParams, RawScan, Scan, StreamClusterer, StreamConfig,
};

/// Strategy: a plausible scan with up to 12 APs from a small universe
/// (overlap is likely, which is what exercises the metric).
fn scan_strategy() -> impl Strategy<Value = Scan> {
    (
        0u64..1_000_000,
        proptest::collection::vec((0u64..40, 0.01f64..1.0), 0..12),
    )
        .prop_map(|(t, aps)| {
            Scan::from_parts(
                t,
                aps.into_iter().map(|(b, l)| (Bssid::new(b), l)).collect(),
            )
        })
}

/// Strategy: a time-ordered stream of scans at 1-minute spacing.
fn stream_strategy(max_len: usize) -> impl Strategy<Value = Vec<Scan>> {
    proptest::collection::vec(scan_strategy(), 0..max_len).prop_map(|mut scans| {
        for (i, s) in scans.iter_mut().enumerate() {
            *s = Scan::from_parts(i as u64 * 60_000, s.aps().to_vec());
        }
        scans
    })
}

proptest! {
    #[test]
    fn cosine_is_bounded_and_symmetric(a in scan_strategy(), b in scan_strategy()) {
        let ab = cosine(&a, &b);
        let ba = cosine(&b, &a);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ab), "cosine {ab}");
        prop_assert!((ab - ba).abs() < 1e-12, "symmetry {ab} vs {ba}");
    }

    #[test]
    fn cosine_self_similarity_is_one(a in scan_strategy()) {
        prop_assume!(!a.is_empty());
        let s = cosine(&a, &a);
        prop_assert!((s - 1.0).abs() < 1e-9, "self-cosine {s}");
    }

    #[test]
    fn sanitize_is_idempotent_and_clean(
        t in 0u64..1_000_000,
        readings in proptest::collection::vec((0u64..(1u64 << 48), -120.0f64..-20.0), 0..20),
    ) {
        let raw = RawScan {
            timestamp_ms: t,
            readings: readings
                .into_iter()
                .map(|(b, rssi)| ApReading { bssid: Bssid::new(b), rssi_dbm: rssi })
                .collect(),
        };
        let scan = raw.sanitize();
        // No locally administered BSSIDs survive; strengths normalized;
        // sorted unique by BSSID.
        for w in scan.aps().windows(2) {
            prop_assert!(w[0].0 < w[1].0, "sorted unique");
        }
        for &(b, l) in scan.aps() {
            prop_assert!(!b.is_locally_administered());
            prop_assert!((0.0..=1.0).contains(&l));
        }
    }

    #[test]
    fn dbscan_labels_are_wellformed(scans in stream_strategy(40)) {
        let params = DbscanParams { eps: 0.3, min_pts: 3 };
        let labels = dbscan(&scans, params);
        prop_assert_eq!(labels.len(), scans.len());
        // Cluster ids are contiguous from zero.
        let max = labels.iter().flatten().copied().max();
        if let Some(max) = max {
            for id in 0..=max {
                prop_assert!(
                    labels.iter().flatten().any(|&l| l == id),
                    "cluster id {id} missing"
                );
            }
        }
        // Every cluster contains at least one core point.
        if let Some(max) = max {
            for id in 0..=max {
                let members: Vec<usize> = labels
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| **l == Some(id))
                    .map(|(i, _)| i)
                    .collect();
                let has_core = members.iter().any(|&i| {
                    scans
                        .iter()
                        .filter(|s| {
                            1.0 - cosine(&scans[i], s) <= params.eps
                        })
                        .count()
                        >= params.min_pts
                });
                prop_assert!(has_core, "cluster {id} has no core point");
            }
        }
    }

    #[test]
    fn stream_summaries_are_wellformed(scans in stream_strategy(120)) {
        let cfg = StreamConfig::default();
        let mut clusterer = StreamClusterer::new(cfg);
        let mut summaries = Vec::new();
        for s in scans {
            summaries.extend(clusterer.push(s));
        }
        summaries.extend(clusterer.finish());
        let mut last_exit = 0;
        for s in &summaries {
            prop_assert!(s.samples >= cfg.min_pts);
            prop_assert!(s.entry_ms <= s.exit_ms);
            prop_assert!(!s.representative.is_empty(), "representative has APs");
            // Emissions are ordered by closing time, which is monotone in
            // exit timestamps.
            prop_assert!(s.exit_ms >= last_exit, "exit order");
            last_exit = s.exit_ms;
        }
    }

    #[test]
    fn gap_reset_equals_split_runs(
        first in stream_strategy(60),
        second in stream_strategy(60),
    ) {
        // Clustering A ++ (gap) ++ B must equal clustering A and B
        // independently: the gap reset makes the window memoryless across
        // long silences.
        let cfg = StreamConfig::default();
        let gap_offset = 60 * 60_000 + cfg.max_gap_ms * 2;
        let second_shifted: Vec<Scan> = second
            .iter()
            .map(|s| Scan::from_parts(s.timestamp_ms + gap_offset, s.aps().to_vec()))
            .collect();

        let mut joined = StreamClusterer::new(cfg);
        let mut out_joined = Vec::new();
        for s in first.iter().cloned().chain(second_shifted.iter().cloned()) {
            out_joined.extend(joined.push(s));
        }
        out_joined.extend(joined.finish());

        let mut out_split = Vec::new();
        let mut a = StreamClusterer::new(cfg);
        for s in first {
            out_split.extend(a.push(s));
        }
        out_split.extend(a.finish());
        let mut b = StreamClusterer::new(cfg);
        for s in second_shifted {
            out_split.extend(b.push(s));
        }
        out_split.extend(b.finish());

        prop_assert_eq!(out_joined, out_split);
    }

    #[test]
    fn dwell_then_move_emits_at_most_expected_clusters(
        dwell_len in 5usize..40,
        noise_len in 5usize..40,
    ) {
        // Deterministic shape check across sizes: a stable dwell followed
        // by random transit emits exactly one cluster for the dwell.
        let mut scans = Vec::new();
        for t in 0..dwell_len {
            scans.push(Scan::from_parts(
                t as u64 * 60_000,
                vec![(Bssid::new(1), 0.9), (Bssid::new(2), 0.7)],
            ));
        }
        for t in 0..noise_len {
            scans.push(Scan::from_parts(
                (dwell_len + t) as u64 * 60_000,
                vec![(Bssid::new(1_000 + 17 * t as u64), 0.4)],
            ));
        }
        let mut clusterer = StreamClusterer::new(StreamConfig::default());
        let mut out = Vec::new();
        for s in scans {
            out.extend(clusterer.push(s));
        }
        out.extend(clusterer.finish());
        prop_assert_eq!(out.len(), 1);
        prop_assert_eq!(out[0].samples, dwell_len);
    }
}
