//! Randomized agreement between the optimized cosine (cached norms,
//! range-disjoint and aligned-layout fast paths) and a from-scratch
//! reference that recomputes everything with the textbook formula.
//!
//! The fast paths are meant to be *bit-identical* rewrites, but this
//! oracle deliberately computes in a different association order (norms
//! via a separate pass, no caching), so agreement is asserted to 1e-12
//! rather than exactly.

use pogo_cluster::similarity::cosine_distance;
use pogo_cluster::{cosine, Bssid, Scan};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Textbook cosine over sparse vectors: no caching, no fast paths.
/// Inputs are canonicalized the way `Scan::from_parts` does (stable sort
/// by BSSID, first reading wins on duplicates).
fn reference_cosine(a: &[(u64, f64)], b: &[(u64, f64)]) -> f64 {
    let (a, b) = (canonical(a), canonical(b));
    let (a, b) = (a.as_slice(), b.as_slice());
    let dot: f64 = a
        .iter()
        .map(|&(ba, sa)| {
            b.iter()
                .find(|&&(bb, _)| bb == ba)
                .map_or(0.0, |&(_, sb)| sa * sb)
        })
        .sum();
    let norm_a: f64 = a.iter().map(|&(_, s)| s * s).sum::<f64>().sqrt();
    let norm_b: f64 = b.iter().map(|&(_, s)| s * s).sum::<f64>().sqrt();
    if norm_a == 0.0 || norm_b == 0.0 {
        return 0.0;
    }
    dot / (norm_a * norm_b)
}

fn canonical(pairs: &[(u64, f64)]) -> Vec<(u64, f64)> {
    let mut out = pairs.to_vec();
    out.sort_by_key(|&(b, _)| b);
    out.dedup_by_key(|&mut (b, _)| b);
    out
}

fn scan_of(pairs: &[(u64, f64)]) -> Scan {
    Scan::from_parts(0, pairs.iter().map(|&(b, s)| (Bssid::new(b), s)).collect())
}

fn assert_agrees(a: &[(u64, f64)], b: &[(u64, f64)], what: &str) {
    let (sa, sb) = (scan_of(a), scan_of(b));
    let got = cosine(&sa, &sb);
    let want = reference_cosine(a, b);
    assert!(
        (got - want).abs() < 1e-12,
        "{what}: cosine {got} vs reference {want}\n  a: {a:?}\n  b: {b:?}"
    );
    assert!(
        (cosine_distance(&sa, &sb) - (1.0 - got)).abs() < 1e-12,
        "{what}: distance must complement similarity"
    );
    // Symmetry comes free from the formula; the fast paths must keep it.
    assert_eq!(got, cosine(&sb, &sa), "{what}: symmetry");
}

/// Random scans of every shape the fast paths discriminate on: empty,
/// fully disjoint ranges, interleaved, identical layouts, and partial
/// overlaps with equal lengths (the aligned-path bail-out).
#[test]
fn random_scans_agree_with_reference() {
    let mut rng = SmallRng::seed_from_u64(0x636f_7369);
    for case in 0..2_000u32 {
        let shape = rng.gen_range(0..6usize);
        let len_a = rng.gen_range(0..8usize);
        let a: Vec<(u64, f64)> = (0..len_a)
            .map(|_| {
                (
                    rng.gen_range(1..40u64),
                    rng.gen_range(0..1_000u64) as f64 / 1_000.0,
                )
            })
            .collect();
        let b: Vec<(u64, f64)> = match shape {
            // Same BSSIDs, different strengths: the aligned fast path.
            0 => a
                .iter()
                .map(|&(bssid, _)| (bssid, rng.gen_range(0..1_000u64) as f64 / 1_000.0))
                .collect(),
            // Strictly above a's range: the range-disjoint fast path.
            1 => (0..rng.gen_range(0..8usize))
                .map(|_| {
                    (
                        rng.gen_range(100..140u64),
                        rng.gen_range(0..1_000u64) as f64 / 1_000.0,
                    )
                })
                .collect(),
            // Empty versus whatever a is.
            2 => Vec::new(),
            // Same length but different BSSIDs: aligned-path bail-out
            // into the merge join.
            3 => (0..len_a)
                .map(|_| {
                    (
                        rng.gen_range(1..40u64),
                        rng.gen_range(0..1_000u64) as f64 / 1_000.0,
                    )
                })
                .collect(),
            // Identical scan (similarity 1 unless empty).
            4 => a.clone(),
            // Unrelated length and range, overlapping a's.
            _ => (0..rng.gen_range(0..12usize))
                .map(|_| {
                    (
                        rng.gen_range(1..60u64),
                        rng.gen_range(0..1_000u64) as f64 / 1_000.0,
                    )
                })
                .collect(),
        };
        assert_agrees(&a, &b, &format!("case {case} shape {shape}"));
    }
}

/// The corner shapes, pinned explicitly so a refactor can't lose them to
/// an unlucky seed.
#[test]
fn edge_shapes_agree_with_reference() {
    let empty: &[(u64, f64)] = &[];
    let one = &[(5, 0.7)];
    let low = &[(1, 0.4), (2, 0.9)];
    let high = &[(10, 0.3), (11, 0.8)];
    let zeros = &[(1, 0.0), (2, 0.0)];

    assert_agrees(empty, empty, "empty/empty");
    assert_agrees(empty, one, "empty/one");
    assert_agrees(low, high, "range-disjoint");
    assert_agrees(high, low, "range-disjoint flipped");
    assert_agrees(low, low, "identical");
    assert_agrees(zeros, low, "zero-norm strengths");
    // Same length, one shared endpoint: touches the aligned bail-out and
    // the merge join's tail handling.
    assert_agrees(
        &[(1, 0.5), (7, 0.5)],
        &[(7, 0.5), (9, 0.5)],
        "shared endpoint",
    );
}
