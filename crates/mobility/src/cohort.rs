//! The Table 4 cohort: nine sessions (eight users, user 2's phone swap
//! splitting into 2a/2b) with per-user behaviour and disruptions.
//!
//! The goal is not to clone eight specific humans but to reproduce the
//! *shape* of Table 4: most users yield a few hundred dwelling sessions,
//! user 3 — highly mobile — yields far more, user 6 far fewer; user 2a's
//! roaming trip and user 3's 3G outage punch holes in the collected data
//! (message expiry), and everyone's reboots and the researchers' script
//! updates truncate occasional clusters.

use pogo_sim::SimRng;

use crate::trace::{DisruptionSchedule, MovementTrace, Whereabouts};
use crate::world::{PlaceId, World};

const MIN: u64 = 60_000;
const HOUR: u64 = 3_600_000;
const DAY: u64 = 86_400_000;

/// Behavioural archetype driving schedule generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Archetype {
    /// Commuter: home, office, occasional lunch/evening/weekend outings.
    Regular,
    /// Rarely leaves home; few dwelling sessions (user 6).
    Homebody,
    /// Field worker visiting dozens of short sites per day (user 3).
    Courier,
    /// Busy social schedule: many short stops on top of work (user 7).
    Social,
}

/// One Table 4 row to be simulated.
#[derive(Debug, Clone, PartialEq)]
pub struct UserSpec {
    /// Row label ("User 1", "User 2a", …).
    pub name: String,
    /// Behaviour archetype.
    pub archetype: Archetype,
    /// First day of the session (inclusive), 0-based.
    pub start_day: u64,
    /// Last day of the session (exclusive).
    pub end_day: u64,
    /// Probability a given night the phone is switched off 00:00–07:00.
    pub nightly_off_prob: f64,
    /// Probability an individual Wi-Fi scan returns nothing (flaky
    /// chipset — user 1's phone produced markedly fewer scans).
    pub scan_failure_prob: f64,
    /// Trip abroad with data roaming off: `(first_day, last_day_excl)`.
    pub roaming_days: Option<(u64, u64)>,
    /// Broken 3G subscription: `(first_day, last_day_excl)`.
    pub outage_days: Option<(u64, u64)>,
    /// User 7: Wi-Fi-only connectivity (no mobile data at all).
    pub wifi_only: bool,
    /// Mean days between reboots (exponential arrivals).
    pub reboot_mean_days: f64,
    /// Per-user RNG salt.
    pub seed_salt: u64,
}

impl UserSpec {
    /// A default 24-day session with the given archetype and RNG salt.
    pub fn new(name: &str, archetype: Archetype, salt: u64) -> Self {
        UserSpec {
            name: name.to_owned(),
            archetype,
            start_day: 0,
            end_day: 24,
            nightly_off_prob: 0.0,
            scan_failure_prob: 0.0,
            roaming_days: None,
            outage_days: None,
            wifi_only: false,
            reboot_mean_days: 6.0,
            seed_salt: salt,
        }
    }
}

/// The nine sessions of the paper's deployment (24 days, §5.3).
pub fn paper_cohort() -> Vec<UserSpec> {
    vec![
        UserSpec {
            // Fewer scans than the others: occasionally off at night and
            // a chipset that misses scans.
            nightly_off_prob: 0.12,
            scan_failure_prob: 0.20,
            ..UserSpec::new("User 1", Archetype::Regular, 1)
        },
        UserSpec {
            // First phone, until it gave trouble; took a trip abroad with
            // data roaming off — messages older than 24 h were purged.
            end_day: 8,
            roaming_days: Some((5, 7)),
            reboot_mean_days: 3.0, // the troublesome Xperia
            ..UserSpec::new("User 2a", Archetype::Regular, 2)
        },
        UserSpec {
            // Replacement Galaxy Nexus, in use only for the last stretch
            // of the window (the paper's 2b session has ~6.7k scans).
            start_day: 19,
            ..UserSpec::new("User 2b", Archetype::Regular, 3)
        },
        UserSpec {
            // Highly mobile; 3G access broke for two days.
            outage_days: Some((13, 16)),
            ..UserSpec::new("User 3", Archetype::Courier, 4)
        },
        UserSpec::new("User 4", Archetype::Regular, 5),
        UserSpec::new("User 5", Archetype::Regular, 6),
        UserSpec {
            // Rarely leaves home and rarely reboots; a long-dwell phone.
            reboot_mean_days: 12.0,
            ..UserSpec::new("User 6", Archetype::Homebody, 7)
        },
        UserSpec {
            // No mobile Internet: offloads over Wi-Fi at known places.
            wifi_only: true,
            ..UserSpec::new("User 7", Archetype::Social, 8)
        },
        UserSpec::new("User 8", Archetype::Regular, 9),
    ]
}

/// A fully-generated per-session scenario.
#[derive(Debug, Clone)]
pub struct UserScenario {
    /// The spec this was generated from.
    pub spec: UserSpec,
    /// The user's places; `places[0]` is home, `places[1]` (if present)
    /// the office/primary site.
    pub places: Vec<PlaceId>,
    /// Places with Wi-Fi the user may offload over when `wifi_only`
    /// (home and office).
    pub wifi_places: Vec<PlaceId>,
    /// Minute-by-minute movement.
    pub trace: MovementTrace,
    /// Reboots, script updates, data gaps.
    pub disruptions: DisruptionSchedule,
}

impl UserSpec {
    /// Generates this user's places, movement trace, and disruption
    /// schedule into `world`. Deterministic in (`rng` seed, spec).
    pub fn build(&self, world: &mut World, rng: &mut SimRng) -> UserScenario {
        let mut rng = rng.fork(self.seed_salt);
        let places = self.make_places(world, &mut rng);
        let trace = self.make_trace(&places, &mut rng);
        let disruptions = self.make_disruptions(&mut rng);
        let wifi_places = places.iter().take(2).copied().collect();
        UserScenario {
            spec: self.clone(),
            places,
            wifi_places,
            trace,
            disruptions,
        }
    }

    fn make_places(&self, world: &mut World, rng: &mut SimRng) -> Vec<PlaceId> {
        let user = &self.name;
        let add = |tag: &str, n_aps: (u64, u64), world: &mut World, rng: &mut SimRng| {
            let n = rng.range_u64(n_aps.0, n_aps.1) as usize;
            world.add_place(&format!("{user}-{tag}"), n, rng)
        };
        let mut places = vec![add("home", (5, 10), world, rng)];
        match self.archetype {
            Archetype::Regular => {
                places.push(add("office", (8, 16), world, rng));
                for tag in ["lunch", "gym", "friend", "shop"] {
                    places.push(add(tag, (3, 8), world, rng));
                }
            }
            Archetype::Homebody => {
                places.push(add("club", (4, 8), world, rng));
                places.push(add("shop", (3, 6), world, rng));
            }
            Archetype::Courier => {
                places.push(add("depot", (6, 10), world, rng));
                for i in 0..15 {
                    places.push(add(&format!("site-{i}"), (3, 7), world, rng));
                }
            }
            Archetype::Social => {
                places.push(add("office", (8, 16), world, rng));
                for i in 0..8 {
                    places.push(add(&format!("venue-{i}"), (3, 8), world, rng));
                }
            }
        }
        if self.roaming_days.is_some() {
            for tag in ["hotel", "conference", "cafe"] {
                places.push(add(&format!("abroad-{tag}"), (4, 9), world, rng));
            }
        }
        places
    }

    fn make_trace(&self, places: &[PlaceId], rng: &mut SimRng) -> MovementTrace {
        let end_ms = self.end_day * DAY;
        let mut t = MovementTrace::new(end_ms);
        let home = places[0];
        for day in self.start_day..self.end_day {
            let day_start = day * DAY;
            let roaming = self.roaming_days.is_some_and(|(a, b)| day >= a && day < b);
            // Night: possibly phone off until 07:00.
            if rng.chance(self.nightly_off_prob) {
                t.push(day_start, Whereabouts::PhoneOff);
                t.push(day_start + 7 * HOUR, Whereabouts::At(home));
            } else {
                t.push(day_start, Whereabouts::At(home));
            }
            if roaming {
                self.roaming_day(&mut t, places, day_start, rng);
                continue;
            }
            let weekday = day % 7 < 5;
            match self.archetype {
                Archetype::Regular if weekday => {
                    self.regular_workday(&mut t, places, day_start, rng)
                }
                Archetype::Regular => self.weekend(&mut t, places, day_start, rng),
                Archetype::Homebody => self.homebody_day(&mut t, places, day_start, rng),
                Archetype::Courier if weekday => self.courier_day(&mut t, places, day_start, rng),
                Archetype::Courier => self.weekend(&mut t, places, day_start, rng),
                Archetype::Social if weekday => {
                    self.regular_workday(&mut t, places, day_start, rng);
                    self.social_errands(&mut t, places, day_start, rng);
                }
                Archetype::Social => {
                    self.weekend(&mut t, places, day_start, rng);
                    self.social_errands(&mut t, places, day_start, rng);
                }
            }
        }
        t
    }

    fn regular_workday(
        &self,
        t: &mut MovementTrace,
        places: &[PlaceId],
        day_start: u64,
        rng: &mut SimRng,
    ) {
        let office = places[1];
        let leave = day_start + 7 * HOUR + 45 * MIN + rng.range_u64(0, 30) * MIN;
        let commute = 20 * MIN + rng.range_u64(0, 15) * MIN;
        t.push(leave, Whereabouts::Transit);
        t.push(leave + commute, Whereabouts::At(office));
        let mut cursor = leave + commute;
        // Lunch outing.
        if places.len() > 2 && rng.chance(0.5) {
            let lunch = places[2];
            let out = day_start + 12 * HOUR + rng.range_u64(0, 45) * MIN;
            if out > cursor {
                t.push(out, Whereabouts::Transit);
                t.push(out + 5 * MIN, Whereabouts::At(lunch));
                t.push(out + 45 * MIN, Whereabouts::Transit);
                t.push(out + 50 * MIN, Whereabouts::At(office));
                cursor = out + 50 * MIN;
            }
        }
        let leave_work =
            (day_start + 17 * HOUR + rng.range_u64(0, 60) * MIN).max(cursor + 30 * MIN);
        t.push(leave_work, Whereabouts::Transit);
        let home_at = leave_work + 20 * MIN + rng.range_u64(0, 15) * MIN;
        t.push(home_at, Whereabouts::At(places[0]));
        // Evening outing.
        if places.len() > 3 && rng.chance(0.35) {
            let venue = places[3 + rng.index(places.len().saturating_sub(3).min(3))];
            let out = (day_start + 19 * HOUR + 30 * MIN).max(home_at + 30 * MIN);
            let dur = HOUR + rng.range_u64(0, 60) * MIN;
            t.push(out, Whereabouts::Transit);
            t.push(out + 10 * MIN, Whereabouts::At(venue));
            t.push(out + 10 * MIN + dur, Whereabouts::Transit);
            t.push(out + 20 * MIN + dur, Whereabouts::At(places[0]));
        }
    }

    fn weekend(&self, t: &mut MovementTrace, places: &[PlaceId], day_start: u64, rng: &mut SimRng) {
        let outings = rng.range_u64(1, 3);
        let mut cursor = day_start + 10 * HOUR;
        for _ in 0..outings {
            if places.len() < 2 {
                break;
            }
            let venue = places[1 + rng.index(places.len() - 1)];
            let dur = 45 * MIN + rng.range_u64(0, 120) * MIN;
            // Never run past 23:00: the next day's schedule starts at
            // midnight and segments must stay ordered.
            if cursor + 30 * MIN + dur >= day_start + 23 * HOUR {
                break;
            }
            t.push(cursor, Whereabouts::Transit);
            t.push(cursor + 15 * MIN, Whereabouts::At(venue));
            t.push(cursor + 15 * MIN + dur, Whereabouts::Transit);
            t.push(cursor + 30 * MIN + dur, Whereabouts::At(places[0]));
            cursor += 30 * MIN + dur + HOUR + rng.range_u64(0, 2 * 60) * MIN;
            if cursor >= day_start + 21 * HOUR {
                break;
            }
        }
    }

    fn homebody_day(
        &self,
        t: &mut MovementTrace,
        places: &[PlaceId],
        day_start: u64,
        rng: &mut SimRng,
    ) {
        // Leaves the house at most once, some days not at all.
        if rng.chance(0.45) && places.len() >= 2 {
            let venue = places[1 + rng.index(places.len() - 1)];
            let out = day_start + 10 * HOUR + rng.range_u64(0, 6 * 60) * MIN;
            let dur = 40 * MIN + rng.range_u64(0, 90) * MIN;
            t.push(out, Whereabouts::Transit);
            t.push(out + 12 * MIN, Whereabouts::At(venue));
            t.push(out + 12 * MIN + dur, Whereabouts::Transit);
            t.push(out + 24 * MIN + dur, Whereabouts::At(places[0]));
        }
    }

    fn courier_day(
        &self,
        t: &mut MovementTrace,
        places: &[PlaceId],
        day_start: u64,
        rng: &mut SimRng,
    ) {
        let depot = places[1];
        let sites = &places[2..];
        let mut cursor = day_start + 7 * HOUR + 30 * MIN;
        t.push(cursor, Whereabouts::Transit);
        cursor += 15 * MIN;
        t.push(cursor, Whereabouts::At(depot));
        cursor += 30 * MIN;
        // Site visits until ~18:00: short dwell, short hop.
        while cursor < day_start + 18 * HOUR {
            let site = sites[rng.index(sites.len())];
            let hop = 2 * MIN + rng.range_u64(0, 3) * MIN;
            let dwell = 5 * MIN + rng.range_u64(0, 5) * MIN;
            t.push(cursor, Whereabouts::Transit);
            cursor += hop;
            t.push(cursor, Whereabouts::At(site));
            cursor += dwell;
        }
        t.push(cursor, Whereabouts::Transit);
        cursor += 20 * MIN;
        t.push(cursor, Whereabouts::At(places[0]));
    }

    fn social_errands(
        &self,
        t: &mut MovementTrace,
        places: &[PlaceId],
        day_start: u64,
        rng: &mut SimRng,
    ) {
        // Late-evening quick stops stacked after the day's main schedule.
        let n = rng.range_u64(2, 5);
        // Start after whatever the day schedule already produced.
        let last_start = t.segments().last().map(|&(s, _)| s).unwrap_or(day_start);
        let mut cursor = (day_start + 20 * HOUR + 30 * MIN).max(last_start + 10 * MIN);
        let venues = &places[2..];
        if venues.is_empty() {
            return;
        }
        let curfew = day_start + 23 * HOUR + 30 * MIN;
        for _ in 0..n {
            if cursor + 25 * MIN >= curfew {
                break;
            }
            let venue = venues[rng.index(venues.len())];
            let dwell = 8 * MIN + rng.range_u64(0, 12) * MIN;
            t.push(cursor, Whereabouts::Transit);
            cursor += 5 * MIN;
            t.push(cursor, Whereabouts::At(venue));
            cursor += dwell;
        }
        if cursor + 8 * MIN < day_start + DAY {
            t.push(cursor, Whereabouts::Transit);
            t.push(cursor + 8 * MIN, Whereabouts::At(places[0]));
        }
    }

    fn roaming_day(
        &self,
        t: &mut MovementTrace,
        places: &[PlaceId],
        day_start: u64,
        rng: &mut SimRng,
    ) {
        // Abroad: hotel nights, conference days, café evenings.
        let n = places.len();
        let (hotel, conference, cafe) = (places[n - 3], places[n - 2], places[n - 1]);
        t.push(day_start + 7 * HOUR, Whereabouts::At(hotel));
        t.push(day_start + 8 * HOUR + 30 * MIN, Whereabouts::Transit);
        t.push(day_start + 9 * HOUR, Whereabouts::At(conference));
        t.push(day_start + 17 * HOUR, Whereabouts::Transit);
        let evening = day_start + 17 * HOUR + 20 * MIN;
        if rng.chance(0.7) {
            t.push(evening, Whereabouts::At(cafe));
            t.push(evening + 2 * HOUR, Whereabouts::Transit);
            t.push(evening + 2 * HOUR + 20 * MIN, Whereabouts::At(hotel));
        } else {
            t.push(evening, Whereabouts::At(hotel));
        }
    }

    fn make_disruptions(&self, rng: &mut SimRng) -> DisruptionSchedule {
        let start_ms = self.start_day * DAY;
        let end_ms = self.end_day * DAY;
        // Reboots: exponential inter-arrivals.
        let mut reboots = Vec::new();
        let mut cursor = start_ms as f64;
        loop {
            cursor += rng.exponential(self.reboot_mean_days) * DAY as f64;
            if cursor >= end_ms as f64 {
                break;
            }
            reboots.push(cursor as u64);
        }
        // Researchers redeployed the clustering script on days 3 and 10
        // at 10:00 (affects every session alive at that moment).
        let script_updates = [3u64, 10]
            .iter()
            .map(|d| d * DAY + 10 * HOUR)
            .filter(|&ts| ts >= start_ms && ts < end_ms)
            .collect();
        let mut data_gaps = Vec::new();
        if let Some((a, b)) = self.roaming_days {
            data_gaps.push((a * DAY, b * DAY));
        }
        if let Some((a, b)) = self.outage_days {
            data_gaps.push((a * DAY, b * DAY));
        }
        DisruptionSchedule {
            reboots,
            script_updates,
            data_gaps,
            wifi_only: self.wifi_only,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(spec: &UserSpec) -> (World, UserScenario) {
        let mut rng = SimRng::seed_from_u64(77);
        let mut world = World::new(80, &mut rng);
        let scenario = spec.build(&mut world, &mut rng);
        (world, scenario)
    }

    #[test]
    fn cohort_has_nine_sessions_matching_table4_rows() {
        let cohort = paper_cohort();
        assert_eq!(cohort.len(), 9);
        let names: Vec<&str> = cohort.iter().map(|u| u.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "User 1", "User 2a", "User 2b", "User 3", "User 4", "User 5", "User 6", "User 7",
                "User 8"
            ]
        );
        // Sessions 2a and 2b do not overlap (the phone swap had downtime).
        assert!(cohort[1].end_day <= cohort[2].start_day);
        assert!(cohort[1].roaming_days.is_some());
        assert!(cohort[3].outage_days.is_some());
        assert!(cohort[7].wifi_only);
    }

    #[test]
    fn regular_user_dwells_mostly_at_home_and_office() {
        let spec = UserSpec::new("User T", Archetype::Regular, 1);
        let (_, s) = build(&spec);
        let mut home_min = 0u64;
        let mut office_min = 0u64;
        for m in 0..(24 * 24 * 60) {
            match s.trace.whereabouts(m * MIN) {
                Whereabouts::At(p) if p == s.places[0] => home_min += 1,
                Whereabouts::At(p) if p == s.places[1] => office_min += 1,
                _ => {}
            }
        }
        assert!(home_min > office_min, "more time at home than office");
        assert!(
            office_min > 24 * 4 * 60 / 2,
            "several hours of office on workdays"
        );
    }

    #[test]
    fn courier_has_many_more_sessions_than_homebody() {
        let courier = UserSpec::new("c", Archetype::Courier, 2);
        let homebody = UserSpec::new("h", Archetype::Homebody, 3);
        let (_, sc) = build(&courier);
        let (_, sh) = build(&homebody);
        let c_sessions = sc.trace.dwell_sessions(4 * MIN);
        let h_sessions = sh.trace.dwell_sessions(4 * MIN);
        assert!(
            c_sessions > 5 * h_sessions,
            "courier {c_sessions} vs homebody {h_sessions}"
        );
        assert!(
            c_sessions > 500,
            "courier should rack up hundreds: {c_sessions}"
        );
        assert!(h_sessions < 80, "homebody stays in: {h_sessions}");
    }

    #[test]
    fn nightly_off_reduces_powered_time() {
        let mut on = UserSpec::new("on", Archetype::Regular, 4);
        on.nightly_off_prob = 0.0;
        let mut off = UserSpec::new("off", Archetype::Regular, 4);
        off.nightly_off_prob = 1.0;
        let (_, so) = build(&on);
        let (_, sf) = build(&off);
        let full = so.trace.powered_on_ms();
        let reduced = sf.trace.powered_on_ms();
        assert!(reduced < full);
        // 7 of 24 hours off -> roughly 29% reduction.
        let ratio = reduced as f64 / full as f64;
        assert!((0.65..0.78).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn roaming_days_are_data_gaps_at_foreign_places() {
        let mut spec = UserSpec::new("2a", Archetype::Regular, 5);
        spec.end_day = 8;
        spec.roaming_days = Some((4, 8));
        let (world, s) = build(&spec);
        assert!(s.disruptions.in_data_gap(5 * DAY));
        assert!(!s.disruptions.in_data_gap(3 * DAY));
        // During the trip the user dwells at "abroad-*" places.
        match s.trace.whereabouts(5 * DAY + 12 * HOUR) {
            Whereabouts::At(p) => {
                assert!(world.place(p).name.contains("abroad"));
            }
            other => panic!("expected dwell abroad, got {other:?}"),
        }
    }

    #[test]
    fn session_window_is_respected() {
        let mut spec = UserSpec::new("2b", Archetype::Regular, 6);
        spec.start_day = 8;
        let (_, s) = build(&spec);
        assert!(s.trace.segments().first().map(|&(t, _)| t).unwrap_or(0) >= 8 * DAY);
        assert_eq!(s.trace.end_ms(), 24 * DAY);
    }

    #[test]
    fn script_updates_only_within_session_window() {
        let cohort = paper_cohort();
        let mut rng = SimRng::seed_from_u64(1);
        let mut world = World::new(10, &mut rng);
        let s2a = cohort[1].build(&mut world, &mut rng);
        let s2b = cohort[2].build(&mut world, &mut rng);
        assert_eq!(s2a.disruptions.script_updates.len(), 1); // day 3 only
        assert_eq!(
            s2b.disruptions.script_updates.len(),
            0,
            "2b's late phone missed both redeployments"
        );
    }

    #[test]
    fn scenario_generation_is_deterministic() {
        let spec = UserSpec::new("d", Archetype::Social, 11);
        let (_, a) = build(&spec);
        let (_, b) = build(&spec);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.disruptions, b.disruptions);
    }
}
