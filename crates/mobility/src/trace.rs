//! Movement timelines and disruption schedules.

use crate::world::PlaceId;

/// Where a user is during a time segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Whereabouts {
    /// Dwelling at a place.
    At(PlaceId),
    /// Moving between places (street APs only).
    Transit,
    /// Phone switched off — no scans at all.
    PhoneOff,
}

/// A piecewise-constant movement timeline: each segment holds from its
/// start until the next segment's start.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MovementTrace {
    segments: Vec<(u64, Whereabouts)>,
    end_ms: u64,
}

impl MovementTrace {
    /// Creates an empty trace ending at `end_ms`.
    pub fn new(end_ms: u64) -> Self {
        MovementTrace {
            segments: Vec::new(),
            end_ms,
        }
    }

    /// Appends a segment starting at `start_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `start_ms` is before the previous segment's start.
    pub fn push(&mut self, start_ms: u64, w: Whereabouts) {
        if let Some(&(prev, _)) = self.segments.last() {
            assert!(start_ms >= prev, "segments must be pushed in time order");
        }
        // Collapse zero-length or identical-adjacent segments.
        if let Some(last) = self.segments.last_mut() {
            if last.0 == start_ms {
                last.1 = w;
                return;
            }
            if last.1 == w {
                return;
            }
        }
        self.segments.push((start_ms, w));
    }

    /// Where the user is at `t_ms`. Before the first segment (or for an
    /// empty trace) the phone is off — sessions that start mid-window
    /// (user 2b's replacement phone) simply do not exist yet.
    pub fn whereabouts(&self, t_ms: u64) -> Whereabouts {
        match self.segments.partition_point(|&(s, _)| s <= t_ms) {
            0 => Whereabouts::PhoneOff,
            n => self.segments[n - 1].1,
        }
    }

    /// End of the trace in milliseconds.
    pub fn end_ms(&self) -> u64 {
        self.end_ms
    }

    /// The raw segments.
    pub fn segments(&self) -> &[(u64, Whereabouts)] {
        &self.segments
    }

    /// Number of dwell segments lasting at least `min_ms` — the expected
    /// number of "locations" (dwelling sessions) the clusterer should find.
    pub fn dwell_sessions(&self, min_ms: u64) -> usize {
        let mut count = 0;
        for (i, &(start, w)) in self.segments.iter().enumerate() {
            if let Whereabouts::At(_) = w {
                let end = self
                    .segments
                    .get(i + 1)
                    .map(|&(s, _)| s)
                    .unwrap_or(self.end_ms);
                if end.saturating_sub(start) >= min_ms {
                    count += 1;
                }
            }
        }
        count
    }

    /// Total milliseconds the phone is on (not [`Whereabouts::PhoneOff`]).
    pub fn powered_on_ms(&self) -> u64 {
        let mut total = 0;
        for (i, &(start, w)) in self.segments.iter().enumerate() {
            let end = self
                .segments
                .get(i + 1)
                .map(|&(s, _)| s)
                .unwrap_or(self.end_ms);
            if w != Whereabouts::PhoneOff {
                total += end.saturating_sub(start);
            }
        }
        total
    }
}

/// Per-session failure/maintenance events, mirroring §5.3's observations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DisruptionSchedule {
    /// Phone reboots / battery deaths: the middleware restarts and
    /// unfrozen script state is lost.
    pub reboots: Vec<u64>,
    /// Researcher redeployments: the script restarts (same state-loss
    /// effect; §5.3 "when we uploaded a new version of the script").
    pub script_updates: Vec<u64>,
    /// Windows with no cellular data (roaming off / 3G outage): `(from,
    /// to)` in ms.
    pub data_gaps: Vec<(u64, u64)>,
    /// User 7: no mobile Internet at all; only Wi-Fi at known places.
    pub wifi_only: bool,
}

impl DisruptionSchedule {
    /// True if cellular data is unavailable at `t_ms`.
    pub fn in_data_gap(&self, t_ms: u64) -> bool {
        self.data_gaps.iter().any(|&(a, b)| t_ms >= a && t_ms < b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOUR: u64 = 3_600_000;

    #[test]
    fn whereabouts_lookup() {
        let mut t = MovementTrace::new(10 * HOUR);
        t.push(0, Whereabouts::At(PlaceId(0)));
        t.push(2 * HOUR, Whereabouts::Transit);
        t.push(3 * HOUR, Whereabouts::At(PlaceId(1)));
        assert_eq!(t.whereabouts(HOUR), Whereabouts::At(PlaceId(0)));
        assert_eq!(t.whereabouts(2 * HOUR), Whereabouts::Transit);
        assert_eq!(t.whereabouts(9 * HOUR), Whereabouts::At(PlaceId(1)));
    }

    #[test]
    fn before_first_segment_phone_is_off() {
        let mut t = MovementTrace::new(HOUR);
        t.push(HOUR / 2, Whereabouts::At(PlaceId(0)));
        assert_eq!(t.whereabouts(0), Whereabouts::PhoneOff);
    }

    #[test]
    fn adjacent_identical_segments_collapse() {
        let mut t = MovementTrace::new(HOUR);
        t.push(0, Whereabouts::Transit);
        t.push(10, Whereabouts::Transit);
        assert_eq!(t.segments().len(), 1);
    }

    #[test]
    fn same_start_overwrites() {
        let mut t = MovementTrace::new(HOUR);
        t.push(5, Whereabouts::Transit);
        t.push(5, Whereabouts::At(PlaceId(3)));
        assert_eq!(t.segments().len(), 1);
        assert_eq!(t.whereabouts(6), Whereabouts::At(PlaceId(3)));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_push_panics() {
        let mut t = MovementTrace::new(HOUR);
        t.push(10, Whereabouts::Transit);
        t.push(5, Whereabouts::Transit);
    }

    #[test]
    fn dwell_sessions_counts_long_stays() {
        let mut t = MovementTrace::new(10 * HOUR);
        t.push(0, Whereabouts::At(PlaceId(0))); // 2h
        t.push(2 * HOUR, Whereabouts::Transit);
        t.push(3 * HOUR, Whereabouts::At(PlaceId(1))); // 30 min
        t.push(3 * HOUR + HOUR / 2, Whereabouts::Transit);
        t.push(4 * HOUR, Whereabouts::At(PlaceId(0))); // 6h (to end)
        assert_eq!(t.dwell_sessions(HOUR), 2);
        assert_eq!(t.dwell_sessions(HOUR / 4), 3);
    }

    #[test]
    fn powered_on_excludes_phone_off() {
        let mut t = MovementTrace::new(10 * HOUR);
        t.push(0, Whereabouts::At(PlaceId(0)));
        t.push(4 * HOUR, Whereabouts::PhoneOff);
        t.push(7 * HOUR, Whereabouts::At(PlaceId(0)));
        assert_eq!(t.powered_on_ms(), 7 * HOUR);
    }

    #[test]
    fn data_gap_membership() {
        let d = DisruptionSchedule {
            data_gaps: vec![(100, 200), (500, 600)],
            ..DisruptionSchedule::default()
        };
        assert!(!d.in_data_gap(99));
        assert!(d.in_data_gap(100));
        assert!(d.in_data_gap(199));
        assert!(!d.in_data_gap(200));
        assert!(d.in_data_gap(550));
    }
}
