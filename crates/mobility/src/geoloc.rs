//! The geolocation service: the Google-geolocation-API substitute.
//!
//! §4.1: "The collect.js script running on the collector node collects
//! these cluster characterizations and uses Google's geolocation service
//! to convert them into a longitude, latitude pair." Here the lookup is a
//! signal-weighted centroid over the synthetic world's AP database.

use pogo_cluster::Scan;

use crate::world::World;

/// A geographic coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GeoPoint {
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
}

impl GeoPoint {
    /// Euclidean distance in degree space (fine at city scale for tests).
    pub fn distance_deg(&self, other: &GeoPoint) -> f64 {
        ((self.lat - other.lat).powi(2) + (self.lon - other.lon).powi(2)).sqrt()
    }
}

/// Resolves scans to coordinates using the world's AP database.
#[derive(Debug, Clone)]
pub struct GeolocationService {
    world: World,
    lookups: std::rc::Rc<std::cell::Cell<u64>>,
}

impl GeolocationService {
    /// Creates a service backed by `world`'s AP database.
    pub fn new(world: World) -> Self {
        GeolocationService {
            world,
            lookups: std::rc::Rc::new(std::cell::Cell::new(0)),
        }
    }

    /// Number of lookups served (the experiment reports API usage).
    pub fn lookups(&self) -> u64 {
        self.lookups.get()
    }

    /// Locates a scan: the strength-weighted centroid of its resolvable
    /// APs, or `None` if no AP is in the database.
    pub fn locate(&self, scan: &Scan) -> Option<GeoPoint> {
        self.lookups.set(self.lookups.get() + 1);
        let mut lat_sum = 0.0;
        let mut lon_sum = 0.0;
        let mut weight_sum = 0.0;
        for &(bssid, strength) in scan.aps() {
            if let Some((lat, lon)) = self.world.ap_location(bssid) {
                let w = strength.max(0.01);
                lat_sum += lat * w;
                lon_sum += lon * w;
                weight_sum += w;
            }
        }
        if weight_sum == 0.0 {
            return None;
        }
        Some(GeoPoint {
            lat: lat_sum / weight_sum,
            lon: lon_sum / weight_sum,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::PlaceId;
    use pogo_cluster::Scan;
    use pogo_sim::SimRng;

    fn setup() -> (World, GeolocationService) {
        let mut rng = SimRng::seed_from_u64(9);
        let mut world = World::new(10, &mut rng);
        world.add_place("home", 6, &mut rng);
        let service = GeolocationService::new(world.clone());
        (world, service)
    }

    #[test]
    fn locates_a_place_scan_at_the_place() {
        let (world, service) = setup();
        let place = world.place(PlaceId(0)).clone();
        let scan = Scan::from_parts(0, place.aps.iter().map(|a| (a.bssid, 0.7)).collect());
        let point = service.locate(&scan).expect("resolvable");
        assert!((point.lat - place.lat).abs() < 1e-9);
        assert!((point.lon - place.lon).abs() < 1e-9);
        assert_eq!(service.lookups(), 1);
    }

    #[test]
    fn unknown_aps_resolve_to_none() {
        let (_, service) = setup();
        let scan = Scan::from_parts(0, vec![(pogo_cluster::Bssid::new(0xABCDEF), 0.9)]);
        assert_eq!(service.locate(&scan), None);
    }

    #[test]
    fn empty_scan_resolves_to_none() {
        let (_, service) = setup();
        assert_eq!(service.locate(&Scan::default()), None);
    }

    #[test]
    fn distance_helper() {
        let a = GeoPoint { lat: 0.0, lon: 0.0 };
        let b = GeoPoint { lat: 3.0, lon: 4.0 };
        assert!((a.distance_deg(&b) - 5.0).abs() < 1e-12);
    }
}
