//! # pogo-mobility — the synthetic deployment world
//!
//! The paper's §5.3 experiment ran on eight human participants carrying
//! phones for 24 days through the real world. That world is not available
//! here, so this crate synthesizes one that exercises the same code paths
//! and failure modes:
//!
//! * [`world`] — places (home, office, …) with Wi-Fi access-point
//!   populations, plus a street-AP pool seen in transit;
//! * [`trace`] — per-user movement timelines (dwell / transit / phone
//!   off) generated from behavioural archetypes;
//! * [`scanner`] — scan synthesis: RSSI noise, detection dropout, and a
//!   sprinkle of locally administered BSSIDs for `scan.js` to filter;
//! * [`geoloc`] — the Google-geolocation-API substitute used by
//!   `collect.js` (weighted-centroid lookup over the AP database);
//! * [`cohort`] — the nine Table 4 sessions (user 2 appears as 2a and
//!   2b) with their individual disruptions: user 1's phone-off nights,
//!   user 2a's roaming trip with data off, user 3's two-day 3G outage,
//!   user 7's Wi-Fi-only connectivity, and everyone's occasional reboots
//!   and the researchers' script redeployments.

pub mod cohort;
pub mod geoloc;
pub mod scanner;
pub mod trace;
pub mod world;

pub use cohort::{paper_cohort, Archetype, UserScenario, UserSpec};
pub use geoloc::{GeoPoint, GeolocationService};
pub use scanner::ScanSynthesizer;
pub use trace::{DisruptionSchedule, MovementTrace, Whereabouts};
pub use world::{ApSpec, Place, PlaceId, World};
