//! Scan synthesis: what the Wi-Fi chipset reports at a given place and
//! time.

use pogo_cluster::{ApReading, RawScan};
use pogo_sim::SimRng;

use crate::trace::Whereabouts;
use crate::world::{PlaceId, World};

/// Generates raw scans for one user's phone. Owns its RNG stream so scan
/// noise is deterministic per user and independent of other users.
#[derive(Debug)]
pub struct ScanSynthesizer {
    rng: SimRng,
    rssi_noise_std: f64,
    scans_produced: u64,
}

impl ScanSynthesizer {
    /// Creates a synthesizer with its own random stream.
    pub fn new(rng: SimRng) -> Self {
        ScanSynthesizer {
            rng,
            rssi_noise_std: 2.5,
            scans_produced: 0,
        }
    }

    /// Number of scans synthesized so far.
    pub fn scans_produced(&self) -> u64 {
        self.scans_produced
    }

    /// Synthesizes an accelerometer reading for the current activity:
    /// near-stationary gravity while dwelling, walking-scale jitter in
    /// transit, nothing while the phone is off.
    pub fn accel(&mut self, whereabouts: Whereabouts) -> Option<(f64, f64, f64)> {
        let jitter = match whereabouts {
            Whereabouts::PhoneOff => return None,
            Whereabouts::At(_) => 0.08, // on a desk / in a pocket at rest
            Whereabouts::Transit => 2.2, // walking
        };
        Some((
            self.rng.gauss(0.0, jitter),
            self.rng.gauss(0.0, jitter),
            self.rng.gauss(9.81, jitter),
        ))
    }

    /// The serving cell tower: one macro cell per place, a rotating set
    /// of street cells in transit.
    pub fn cell_id(&mut self, whereabouts: Whereabouts, t_ms: u64) -> Option<u64> {
        match whereabouts {
            Whereabouts::PhoneOff => None,
            Whereabouts::At(PlaceId(p)) => Some(10_000 + p as u64),
            Whereabouts::Transit => Some(20_000 + (t_ms / 180_000) % 7),
        }
    }

    /// Produces the scan result at `t_ms` for a user at `whereabouts`.
    /// Returns `None` when the phone is off (no scan happens at all).
    pub fn scan(&mut self, world: &World, whereabouts: Whereabouts, t_ms: u64) -> Option<RawScan> {
        let mut readings = Vec::new();
        match whereabouts {
            Whereabouts::PhoneOff => return None,
            Whereabouts::At(place) => {
                for ap in &world.place(place).aps {
                    if self.rng.chance(ap.detect_prob) {
                        readings.push(ApReading {
                            bssid: ap.bssid,
                            rssi_dbm: self.rng.gauss(ap.base_rssi_dbm, self.rssi_noise_std),
                        });
                    }
                }
                // Occasionally a distant street AP bleeds in.
                if !world.street_aps().is_empty() && self.rng.chance(0.2) {
                    let ap = *self.rng.pick(world.street_aps());
                    readings.push(ApReading {
                        bssid: ap.bssid,
                        rssi_dbm: self.rng.gauss(-92.0, 2.0),
                    });
                }
            }
            Whereabouts::Transit => {
                // A changing handful of weak street APs: dissimilar from
                // scan to scan, so transit never clusters.
                let n = self.rng.range_u64(0, 5) as usize;
                for _ in 0..n {
                    if world.street_aps().is_empty() {
                        break;
                    }
                    let ap = *self.rng.pick(world.street_aps());
                    readings.push(ApReading {
                        bssid: ap.bssid,
                        rssi_dbm: self.rng.gauss(ap.base_rssi_dbm, 4.0),
                    });
                }
            }
        }
        // Ad-hoc / tethering interfaces show up now and then; scan.js is
        // responsible for filtering them out.
        if self.rng.chance(0.05) {
            readings.push(ApReading {
                bssid: World::local_admin_bssid(self.rng.range_u64(0, 1 << 16)),
                rssi_dbm: self.rng.gauss(-70.0, 5.0),
            });
        }
        self.scans_produced += 1;
        Some(RawScan {
            timestamp_ms: t_ms,
            readings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pogo_cluster::cosine;

    fn setup() -> (World, ScanSynthesizer) {
        let mut rng = SimRng::seed_from_u64(5);
        let mut world = World::new(60, &mut rng);
        world.add_place("home", 8, &mut rng);
        world.add_place("office", 10, &mut rng);
        let synth = ScanSynthesizer::new(rng.fork(1));
        (world, synth)
    }

    #[test]
    fn phone_off_yields_no_scan() {
        let (world, mut synth) = setup();
        assert!(synth.scan(&world, Whereabouts::PhoneOff, 0).is_none());
        assert_eq!(synth.scans_produced(), 0);
    }

    #[test]
    fn same_place_scans_are_similar() {
        let (world, mut synth) = setup();
        let a = synth
            .scan(&world, Whereabouts::At(crate::world::PlaceId(0)), 0)
            .unwrap()
            .sanitize();
        let b = synth
            .scan(&world, Whereabouts::At(crate::world::PlaceId(0)), 60_000)
            .unwrap()
            .sanitize();
        assert!(
            cosine(&a, &b) > 0.8,
            "same place similarity {}",
            cosine(&a, &b)
        );
    }

    #[test]
    fn different_places_are_dissimilar() {
        let (world, mut synth) = setup();
        let a = synth
            .scan(&world, Whereabouts::At(crate::world::PlaceId(0)), 0)
            .unwrap()
            .sanitize();
        let b = synth
            .scan(&world, Whereabouts::At(crate::world::PlaceId(1)), 60_000)
            .unwrap()
            .sanitize();
        assert!(
            cosine(&a, &b) < 0.2,
            "cross-place similarity {}",
            cosine(&a, &b)
        );
    }

    #[test]
    fn transit_scans_rarely_resemble_places() {
        let (world, mut synth) = setup();
        let home = synth
            .scan(&world, Whereabouts::At(crate::world::PlaceId(0)), 0)
            .unwrap()
            .sanitize();
        for t in 0..20 {
            let s = synth
                .scan(&world, Whereabouts::Transit, t * 60_000)
                .unwrap()
                .sanitize();
            assert!(cosine(&home, &s) < 0.5);
        }
    }

    #[test]
    fn locally_administered_aps_appear_sometimes() {
        let (world, mut synth) = setup();
        let mut raw_with_local = 0;
        for t in 0..200 {
            let raw = synth
                .scan(&world, Whereabouts::At(crate::world::PlaceId(0)), t)
                .unwrap();
            if raw
                .readings
                .iter()
                .any(|r| r.bssid.is_locally_administered())
            {
                raw_with_local += 1;
                // The sanitizer must strip them.
                let clean = raw.sanitize();
                assert!(clean
                    .aps()
                    .iter()
                    .all(|&(b, _)| !b.is_locally_administered()));
            }
        }
        assert!(raw_with_local > 2, "expected some ad-hoc interference");
    }

    #[test]
    fn accel_reflects_activity() {
        let (_world, mut synth) = setup();
        assert_eq!(synth.accel(Whereabouts::PhoneOff), None);
        let still: Vec<f64> = (0..200)
            .filter_map(|_| synth.accel(Whereabouts::At(crate::world::PlaceId(0))))
            .map(|(x, y, z)| (x * x + y * y + z * z).sqrt())
            .collect();
        let moving: Vec<f64> = (0..200)
            .filter_map(|_| synth.accel(Whereabouts::Transit))
            .map(|(x, y, z)| (x * x + y * y + z * z).sqrt())
            .collect();
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
        };
        assert!(
            var(&moving) > var(&still) * 20.0,
            "walking jitter dominates: {} vs {}",
            var(&moving),
            var(&still)
        );
    }

    #[test]
    fn cell_ids_are_stable_per_place_and_change_in_transit() {
        let (_world, mut synth) = setup();
        let home = crate::world::PlaceId(0);
        assert_eq!(
            synth.cell_id(Whereabouts::At(home), 0),
            synth.cell_id(Whereabouts::At(home), 3_600_000)
        );
        let a = synth.cell_id(Whereabouts::Transit, 0);
        let b = synth.cell_id(Whereabouts::Transit, 200_000);
        assert_ne!(a, b, "handovers while moving");
        assert_eq!(synth.cell_id(Whereabouts::PhoneOff, 0), None);
    }

    #[test]
    fn deterministic_per_seed() {
        let (world, mut a) = setup();
        let (_, mut b) = setup();
        for t in 0..10 {
            assert_eq!(
                a.scan(&world, Whereabouts::Transit, t),
                b.scan(&world, Whereabouts::Transit, t)
            );
        }
    }
}
