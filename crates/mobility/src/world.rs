//! Places and their access-point populations.

use pogo_cluster::Bssid;
use pogo_sim::SimRng;

/// Index of a place within a [`World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(pub usize);

/// One access point: identity, typical signal strength at the place it
/// serves, and how reliably a scan detects it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApSpec {
    /// The AP's MAC address.
    pub bssid: Bssid,
    /// Mean RSSI observed at the place, in dBm.
    pub base_rssi_dbm: f64,
    /// Probability a scan detects this AP.
    pub detect_prob: f64,
}

/// A named place with geographic coordinates and resident APs.
#[derive(Debug, Clone, PartialEq)]
pub struct Place {
    /// Human-readable label ("user3-home", "user3-site-7", …).
    pub name: String,
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
    /// Access points audible at this place.
    pub aps: Vec<ApSpec>,
}

/// The synthetic world: every place of every user plus the street-AP pool
/// observed in transit. Also serves as the AP-location database behind
/// the geolocation service.
#[derive(Debug, Clone, Default)]
pub struct World {
    places: Vec<Place>,
    street_aps: Vec<ApSpec>,
    street_center: (f64, f64),
}

/// BSSIDs are allocated from disjoint ranges so collisions are impossible.
const PLACE_AP_BASE: u64 = 0x00_10_00_00_00_00;
const STREET_AP_BASE: u64 = 0x00_20_00_00_00_00;
/// Locally administered BSSIDs (to be filtered by scan.js).
const LOCAL_AP_BASE: u64 = 0x02_00_00_00_00_00;

impl World {
    /// Creates an empty world with `street_pool` street APs scattered
    /// around the city center.
    pub fn new(street_pool: usize, rng: &mut SimRng) -> Self {
        let street_center = (52.0, 4.36); // Delft-ish
        let street_aps = (0..street_pool)
            .map(|i| ApSpec {
                bssid: Bssid::new(STREET_AP_BASE + i as u64),
                base_rssi_dbm: rng.range_f64(-95.0, -75.0),
                detect_prob: rng.range_f64(0.3, 0.7),
            })
            .collect();
        World {
            places: Vec::new(),
            street_aps,
            street_center,
        }
    }

    /// Adds a place with `n_aps` access points and returns its id.
    pub fn add_place(&mut self, name: &str, n_aps: usize, rng: &mut SimRng) -> PlaceId {
        let id = PlaceId(self.places.len());
        let lat = self.street_center.0 + rng.range_f64(-0.05, 0.05);
        let lon = self.street_center.1 + rng.range_f64(-0.08, 0.08);
        let aps = (0..n_aps)
            .map(|i| ApSpec {
                bssid: Bssid::new(PLACE_AP_BASE + (id.0 as u64) * 64 + i as u64),
                base_rssi_dbm: rng.range_f64(-85.0, -50.0),
                detect_prob: rng.range_f64(0.85, 0.99),
            })
            .collect();
        self.places.push(Place {
            name: name.to_owned(),
            lat,
            lon,
            aps,
        });
        id
    }

    /// The place for an id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn place(&self, id: PlaceId) -> &Place {
        &self.places[id.0]
    }

    /// Number of places.
    pub fn place_count(&self) -> usize {
        self.places.len()
    }

    /// The street-AP pool (transit noise).
    pub fn street_aps(&self) -> &[ApSpec] {
        &self.street_aps
    }

    /// A fresh locally administered BSSID (ad-hoc interference for the
    /// sanitizer to remove). Deterministic in `salt`.
    pub fn local_admin_bssid(salt: u64) -> Bssid {
        Bssid::new(LOCAL_AP_BASE + (salt % 0xFFFF))
    }

    /// Looks up where an AP lives: its place's coordinates, or the city
    /// center for street APs. `None` for unknown BSSIDs — the geolocation
    /// service cannot resolve them.
    pub fn ap_location(&self, bssid: Bssid) -> Option<(f64, f64)> {
        let raw = bssid.raw();
        if (PLACE_AP_BASE..STREET_AP_BASE).contains(&raw) {
            let place_idx = ((raw - PLACE_AP_BASE) / 64) as usize;
            return self.places.get(place_idx).map(|p| (p.lat, p.lon));
        }
        if raw >= STREET_AP_BASE && raw < STREET_AP_BASE + self.street_aps.len() as u64 {
            return Some(self.street_center);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(1)
    }

    #[test]
    fn places_get_disjoint_ap_sets() {
        let mut rng = rng();
        let mut world = World::new(50, &mut rng);
        let home = world.add_place("home", 8, &mut rng);
        let office = world.add_place("office", 12, &mut rng);
        let home_set: Vec<Bssid> = world.place(home).aps.iter().map(|a| a.bssid).collect();
        let office_set: Vec<Bssid> = world.place(office).aps.iter().map(|a| a.bssid).collect();
        assert_eq!(home_set.len(), 8);
        assert_eq!(office_set.len(), 12);
        assert!(home_set.iter().all(|b| !office_set.contains(b)));
    }

    #[test]
    fn street_aps_do_not_collide_with_place_aps() {
        let mut rng = rng();
        let mut world = World::new(100, &mut rng);
        let p = world.add_place("p", 10, &mut rng);
        for ap in world.street_aps() {
            assert!(world.place(p).aps.iter().all(|a| a.bssid != ap.bssid));
        }
    }

    #[test]
    fn local_admin_bssids_are_flagged() {
        assert!(World::local_admin_bssid(7).is_locally_administered());
        let mut rng = rng();
        let mut world = World::new(10, &mut rng);
        let p = world.add_place("p", 10, &mut rng);
        for ap in &world.place(p).aps {
            assert!(!ap.bssid.is_locally_administered());
        }
    }

    #[test]
    fn ap_location_resolves_place_aps() {
        let mut rng = rng();
        let mut world = World::new(10, &mut rng);
        let p = world.add_place("p", 4, &mut rng);
        let place = world.place(p).clone();
        for ap in &place.aps {
            assert_eq!(world.ap_location(ap.bssid), Some((place.lat, place.lon)));
        }
        assert_eq!(world.ap_location(Bssid::new(0xdead)), None);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let build = || {
            let mut rng = SimRng::seed_from_u64(42);
            let mut w = World::new(20, &mut rng);
            w.add_place("a", 6, &mut rng);
            w
        };
        let a = build();
        let b = build();
        assert_eq!(a.place(PlaceId(0)), b.place(PlaceId(0)));
    }
}
