#![cfg(feature = "heavy-tests")]

//! Property-based tests for the phone platform: exact energy
//! integration, radio state-machine invariants, and CPU power ordering.

use proptest::prelude::*;

use pogo_platform::{
    CarrierProfile, CellularModem, Cpu, CpuConfig, EnergyMeter, Phone, PhoneConfig, RadioState,
};
use pogo_sim::{Sim, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    #[test]
    fn meter_total_equals_sum_of_rails(
        segments in proptest::collection::vec(
            (0usize..3, 0.0f64..2.0, 1u64..5_000),
            1..40,
        ),
    ) {
        // Arbitrary piecewise-constant schedules on three rails: the
        // total must equal the independent per-rail integrals exactly.
        let sim = Sim::new();
        let meter = EnergyMeter::new(&sim);
        let rails = [meter.register("a"), meter.register("b"), meter.register("c")];
        let mut expected = [0.0f64; 3];
        let mut levels = [0.0f64; 3];
        for (rail, watts, dt_ms) in segments {
            let dt = SimDuration::from_millis(dt_ms);
            for i in 0..3 {
                expected[i] += levels[i] * dt.as_secs_f64();
            }
            sim.run_for(dt);
            meter.set_power(rails[rail], watts);
            levels[rail] = watts;
        }
        let total: f64 = expected.iter().sum();
        prop_assert!((meter.total_joules() - total).abs() < 1e-9);
        for i in 0..3 {
            prop_assert!((meter.energy_joules(rails[i]) - expected[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn radio_always_returns_to_idle_and_counts_tails(
        sends in proptest::collection::vec((0u64..200_000, 100u64..50_000), 1..15),
    ) {
        // Any schedule of transfers ends with the modem idle, every byte
        // accounted for, and ramp-ups ≤ transfers (tail reuse can only
        // reduce them).
        let sim = Sim::new();
        let meter = EnergyMeter::new(&sim);
        let modem = CellularModem::new(&sim, &meter, CarrierProfile::kpn());
        let transitions: Rc<RefCell<Vec<RadioState>>> = Rc::new(RefCell::new(Vec::new()));
        let tr = transitions.clone();
        modem.on_state_change(move |s, _| tr.borrow_mut().push(s));
        let mut total_bytes = 0u64;
        let mut at = SimTime::ZERO;
        for (gap_ms, bytes) in sends {
            at += SimDuration::from_millis(gap_ms);
            total_bytes += bytes;
            let m = modem.clone();
            sim.schedule_at(at, move || m.transmit(bytes, 0, || {}));
        }
        sim.run_until_idle();
        prop_assert_eq!(modem.state(), RadioState::Idle);
        prop_assert_eq!(modem.byte_counters().0, total_bytes);
        prop_assert!(modem.ramp_ups() >= 1);
        // Transition sanity: RampUp is always entered from a transmit in
        // Idle/Fach, and each RampUp is eventually followed by Dch.
        let ts = transitions.borrow();
        for (i, s) in ts.iter().enumerate() {
            if *s == RadioState::RampUp {
                prop_assert!(
                    ts[i + 1..].first() == Some(&RadioState::Dch),
                    "ramp-up flows into DCH: {ts:?}"
                );
            }
        }
    }

    #[test]
    fn radio_energy_monotone_in_tail_length(bytes in 1u64..100_000) {
        // Same transfer, longer carrier tails ⇒ strictly more energy.
        let energy = |profile: CarrierProfile| {
            let sim = Sim::new();
            let meter = EnergyMeter::new(&sim);
            let modem = CellularModem::new(&sim, &meter, profile);
            modem.transmit(bytes, 0, || {});
            sim.run_until_idle();
            sim.run_for(SimDuration::from_mins(2));
            meter.total_joules()
        };
        let kpn = energy(CarrierProfile::kpn());
        let vod = energy(CarrierProfile::vodafone());
        let tmo = energy(CarrierProfile::t_mobile());
        prop_assert!(kpn > vod && vod > tmo, "kpn {kpn} vod {vod} tmo {tmo}");
    }

    #[test]
    fn cpu_awake_time_never_exceeds_wall_time(
        alarms in proptest::collection::vec(1u64..600_000, 0..20),
    ) {
        let sim = Sim::new();
        let meter = EnergyMeter::new(&sim);
        let cpu = Cpu::new(&sim, &meter, CpuConfig::default());
        for at in &alarms {
            cpu.set_alarm(SimTime::from_millis(*at), || {});
        }
        sim.run_for(SimDuration::from_mins(15));
        let awake = cpu.awake_time().as_millis();
        let wall = sim.now().as_millis();
        prop_assert!(awake <= wall);
        // Energy bracket: between all-asleep and all-awake.
        let joules = meter.total_joules();
        let lo = 0.008 * wall as f64 / 1_000.0 - 1e-6;
        let hi = 0.140 * wall as f64 / 1_000.0 + 1e-6;
        prop_assert!(joules >= lo && joules <= hi, "{lo} <= {joules} <= {hi}");
        prop_assert!(cpu.wakeups() <= alarms.len() as u64);
    }

    #[test]
    fn phone_transmit_offline_never_moves_counters(
        bytes in proptest::collection::vec(1u64..10_000, 1..10),
    ) {
        let sim = Sim::new();
        let phone = Phone::new(
            &sim,
            PhoneConfig {
                initial_bearer: None,
                ..PhoneConfig::default()
            },
        );
        for b in bytes {
            let result = phone.transmit(b, 0, || {});
            prop_assert!(result.is_err(), "offline transmit must fail");
        }
        sim.run_for(SimDuration::from_mins(5));
        prop_assert_eq!(phone.mobile_byte_counters(), (0, 0));
        prop_assert_eq!(phone.wifi().byte_counters(), (0, 0));
    }
}
