//! Bearer handover storms at the hardware layer: rapid Wifi↔Cellular
//! flapping must never lose a sample in flight at the radio layer, and
//! the energy meter must stay monotone through every handover.

use std::cell::RefCell;
use std::rc::Rc;

use pogo_platform::{Bearer, Phone, PhoneConfig};
use pogo_sim::{Sim, SimDuration};

const FLAPS: u64 = 100;
const FLAP_PERIOD: SimDuration = SimDuration::from_secs(5);

/// Alternates the active bearer every `FLAP_PERIOD`, `FLAPS` times.
fn schedule_storm(sim: &Sim, phone: &Phone) {
    for i in 1..=FLAPS {
        let conn = phone.connectivity().clone();
        sim.schedule_in(FLAP_PERIOD.mul(i), move || {
            let next = match conn.active() {
                Some(Bearer::Wifi) => Bearer::Cellular,
                _ => Bearer::Wifi,
            };
            conn.set_active(Some(next));
        });
    }
}

#[test]
fn storm_loses_no_samples() {
    let sim = Sim::new();
    let phone = Phone::new(&sim, PhoneConfig::default());
    schedule_storm(&sim, &phone);

    // One 1 KiB sample every 7 s, deliberately beating against the 5 s
    // flap period so transmissions start under every bearer phase.
    let completed: Rc<RefCell<u64>> = Rc::new(RefCell::new(0));
    let mut attempts = 0u64;
    let storm_end = FLAP_PERIOD.mul(FLAPS);
    let mut t = SimDuration::from_secs(7);
    while t < storm_end {
        attempts += 1;
        let phone2 = phone.clone();
        let completed = completed.clone();
        sim.schedule_in(t, move || {
            phone2
                .transmit(1_024, 0, move || *completed.borrow_mut() += 1)
                .expect("a bearer is always up during the storm");
        });
        t += SimDuration::from_secs(7);
    }

    sim.run_for(storm_end + SimDuration::from_mins(2));
    assert_eq!(phone.connectivity().change_count(), FLAPS);
    assert_eq!(
        *completed.borrow(),
        attempts,
        "every transmit completion fired despite {FLAPS} handovers"
    );
    let (cell_tx, _) = phone.modem().byte_counters();
    let (wifi_tx, _) = phone.wifi().byte_counters();
    assert_eq!(
        cell_tx + wifi_tx,
        attempts * 1_024,
        "every byte is accounted to exactly one radio"
    );
    assert!(cell_tx > 0 && wifi_tx > 0, "both radios saw traffic");
}

#[test]
fn energy_accounting_stays_monotone_through_the_storm() {
    let sim = Sim::new();
    let phone = Phone::new(&sim, PhoneConfig::default());
    schedule_storm(&sim, &phone);

    // Background traffic so both radios do real work mid-storm.
    for i in 0..FLAPS {
        let phone2 = phone.clone();
        sim.schedule_in(FLAP_PERIOD.mul(i) + SimDuration::from_secs(2), move || {
            let _ = phone2.transmit(4_096, 512, || {});
        });
    }

    let mut last = phone.meter().total_joules();
    assert_eq!(last, 0.0);
    for _ in 0..=FLAPS {
        sim.run_for(FLAP_PERIOD);
        let now = phone.meter().total_joules();
        assert!(
            now >= last,
            "energy went backwards across a handover: {now} < {last}"
        );
        assert!(now.is_finite());
        last = now;
    }
    assert!(last > 0.0, "the storm consumed real energy");
}
