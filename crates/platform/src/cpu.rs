//! The application CPU: deep sleep, wake locks, alarms, and the
//! sleep-frozen timers that make Pogo's tail detection possible.
//!
//! Android semantics reproduced here (paper §4.5 and §4.7):
//!
//! * With no wake locks held and no recent activity, the CPU enters deep
//!   sleep after a short *linger* ("the processor will stay awake for
//!   typically more than a second before going back to sleep").
//! * An *alarm* wakes the CPU at an absolute instant even from deep sleep.
//! * `Thread.sleep`-style timers **freeze** while the CPU sleeps and only
//!   resume counting down once something else wakes it — the side effect
//!   Pogo uses to detect foreign network activity without setting alarms
//!   of its own.

use std::cell::RefCell;
use std::rc::Rc;

use pogo_sim::{EventId, Sim, SimDuration, SimTime};

use crate::energy::{EnergyMeter, RailId};

/// Tunable CPU parameters.
#[derive(Debug, Clone, Copy)]
pub struct CpuConfig {
    /// Draw while awake with the screen off, in watts.
    pub awake_power: f64,
    /// Draw in deep sleep, in watts.
    pub asleep_power: f64,
    /// How long the CPU stays awake after the last activity before it may
    /// deep-sleep.
    pub linger: SimDuration,
}

impl Default for CpuConfig {
    fn default() -> Self {
        // Calibrated for a Galaxy-Nexus-class device with the screen off.
        CpuConfig {
            awake_power: 0.140,
            asleep_power: 0.008,
            linger: SimDuration::from_millis(1_200),
        }
    }
}

/// Handle to a pending alarm, for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AlarmId(EventId);

struct FrozenTimer {
    remaining: SimDuration,
    /// `Some(instant)` while actively counting down (CPU awake).
    resumed_at: Option<SimTime>,
    event: Option<EventId>,
    callback: Option<Box<dyn FnOnce()>>,
    done: bool,
}

impl FrozenTimer {
    fn is_live(&self) -> bool {
        !self.done
    }
}

// Manual Debug because of the boxed callback.
impl std::fmt::Debug for FrozenTimer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrozenTimer")
            .field("remaining", &self.remaining)
            .field("resumed_at", &self.resumed_at)
            .field("done", &self.done)
            .finish()
    }
}

type StateListener = Rc<dyn Fn(bool)>;

struct Inner {
    sim: Sim,
    meter: EnergyMeter,
    rail: RailId,
    cfg: CpuConfig,
    awake: bool,
    locks: usize,
    last_activity: SimTime,
    sleep_event: Option<EventId>,
    frozen: Vec<Rc<RefCell<FrozenTimer>>>,
    listeners: Vec<StateListener>,
    wakeups: u64,
    awake_since: Option<SimTime>,
    awake_total: SimDuration,
}

/// The simulated application processor.
///
/// Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct Cpu {
    inner: Rc<RefCell<Inner>>,
}

impl std::fmt::Debug for Cpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Cpu")
            .field("awake", &inner.awake)
            .field("locks", &inner.locks)
            .field("wakeups", &inner.wakeups)
            .finish()
    }
}

/// An RAII wake lock. The CPU cannot deep-sleep while any lock is held.
/// Dropping the guard releases the lock.
#[derive(Debug)]
pub struct WakeLock {
    cpu: Option<Cpu>,
}

impl WakeLock {
    /// Releases the lock explicitly (equivalent to dropping it).
    pub fn release(mut self) {
        self.release_inner();
    }

    fn release_inner(&mut self) {
        if let Some(cpu) = self.cpu.take() {
            cpu.release_lock();
        }
    }
}

impl Drop for WakeLock {
    fn drop(&mut self) {
        self.release_inner();
    }
}

/// Handle to a timer created with [`Cpu::sleep_frozen`].
#[derive(Debug, Clone)]
pub struct FrozenSleepHandle {
    timer: Rc<RefCell<FrozenTimer>>,
    sim: Sim,
}

impl FrozenSleepHandle {
    /// Cancels the timer if it has not fired.
    pub fn cancel(&self) {
        let mut t = self.timer.borrow_mut();
        if let Some(ev) = t.event.take() {
            self.sim.cancel(ev);
        }
        t.callback = None;
        t.done = true;
    }

    /// True once the timer fired or was cancelled.
    pub fn is_done(&self) -> bool {
        self.timer.borrow().done
    }
}

impl Cpu {
    /// Creates a CPU, initially awake (boot), registered on `meter`.
    pub fn new(sim: &Sim, meter: &EnergyMeter, cfg: CpuConfig) -> Self {
        let rail = meter.register("cpu");
        meter.set_power(rail, cfg.awake_power);
        let cpu = Cpu {
            inner: Rc::new(RefCell::new(Inner {
                sim: sim.clone(),
                meter: meter.clone(),
                rail,
                cfg,
                awake: true,
                locks: 0,
                last_activity: sim.now(),
                sleep_event: None,
                frozen: Vec::new(),
                listeners: Vec::new(),
                wakeups: 0,
                awake_since: Some(sim.now()),
                awake_total: SimDuration::ZERO,
            })),
        };
        cpu.maybe_schedule_sleep();
        cpu
    }

    /// True while the CPU is out of deep sleep.
    pub fn is_awake(&self) -> bool {
        self.inner.borrow().awake
    }

    /// Number of deep-sleep → awake transitions so far.
    pub fn wakeups(&self) -> u64 {
        self.inner.borrow().wakeups
    }

    /// Cumulative time spent awake.
    pub fn awake_time(&self) -> SimDuration {
        let inner = self.inner.borrow();
        let mut total = inner.awake_total;
        if let Some(since) = inner.awake_since {
            total += inner.sim.now().duration_since(since);
        }
        total
    }

    /// Registers a callback invoked with `true` on wake and `false` on
    /// sleep transitions.
    pub fn on_state_change(&self, f: impl Fn(bool) + 'static) {
        self.inner.borrow_mut().listeners.push(Rc::new(f));
    }

    /// Acquires a wake lock, waking the CPU if needed.
    pub fn acquire_wake_lock(&self) -> WakeLock {
        self.poke();
        self.inner.borrow_mut().locks += 1;
        WakeLock {
            cpu: Some(self.clone()),
        }
    }

    /// Number of wake locks currently held.
    pub fn lock_count(&self) -> usize {
        self.inner.borrow().locks
    }

    /// Marks CPU activity: wakes the CPU if asleep and restarts the linger
    /// countdown.
    pub fn poke(&self) {
        let wake_actions = {
            let mut inner = self.inner.borrow_mut();
            inner.last_activity = inner.sim.now();
            if inner.awake {
                None
            } else {
                Some(Self::transition(&mut inner, true))
            }
        };
        if let Some(actions) = wake_actions {
            self.run_listeners(actions);
        }
        self.maybe_schedule_sleep();
    }

    /// Schedules `callback` at the absolute instant `at`. The alarm wakes
    /// the CPU from deep sleep before the callback runs.
    pub fn set_alarm(&self, at: SimTime, callback: impl FnOnce() + 'static) -> AlarmId {
        let cpu = self.clone();
        let sim = self.inner.borrow().sim.clone();
        AlarmId(sim.schedule_at(at, move || {
            cpu.poke();
            callback();
        }))
    }

    /// Schedules `callback` to fire `delay` from now (see [`Cpu::set_alarm`]).
    pub fn set_alarm_in(&self, delay: SimDuration, callback: impl FnOnce() + 'static) -> AlarmId {
        let at = self.inner.borrow().sim.now() + delay;
        self.set_alarm(at, callback)
    }

    /// Cancels a pending alarm; returns `true` if it had not fired.
    pub fn cancel_alarm(&self, id: AlarmId) -> bool {
        self.inner.borrow().sim.cancel(id.0)
    }

    /// Starts a `Thread.sleep`-style timer for `duration` of *awake* time:
    /// the countdown freezes whenever the CPU deep-sleeps and resumes when
    /// something else wakes it. The callback therefore runs only while the
    /// CPU is awake, possibly much later than `now + duration` in wall
    /// time. This is the primitive behind Pogo's tail detection (§4.7).
    pub fn sleep_frozen(
        &self,
        duration: SimDuration,
        callback: impl FnOnce() + 'static,
    ) -> FrozenSleepHandle {
        let timer = Rc::new(RefCell::new(FrozenTimer {
            remaining: duration,
            resumed_at: None,
            event: None,
            callback: Some(Box::new(callback)),
            done: false,
        }));
        let sim;
        {
            let mut inner = self.inner.borrow_mut();
            sim = inner.sim.clone();
            inner.frozen.retain(|t| t.borrow().is_live());
            inner.frozen.push(timer.clone());
            if inner.awake {
                Self::arm_frozen(&inner.sim, &timer);
            }
        }
        FrozenSleepHandle { timer, sim }
    }

    // ---- internals -------------------------------------------------------

    fn release_lock(&self) {
        {
            let mut inner = self.inner.borrow_mut();
            assert!(inner.locks > 0, "wake lock released twice");
            inner.locks -= 1;
            inner.last_activity = inner.sim.now();
        }
        self.maybe_schedule_sleep();
    }

    /// Arms the sim event backing a frozen timer. CPU must be awake.
    fn arm_frozen(sim: &Sim, timer: &Rc<RefCell<FrozenTimer>>) {
        let mut t = timer.borrow_mut();
        if !t.is_live() || t.event.is_some() {
            return;
        }
        t.resumed_at = Some(sim.now());
        let fire_at = sim.now() + t.remaining;
        let tref = timer.clone();
        t.event = Some(sim.schedule_at(fire_at, move || {
            let cb = {
                let mut t = tref.borrow_mut();
                t.event = None;
                t.resumed_at = None;
                t.remaining = SimDuration::ZERO;
                t.done = true;
                t.callback.take()
            };
            if let Some(cb) = cb {
                cb();
            }
        }));
    }

    /// Flips the awake flag, updates power and statistics, freezes or
    /// resumes timers. Returns listeners to notify (run without borrows).
    fn transition(inner: &mut Inner, awake: bool) -> (Vec<StateListener>, bool) {
        debug_assert_ne!(inner.awake, awake);
        inner.awake = awake;
        let now = inner.sim.now();
        if awake {
            inner.wakeups += 1;
            inner.awake_since = Some(now);
            inner.meter.set_power(inner.rail, inner.cfg.awake_power);
            inner.frozen.retain(|t| t.borrow().is_live());
            for t in &inner.frozen {
                Self::arm_frozen(&inner.sim, t);
            }
        } else {
            if let Some(since) = inner.awake_since.take() {
                inner.awake_total += now.duration_since(since);
            }
            inner.meter.set_power(inner.rail, inner.cfg.asleep_power);
            inner.frozen.retain(|t| t.borrow().is_live());
            for t in &inner.frozen {
                let mut t = t.borrow_mut();
                if let Some(ev) = t.event.take() {
                    inner.sim.cancel(ev);
                }
                if let Some(resumed) = t.resumed_at.take() {
                    let elapsed = now.duration_since(resumed);
                    t.remaining = t.remaining.saturating_sub(elapsed);
                }
            }
        }
        (inner.listeners.clone(), awake)
    }

    fn run_listeners(&self, (listeners, awake): (Vec<StateListener>, bool)) {
        for l in listeners {
            l(awake);
        }
    }

    /// Ensures a sleep check is pending whenever the CPU could sleep.
    fn maybe_schedule_sleep(&self) {
        let mut inner = self.inner.borrow_mut();
        if !inner.awake || inner.locks > 0 || inner.sleep_event.is_some() {
            return;
        }
        let at = inner.last_activity + inner.cfg.linger;
        let cpu = self.clone();
        let sim = inner.sim.clone();
        inner.sleep_event = Some(sim.schedule_at(at, move || cpu.on_sleep_check()));
    }

    fn on_sleep_check(&self) {
        let actions = {
            let mut inner = self.inner.borrow_mut();
            inner.sleep_event = None;
            if !inner.awake || inner.locks > 0 {
                return;
            }
            let now = inner.sim.now();
            let earliest = inner.last_activity + inner.cfg.linger;
            if now < earliest {
                // Activity happened since this check was scheduled; try
                // again at the new earliest sleep instant.
                let cpu = self.clone();
                let sim = inner.sim.clone();
                inner.sleep_event = Some(sim.schedule_at(earliest, move || cpu.on_sleep_check()));
                return;
            }
            Self::transition(&mut inner, false)
        };
        self.run_listeners(actions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn setup() -> (Sim, EnergyMeter, Cpu) {
        let sim = Sim::new();
        let meter = EnergyMeter::new(&sim);
        let cpu = Cpu::new(&sim, &meter, CpuConfig::default());
        (sim, meter, cpu)
    }

    #[test]
    fn sleeps_after_linger_without_locks() {
        let (sim, _meter, cpu) = setup();
        assert!(cpu.is_awake());
        sim.run_for(SimDuration::from_secs(5));
        assert!(!cpu.is_awake());
    }

    #[test]
    fn wake_lock_prevents_sleep() {
        let (sim, _meter, cpu) = setup();
        let lock = cpu.acquire_wake_lock();
        sim.run_for(SimDuration::from_secs(30));
        assert!(cpu.is_awake());
        lock.release();
        sim.run_for(SimDuration::from_secs(5));
        assert!(!cpu.is_awake());
    }

    #[test]
    fn dropping_wake_lock_releases_it() {
        let (sim, _meter, cpu) = setup();
        {
            let _lock = cpu.acquire_wake_lock();
            assert_eq!(cpu.lock_count(), 1);
        }
        assert_eq!(cpu.lock_count(), 0);
        sim.run_for(SimDuration::from_secs(5));
        assert!(!cpu.is_awake());
    }

    #[test]
    fn alarm_wakes_cpu_and_runs_callback() {
        let (sim, _meter, cpu) = setup();
        sim.run_for(SimDuration::from_secs(10));
        assert!(!cpu.is_awake());
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        let c2 = cpu.clone();
        cpu.set_alarm_in(SimDuration::from_secs(60), move || {
            assert!(c2.is_awake(), "alarm callback must see an awake CPU");
            f.set(true);
        });
        sim.run_for(SimDuration::from_secs(61));
        assert!(fired.get());
        assert!(cpu.is_awake(), "linger keeps CPU awake just after alarm");
        sim.run_for(SimDuration::from_secs(5));
        assert!(!cpu.is_awake());
    }

    #[test]
    fn cancelled_alarm_does_not_fire_or_wake() {
        let (sim, _meter, cpu) = setup();
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        let id = cpu.set_alarm_in(SimDuration::from_secs(10), move || f.set(true));
        assert!(cpu.cancel_alarm(id));
        sim.run_for(SimDuration::from_secs(20));
        assert!(!fired.get());
        assert_eq!(cpu.wakeups(), 0);
    }

    #[test]
    fn frozen_sleep_fires_on_time_while_awake() {
        let (sim, _meter, cpu) = setup();
        let _lock = cpu.acquire_wake_lock();
        let fired_at = Rc::new(Cell::new(None));
        let f = fired_at.clone();
        let s = sim.clone();
        cpu.sleep_frozen(SimDuration::from_secs(1), move || f.set(Some(s.now())));
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(fired_at.get(), Some(SimTime::from_millis(1_000)));
    }

    #[test]
    fn frozen_sleep_pauses_during_deep_sleep() {
        // This is the §4.7 mechanism: a 1 s Thread.sleep armed just before
        // the CPU sleeps only completes after something wakes the CPU.
        let (sim, _meter, cpu) = setup();
        let fired_at: Rc<Cell<Option<SimTime>>> = Rc::new(Cell::new(None));
        let f = fired_at.clone();
        let s = sim.clone();
        cpu.sleep_frozen(SimDuration::from_secs(1), move || f.set(Some(s.now())));
        // CPU sleeps at t = linger = 1.2 s, with 1.0 s... wait, timer would
        // fire at t = 1.0 s < 1.2 s. Use a longer timer instead.
        let fired2: Rc<Cell<Option<SimTime>>> = Rc::new(Cell::new(None));
        let f2 = fired2.clone();
        let s2 = sim.clone();
        cpu.sleep_frozen(SimDuration::from_secs(10), move || f2.set(Some(s2.now())));

        // Nothing wakes the CPU for a long time: the 10 s timer must not
        // have fired 100 s in.
        sim.run_for(SimDuration::from_secs(100));
        assert!(!cpu.is_awake());
        assert_eq!(fired2.get(), None, "timer froze during deep sleep");

        // An alarm (some other app) wakes the CPU at t = 100 s. The timer
        // had counted 1.2 s before the CPU slept, so 8.8 s remain.
        cpu.set_alarm_in(SimDuration::ZERO, || {});
        let lock = cpu.acquire_wake_lock(); // keep awake so it can finish
        sim.run_for(SimDuration::from_secs(20));
        let fired = fired2.get().expect("timer fired after wake");
        assert_eq!(fired, SimTime::from_millis(100_000 + 8_800));
        lock.release();
    }

    #[test]
    fn frozen_sleep_cancel() {
        let (sim, _meter, cpu) = setup();
        let _lock = cpu.acquire_wake_lock();
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        let h = cpu.sleep_frozen(SimDuration::from_secs(1), move || f.set(true));
        h.cancel();
        assert!(h.is_done());
        sim.run_for(SimDuration::from_secs(5));
        assert!(!fired.get());
    }

    #[test]
    fn energy_reflects_sleep_states() {
        let (sim, meter, cpu) = setup();
        // Awake for linger (1.2 s) at 0.14 W, then asleep at 0.011 W.
        sim.run_for(SimDuration::from_secs(601));
        assert!(!cpu.is_awake());
        let expected = 1.2 * 0.140 + (601.0 - 1.2) * 0.008;
        let got = meter.total_joules();
        assert!(
            (got - expected).abs() < 1e-6,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn wakeup_and_awake_time_stats() {
        let (sim, _meter, cpu) = setup();
        sim.run_for(SimDuration::from_secs(10)); // sleeps at 1.2s
        cpu.set_alarm_in(SimDuration::from_secs(10), || {});
        sim.run_for(SimDuration::from_secs(30)); // wakes at 20s, sleeps at 21.2s
        assert_eq!(cpu.wakeups(), 1);
        let awake = cpu.awake_time().as_secs_f64();
        assert!((awake - 2.4).abs() < 0.01, "awake {awake}");
    }

    #[test]
    fn state_change_listener_sees_both_transitions() {
        let (sim, _meter, cpu) = setup();
        let log: Rc<RefCell<Vec<bool>>> = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        cpu.on_state_change(move |awake| l.borrow_mut().push(awake));
        sim.run_for(SimDuration::from_secs(5)); // sleep
        cpu.set_alarm_in(SimDuration::from_secs(5), || {}); // wake at 10s
        sim.run_for(SimDuration::from_secs(20)); // sleep again
        assert_eq!(*log.borrow(), vec![false, true, false]);
    }

    #[test]
    fn repeated_pokes_extend_awake_window() {
        let (sim, _meter, cpu) = setup();
        for i in 0..5 {
            let c = cpu.clone();
            sim.schedule_at(SimTime::from_millis(i * 1_000), move || c.poke());
        }
        sim.run_until(SimTime::from_millis(4_500));
        assert!(cpu.is_awake(), "pokes every 1s < 1.2s linger keep it awake");
        sim.run_for(SimDuration::from_secs(5));
        assert!(!cpu.is_awake());
        assert_eq!(cpu.wakeups(), 0, "never slept in between");
    }
}
