//! # pogo-platform — the simulated Android phone
//!
//! The Pogo paper runs on real hardware: a Samsung Galaxy Nexus with a 3G
//! modem, a Wi-Fi chipset, an application CPU that deep-sleeps, and a
//! battery instrumented with a shunt resistor and a National Instruments
//! ADC. This crate rebuilds exactly the behaviours the paper's mechanisms
//! and measurements depend on:
//!
//! * an [`energy::EnergyMeter`] that integrates per-rail power draw over
//!   simulated time (the ADC substitute — see Table 3 and Figure 3),
//! * a [`cpu::Cpu`] with wake locks, alarms, a post-activity awake linger,
//!   and *sleep-frozen timers* — the `Thread.sleep` side effect Pogo's tail
//!   detection exploits (§4.7),
//! * a [`radio::CellularModem`] implementing the IDLE → ramp-up → DCH →
//!   FACH → IDLE RRC state machine with per-carrier tail timers
//!   ([`radio::CarrierProfile`]; KPN / T-Mobile / Vodafone from §5.2),
//! * a [`wifi::WifiRadio`] with scan and transfer energy costs,
//! * [`connectivity::Connectivity`] for interface handover events, and
//! * [`apps::PeriodicNetApp`], the background e-mail checker whose radio
//!   tails Pogo piggybacks on.
//!
//! Everything is assembled by [`phone::Phone`].

pub mod apps;
pub mod arena;
pub mod battery;
pub mod connectivity;
pub mod cpu;
pub mod energy;
pub mod phone;
pub mod radio;
pub mod wifi;

pub use apps::{NetAppConfig, PeriodicNetApp};
pub use arena::FleetArena;
pub use battery::Battery;
pub use connectivity::{Bearer, ConnArena, Connectivity};
pub use cpu::{AlarmId, Cpu, CpuConfig, FrozenSleepHandle, WakeLock};
pub use energy::{EnergyArena, EnergyMeter, PowerTrace, RailId};
pub use phone::{Phone, PhoneConfig};
pub use radio::{CarrierProfile, CellularModem, RadioState};
pub use wifi::{WifiConfig, WifiRadio};
