//! Background applications that generate foreign network traffic.
//!
//! §4.7: "there are typically many applications already present on a
//! mobile phone that periodically trigger a 3G tail. Examples are
//! background processes that check for e-mail, instant messaging
//! applications, and turn-based multi-player games." Pogo's headline
//! mechanism piggybacks on exactly this traffic, so the Table 3 / Figure 4
//! experiments need a faithful e-mail checker: it sets an Android *alarm*
//! (waking the CPU), holds a wake lock while it talks to the server, and
//! transfers a handful of kilobytes.

use std::cell::RefCell;
use std::rc::Rc;

use pogo_sim::SimDuration;

use crate::phone::Phone;

/// Configuration of a periodic network application.
#[derive(Debug, Clone)]
pub struct NetAppConfig {
    /// Display name (for diagnostics).
    pub name: String,
    /// Check interval (the paper's experiment uses 5 minutes).
    pub period: SimDuration,
    /// Uplink bytes per check.
    pub tx_bytes: u64,
    /// Downlink bytes per check.
    pub rx_bytes: u64,
    /// How long the app holds a wake lock per check.
    pub cpu_hold: SimDuration,
    /// Delay before the first check.
    pub start_offset: SimDuration,
}

impl NetAppConfig {
    /// The e-mail application from §5.2: checks every 5 minutes.
    pub fn email() -> Self {
        NetAppConfig {
            name: "email".to_owned(),
            period: SimDuration::from_mins(5),
            tx_bytes: 2_000,
            rx_bytes: 15_000,
            cpu_hold: SimDuration::from_secs(2),
            start_offset: SimDuration::from_mins(5),
        }
    }
}

struct Inner {
    phone: Phone,
    cfg: NetAppConfig,
    enabled: bool,
    checks: u64,
}

/// A background app that periodically wakes the CPU and exchanges data,
/// generating 3G tails for Pogo to synchronize with.
#[derive(Clone)]
pub struct PeriodicNetApp {
    inner: Rc<RefCell<Inner>>,
}

impl std::fmt::Debug for PeriodicNetApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("PeriodicNetApp")
            .field("name", &inner.cfg.name)
            .field("checks", &inner.checks)
            .field("enabled", &inner.enabled)
            .finish()
    }
}

impl PeriodicNetApp {
    /// Installs the app on `phone` and schedules its first check.
    pub fn install(phone: &Phone, cfg: NetAppConfig) -> Self {
        let app = PeriodicNetApp {
            inner: Rc::new(RefCell::new(Inner {
                phone: phone.clone(),
                cfg,
                enabled: true,
                checks: 0,
            })),
        };
        app.schedule_next(app.inner.borrow().cfg.start_offset);
        app
    }

    /// Number of checks performed so far.
    pub fn checks(&self) -> u64 {
        self.inner.borrow().checks
    }

    /// Enables or disables further checks (already-scheduled alarms fire
    /// but do nothing while disabled).
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.borrow_mut().enabled = enabled;
    }

    fn schedule_next(&self, delay: SimDuration) {
        let me = self.clone();
        let cpu = self.inner.borrow().phone.cpu().clone();
        cpu.set_alarm_in(delay, move || me.on_alarm());
    }

    fn on_alarm(&self) {
        let (phone, cfg, enabled) = {
            let inner = self.inner.borrow();
            (inner.phone.clone(), inner.cfg.clone(), inner.enabled)
        };
        if enabled {
            self.inner.borrow_mut().checks += 1;
            // Hold a wake lock while the check is in flight, like a real
            // mail client does.
            let lock = phone.cpu().acquire_wake_lock();
            let lock = Rc::new(RefCell::new(Some(lock)));
            let release_after = cfg.cpu_hold;
            let sim = phone.sim().clone();
            let l = lock.clone();
            let release = move || {
                sim.schedule_in(release_after, move || {
                    l.borrow_mut().take();
                });
            };
            // Offline is fine: the app simply fails its check.
            match phone.transmit(cfg.tx_bytes, cfg.rx_bytes, release.clone()) {
                Ok(_) => {}
                Err(_) => release(),
            }
        }
        self.schedule_next(self.inner.borrow().cfg.period);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phone::PhoneConfig;
    use pogo_sim::Sim;

    #[test]
    fn email_checks_on_schedule() {
        let sim = Sim::new();
        let phone = Phone::new(&sim, PhoneConfig::default());
        let app = PeriodicNetApp::install(&phone, NetAppConfig::email());
        // Run slightly past the hour so the check at t=60:00 finishes its
        // transfer (ramp-up + payload ≈ 2.2 s).
        sim.run_for(SimDuration::from_mins(61));
        assert_eq!(app.checks(), 12);
        let (tx, rx) = phone.mobile_byte_counters();
        assert_eq!(tx, 12 * 2_000);
        assert_eq!(rx, 12 * 15_000);
        assert_eq!(phone.modem().ramp_ups(), 12, "each check pays a tail");
    }

    #[test]
    fn each_check_wakes_the_cpu() {
        let sim = Sim::new();
        let phone = Phone::new(&sim, PhoneConfig::default());
        let _app = PeriodicNetApp::install(&phone, NetAppConfig::email());
        sim.run_for(SimDuration::from_mins(61));
        // Boot wake doesn't count (CPU starts awake); 12 alarm wakes do.
        assert_eq!(phone.cpu().wakeups(), 12);
        assert!(!phone.cpu().is_awake());
    }

    #[test]
    fn disabled_app_stops_transferring() {
        let sim = Sim::new();
        let phone = Phone::new(&sim, PhoneConfig::default());
        let app = PeriodicNetApp::install(&phone, NetAppConfig::email());
        sim.run_for(SimDuration::from_mins(12));
        assert_eq!(app.checks(), 2);
        app.set_enabled(false);
        sim.run_for(SimDuration::from_hours(1));
        assert_eq!(app.checks(), 2);
    }

    #[test]
    fn offline_check_consumes_no_radio_energy() {
        let sim = Sim::new();
        let phone = Phone::new(
            &sim,
            PhoneConfig {
                initial_bearer: None,
                ..PhoneConfig::default()
            },
        );
        let app = PeriodicNetApp::install(&phone, NetAppConfig::email());
        sim.run_for(SimDuration::from_hours(1));
        assert_eq!(app.checks(), 12);
        assert_eq!(phone.mobile_byte_counters(), (0, 0));
        assert_eq!(phone.modem().ramp_ups(), 0);
    }
}
