//! Assembly of the simulated handset.

use std::fmt;

use pogo_sim::{DeviceClock, Sim};

use crate::arena::FleetArena;
use crate::battery::{Battery, DEFAULT_CAPACITY_JOULES};
use crate::connectivity::{Bearer, Connectivity};
use crate::cpu::{Cpu, CpuConfig};
use crate::energy::EnergyMeter;
use crate::radio::{CarrierProfile, CellularModem};
use crate::wifi::{WifiConfig, WifiRadio};

/// Configuration for a [`Phone`].
#[derive(Debug, Clone)]
pub struct PhoneConfig {
    /// Carrier the 3G modem is subscribed to.
    pub carrier: CarrierProfile,
    /// CPU power/linger parameters.
    pub cpu: CpuConfig,
    /// Wi-Fi chipset parameters.
    pub wifi: WifiConfig,
    /// Battery capacity in joules.
    pub battery_capacity_joules: f64,
    /// Bearer that is up when the phone boots.
    pub initial_bearer: Option<Bearer>,
}

impl Default for PhoneConfig {
    fn default() -> Self {
        PhoneConfig {
            carrier: CarrierProfile::kpn(),
            cpu: CpuConfig::default(),
            wifi: WifiConfig::default(),
            battery_capacity_joules: DEFAULT_CAPACITY_JOULES,
            initial_bearer: Some(Bearer::Cellular),
        }
    }
}

/// Error returned by [`Phone::transmit`] when no bearer is up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OfflineError;

impl fmt::Display for OfflineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("no network bearer is active")
    }
}

impl std::error::Error for OfflineError {}

/// A complete simulated handset: CPU, 3G modem, Wi-Fi, battery, and
/// connectivity state sharing one [`EnergyMeter`].
///
/// All component handles are cheap to clone; `Phone` itself is a bundle of
/// handles and is also cheap to clone.
#[derive(Clone, Debug)]
pub struct Phone {
    sim: Sim,
    meter: EnergyMeter,
    cpu: Cpu,
    modem: CellularModem,
    wifi: WifiRadio,
    connectivity: Connectivity,
    battery: Battery,
    clock: DeviceClock,
}

impl Phone {
    /// Boots a phone on the given simulation (its own single-phone
    /// [`FleetArena`]).
    pub fn new(sim: &Sim, config: PhoneConfig) -> Self {
        Phone::new_in(sim, config, &FleetArena::new(sim))
    }

    /// Boots a phone whose hot state (clock, bearer, power rails) lives
    /// in `arena`'s shared columns — the constructor fleet builders use
    /// so 100k phones fill flat `Vec`s instead of scattered allocations.
    pub fn new_in(sim: &Sim, config: PhoneConfig, arena: &FleetArena) -> Self {
        let meter = arena.energy().alloc();
        let cpu = Cpu::new(sim, &meter, config.cpu);
        let modem = CellularModem::new(sim, &meter, config.carrier);
        let wifi = WifiRadio::new(sim, &meter, config.wifi);
        let connectivity = arena.connectivity().alloc(config.initial_bearer);
        let battery = Battery::new(&meter, config.battery_capacity_joules);
        let clock = arena.clocks().alloc();
        Phone {
            sim: sim.clone(),
            meter,
            cpu,
            modem,
            wifi,
            connectivity,
            battery,
            clock,
        }
    }

    /// The simulation clock this phone lives on.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// The phone's energy meter.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// The application CPU.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// The 3G modem.
    pub fn modem(&self) -> &CellularModem {
        &self.modem
    }

    /// The Wi-Fi interface.
    pub fn wifi(&self) -> &WifiRadio {
        &self.wifi
    }

    /// Connectivity (active-bearer) state.
    pub fn connectivity(&self) -> &Connectivity {
        &self.connectivity
    }

    /// The battery.
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// The device's real-time clock. Identity on [`Sim::now`] until a
    /// skew is injected; sensor timestamps are stamped from it, timers
    /// are not (they keep elapsed-time semantics on the global clock).
    pub fn clock(&self) -> &DeviceClock {
        &self.clock
    }

    /// Sends `tx`/`rx` bytes over whichever bearer is active; `done` fires
    /// when the last byte moves.
    ///
    /// # Errors
    ///
    /// Returns [`OfflineError`] (without consuming energy) when no bearer
    /// is up.
    pub fn transmit(
        &self,
        tx: u64,
        rx: u64,
        done: impl FnOnce() + 'static,
    ) -> Result<Bearer, OfflineError> {
        match self.connectivity.active() {
            Some(Bearer::Cellular) => {
                self.modem.transmit(tx, rx, done);
                Ok(Bearer::Cellular)
            }
            Some(Bearer::Wifi) => {
                self.wifi.transmit(tx, rx, done);
                Ok(Bearer::Wifi)
            }
            None => Err(OfflineError),
        }
    }

    /// The 2G/3G interface byte counters `(tx, rx)` — the quantity Pogo's
    /// tail detector polls (§4.7 reads "the number of bytes received and
    /// transmitted on the 2G/3G network interface").
    pub fn mobile_byte_counters(&self) -> (u64, u64) {
        self.modem.byte_counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pogo_sim::SimDuration;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn transmit_routes_to_active_bearer() {
        let sim = Sim::new();
        let phone = Phone::new(&sim, PhoneConfig::default());
        assert_eq!(phone.transmit(1_000, 0, || {}), Ok(Bearer::Cellular));
        sim.run_until_idle();
        assert_eq!(phone.modem().byte_counters().0, 1_000);
        assert_eq!(phone.wifi().byte_counters().0, 0);

        phone.connectivity().set_active(Some(Bearer::Wifi));
        assert_eq!(phone.transmit(500, 0, || {}), Ok(Bearer::Wifi));
        sim.run_until_idle();
        assert_eq!(phone.wifi().byte_counters().0, 500);
    }

    #[test]
    fn transmit_offline_fails_without_energy() {
        let sim = Sim::new();
        let phone = Phone::new(
            &sim,
            PhoneConfig {
                initial_bearer: None,
                ..PhoneConfig::default()
            },
        );
        let called = Rc::new(Cell::new(false));
        let c = called.clone();
        assert_eq!(phone.transmit(1, 0, move || c.set(true)), Err(OfflineError));
        sim.run_for(SimDuration::from_secs(120));
        assert!(!called.get());
        assert_eq!(phone.mobile_byte_counters(), (0, 0));
    }

    #[test]
    fn idle_phone_energy_is_floor_power() {
        let sim = Sim::new();
        let phone = Phone::new(&sim, PhoneConfig::default());
        sim.run_for(SimDuration::from_hours(1));
        // After the boot linger the phone draws asleep CPU + idle radios.
        let joules = phone.meter().total_joules();
        let floor = 0.008 + 0.002 + 0.002; // cpu + modem + wifi idle
        let expected = floor * 3_600.0;
        assert!(
            (joules - expected).abs() < 1.0,
            "idle hour {joules} J vs floor {expected} J"
        );
    }
}
