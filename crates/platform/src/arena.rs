//! Fleet-scale device state: one arena bundling every per-device hot
//! column.
//!
//! A [`FleetArena`] composes the three columnar stores a simulated
//! handset draws its hot state from — [`ClockArena`] (skewable
//! real-time clocks), [`ConnArena`] (active bearer + handover counts),
//! and [`EnergyArena`] (power rails) — so that booting 100k phones via
//! [`Phone::new_in`](crate::Phone::new_in) fills a handful of flat
//! `Vec`s instead of allocating 300k+ scattered `Rc<RefCell<…>>` cells.
//! Slot `i` of each arena belongs to the `i`-th phone booted into it,
//! which is also the phone's dense [`DeviceId`](pogo_sim::DeviceId) when
//! a testbed owns the arena.
//!
//! [`Phone::new`](crate::Phone::new) still works standalone: it boots
//! into a throwaway single-phone arena.

use pogo_sim::{ClockArena, Sim};

use crate::connectivity::ConnArena;
use crate::energy::EnergyArena;

/// The columnar backing store for a fleet of phones. Cheap to clone;
/// clones share the underlying columns.
#[derive(Clone, Debug)]
pub struct FleetArena {
    clocks: ClockArena,
    conn: ConnArena,
    energy: EnergyArena,
}

impl FleetArena {
    /// An empty arena on `sim`.
    pub fn new(sim: &Sim) -> Self {
        FleetArena {
            clocks: ClockArena::new(sim),
            conn: ConnArena::new(),
            energy: EnergyArena::new(sim),
        }
    }

    /// The per-device real-time-clock columns.
    pub fn clocks(&self) -> &ClockArena {
        &self.clocks
    }

    /// The per-device bearer-state columns.
    pub fn connectivity(&self) -> &ConnArena {
        &self.conn
    }

    /// The shared power-rail columns.
    pub fn energy(&self) -> &EnergyArena {
        &self.energy
    }

    /// Number of phones booted into this arena.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// True if no phone has booted into this arena yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phone::{Phone, PhoneConfig};

    #[test]
    fn phones_fill_arena_slots_in_boot_order() {
        let sim = Sim::new();
        let arena = FleetArena::new(&sim);
        let a = Phone::new_in(&sim, PhoneConfig::default(), &arena);
        let b = Phone::new_in(&sim, PhoneConfig::default(), &arena);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.clocks().len(), 2);
        assert_eq!(arena.connectivity().len(), 2);
        assert_eq!(arena.energy().len(), 2);
        // Rails land in the shared columns (cpu + modem + wifi per phone).
        assert_eq!(arena.energy().rail_count(), 6);
        // Slots stay independent.
        a.clock().set_skew(1_000, 0);
        assert_eq!(b.clock().skew_ms(), 0);
    }
}
