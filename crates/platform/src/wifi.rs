//! The Wi-Fi interface: access-point scans and (comparatively cheap)
//! data transfers.
//!
//! Unlike the 3G modem, Wi-Fi has no multi-second tail — which is why the
//! paper's user 7, who had no mobile Internet, could offload over Wi-Fi
//! without the tail-sync machinery. A scan occupies the chipset for
//! 1–2 seconds (§4.5: "the 1-2 seconds the process generally requires"),
//! during which the caller must hold a wake lock or the completion is
//! never observed.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use pogo_sim::{Sim, SimDuration};

use crate::energy::{EnergyMeter, RailId};

/// Wi-Fi chipset parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WifiConfig {
    /// Draw while associated but idle, watts (power-save mode).
    pub idle_power: f64,
    /// Draw while actively transferring, watts.
    pub active_power: f64,
    /// Draw during an access-point scan, watts.
    pub scan_power: f64,
    /// Duration of one access-point scan.
    pub scan_duration: SimDuration,
    /// Goodput in bytes/second (either direction).
    pub bytes_per_sec: f64,
    /// Fixed per-burst association/overhead time.
    pub burst_overhead: SimDuration,
}

impl Default for WifiConfig {
    fn default() -> Self {
        WifiConfig {
            idle_power: 0.002,
            active_power: 0.35,
            scan_power: 0.45,
            scan_duration: SimDuration::from_millis(1_500),
            bytes_per_sec: 1_500_000.0,
            burst_overhead: SimDuration::from_millis(100),
        }
    }
}

enum Job {
    Transfer {
        tx: u64,
        rx: u64,
        done: Box<dyn FnOnce()>,
    },
    Scan {
        done: Box<dyn FnOnce()>,
    },
}

struct Inner {
    sim: Sim,
    meter: EnergyMeter,
    rail: RailId,
    cfg: WifiConfig,
    busy: bool,
    queue: VecDeque<Job>,
    tx_total: u64,
    rx_total: u64,
    scans: u64,
}

/// The simulated Wi-Fi interface. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct WifiRadio {
    inner: Rc<RefCell<Inner>>,
}

impl std::fmt::Debug for WifiRadio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("WifiRadio")
            .field("busy", &inner.busy)
            .field("tx_total", &inner.tx_total)
            .field("scans", &inner.scans)
            .finish()
    }
}

impl WifiRadio {
    /// Creates an idle Wi-Fi interface.
    pub fn new(sim: &Sim, meter: &EnergyMeter, cfg: WifiConfig) -> Self {
        let rail = meter.register("wifi");
        meter.set_power(rail, cfg.idle_power);
        WifiRadio {
            inner: Rc::new(RefCell::new(Inner {
                sim: sim.clone(),
                meter: meter.clone(),
                rail,
                cfg,
                busy: false,
                queue: VecDeque::new(),
                tx_total: 0,
                rx_total: 0,
                scans: 0,
            })),
        }
    }

    /// Interface byte counters `(tx, rx)`.
    pub fn byte_counters(&self) -> (u64, u64) {
        let inner = self.inner.borrow();
        (inner.tx_total, inner.rx_total)
    }

    /// Number of completed access-point scans.
    pub fn scan_count(&self) -> u64 {
        self.inner.borrow().scans
    }

    /// True while a scan or transfer is in progress.
    pub fn is_busy(&self) -> bool {
        self.inner.borrow().busy
    }

    /// Queues a data transfer; `done` fires when the burst completes.
    pub fn transmit(&self, tx: u64, rx: u64, done: impl FnOnce() + 'static) {
        self.inner.borrow_mut().queue.push_back(Job::Transfer {
            tx,
            rx,
            done: Box::new(done),
        });
        self.kick();
    }

    /// Queues an access-point scan; `done` fires after
    /// [`WifiConfig::scan_duration`]. The caller is responsible for holding
    /// a CPU wake lock for the duration (the Wi-Fi sensor in `pogo-core`
    /// does this, mirroring §4.5).
    pub fn scan(&self, done: impl FnOnce() + 'static) {
        self.inner.borrow_mut().queue.push_back(Job::Scan {
            done: Box::new(done),
        });
        self.kick();
    }

    fn kick(&self) {
        let mut inner = self.inner.borrow_mut();
        if inner.busy {
            return;
        }
        let Some(job) = inner.queue.pop_front() else {
            return;
        };
        inner.busy = true;
        let me = self.clone();
        let sim = inner.sim.clone();
        match job {
            Job::Transfer { tx, rx, done } => {
                inner.meter.set_power(inner.rail, inner.cfg.active_power);
                let secs = (tx + rx) as f64 / inner.cfg.bytes_per_sec;
                let duration = inner.cfg.burst_overhead + SimDuration::from_secs_f64(secs);
                drop(inner);
                sim.schedule_in(duration, move || me.finish(Some((tx, rx)), done));
            }
            Job::Scan { done } => {
                inner.meter.set_power(inner.rail, inner.cfg.scan_power);
                let duration = inner.cfg.scan_duration;
                drop(inner);
                sim.schedule_in(duration, move || me.finish(None, done));
            }
        }
    }

    fn finish(&self, transfer: Option<(u64, u64)>, done: Box<dyn FnOnce()>) {
        {
            let mut inner = self.inner.borrow_mut();
            inner.busy = false;
            match transfer {
                Some((tx, rx)) => {
                    inner.tx_total += tx;
                    inner.rx_total += rx;
                }
                None => inner.scans += 1,
            }
            inner.meter.set_power(inner.rail, inner.cfg.idle_power);
        }
        done();
        self.kick();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pogo_sim::SimTime;
    use std::cell::Cell;

    fn setup() -> (Sim, EnergyMeter, WifiRadio) {
        let sim = Sim::new();
        let meter = EnergyMeter::new(&sim);
        let wifi = WifiRadio::new(&sim, &meter, WifiConfig::default());
        (sim, meter, wifi)
    }

    #[test]
    fn scan_takes_configured_duration() {
        let (sim, _meter, wifi) = setup();
        let done_at: Rc<Cell<Option<u64>>> = Rc::new(Cell::new(None));
        let d = done_at.clone();
        let s = sim.clone();
        wifi.scan(move || d.set(Some(s.now().as_millis())));
        sim.run_until_idle();
        assert_eq!(done_at.get(), Some(1_500));
        assert_eq!(wifi.scan_count(), 1);
    }

    #[test]
    fn transfer_updates_counters_and_power_returns_to_idle() {
        let (sim, meter, wifi) = setup();
        wifi.transmit(150_000, 0, || {});
        sim.run_until_idle();
        assert_eq!(wifi.byte_counters(), (150_000, 0));
        // 100 ms overhead + 0.1 s payload at 0.35 W, idle otherwise.
        let active_secs = 0.1 + 0.1;
        let total_secs = sim.now().as_secs_f64();
        let expected = active_secs * 0.35 + (total_secs - active_secs) * 0.002;
        let got = meter.total_joules();
        assert!((got - expected).abs() < 1e-9, "got {got} want {expected}");
    }

    #[test]
    fn jobs_run_serially_in_order() {
        let (sim, _meter, wifi) = setup();
        let order: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
        let o1 = order.clone();
        let o2 = order.clone();
        wifi.scan(move || o1.borrow_mut().push("scan"));
        wifi.transmit(1, 0, move || o2.borrow_mut().push("tx"));
        assert!(wifi.is_busy());
        sim.run_until_idle();
        assert_eq!(*order.borrow(), vec!["scan", "tx"]);
    }

    #[test]
    fn scan_energy_is_metered() {
        let (sim, meter, wifi) = setup();
        wifi.scan(|| {});
        sim.run_until(SimTime::from_millis(1_500));
        let expected = 1.5 * 0.45;
        let got = meter.total_joules();
        assert!((got - expected).abs() < 1e-9);
    }
}
