//! Power accounting: the simulated replacement for the paper's shunt
//! resistor + NI USB-6009 ADC setup (§5.2).
//!
//! Every hardware component registers a *rail* and reports its current
//! power draw whenever it changes state. The meter integrates power over
//! simulated time exactly (power is piecewise constant between state
//! changes) and can optionally record the total-power step function as a
//! [`PowerTrace`], which is how Figure 3 is regenerated.
//!
//! At fleet scale the rail state lives in an [`EnergyArena`]: one set of
//! flat columns (`watts`, `joules`, `last_update`) shared by every meter
//! allocated from it, so 100k phones' worth of rails are four contiguous
//! `Vec`s instead of 100k scattered three-rail allocations. An
//! [`EnergyMeter`] is a lightweight view — the list of *its* rail
//! indices plus an optional trace — and [`EnergyMeter::new`] wraps a
//! private arena for standalone use.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use pogo_sim::{Sim, SimDuration, SimTime};

/// Identifies one power rail (CPU, 3G modem, Wi-Fi, …) on a meter.
///
/// Indexes the owning meter's rails in registration order; two meters
/// from the same arena each start at rail 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RailId(usize);

/// Structure-of-arrays rail state, shared by every meter of an arena:
/// column `g` belongs to the `g`-th rail registered fleet-wide.
#[derive(Default)]
struct EnergyCols {
    names: Vec<String>,
    watts: Vec<f64>,
    joules: Vec<f64>,
    last_update: Vec<SimTime>,
}

impl EnergyCols {
    /// Integrates rail `g`'s current draw up to `now`.
    fn settle(&mut self, now: SimTime, g: usize) {
        let dt = now.saturating_duration_since(self.last_update[g]);
        self.joules[g] += self.watts[g] * dt.as_secs_f64();
        self.last_update[g] = now;
    }
}

/// A fleet of power meters backed by shared flat rail columns. Allocate
/// one meter per device with [`EnergyArena::alloc`].
#[derive(Clone)]
pub struct EnergyArena {
    sim: Sim,
    cols: Rc<RefCell<EnergyCols>>,
    meters: Rc<Cell<usize>>,
}

impl std::fmt::Debug for EnergyArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnergyArena")
            .field("meters", &self.len())
            .field("rails", &self.rail_count())
            .finish()
    }
}

impl EnergyArena {
    /// An empty arena on `sim`.
    pub fn new(sim: &Sim) -> Self {
        EnergyArena {
            sim: sim.clone(),
            cols: Rc::new(RefCell::new(EnergyCols::default())),
            meters: Rc::new(Cell::new(0)),
        }
    }

    /// Allocates a meter with no rails yet; components add theirs via
    /// [`EnergyMeter::register`].
    pub fn alloc(&self) -> EnergyMeter {
        self.meters.set(self.meters.get() + 1);
        EnergyMeter {
            sim: self.sim.clone(),
            cols: self.cols.clone(),
            local: Rc::new(RefCell::new(MeterLocal::default())),
        }
    }

    /// Number of meters allocated from this arena.
    pub fn len(&self) -> usize {
        self.meters.get()
    }

    /// True if no meter has been allocated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total rails registered across all meters of this arena.
    pub fn rail_count(&self) -> usize {
        self.cols.borrow().names.len()
    }
}

/// The per-meter (cold) state: which shared columns belong to this
/// meter, and the optional Figure-3 trace.
#[derive(Default)]
struct MeterLocal {
    /// Global column indices of this meter's rails, in registration order.
    rails: Vec<usize>,
    trace: Option<Vec<(SimTime, f64)>>,
}

/// Integrates per-rail power draw over simulated time.
///
/// # Example
///
/// ```
/// use pogo_sim::{Sim, SimDuration};
/// use pogo_platform::EnergyMeter;
///
/// let sim = Sim::new();
/// let meter = EnergyMeter::new(&sim);
/// let rail = meter.register("cpu");
/// meter.set_power(rail, 0.5); // 0.5 W
/// sim.run_for(SimDuration::from_secs(10));
/// assert!((meter.energy_joules(rail) - 5.0).abs() < 1e-9);
/// ```
#[derive(Clone)]
pub struct EnergyMeter {
    sim: Sim,
    cols: Rc<RefCell<EnergyCols>>,
    local: Rc<RefCell<MeterLocal>>,
}

impl std::fmt::Debug for EnergyMeter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnergyMeter")
            .field("rails", &self.local.borrow().rails.len())
            .field("total_watts", &self.total_power())
            .finish()
    }
}

impl EnergyMeter {
    /// Creates a standalone meter bound to the simulation clock (its own
    /// private arena).
    pub fn new(sim: &Sim) -> Self {
        EnergyArena::new(sim).alloc()
    }

    /// The shared-column index behind `rail`.
    fn global(&self, rail: RailId) -> usize {
        self.local.borrow().rails[rail.0]
    }

    /// Registers a new rail drawing 0 W.
    pub fn register(&self, name: &str) -> RailId {
        let now = self.sim.now();
        let mut cols = self.cols.borrow_mut();
        let g = cols.names.len();
        cols.names.push(name.to_owned());
        cols.watts.push(0.0);
        cols.joules.push(0.0);
        cols.last_update.push(now);
        let mut local = self.local.borrow_mut();
        let id = RailId(local.rails.len());
        local.rails.push(g);
        id
    }

    /// Sets the instantaneous draw of a rail, integrating the previous
    /// level up to the current instant first.
    ///
    /// # Panics
    ///
    /// Panics if `watts` is negative or not finite.
    pub fn set_power(&self, rail: RailId, watts: f64) {
        assert!(
            watts.is_finite() && watts >= 0.0,
            "power must be a non-negative finite wattage, got {watts}"
        );
        let g = self.global(rail);
        {
            let mut cols = self.cols.borrow_mut();
            cols.settle(self.sim.now(), g);
            cols.watts[g] = watts;
        }
        self.record_trace_point();
    }

    /// Adds a fixed energy cost to a rail (for events modelled as
    /// instantaneous, e.g. a flash write).
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative or not finite.
    pub fn add_energy(&self, rail: RailId, joules: f64) {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "energy must be a non-negative finite joule amount, got {joules}"
        );
        let g = self.global(rail);
        let mut cols = self.cols.borrow_mut();
        cols.settle(self.sim.now(), g);
        cols.joules[g] += joules;
    }

    /// Current draw of one rail in watts.
    pub fn power(&self, rail: RailId) -> f64 {
        self.cols.borrow().watts[self.global(rail)]
    }

    /// Current total draw across all of this meter's rails in watts.
    pub fn total_power(&self) -> f64 {
        let local = self.local.borrow();
        let cols = self.cols.borrow();
        local.rails.iter().map(|&g| cols.watts[g]).sum()
    }

    /// Energy consumed by one rail up to the current instant, in joules.
    pub fn energy_joules(&self, rail: RailId) -> f64 {
        let g = self.global(rail);
        let mut cols = self.cols.borrow_mut();
        cols.settle(self.sim.now(), g);
        cols.joules[g]
    }

    /// Total energy across this meter's rails up to the current instant,
    /// in joules.
    pub fn total_joules(&self) -> f64 {
        let local = self.local.borrow();
        let mut cols = self.cols.borrow_mut();
        let now = self.sim.now();
        local
            .rails
            .iter()
            .map(|&g| {
                cols.settle(now, g);
                cols.joules[g]
            })
            .sum()
    }

    /// Per-rail `(name, joules)` breakdown up to the current instant.
    pub fn breakdown(&self) -> Vec<(String, f64)> {
        let local = self.local.borrow();
        let mut cols = self.cols.borrow_mut();
        let now = self.sim.now();
        local
            .rails
            .iter()
            .map(|&g| {
                cols.settle(now, g);
                (cols.names[g].clone(), cols.joules[g])
            })
            .collect()
    }

    /// Starts recording the total-power step function (used for Figure 3).
    /// Recording begins at the current instant with the current total.
    pub fn start_trace(&self) {
        let watts = self.total_power();
        let now = self.sim.now();
        self.local.borrow_mut().trace = Some(vec![(now, watts)]);
    }

    /// Stops recording and returns the trace.
    ///
    /// Returns an empty trace if [`EnergyMeter::start_trace`] was never
    /// called.
    pub fn take_trace(&self) -> PowerTrace {
        PowerTrace {
            points: self.local.borrow_mut().trace.take().unwrap_or_default(),
            end: self.sim.now(),
        }
    }

    fn record_trace_point(&self) {
        let mut local = self.local.borrow_mut();
        let MeterLocal { rails, trace } = &mut *local;
        if let Some(trace) = trace {
            let cols = self.cols.borrow();
            let now = self.sim.now();
            let watts: f64 = rails.iter().map(|&g| cols.watts[g]).sum();
            // Collapse multiple changes at the same instant into one point.
            if let Some(last) = trace.last_mut() {
                if last.0 == now {
                    last.1 = watts;
                    return;
                }
            }
            trace.push((now, watts));
        }
    }
}

/// A recorded total-power step function: the value at each point holds
/// until the next point.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PowerTrace {
    points: Vec<(SimTime, f64)>,
    end: SimTime,
}

impl PowerTrace {
    /// The raw `(instant, watts)` change points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// The instant recording stopped.
    pub fn end(&self) -> SimTime {
        self.end
    }

    /// Resamples the step function at a fixed interval, returning
    /// `(seconds since trace start, watts)` pairs — the format used to
    /// print Figure 3.
    pub fn sample(&self, interval: SimDuration) -> Vec<(f64, f64)> {
        let Some(&(start, _)) = self.points.first() else {
            return Vec::new();
        };
        assert!(!interval.is_zero(), "sampling interval must be non-zero");
        let mut out = Vec::new();
        let mut t = start;
        let mut idx = 0;
        while t <= self.end {
            while idx + 1 < self.points.len() && self.points[idx + 1].0 <= t {
                idx += 1;
            }
            out.push((t.duration_since(start).as_secs_f64(), self.points[idx].1));
            t += interval;
        }
        out
    }

    /// Resamples with the **maximum** power in each bucket — the right
    /// view for plotting spiky signals (Figure 3's 20 ms paging blips
    /// would vanish under point sampling).
    pub fn sample_max(&self, interval: SimDuration) -> Vec<(f64, f64)> {
        let Some(&(start, _)) = self.points.first() else {
            return Vec::new();
        };
        assert!(!interval.is_zero(), "sampling interval must be non-zero");
        let mut out = Vec::new();
        let mut bucket_start = start;
        let mut idx = 0;
        while bucket_start <= self.end {
            let bucket_end = bucket_start + interval;
            // Power at the bucket's start…
            while idx + 1 < self.points.len() && self.points[idx + 1].0 <= bucket_start {
                idx += 1;
            }
            let mut peak = self.points[idx].1;
            // …and any change points inside the bucket.
            let mut j = idx + 1;
            while j < self.points.len() && self.points[j].0 < bucket_end {
                peak = peak.max(self.points[j].1);
                j += 1;
            }
            out.push((bucket_start.duration_since(start).as_secs_f64(), peak));
            bucket_start = bucket_end;
        }
        out
    }

    /// Exact energy in joules between two instants (clamped to the trace).
    pub fn energy_between(&self, from: SimTime, to: SimTime) -> f64 {
        if self.points.is_empty() || to <= from {
            return 0.0;
        }
        let to = to.min(self.end);
        let mut joules = 0.0;
        for (i, &(t, w)) in self.points.iter().enumerate() {
            let seg_end = self
                .points
                .get(i + 1)
                .map(|&(t2, _)| t2)
                .unwrap_or(self.end);
            let a = t.max(from);
            let b = seg_end.min(to);
            if b > a {
                joules += w * b.duration_since(a).as_secs_f64();
            }
        }
        joules
    }

    /// Peak power over the trace in watts.
    pub fn peak_watts(&self) -> f64 {
        self.points.iter().map(|&(_, w)| w).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Sim, EnergyMeter) {
        let sim = Sim::new();
        let meter = EnergyMeter::new(&sim);
        (sim, meter)
    }

    #[test]
    fn integrates_constant_power() {
        let (sim, meter) = setup();
        let r = meter.register("cpu");
        meter.set_power(r, 2.0);
        sim.run_for(SimDuration::from_secs(3));
        assert!((meter.energy_joules(r) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn integrates_step_changes() {
        let (sim, meter) = setup();
        let r = meter.register("radio");
        meter.set_power(r, 1.0);
        sim.run_for(SimDuration::from_secs(2)); // 2 J
        meter.set_power(r, 0.25);
        sim.run_for(SimDuration::from_secs(4)); // 1 J
        meter.set_power(r, 0.0);
        sim.run_for(SimDuration::from_secs(100)); // 0 J
        assert!((meter.energy_joules(r) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn rails_are_independent_and_total_sums() {
        let (sim, meter) = setup();
        let a = meter.register("a");
        let b = meter.register("b");
        meter.set_power(a, 1.0);
        meter.set_power(b, 0.5);
        sim.run_for(SimDuration::from_secs(10));
        assert!((meter.energy_joules(a) - 10.0).abs() < 1e-9);
        assert!((meter.energy_joules(b) - 5.0).abs() < 1e-9);
        assert!((meter.total_joules() - 15.0).abs() < 1e-9);
        assert!((meter.total_power() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn add_energy_is_instantaneous() {
        let (sim, meter) = setup();
        let r = meter.register("flash");
        meter.add_energy(r, 0.125);
        sim.run_for(SimDuration::from_secs(1));
        assert!((meter.energy_joules(r) - 0.125).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_power_rejected() {
        let (_sim, meter) = setup();
        let r = meter.register("x");
        meter.set_power(r, -1.0);
    }

    #[test]
    fn trace_records_step_function() {
        let (sim, meter) = setup();
        let r = meter.register("radio");
        meter.start_trace();
        meter.set_power(r, 0.8);
        sim.run_for(SimDuration::from_secs(2));
        meter.set_power(r, 0.3);
        sim.run_for(SimDuration::from_secs(2));
        meter.set_power(r, 0.0);
        sim.run_for(SimDuration::from_secs(1));
        let trace = meter.take_trace();
        // 0.8*2 + 0.3*2 + 0 = 2.2 J
        let e = trace.energy_between(SimTime::ZERO, sim.now());
        assert!((e - 2.2).abs() < 1e-9, "energy {e}");
        assert!((trace.peak_watts() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn trace_sampling_holds_last_value() {
        let (sim, meter) = setup();
        let r = meter.register("radio");
        meter.start_trace();
        meter.set_power(r, 1.0);
        sim.run_for(SimDuration::from_millis(1_500));
        meter.set_power(r, 0.0);
        sim.run_for(SimDuration::from_millis(1_000));
        let trace = meter.take_trace();
        let samples = trace.sample(SimDuration::from_millis(500));
        // t=0,0.5,1.0 -> 1.0 W; t=1.5,2.0,2.5 -> 0.0 W
        assert_eq!(samples.len(), 6);
        assert_eq!(samples[0], (0.0, 1.0));
        assert_eq!(samples[2], (1.0, 1.0));
        assert_eq!(samples[3], (1.5, 0.0));
        assert_eq!(samples[5], (2.5, 0.0));
    }

    #[test]
    fn sample_max_catches_short_spikes() {
        let (sim, meter) = setup();
        let r = meter.register("radio");
        meter.start_trace();
        // A 20 ms spike inside an otherwise-quiet second.
        sim.run_for(SimDuration::from_millis(400));
        meter.set_power(r, 0.5);
        sim.run_for(SimDuration::from_millis(20));
        meter.set_power(r, 0.0);
        sim.run_for(SimDuration::from_millis(580));
        let trace = meter.take_trace();
        let point = trace.sample(SimDuration::from_millis(1_000));
        assert_eq!(point[0].1, 0.0, "point sampling misses the spike");
        let peak = trace.sample_max(SimDuration::from_millis(1_000));
        assert_eq!(peak[0].1, 0.5, "max sampling catches it");
    }

    #[test]
    fn same_instant_changes_collapse_in_trace() {
        let (sim, meter) = setup();
        let a = meter.register("a");
        let b = meter.register("b");
        meter.start_trace();
        meter.set_power(a, 1.0);
        meter.set_power(b, 2.0);
        sim.run_for(SimDuration::from_secs(1));
        let trace = meter.take_trace();
        // start point plus one collapsed change point at t=0 (merged).
        assert_eq!(trace.points().len(), 1);
        assert_eq!(trace.points()[0].1, 3.0);
    }

    #[test]
    fn breakdown_lists_all_rails() {
        let (sim, meter) = setup();
        let a = meter.register("cpu");
        let _b = meter.register("radio");
        meter.set_power(a, 1.0);
        sim.run_for(SimDuration::from_secs(2));
        let bd = meter.breakdown();
        assert_eq!(bd.len(), 2);
        assert_eq!(bd[0].0, "cpu");
        assert!((bd[0].1 - 2.0).abs() < 1e-9);
        assert_eq!(bd[1].1, 0.0);
    }

    #[test]
    fn arena_meters_share_columns_but_not_rails() {
        let sim = Sim::new();
        let arena = EnergyArena::new(&sim);
        let m1 = arena.alloc();
        let m2 = arena.alloc();
        let r1 = m1.register("cpu");
        let r2 = m2.register("cpu");
        m1.set_power(r1, 1.0);
        m2.set_power(r2, 0.25);
        sim.run_for(SimDuration::from_secs(4));
        assert!((m1.total_joules() - 4.0).abs() < 1e-9);
        assert!((m2.total_joules() - 1.0).abs() < 1e-9, "meters independent");
        assert_eq!(arena.rail_count(), 2, "columns shared fleet-wide");
        assert_eq!(arena.len(), 2);
        // Per-meter traces see only their own rails.
        m1.start_trace();
        m2.set_power(r2, 5.0);
        sim.run_for(SimDuration::from_secs(1));
        assert!((m1.take_trace().peak_watts() - 1.0).abs() < 1e-12);
    }
}
