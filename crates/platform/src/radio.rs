//! The 2G/3G cellular modem: an RRC state machine with tail energy.
//!
//! The paper (§4.7, Figure 3) describes the modem exactly as modelled here:
//! a transmission triggers a ramp-up (channel negotiation with the cell
//! tower, ~2 s), data flows in the high-power DCH state, the modem then
//! lingers in DCH for a *tail* (~6 s on KPN), drops to the medium-power
//! FACH state for a much longer tail (~53.5 s on KPN), and finally returns
//! to idle. Tail durations are carrier policy, which is why Table 3 runs
//! the experiment on the three major Dutch carriers.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use pogo_sim::{EventId, Sim, SimDuration, SimTime};

use crate::energy::{EnergyMeter, RailId};

/// RRC state of the modem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RadioState {
    /// Low-power idle (paging only).
    Idle,
    /// Negotiating a dedicated channel (the "ramp-up" before data flows).
    RampUp,
    /// Dedicated channel: full power, data can flow.
    Dch,
    /// Shared forward-access channel: medium power, no bulk data.
    Fach,
}

impl std::fmt::Display for RadioState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RadioState::Idle => "IDLE",
            RadioState::RampUp => "RAMP",
            RadioState::Dch => "DCH",
            RadioState::Fach => "FACH",
        };
        f.write_str(s)
    }
}

/// Carrier-specific RRC timing and power parameters.
///
/// The three constructors correspond to the carriers measured in Table 3;
/// tail lengths are taken from Figure 3 (KPN) and calibrated for the other
/// two so that baseline hourly energy reproduces the paper's ordering
/// (KPN > Vodafone > T-Mobile).
#[derive(Debug, Clone, PartialEq)]
pub struct CarrierProfile {
    /// Carrier name as printed in Table 3.
    pub name: String,
    /// Idle → DCH channel negotiation time.
    pub ramp_up: SimDuration,
    /// FACH → DCH promotion time (much cheaper than a cold ramp-up).
    pub fach_promote: SimDuration,
    /// Time spent in DCH after the last byte before demotion to FACH.
    pub dch_tail: SimDuration,
    /// Time spent in FACH before returning to idle.
    pub fach_tail: SimDuration,
    /// Average idle draw including paging duty cycle, watts.
    pub idle_power: f64,
    /// Draw during ramp-up/promotion, watts.
    pub ramp_power: f64,
    /// Draw in DCH, watts.
    pub dch_power: f64,
    /// Draw in FACH, watts.
    pub fach_power: f64,
    /// Uplink goodput, bytes/second.
    pub up_bytes_per_sec: f64,
    /// Downlink goodput, bytes/second.
    pub down_bytes_per_sec: f64,
    /// Minimum time any transfer occupies DCH.
    pub min_transfer: SimDuration,
}

impl CarrierProfile {
    /// KPN: the long-tail carrier of Figure 3 (≈6 s DCH + ≈53.5 s FACH).
    pub fn kpn() -> Self {
        CarrierProfile {
            name: "KPN".to_owned(),
            ramp_up: SimDuration::from_millis(2_000),
            fach_promote: SimDuration::from_millis(500),
            dch_tail: SimDuration::from_millis(6_000),
            fach_tail: SimDuration::from_millis(53_500),
            idle_power: 0.002,
            ramp_power: 0.50,
            dch_power: 0.65,
            fach_power: 0.258,
            up_bytes_per_sec: 120_000.0,
            down_bytes_per_sec: 400_000.0,
            min_transfer: SimDuration::from_millis(200),
        }
    }

    /// T-Mobile NL: shortest tails, lowest hourly baseline in Table 3.
    pub fn t_mobile() -> Self {
        CarrierProfile {
            dch_tail: SimDuration::from_millis(4_000),
            fach_tail: SimDuration::from_millis(28_000),
            ..Self::named_like_kpn("T-Mobile")
        }
    }

    /// Vodafone NL: mid-length tails.
    pub fn vodafone() -> Self {
        CarrierProfile {
            dch_tail: SimDuration::from_millis(5_000),
            fach_tail: SimDuration::from_millis(32_500),
            ..Self::named_like_kpn("Vodafone")
        }
    }

    fn named_like_kpn(name: &str) -> Self {
        CarrierProfile {
            name: name.to_owned(),
            ..Self::kpn()
        }
    }

    /// All three Table 3 carriers, in the paper's row order.
    pub fn all() -> Vec<CarrierProfile> {
        vec![Self::kpn(), Self::t_mobile(), Self::vodafone()]
    }

    fn power_for(&self, state: RadioState) -> f64 {
        match state {
            RadioState::Idle => self.idle_power,
            RadioState::RampUp => self.ramp_power,
            RadioState::Dch => self.dch_power,
            RadioState::Fach => self.fach_power,
        }
    }
}

type StateListener = Rc<dyn Fn(RadioState, SimTime)>;

struct Transfer {
    tx: u64,
    rx: u64,
    done: Box<dyn FnOnce()>,
}

struct Inner {
    sim: Sim,
    meter: EnergyMeter,
    rail: RailId,
    profile: CarrierProfile,
    state: RadioState,
    /// Pending demotion or ramp-up completion event.
    timer: Option<EventId>,
    /// True while a transfer occupies DCH.
    transferring: bool,
    queue: VecDeque<Transfer>,
    tx_total: u64,
    rx_total: u64,
    ramp_ups: u64,
    listeners: Vec<StateListener>,
    /// Render discrete paging spikes while idle (Figure 3's "small
    /// spikes before a and after d"). Off by default: long simulations
    /// fold the duty cycle into `idle_power` instead.
    idle_spikes: bool,
    spike_high: bool,
}

impl Inner {
    fn enter(&mut self, state: RadioState) -> Vec<StateListener> {
        self.state = state;
        self.meter
            .set_power(self.rail, self.profile.power_for(state));
        self.listeners.clone()
    }

    fn clear_timer(&mut self) {
        if let Some(t) = self.timer.take() {
            self.sim.cancel(t);
        }
    }
}

/// The simulated cellular modem. Cheap to clone; clones share state.
///
/// Transfers are queued and processed serially; each transfer's completion
/// callback fires when its last byte has been sent, which is when the
/// interface byte counters (visible to Pogo's tail detector) advance.
#[derive(Clone)]
pub struct CellularModem {
    inner: Rc<RefCell<Inner>>,
}

impl std::fmt::Debug for CellularModem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("CellularModem")
            .field("carrier", &inner.profile.name)
            .field("state", &inner.state)
            .field("tx_total", &inner.tx_total)
            .field("rx_total", &inner.rx_total)
            .field("ramp_ups", &inner.ramp_ups)
            .finish()
    }
}

impl CellularModem {
    /// The subscribed carrier's Table 3 name (fleet builders use this to
    /// audit carrier-mix draws).
    pub fn carrier_name(&self) -> String {
        self.inner.borrow().profile.name.clone()
    }

    /// Creates an idle modem on the given carrier.
    pub fn new(sim: &Sim, meter: &EnergyMeter, profile: CarrierProfile) -> Self {
        let rail = meter.register("modem-3g");
        meter.set_power(rail, profile.idle_power);
        CellularModem {
            inner: Rc::new(RefCell::new(Inner {
                sim: sim.clone(),
                meter: meter.clone(),
                rail,
                profile,
                state: RadioState::Idle,
                timer: None,
                transferring: false,
                queue: VecDeque::new(),
                tx_total: 0,
                rx_total: 0,
                ramp_ups: 0,
                listeners: Vec::new(),
                idle_spikes: false,
                spike_high: false,
            })),
        }
    }

    /// Current RRC state.
    pub fn state(&self) -> RadioState {
        self.inner.borrow().state
    }

    /// Carrier profile in use.
    pub fn profile(&self) -> CarrierProfile {
        self.inner.borrow().profile.clone()
    }

    /// Interface byte counters `(tx, rx)` — what Pogo's tail detector polls
    /// (the Android `TrafficStats` equivalent).
    pub fn byte_counters(&self) -> (u64, u64) {
        let inner = self.inner.borrow();
        (inner.tx_total, inner.rx_total)
    }

    /// Number of cold ramp-ups (idle → DCH) so far: each one implies a full
    /// tail was paid. The batching ablation compares this across policies.
    pub fn ramp_ups(&self) -> u64 {
        self.inner.borrow().ramp_ups
    }

    /// True while the modem is in a high- or medium-power state, i.e. data
    /// sent *now* rides an already-paid-for tail.
    pub fn is_tail_open(&self) -> bool {
        self.inner.borrow().state != RadioState::Idle
    }

    /// Registers a state-transition listener (used for the Figure 4
    /// timeline and by tests).
    pub fn on_state_change(&self, f: impl Fn(RadioState, SimTime) + 'static) {
        self.inner.borrow_mut().listeners.push(Rc::new(f));
    }

    /// Enables discrete paging-cycle spikes while idle — the "small
    /// spikes before a and after d" visible in Figure 3's trace. Costs an
    /// event every 1.28 s of idle time, so leave it off for multi-day
    /// runs (the average draw is already part of
    /// [`CarrierProfile::idle_power`]).
    pub fn enable_idle_spikes(&self) {
        {
            let mut inner = self.inner.borrow_mut();
            if inner.idle_spikes {
                return;
            }
            inner.idle_spikes = true;
        }
        self.spike_tick();
    }

    /// One edge of the paging duty cycle: 20 ms at elevated draw every
    /// 1.28 s (the UMTS paging interval), only while idle.
    fn spike_tick(&self) {
        let (sim, next_delay) = {
            let mut inner = self.inner.borrow_mut();
            if !inner.idle_spikes {
                return;
            }
            let sim = inner.sim.clone();
            if inner.state != RadioState::Idle {
                inner.spike_high = false;
                // Idle again later; check on the paging cadence.
                (sim, SimDuration::from_millis(1_280))
            } else if inner.spike_high {
                inner.spike_high = false;
                inner.meter.set_power(inner.rail, inner.profile.idle_power);
                (sim, SimDuration::from_millis(1_260))
            } else {
                inner.spike_high = true;
                inner
                    .meter
                    .set_power(inner.rail, inner.profile.idle_power + 0.12);
                (sim, SimDuration::from_millis(20))
            }
        };
        let me = self.clone();
        sim.schedule_in(next_delay, move || me.spike_tick());
    }

    /// Queues a transfer of `tx` uplink and `rx` downlink bytes; `done`
    /// fires when the last byte moves (counters advance at that point).
    pub fn transmit(&self, tx: u64, rx: u64, done: impl FnOnce() + 'static) {
        {
            let mut inner = self.inner.borrow_mut();
            inner.queue.push_back(Transfer {
                tx,
                rx,
                done: Box::new(done),
            });
        }
        self.kick();
    }

    // ---- state machine ---------------------------------------------------

    /// Starts moving queued data if the modem is not already doing so.
    fn kick(&self) {
        let notify = {
            let mut inner = self.inner.borrow_mut();
            if inner.transferring || inner.queue.is_empty() {
                None
            } else {
                match inner.state {
                    RadioState::Idle => {
                        inner.ramp_ups += 1;
                        inner.clear_timer();
                        let delay = inner.profile.ramp_up;
                        let me = self.clone();
                        let sim = inner.sim.clone();
                        let notify = inner.enter(RadioState::RampUp);
                        inner.timer = Some(sim.schedule_in(delay, move || me.begin_transfer()));
                        Some(notify)
                    }
                    RadioState::Fach => {
                        inner.clear_timer();
                        let delay = inner.profile.fach_promote;
                        let me = self.clone();
                        let sim = inner.sim.clone();
                        let notify = inner.enter(RadioState::RampUp);
                        inner.timer = Some(sim.schedule_in(delay, move || me.begin_transfer()));
                        Some(notify)
                    }
                    RadioState::Dch => {
                        // Tail still open: cancel the pending demotion and
                        // transfer immediately.
                        inner.clear_timer();
                        drop(inner);
                        self.begin_transfer();
                        return;
                    }
                    RadioState::RampUp => None, // already heading to DCH
                }
            }
        };
        self.notify(notify);
    }

    fn begin_transfer(&self) {
        let notify = {
            let mut inner = self.inner.borrow_mut();
            inner.timer = None;
            let Some(transfer) = inner.queue.pop_front() else {
                // Ramp-up completed with nothing to send (all cancelled):
                // start the DCH tail immediately.
                drop(inner);
                self.start_dch_tail();
                return;
            };
            let notify = if inner.state != RadioState::Dch {
                Some(inner.enter(RadioState::Dch))
            } else {
                None
            };
            inner.transferring = true;
            let p = &inner.profile;
            let secs =
                transfer.tx as f64 / p.up_bytes_per_sec + transfer.rx as f64 / p.down_bytes_per_sec;
            let duration = SimDuration::from_secs_f64(secs).max(p.min_transfer);
            let me = self.clone();
            let sim = inner.sim.clone();
            sim.schedule_in(duration, move || me.complete_transfer(transfer));
            notify
        };
        self.notify(notify);
    }

    fn complete_transfer(&self, transfer: Transfer) {
        {
            let mut inner = self.inner.borrow_mut();
            inner.transferring = false;
            inner.tx_total += transfer.tx;
            inner.rx_total += transfer.rx;
        }
        (transfer.done)();
        let more = !self.inner.borrow().queue.is_empty();
        if more {
            self.begin_transfer();
        } else {
            self.start_dch_tail();
        }
    }

    fn start_dch_tail(&self) {
        let notify = {
            let mut inner = self.inner.borrow_mut();
            inner.clear_timer();
            let delay = inner.profile.dch_tail;
            let me = self.clone();
            let sim = inner.sim.clone();
            let notify = if inner.state != RadioState::Dch {
                Some(inner.enter(RadioState::Dch))
            } else {
                None
            };
            inner.timer = Some(sim.schedule_in(delay, move || me.demote_to_fach()));
            notify
        };
        self.notify(notify);
    }

    fn demote_to_fach(&self) {
        let notify = {
            let mut inner = self.inner.borrow_mut();
            inner.timer = None;
            if inner.state != RadioState::Dch || inner.transferring {
                return;
            }
            let delay = inner.profile.fach_tail;
            let me = self.clone();
            let sim = inner.sim.clone();
            let notify = inner.enter(RadioState::Fach);
            inner.timer = Some(sim.schedule_in(delay, move || me.demote_to_idle()));
            Some(notify)
        };
        self.notify(notify);
    }

    fn demote_to_idle(&self) {
        let notify = {
            let mut inner = self.inner.borrow_mut();
            inner.timer = None;
            if inner.state != RadioState::Fach {
                return;
            }
            Some(inner.enter(RadioState::Idle))
        };
        self.notify(notify);
    }

    fn notify(&self, listeners: Option<Vec<StateListener>>) {
        if let Some(listeners) = listeners {
            let (state, now) = {
                let inner = self.inner.borrow();
                (inner.state, inner.sim.now())
            };
            for l in listeners {
                l(state, now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn setup(profile: CarrierProfile) -> (Sim, EnergyMeter, CellularModem) {
        let sim = Sim::new();
        let meter = EnergyMeter::new(&sim);
        let modem = CellularModem::new(&sim, &meter, profile);
        (sim, meter, modem)
    }

    #[test]
    fn full_state_cycle_on_kpn() {
        let (sim, _meter, modem) = setup(CarrierProfile::kpn());
        let log: Rc<RefCell<Vec<(RadioState, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        modem.on_state_change(move |s, t| l.borrow_mut().push((s, t.as_millis())));

        modem.transmit(1_000, 0, || {});
        sim.run_until_idle();

        // ramp at 0, DCH at 2000, transfer ends 2200 (min 200ms),
        // FACH at 2200+6000=8200, idle at 8200+53500=61700.
        assert_eq!(
            *log.borrow(),
            vec![
                (RadioState::RampUp, 0),
                (RadioState::Dch, 2_000),
                (RadioState::Fach, 8_200),
                (RadioState::Idle, 61_700),
            ]
        );
        assert_eq!(modem.ramp_ups(), 1);
    }

    #[test]
    fn counters_advance_at_transfer_completion() {
        let (sim, _meter, modem) = setup(CarrierProfile::kpn());
        modem.transmit(5_000, 20_000, || {});
        sim.run_until(SimTime::from_millis(1_999));
        assert_eq!(modem.byte_counters(), (0, 0), "nothing during ramp-up");
        sim.run_until_idle();
        assert_eq!(modem.byte_counters(), (5_000, 20_000));
    }

    #[test]
    fn completion_callback_fires_once_bytes_move() {
        let (sim, _meter, modem) = setup(CarrierProfile::kpn());
        let done_at: Rc<Cell<Option<u64>>> = Rc::new(Cell::new(None));
        let d = done_at.clone();
        let s = sim.clone();
        modem.transmit(1_000, 0, move || d.set(Some(s.now().as_millis())));
        sim.run_until_idle();
        assert_eq!(done_at.get(), Some(2_200));
    }

    #[test]
    fn data_during_tail_reuses_channel_without_new_ramp() {
        let (sim, _meter, modem) = setup(CarrierProfile::kpn());
        modem.transmit(1_000, 0, || {});
        // First transfer done at 2.2 s; DCH tail open until 8.2 s.
        let m = modem.clone();
        sim.schedule_at(SimTime::from_millis(5_000), move || {
            assert_eq!(m.state(), RadioState::Dch);
            m.transmit(1_000, 0, || {});
        });
        sim.run_until_idle();
        assert_eq!(modem.ramp_ups(), 1, "second transfer rode the tail");
        assert_eq!(modem.byte_counters().0, 2_000);
    }

    #[test]
    fn data_during_fach_promotes_without_cold_ramp() {
        let (sim, _meter, modem) = setup(CarrierProfile::kpn());
        modem.transmit(1_000, 0, || {});
        // FACH from 8.2 s to 61.7 s.
        let m = modem.clone();
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        sim.schedule_at(SimTime::from_millis(30_000), move || {
            assert_eq!(m.state(), RadioState::Fach);
            m.transmit(500, 0, move || d.set(true));
        });
        sim.run_until_idle();
        assert!(done.get());
        assert_eq!(modem.ramp_ups(), 1);
    }

    #[test]
    fn queued_transfers_processed_serially() {
        let (sim, _meter, modem) = setup(CarrierProfile::kpn());
        let order: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3 {
            let o = order.clone();
            modem.transmit(1_000, 0, move || o.borrow_mut().push(i));
        }
        sim.run_until_idle();
        assert_eq!(*order.borrow(), vec![0, 1, 2]);
        assert_eq!(modem.ramp_ups(), 1, "one ramp covers the whole queue");
    }

    #[test]
    fn tail_energy_matches_closed_form() {
        let (sim, meter, modem) = setup(CarrierProfile::kpn());
        modem.transmit(1_000, 0, || {});
        sim.run_for(SimDuration::from_mins(5));
        let p = modem.profile();
        let expected = p.ramp_power * 2.0
            + p.dch_power * 0.2          // min transfer
            + p.dch_power * 6.0          // DCH tail
            + p.fach_power * 53.5        // FACH tail
            + p.idle_power * (300.0 - 61.7);
        let got = meter.total_joules();
        assert!(
            (got - expected).abs() < 1e-6,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn carriers_differ_only_in_tails() {
        let kpn = CarrierProfile::kpn();
        let tmo = CarrierProfile::t_mobile();
        let vod = CarrierProfile::vodafone();
        assert!(kpn.fach_tail > vod.fach_tail && vod.fach_tail > tmo.fach_tail);
        assert_eq!(kpn.dch_power, tmo.dch_power);
        assert_eq!(kpn.ramp_up, vod.ramp_up);
    }

    #[test]
    fn is_tail_open_tracks_states() {
        let (sim, _meter, modem) = setup(CarrierProfile::t_mobile());
        assert!(!modem.is_tail_open());
        modem.transmit(100, 0, || {});
        sim.run_until(SimTime::from_millis(3_000));
        assert!(modem.is_tail_open());
        sim.run_until_idle();
        assert!(!modem.is_tail_open());
    }

    #[test]
    fn idle_spikes_render_duty_cycle_without_breaking_totals() {
        let (sim, meter, modem) = setup(CarrierProfile::kpn());
        meter.start_trace();
        modem.enable_idle_spikes();
        sim.run_for(SimDuration::from_secs(10));
        let trace = meter.take_trace();
        // ~7 paging cycles in 10 s; each contributes a visible spike.
        let spikes = trace.points().iter().filter(|&&(_, w)| w > 0.1).count();
        assert!((6..=9).contains(&spikes), "spikes {spikes}");
        // Energy: idle floor + 20 ms × 0.12 W per cycle.
        let expected = 10.0 * 0.002 + spikes as f64 * 0.020 * 0.12;
        let got = meter.total_joules();
        assert!((got - expected).abs() < 0.01, "got {got} want {expected}");
        // Spikes pause during transmission.
        modem.transmit(1_000, 0, || {});
        sim.run_until(sim.now() + SimDuration::from_secs(4));
        assert_eq!(modem.state(), RadioState::Dch);
    }

    #[test]
    fn long_transfer_duration_scales_with_bytes() {
        let (sim, _meter, modem) = setup(CarrierProfile::kpn());
        let done_at: Rc<Cell<Option<u64>>> = Rc::new(Cell::new(None));
        let d = done_at.clone();
        let s = sim.clone();
        // 1.2 MB uplink at 120 kB/s = 10 s.
        modem.transmit(1_200_000, 0, move || d.set(Some(s.now().as_millis())));
        sim.run_until_idle();
        assert_eq!(done_at.get(), Some(2_000 + 10_000));
    }
}
