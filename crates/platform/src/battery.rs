//! The battery: level/voltage derived from metered energy consumption.
//!
//! Pogo's Table 3 experiment has the middleware sample "the battery
//! sensor every minute" and report voltage readings. This model derives
//! the state of charge from the [`EnergyMeter`] so that what the battery
//! sensor publishes is consistent with what the rest of the simulation
//! consumed, and supports charge cycles (users plug phones in at night).

use std::cell::RefCell;
use std::rc::Rc;

use crate::energy::EnergyMeter;

/// Galaxy-Nexus-class battery: 1750 mAh at 3.7 V nominal ≈ 23.3 kJ.
pub const DEFAULT_CAPACITY_JOULES: f64 = 23_300.0;

struct Inner {
    meter: EnergyMeter,
    capacity_joules: f64,
    /// Meter reading at the moment the battery was last full.
    full_at_joules: f64,
    charging: bool,
}

/// Simulated battery. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct Battery {
    inner: Rc<RefCell<Inner>>,
}

impl std::fmt::Debug for Battery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Battery")
            .field("level", &self.level())
            .field("charging", &self.is_charging())
            .finish()
    }
}

impl Battery {
    /// Creates a full battery with the given capacity in joules.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_joules` is not positive.
    pub fn new(meter: &EnergyMeter, capacity_joules: f64) -> Self {
        assert!(capacity_joules > 0.0, "battery capacity must be positive");
        let full_at = meter.total_joules();
        Battery {
            inner: Rc::new(RefCell::new(Inner {
                meter: meter.clone(),
                capacity_joules,
                full_at_joules: full_at,
                charging: false,
            })),
        }
    }

    /// Creates a full battery with [`DEFAULT_CAPACITY_JOULES`].
    pub fn with_default_capacity(meter: &EnergyMeter) -> Self {
        Self::new(meter, DEFAULT_CAPACITY_JOULES)
    }

    /// State of charge in `[0, 1]`.
    pub fn level(&self) -> f64 {
        let inner = self.inner.borrow();
        if inner.charging {
            return 1.0;
        }
        let used = inner.meter.total_joules() - inner.full_at_joules;
        (1.0 - used / inner.capacity_joules).clamp(0.0, 1.0)
    }

    /// True once the battery is fully drained.
    pub fn is_empty(&self) -> bool {
        self.level() <= 0.0
    }

    /// Terminal voltage: a simple affine discharge curve from 4.2 V (full)
    /// to 3.5 V (empty) — the quantity the paper's experiment reports.
    pub fn voltage(&self) -> f64 {
        3.5 + 0.7 * self.level()
    }

    /// True while on the charger.
    pub fn is_charging(&self) -> bool {
        self.inner.borrow().charging
    }

    /// Plugs/unplugs the charger. Unplugging marks the battery full
    /// (overnight charges complete in the scenarios we model).
    pub fn set_charging(&self, charging: bool) {
        let mut inner = self.inner.borrow_mut();
        if inner.charging && !charging {
            inner.full_at_joules = inner.meter.total_joules();
        }
        inner.charging = charging;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pogo_sim::{Sim, SimDuration};

    fn setup(capacity: f64) -> (Sim, EnergyMeter, Battery) {
        let sim = Sim::new();
        let meter = EnergyMeter::new(&sim);
        let battery = Battery::new(&meter, capacity);
        (sim, meter, battery)
    }

    #[test]
    fn drains_with_consumed_energy() {
        let (sim, meter, battery) = setup(100.0);
        let r = meter.register("load");
        meter.set_power(r, 1.0);
        assert_eq!(battery.level(), 1.0);
        sim.run_for(SimDuration::from_secs(25));
        assert!((battery.level() - 0.75).abs() < 1e-9);
        sim.run_for(SimDuration::from_secs(200));
        assert_eq!(battery.level(), 0.0);
        assert!(battery.is_empty());
    }

    #[test]
    fn voltage_follows_level() {
        let (sim, meter, battery) = setup(100.0);
        assert!((battery.voltage() - 4.2).abs() < 1e-9);
        let r = meter.register("load");
        meter.set_power(r, 1.0);
        sim.run_for(SimDuration::from_secs(100));
        assert!((battery.voltage() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn charging_restores_full() {
        let (sim, meter, battery) = setup(100.0);
        let r = meter.register("load");
        meter.set_power(r, 1.0);
        sim.run_for(SimDuration::from_secs(50));
        assert!((battery.level() - 0.5).abs() < 1e-9);
        battery.set_charging(true);
        assert_eq!(battery.level(), 1.0);
        assert!(battery.is_charging());
        sim.run_for(SimDuration::from_secs(10));
        battery.set_charging(false);
        // Full again; subsequent drain counts from here.
        sim.run_for(SimDuration::from_secs(10));
        assert!((battery.level() - 0.9).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let sim = Sim::new();
        let meter = EnergyMeter::new(&sim);
        let _ = Battery::new(&meter, 0.0);
    }
}
