//! Active-interface tracking and handover notification.
//!
//! §4.6: "Mobile phones frequently switch between wireless interfaces as
//! the user moves in- or out of range of access points and cell towers.
//! Unfortunately there is no transparent TCP handover between these
//! interfaces, causing stale TCP sessions and even dropped messages.
//! *Pogo* detects, using the Android API, when the active network
//! interface changes and automatically reconnects on the new interface."
//!
//! This module is that Android API: it holds the currently active bearer
//! and notifies listeners (the middleware's connection manager) when it
//! changes. The message loss itself happens in `pogo-net`, whose sessions
//! drop in-flight envelopes on disconnect.
//!
//! At fleet scale the bearer state lives in a [`ConnArena`] — two flat
//! columns (`active`, `changes`) indexed by the device's dense slot — so
//! a 100k-device mobility sweep touches contiguous memory instead of
//! 100k scattered `Rc<RefCell<…>>` cells. Listener lists stay per-device
//! (they are cold: registered once at boot, walked only on handover).

use std::cell::RefCell;
use std::rc::Rc;

/// A network bearer the phone can route traffic over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bearer {
    /// The 2G/3G modem (tail energy applies).
    Cellular,
    /// A Wi-Fi association (no tail).
    Wifi,
}

impl std::fmt::Display for Bearer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bearer::Cellular => f.write_str("cellular"),
            Bearer::Wifi => f.write_str("wifi"),
        }
    }
}

/// Structure-of-arrays bearer state: column `i` belongs to arena slot `i`.
#[derive(Default)]
struct ConnCols {
    active: Vec<Option<Bearer>>,
    changes: Vec<u64>,
}

/// A fleet of per-device connectivity states stored as flat columns.
/// Allocate one slot per device with [`ConnArena::alloc`].
#[derive(Clone, Default)]
pub struct ConnArena {
    cols: Rc<RefCell<ConnCols>>,
}

impl std::fmt::Debug for ConnArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnArena")
            .field("devices", &self.len())
            .finish()
    }
}

impl ConnArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates the next slot with the given initial bearer
    /// (`None` = no connectivity, e.g. airplane mode or roaming data-off).
    pub fn alloc(&self, initial: Option<Bearer>) -> Connectivity {
        let mut cols = self.cols.borrow_mut();
        let index = cols.active.len() as u32;
        cols.active.push(initial);
        cols.changes.push(0);
        Connectivity {
            cols: self.cols.clone(),
            index,
            listeners: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Number of allocated connectivity slots.
    pub fn len(&self) -> usize {
        self.cols.borrow().active.len()
    }

    /// True if no slot has been allocated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Bearer-change callbacks, per device (cold path: kept out of the
/// arena columns).
type Listeners = Rc<RefCell<Vec<Rc<dyn Fn(Option<Bearer>)>>>>;

/// Connectivity state of a phone. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct Connectivity {
    cols: Rc<RefCell<ConnCols>>,
    index: u32,
    listeners: Listeners,
}

impl std::fmt::Debug for Connectivity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connectivity")
            .field("active", &self.active())
            .field("changes", &self.change_count())
            .finish()
    }
}

impl Default for Connectivity {
    fn default() -> Self {
        Self::new(Some(Bearer::Cellular))
    }
}

impl Connectivity {
    /// Creates standalone connectivity state with the given initial
    /// bearer (its own single-slot arena).
    pub fn new(initial: Option<Bearer>) -> Self {
        ConnArena::new().alloc(initial)
    }

    /// The currently active bearer, if any.
    pub fn active(&self) -> Option<Bearer> {
        self.cols.borrow().active[self.index as usize]
    }

    /// True if any bearer is up.
    pub fn is_online(&self) -> bool {
        self.active().is_some()
    }

    /// Number of interface changes so far.
    pub fn change_count(&self) -> u64 {
        self.cols.borrow().changes[self.index as usize]
    }

    /// Switches the active bearer, notifying listeners if it changed.
    pub fn set_active(&self, bearer: Option<Bearer>) {
        {
            let mut cols = self.cols.borrow_mut();
            let i = self.index as usize;
            if cols.active[i] == bearer {
                return;
            }
            cols.active[i] = bearer;
            cols.changes[i] += 1;
        }
        let listeners = self.listeners.borrow().clone();
        for l in listeners {
            l(bearer);
        }
    }

    /// Registers a handover listener, called with the new bearer.
    pub fn on_change(&self, f: impl Fn(Option<Bearer>) + 'static) {
        self.listeners.borrow_mut().push(Rc::new(f));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn change_notifies_listeners() {
        let conn = Connectivity::new(Some(Bearer::Cellular));
        let seen: Rc<RefCell<Vec<Option<Bearer>>>> = Rc::new(RefCell::new(Vec::new()));
        let s = seen.clone();
        conn.on_change(move |b| s.borrow_mut().push(b));
        conn.set_active(Some(Bearer::Wifi));
        conn.set_active(None);
        conn.set_active(Some(Bearer::Cellular));
        assert_eq!(
            *seen.borrow(),
            vec![Some(Bearer::Wifi), None, Some(Bearer::Cellular)]
        );
        assert_eq!(conn.change_count(), 3);
    }

    #[test]
    fn redundant_set_is_not_a_change() {
        let conn = Connectivity::new(Some(Bearer::Cellular));
        let count = Rc::new(RefCell::new(0));
        let c = count.clone();
        conn.on_change(move |_| *c.borrow_mut() += 1);
        conn.set_active(Some(Bearer::Cellular));
        assert_eq!(*count.borrow(), 0);
        assert_eq!(conn.change_count(), 0);
    }

    #[test]
    fn online_tracks_bearer_presence() {
        let conn = Connectivity::new(None);
        assert!(!conn.is_online());
        conn.set_active(Some(Bearer::Wifi));
        assert!(conn.is_online());
        assert_eq!(conn.active(), Some(Bearer::Wifi));
    }

    #[test]
    fn arena_slots_are_independent() {
        let arena = ConnArena::new();
        let a = arena.alloc(Some(Bearer::Cellular));
        let b = arena.alloc(None);
        assert_eq!(arena.len(), 2);
        a.set_active(Some(Bearer::Wifi));
        assert_eq!(a.active(), Some(Bearer::Wifi));
        assert_eq!(a.change_count(), 1);
        assert_eq!(b.active(), None, "sibling slot unaffected");
        assert_eq!(b.change_count(), 0);
    }
}
