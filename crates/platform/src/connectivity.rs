//! Active-interface tracking and handover notification.
//!
//! §4.6: "Mobile phones frequently switch between wireless interfaces as
//! the user moves in- or out of range of access points and cell towers.
//! Unfortunately there is no transparent TCP handover between these
//! interfaces, causing stale TCP sessions and even dropped messages.
//! *Pogo* detects, using the Android API, when the active network
//! interface changes and automatically reconnects on the new interface."
//!
//! This module is that Android API: it holds the currently active bearer
//! and notifies listeners (the middleware's connection manager) when it
//! changes. The message loss itself happens in `pogo-net`, whose sessions
//! drop in-flight envelopes on disconnect.

use std::cell::RefCell;
use std::rc::Rc;

/// A network bearer the phone can route traffic over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bearer {
    /// The 2G/3G modem (tail energy applies).
    Cellular,
    /// A Wi-Fi association (no tail).
    Wifi,
}

impl std::fmt::Display for Bearer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bearer::Cellular => f.write_str("cellular"),
            Bearer::Wifi => f.write_str("wifi"),
        }
    }
}

struct Inner {
    active: Option<Bearer>,
    listeners: Vec<Rc<dyn Fn(Option<Bearer>)>>,
    changes: u64,
}

/// Connectivity state of a phone. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct Connectivity {
    inner: Rc<RefCell<Inner>>,
}

impl std::fmt::Debug for Connectivity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Connectivity")
            .field("active", &inner.active)
            .field("changes", &inner.changes)
            .finish()
    }
}

impl Default for Connectivity {
    fn default() -> Self {
        Self::new(Some(Bearer::Cellular))
    }
}

impl Connectivity {
    /// Creates connectivity state with the given initial bearer
    /// (`None` = no connectivity, e.g. airplane mode or roaming data-off).
    pub fn new(initial: Option<Bearer>) -> Self {
        Connectivity {
            inner: Rc::new(RefCell::new(Inner {
                active: initial,
                listeners: Vec::new(),
                changes: 0,
            })),
        }
    }

    /// The currently active bearer, if any.
    pub fn active(&self) -> Option<Bearer> {
        self.inner.borrow().active
    }

    /// True if any bearer is up.
    pub fn is_online(&self) -> bool {
        self.active().is_some()
    }

    /// Number of interface changes so far.
    pub fn change_count(&self) -> u64 {
        self.inner.borrow().changes
    }

    /// Switches the active bearer, notifying listeners if it changed.
    pub fn set_active(&self, bearer: Option<Bearer>) {
        let listeners = {
            let mut inner = self.inner.borrow_mut();
            if inner.active == bearer {
                return;
            }
            inner.active = bearer;
            inner.changes += 1;
            inner.listeners.clone()
        };
        for l in listeners {
            l(bearer);
        }
    }

    /// Registers a handover listener, called with the new bearer.
    pub fn on_change(&self, f: impl Fn(Option<Bearer>) + 'static) {
        self.inner.borrow_mut().listeners.push(Rc::new(f));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn change_notifies_listeners() {
        let conn = Connectivity::new(Some(Bearer::Cellular));
        let seen: Rc<RefCell<Vec<Option<Bearer>>>> = Rc::new(RefCell::new(Vec::new()));
        let s = seen.clone();
        conn.on_change(move |b| s.borrow_mut().push(b));
        conn.set_active(Some(Bearer::Wifi));
        conn.set_active(None);
        conn.set_active(Some(Bearer::Cellular));
        assert_eq!(
            *seen.borrow(),
            vec![Some(Bearer::Wifi), None, Some(Bearer::Cellular)]
        );
        assert_eq!(conn.change_count(), 3);
    }

    #[test]
    fn redundant_set_is_not_a_change() {
        let conn = Connectivity::new(Some(Bearer::Cellular));
        let count = Rc::new(RefCell::new(0));
        let c = count.clone();
        conn.on_change(move |_| *c.borrow_mut() += 1);
        conn.set_active(Some(Bearer::Cellular));
        assert_eq!(*count.borrow(), 0);
        assert_eq!(conn.change_count(), 0);
    }

    #[test]
    fn online_tracks_bearer_presence() {
        let conn = Connectivity::new(None);
        assert!(!conn.is_online());
        conn.set_active(Some(Bearer::Wifi));
        assert!(conn.is_online());
        assert_eq!(conn.active(), Some(Bearer::Wifi));
    }
}
