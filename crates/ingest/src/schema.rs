//! Channel schemas: type templates, value extraction, retention.
//!
//! A [`ChannelSchema`] is what a consumer declares when registering a
//! channel with the collector's registry — the SensApp shape of
//! `register sensor → schema { template } → push data`. The template
//! names the typed column the channel's samples land in; the optional
//! `value_field` picks one field out of the message objects the
//! middleware actually carries (device scripts publish objects, not
//! bare scalars); retention bounds what the store keeps.

use pogo_sim::SimDuration;

/// The typed column a channel's samples are stored in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Template {
    /// Integral numbers (sequence counters, timestamps, levels).
    I64,
    /// Any finite float.
    F64,
    /// Booleans.
    Bool,
    /// Strings.
    Str,
    /// Arbitrary message trees, stored pre-serialized as compact JSON.
    Json,
}

/// How much of a channel's history the [`crate::SampleStore`] keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Retention {
    /// Keep every flushed batch (the default; fine at simulation scale).
    #[default]
    KeepAll,
    /// Keep at most this many newest rows, evicting whole oldest
    /// batches once the total goes over.
    MaxRows(usize),
    /// Keep only batches whose newest sample is younger than this.
    MaxAge(SimDuration),
}

/// Declared shape of one registered channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelSchema {
    /// The typed column samples are stored in.
    pub template: Template,
    /// For scalar templates: the message field holding the value
    /// (`None` means the message itself must be a bare scalar). Ignored
    /// for [`Template::Json`] unless set, in which case only that field
    /// is serialized.
    pub value_field: Option<String>,
    /// Store retention for this channel.
    pub retention: Retention,
}

impl ChannelSchema {
    /// A schema storing the given typed column, whole-message, keep-all.
    pub fn new(template: Template) -> Self {
        ChannelSchema {
            template,
            value_field: None,
            retention: Retention::KeepAll,
        }
    }

    /// The catch-all schema: whole messages as compact JSON, keep-all.
    /// What `attach_listener` auto-registers for undeclared channels.
    pub fn json() -> Self {
        Self::new(Template::Json)
    }

    /// Extracts the sample value from the named message field instead
    /// of the message root.
    #[must_use]
    pub fn field(mut self, name: &str) -> Self {
        self.value_field = Some(name.to_owned());
        self
    }

    /// Sets the store retention for this channel.
    #[must_use]
    pub fn retention(mut self, retention: Retention) -> Self {
        self.retention = retention;
        self
    }
}

/// One extracted sample value, ready for its typed column.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// An integral number.
    I64(i64),
    /// A float.
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
    /// A message tree, pre-serialized as compact JSON.
    Json(String),
}

impl SampleValue {
    /// Whether this value belongs in a `template` column.
    pub fn matches(&self, template: Template) -> bool {
        matches!(
            (self, template),
            (SampleValue::I64(_), Template::I64)
                | (SampleValue::F64(_), Template::F64)
                | (SampleValue::Bool(_), Template::Bool)
                | (SampleValue::Str(_), Template::Str)
                | (SampleValue::Json(_), Template::Json)
        )
    }

    /// Short type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            SampleValue::I64(_) => "i64",
            SampleValue::F64(_) => "f64",
            SampleValue::Bool(_) => "bool",
            SampleValue::Str(_) => "str",
            SampleValue::Json(_) => "json",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let s = ChannelSchema::new(Template::I64)
            .field("n")
            .retention(Retention::MaxRows(10));
        assert_eq!(s.template, Template::I64);
        assert_eq!(s.value_field.as_deref(), Some("n"));
        assert_eq!(s.retention, Retention::MaxRows(10));
    }

    #[test]
    fn values_match_their_templates_only() {
        assert!(SampleValue::I64(3).matches(Template::I64));
        assert!(!SampleValue::I64(3).matches(Template::F64));
        assert!(SampleValue::Json("{}".into()).matches(Template::Json));
        assert_eq!(SampleValue::Str("x".into()).type_name(), "str");
    }
}
