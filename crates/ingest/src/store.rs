//! The queryable sample store: flushed batches with per-channel
//! retention and predicate scans.
//!
//! The store is the read side of the ingestion pipeline — what Table-4
//! style analytics and the chaos delivery audits query instead of
//! re-walking raw message logs. Batches arrive whole from the batch
//! builder and stay columnar; scans materialize [`Row`] views lazily
//! per query.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use pogo_sim::SimTime;

use crate::batch::Batch;
use crate::schema::{Retention, SampleValue, Template};

/// Predicate for a store scan. `exp` is required; everything else
/// narrows the result.
#[derive(Debug, Clone, Default)]
pub struct ScanQuery {
    /// Experiment to scan.
    pub exp: String,
    /// Restrict to one channel.
    pub channel: Option<String>,
    /// Restrict to samples from one device.
    pub device: Option<String>,
    /// Keep samples with `at >= since`.
    pub since: Option<SimTime>,
    /// Keep samples with `at < until` (half-open, like time ranges
    /// everywhere else in the sim).
    pub until: Option<SimTime>,
}

impl ScanQuery {
    /// A scan over every channel of `exp`.
    pub fn exp(exp: &str) -> Self {
        ScanQuery {
            exp: exp.to_owned(),
            ..ScanQuery::default()
        }
    }

    /// Restricts the scan to one channel.
    #[must_use]
    pub fn channel(mut self, channel: &str) -> Self {
        self.channel = Some(channel.to_owned());
        self
    }

    /// Restricts the scan to one device.
    #[must_use]
    pub fn device(mut self, device: &str) -> Self {
        self.device = Some(device.to_owned());
        self
    }

    /// Keeps samples at or after `t`.
    #[must_use]
    pub fn since(mut self, t: SimTime) -> Self {
        self.since = Some(t);
        self
    }

    /// Keeps samples strictly before `t`.
    #[must_use]
    pub fn until(mut self, t: SimTime) -> Self {
        self.until = Some(t);
        self
    }
}

/// One materialized sample, as returned by [`SampleStore::scan`].
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Experiment the sample belongs to.
    pub exp: String,
    /// Channel the sample arrived on.
    pub channel: String,
    /// Device that sent it.
    pub device: String,
    /// Collector-side ingestion time.
    pub at: SimTime,
    /// The typed value.
    pub value: SampleValue,
}

#[derive(Debug)]
struct ChannelStore {
    template: Template,
    retention: Retention,
    batches: Vec<Batch>,
    rows: u64,
    bytes: u64,
    /// Rows dropped by retention since registration.
    evicted: u64,
}

impl ChannelStore {
    fn apply_retention(&mut self, now: SimTime) {
        loop {
            let over = match self.retention {
                Retention::KeepAll => false,
                Retention::MaxRows(max) => {
                    // Evict whole oldest batches, but never the only
                    // remaining one (a batch larger than the cap stays
                    // until the next one lands).
                    self.rows as usize > max && self.batches.len() > 1
                }
                Retention::MaxAge(age) => self.batches.first().is_some_and(|b| {
                    b.at.last()
                        .is_some_and(|newest| now.saturating_duration_since(*newest) > age)
                }),
            };
            if !over {
                return;
            }
            let old = self.batches.remove(0);
            self.rows -= old.rows() as u64;
            self.bytes -= old.approx_bytes();
            self.evicted += old.rows() as u64;
        }
    }
}

#[derive(Debug, Default)]
struct StoreInner {
    channels: BTreeMap<(String, String), ChannelStore>,
}

/// The collector's queryable sample store. Cheap to clone; clones
/// share state.
#[derive(Debug, Clone, Default)]
pub struct SampleStore {
    inner: Rc<RefCell<StoreInner>>,
}

/// Aggregate counters for one registered channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelCounters {
    /// Rows currently resident.
    pub rows: u64,
    /// Approximate resident bytes.
    pub bytes: u64,
    /// Rows dropped by retention so far.
    pub evicted: u64,
}

impl SampleStore {
    /// An empty store.
    pub fn new() -> Self {
        SampleStore::default()
    }

    /// Declares a channel (idempotent for an identical declaration).
    /// Called by the pipeline when a schema is registered.
    pub(crate) fn declare(
        &self,
        exp: &str,
        channel: &str,
        template: Template,
        retention: Retention,
    ) {
        self.inner
            .borrow_mut()
            .channels
            .entry((exp.to_owned(), channel.to_owned()))
            .or_insert(ChannelStore {
                template,
                retention,
                batches: Vec::new(),
                rows: 0,
                bytes: 0,
                evicted: 0,
            });
    }

    /// Ingests one flushed batch, then applies the channel's retention
    /// with `now` as the age reference. Returns the batch's resident
    /// size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the batch's channel was never declared — the pipeline
    /// only flushes builders it registered.
    pub fn push_batch(&self, batch: Batch, now: SimTime) -> u64 {
        let mut inner = self.inner.borrow_mut();
        let ch = inner
            .channels
            .get_mut(&(batch.exp.clone(), batch.channel.clone()))
            .expect("batch for an undeclared channel");
        let bytes = batch.approx_bytes();
        ch.rows += batch.rows() as u64;
        ch.bytes += bytes;
        ch.batches.push(batch);
        ch.apply_retention(now);
        bytes
    }

    /// Scans resident samples matching `query`, in ingestion order
    /// (per channel; channels in lexicographic order).
    pub fn scan(&self, query: &ScanQuery) -> Vec<Row> {
        let inner = self.inner.borrow();
        let mut out = Vec::new();
        for ((exp, channel), ch) in &inner.channels {
            if *exp != query.exp {
                continue;
            }
            if let Some(want) = &query.channel {
                if channel != want {
                    continue;
                }
            }
            for batch in &ch.batches {
                for row in 0..batch.rows() {
                    let at = batch.at[row];
                    if query.since.is_some_and(|s| at < s) || query.until.is_some_and(|u| at >= u) {
                        continue;
                    }
                    let device = batch.device(row);
                    if query.device.as_deref().is_some_and(|d| d != device) {
                        continue;
                    }
                    out.push(Row {
                        exp: exp.clone(),
                        channel: channel.clone(),
                        device: device.to_owned(),
                        at,
                        value: batch.values.value(row),
                    });
                }
            }
        }
        out
    }

    /// The template a channel was declared with, if registered.
    pub fn template(&self, exp: &str, channel: &str) -> Option<Template> {
        self.inner
            .borrow()
            .channels
            .get(&(exp.to_owned(), channel.to_owned()))
            .map(|ch| ch.template)
    }

    /// Per-channel counters, if registered.
    pub fn channel_counters(&self, exp: &str, channel: &str) -> Option<ChannelCounters> {
        self.inner
            .borrow()
            .channels
            .get(&(exp.to_owned(), channel.to_owned()))
            .map(|ch| ChannelCounters {
                rows: ch.rows,
                bytes: ch.bytes,
                evicted: ch.evicted,
            })
    }

    /// Registered channels as `(exp, channel)` pairs, sorted.
    pub fn channels(&self) -> Vec<(String, String)> {
        self.inner.borrow().channels.keys().cloned().collect()
    }

    /// Total resident rows across all channels.
    pub fn rows(&self) -> u64 {
        self.inner.borrow().channels.values().map(|c| c.rows).sum()
    }

    /// Approximate total resident bytes across all channels.
    pub fn bytes(&self) -> u64 {
        self.inner.borrow().channels.values().map(|c| c.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{BatchBuilder, Watermarks};
    use pogo_sim::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn batch_of(exp: &str, channel: &str, samples: &[(&str, u64, i64)]) -> Batch {
        let mut b = BatchBuilder::new(exp, channel, Template::I64, Watermarks::default());
        for (dev, secs, n) in samples {
            b.append(dev, t(*secs), SampleValue::I64(*n)).unwrap();
        }
        b.flush().unwrap()
    }

    #[test]
    fn scan_filters_by_channel_device_and_time() {
        let store = SampleStore::new();
        store.declare("e", "a", Template::I64, Retention::KeepAll);
        store.declare("e", "b", Template::I64, Retention::KeepAll);
        store.push_batch(
            batch_of("e", "a", &[("d1", 1, 10), ("d2", 2, 20), ("d1", 3, 30)]),
            t(3),
        );
        store.push_batch(batch_of("e", "b", &[("d1", 2, 99)]), t(3));

        assert_eq!(store.scan(&ScanQuery::exp("e")).len(), 4);
        let a_d1 = store.scan(&ScanQuery::exp("e").channel("a").device("d1"));
        assert_eq!(a_d1.len(), 2);
        assert_eq!(a_d1[0].value, SampleValue::I64(10));
        assert_eq!(a_d1[1].value, SampleValue::I64(30));
        let windowed = store.scan(&ScanQuery::exp("e").since(t(2)).until(t(3)));
        assert_eq!(windowed.len(), 2, "t=2 rows on both channels");
        assert!(store.scan(&ScanQuery::exp("other")).is_empty());
    }

    #[test]
    fn max_rows_retention_evicts_oldest_batches() {
        let store = SampleStore::new();
        store.declare("e", "c", Template::I64, Retention::MaxRows(3));
        store.push_batch(batch_of("e", "c", &[("d", 1, 1), ("d", 2, 2)]), t(2));
        store.push_batch(batch_of("e", "c", &[("d", 3, 3), ("d", 4, 4)]), t(4));
        // 4 rows > 3: the oldest batch goes.
        let rows = store.scan(&ScanQuery::exp("e"));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].value, SampleValue::I64(3));
        let counters = store.channel_counters("e", "c").unwrap();
        assert_eq!(counters.rows, 2);
        assert_eq!(counters.evicted, 2);
    }

    #[test]
    fn max_age_retention_drops_stale_batches() {
        let store = SampleStore::new();
        store.declare(
            "e",
            "c",
            Template::I64,
            Retention::MaxAge(SimDuration::from_secs(10)),
        );
        store.push_batch(batch_of("e", "c", &[("d", 1, 1)]), t(1));
        store.push_batch(batch_of("e", "c", &[("d", 20, 2)]), t(20));
        let rows = store.scan(&ScanQuery::exp("e"));
        assert_eq!(rows.len(), 1, "the t=1 batch aged out at t=20");
        assert_eq!(rows[0].value, SampleValue::I64(2));
    }
}
