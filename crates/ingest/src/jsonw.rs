//! Allocation-free JSON writing primitives.
//!
//! These were born in `pogo-core`'s message codec, where serialization
//! cost is part of the system under reproduction (message sizes feed
//! the radio energy model and the Table 4 data-reduction figure). The
//! ingest exporters need exactly the same primitives — integers via a
//! stack buffer, strings via run-based escaping, byte-counting without
//! materializing output — so they live here and `pogo-core` delegates.

use std::fmt;

/// `fmt::Write` sink that only counts bytes — size accounting
/// serializes into this instead of materializing a `String`.
#[derive(Debug, Default)]
pub struct ByteCounter(pub u64);

impl fmt::Write for ByteCounter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0 += s.len() as u64;
        Ok(())
    }
}

/// Formats an integer into a stack buffer and writes it in one call,
/// bypassing the general `Display` machinery on the hottest number path
/// (timestamps, counters, sensor readings are all integral).
///
/// # Errors
///
/// Propagates the sink's write error.
pub fn write_int<W: fmt::Write>(value: i64, out: &mut W) -> fmt::Result {
    let mut buf = [0u8; 20]; // i64::MIN is 20 bytes with the sign
    let mut pos = buf.len();
    let negative = value < 0;
    // Work in negative space so i64::MIN doesn't overflow on negation.
    let mut rest = if negative { value } else { -value };
    loop {
        pos -= 1;
        buf[pos] = (b'0' as i64 - rest % 10) as u8;
        rest /= 10;
        if rest == 0 {
            break;
        }
    }
    if negative {
        pos -= 1;
        buf[pos] = b'-';
    }
    out.write_str(std::str::from_utf8(&buf[pos..]).expect("ASCII digits"))
}

/// Writes a JSON number: non-finite values become `null` (like
/// browsers), integral values take the stack-buffer fast path.
///
/// # Errors
///
/// Propagates the sink's write error.
pub fn write_num<W: fmt::Write>(n: f64, out: &mut W) -> fmt::Result {
    if !n.is_finite() {
        out.write_str("null")
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        write_int(n as i64, out)
    } else {
        // Writes digits straight into the sink — no intermediate
        // `format!` String.
        write!(out, "{n}")
    }
}

/// Writes a JSON string literal, quotes included.
///
/// # Errors
///
/// Propagates the sink's write error.
pub fn write_str<W: fmt::Write>(s: &str, out: &mut W) -> fmt::Result {
    out.write_char('"')?;
    // Fast path: runs of characters that need no escaping go out as one
    // `write_str` slice instead of char-by-char pushes.
    let mut plain_start = 0;
    for (i, c) in s.char_indices() {
        let escape: Option<&str> = match c {
            '"' => Some("\\\""),
            '\\' => Some("\\\\"),
            '\n' => Some("\\n"),
            '\t' => Some("\\t"),
            '\r' => Some("\\r"),
            c if (c as u32) < 0x20 => None, // \uXXXX, handled below
            _ => continue,
        };
        out.write_str(&s[plain_start..i])?;
        match escape {
            Some(esc) => out.write_str(esc)?,
            None => write!(out, "\\u{:04x}", c as u32)?,
        }
        plain_start = i + c.len_utf8();
    }
    out.write_str(&s[plain_start..])?;
    out.write_char('"')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_str(v: i64) -> String {
        let mut s = String::new();
        write_int(v, &mut s).unwrap();
        s
    }

    #[test]
    fn integer_edges() {
        assert_eq!(int_str(0), "0");
        assert_eq!(int_str(-1), "-1");
        assert_eq!(int_str(i64::MAX), i64::MAX.to_string());
        assert_eq!(int_str(i64::MIN), i64::MIN.to_string());
    }

    #[test]
    fn numbers_match_display_or_null() {
        let mut s = String::new();
        write_num(2.5, &mut s).unwrap();
        write_num(f64::NAN, &mut s).unwrap();
        write_num(42.0, &mut s).unwrap();
        assert_eq!(s, "2.5null42");
    }

    #[test]
    fn string_escaping_and_counting() {
        let mut s = String::new();
        write_str("a\"b\\c\nd\u{1}", &mut s).unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
        let mut counter = ByteCounter::default();
        write_str("a\"b\\c\nd\u{1}", &mut counter).unwrap();
        assert_eq!(counter.0, s.len() as u64);
    }
}
