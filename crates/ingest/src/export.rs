//! Multi-format exporters over store scans: CSV, JSONL, and SenML.
//!
//! All three reuse the allocation-free JSON writer ([`crate::jsonw`])
//! for numbers and string escaping, and all three are deterministic:
//! the same rows always serialize to the same bytes, which the chaos
//! determinism gate asserts across same-seed re-runs.

use crate::jsonw;
use crate::schema::SampleValue;
use crate::store::Row;

/// Writes the typed value as a JSON fragment (raw for `Json`, which is
/// already serialized).
fn write_value_json(value: &SampleValue, out: &mut String) {
    match value {
        SampleValue::I64(n) => {
            let _ = jsonw::write_int(*n, out);
        }
        SampleValue::F64(n) => {
            let _ = jsonw::write_num(*n, out);
        }
        SampleValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        SampleValue::Str(s) => {
            let _ = jsonw::write_str(s, out);
        }
        SampleValue::Json(raw) => out.push_str(raw),
    }
}

/// Quotes a CSV field when it contains a delimiter, quote, or newline.
fn write_csv_field(field: &str, out: &mut String) {
    if field.contains(['"', ',', '\n', '\r']) {
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Exports rows as CSV with an `exp,channel,device,t_ms,value` header.
/// Timestamps are integral sim milliseconds; values render as their
/// JSON fragment (then CSV-quoted if needed).
pub fn to_csv(rows: &[Row]) -> String {
    let mut out = String::from("exp,channel,device,t_ms,value\n");
    let mut value = String::new();
    for row in rows {
        write_csv_field(&row.exp, &mut out);
        out.push(',');
        write_csv_field(&row.channel, &mut out);
        out.push(',');
        write_csv_field(&row.device, &mut out);
        out.push(',');
        let _ = jsonw::write_int(row.at.as_millis() as i64, &mut out);
        out.push(',');
        value.clear();
        write_value_json(&row.value, &mut value);
        write_csv_field(&value, &mut out);
        out.push('\n');
    }
    out
}

/// Exports rows as JSONL: one `{"exp":…,"channel":…,"device":…,"t":…,
/// "v":…}` object per line, `t` in sim milliseconds.
pub fn to_jsonl(rows: &[Row]) -> String {
    let mut out = String::new();
    for row in rows {
        out.push_str("{\"exp\":");
        let _ = jsonw::write_str(&row.exp, &mut out);
        out.push_str(",\"channel\":");
        let _ = jsonw::write_str(&row.channel, &mut out);
        out.push_str(",\"device\":");
        let _ = jsonw::write_str(&row.device, &mut out);
        out.push_str(",\"t\":");
        let _ = jsonw::write_int(row.at.as_millis() as i64, &mut out);
        out.push_str(",\"v\":");
        write_value_json(&row.value, &mut out);
        out.push_str("}\n");
    }
    out
}

/// Exports rows as a SenML-style pack (RFC 8428 shape): the first
/// record carries the base name `exp/channel/` and base time (seconds),
/// each record names its device with a relative time. Numbers use `v`,
/// strings `vs`, booleans `vb`, and pre-serialized JSON trees ride in
/// `vd` (data) as a string.
pub fn to_senml(rows: &[Row]) -> String {
    let mut out = String::from("[");
    let base = rows
        .first()
        .map(|r| (r.exp.clone(), r.channel.clone(), r.at));
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        let (base_exp, base_channel, bt) = base.as_ref().expect("rows non-empty");
        if i == 0 {
            out.push_str("\"bn\":");
            let _ = jsonw::write_str(&format!("{base_exp}/{base_channel}/"), &mut out);
            out.push_str(",\"bt\":");
            let _ = jsonw::write_num(bt.as_secs_f64(), &mut out);
            out.push(',');
        }
        out.push_str("\"n\":");
        if row.exp == *base_exp && row.channel == *base_channel {
            let _ = jsonw::write_str(&row.device, &mut out);
        } else {
            // Outside the base name: spell the full name.
            let _ = jsonw::write_str(
                &format!("{}/{}/{}", row.exp, row.channel, row.device),
                &mut out,
            );
        }
        out.push_str(",\"t\":");
        let dt = row.at.as_secs_f64() - bt.as_secs_f64();
        let _ = jsonw::write_num(dt, &mut out);
        out.push(',');
        match &row.value {
            SampleValue::I64(n) => {
                out.push_str("\"v\":");
                let _ = jsonw::write_int(*n, &mut out);
            }
            SampleValue::F64(n) => {
                out.push_str("\"v\":");
                let _ = jsonw::write_num(*n, &mut out);
            }
            SampleValue::Bool(b) => {
                out.push_str("\"vb\":");
                out.push_str(if *b { "true" } else { "false" });
            }
            SampleValue::Str(s) => {
                out.push_str("\"vs\":");
                let _ = jsonw::write_str(s, &mut out);
            }
            SampleValue::Json(raw) => {
                out.push_str("\"vd\":");
                let _ = jsonw::write_str(raw, &mut out);
            }
        }
        out.push('}');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pogo_sim::{SimDuration, SimTime};

    fn row(channel: &str, device: &str, secs: u64, value: SampleValue) -> Row {
        Row {
            exp: "e".into(),
            channel: channel.into(),
            device: device.into(),
            at: SimTime::ZERO + SimDuration::from_secs(secs),
            value,
        }
    }

    fn sample_rows() -> Vec<Row> {
        vec![
            row("counts", "phone-1@pogo", 10, SampleValue::I64(42)),
            row("counts", "phone-2@pogo", 11, SampleValue::F64(2.5)),
            row("flags", "phone-1@pogo", 12, SampleValue::Bool(true)),
            row(
                "tags",
                "phone-1@pogo",
                13,
                SampleValue::Str("a,\"b\"".into()),
            ),
            row(
                "scans",
                "phone-2@pogo",
                14,
                SampleValue::Json("{\"aps\":[1,2]}".into()),
            ),
        ]
    }

    #[test]
    fn csv_golden() {
        assert_eq!(
            to_csv(&sample_rows()),
            "exp,channel,device,t_ms,value\n\
             e,counts,phone-1@pogo,10000,42\n\
             e,counts,phone-2@pogo,11000,2.5\n\
             e,flags,phone-1@pogo,12000,true\n\
             e,tags,phone-1@pogo,13000,\"\"\"a,\\\"\"b\\\"\"\"\"\"\n\
             e,scans,phone-2@pogo,14000,\"{\"\"aps\"\":[1,2]}\"\n"
        );
    }

    #[test]
    fn jsonl_golden() {
        assert_eq!(
            to_jsonl(&sample_rows()),
            "{\"exp\":\"e\",\"channel\":\"counts\",\"device\":\"phone-1@pogo\",\"t\":10000,\"v\":42}\n\
             {\"exp\":\"e\",\"channel\":\"counts\",\"device\":\"phone-2@pogo\",\"t\":11000,\"v\":2.5}\n\
             {\"exp\":\"e\",\"channel\":\"flags\",\"device\":\"phone-1@pogo\",\"t\":12000,\"v\":true}\n\
             {\"exp\":\"e\",\"channel\":\"tags\",\"device\":\"phone-1@pogo\",\"t\":13000,\"v\":\"a,\\\"b\\\"\"}\n\
             {\"exp\":\"e\",\"channel\":\"scans\",\"device\":\"phone-2@pogo\",\"t\":14000,\"v\":{\"aps\":[1,2]}}\n"
        );
    }

    #[test]
    fn senml_golden() {
        assert_eq!(
            to_senml(&sample_rows()),
            "[{\"bn\":\"e/counts/\",\"bt\":10,\"n\":\"phone-1@pogo\",\"t\":0,\"v\":42},\
             {\"n\":\"phone-2@pogo\",\"t\":1,\"v\":2.5},\
             {\"n\":\"e/flags/phone-1@pogo\",\"t\":2,\"vb\":true},\
             {\"n\":\"e/tags/phone-1@pogo\",\"t\":3,\"vs\":\"a,\\\"b\\\"\"},\
             {\"n\":\"e/scans/phone-2@pogo\",\"t\":4,\"vd\":\"{\\\"aps\\\":[1,2]}\"}]"
        );
        assert_eq!(to_senml(&[]), "[]");
    }

    #[test]
    fn empty_exports() {
        assert_eq!(to_csv(&[]), "exp,channel,device,t_ms,value\n");
        assert_eq!(to_jsonl(&[]), "");
    }
}
