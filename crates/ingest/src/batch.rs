//! Typed columnar batches and the watermark-driven batch builder.
//!
//! A [`Batch`] is the unit the store ingests: one (experiment, channel)
//! slice of samples laid out column-wise — a [`SimTime`] timestamp
//! column, a dictionary-encoded device column, and one typed value
//! column ([`Column`]). The [`BatchBuilder`] accumulates appends and
//! reports when a size watermark is crossed; the age watermark is a
//! sim-timer the pipeline arms when a builder goes non-empty.

use pogo_sim::{SimDuration, SimTime};

use crate::error::IngestError;
use crate::schema::{SampleValue, Template};

/// One typed value column. All variants hold exactly as many entries
/// as the batch has rows.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Integral numbers.
    I64(Vec<i64>),
    /// Floats.
    F64(Vec<f64>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Strings.
    Str(Vec<String>),
    /// Pre-serialized compact JSON trees.
    Json(Vec<String>),
}

impl Column {
    fn empty(template: Template) -> Column {
        match template {
            Template::I64 => Column::I64(Vec::new()),
            Template::F64 => Column::F64(Vec::new()),
            Template::Bool => Column::Bool(Vec::new()),
            Template::Str => Column::Str(Vec::new()),
            Template::Json => Column::Json(Vec::new()),
        }
    }

    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::I64(v) => v.len(),
            Column::F64(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Json(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `row`, materialized.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn value(&self, row: usize) -> SampleValue {
        match self {
            Column::I64(v) => SampleValue::I64(v[row]),
            Column::F64(v) => SampleValue::F64(v[row]),
            Column::Bool(v) => SampleValue::Bool(v[row]),
            Column::Str(v) => SampleValue::Str(v[row].clone()),
            Column::Json(v) => SampleValue::Json(v[row].clone()),
        }
    }

    fn push(&mut self, value: SampleValue) {
        match (self, value) {
            (Column::I64(v), SampleValue::I64(x)) => v.push(x),
            (Column::F64(v), SampleValue::F64(x)) => v.push(x),
            (Column::Bool(v), SampleValue::Bool(x)) => v.push(x),
            (Column::Str(v), SampleValue::Str(x)) => v.push(x),
            (Column::Json(v), SampleValue::Json(x)) => v.push(x),
            _ => unreachable!("append type-checks against the template first"),
        }
    }

    fn approx_bytes(&self) -> u64 {
        match self {
            Column::I64(v) => v.len() as u64 * 8,
            Column::F64(v) => v.len() as u64 * 8,
            Column::Bool(v) => v.len() as u64,
            Column::Str(v) | Column::Json(v) => v.iter().map(|s| s.len() as u64 + 24).sum(),
        }
    }
}

/// One flushed columnar batch for a single (experiment, channel).
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Experiment the samples belong to.
    pub exp: String,
    /// Channel the samples arrived on.
    pub channel: String,
    /// Device dictionary; `device_idx` indexes into it.
    pub devices: Vec<String>,
    /// Per-row index into `devices`.
    pub device_idx: Vec<u32>,
    /// Per-row ingestion timestamp (monotone within the batch).
    pub at: Vec<SimTime>,
    /// The typed value column.
    pub values: Column,
}

impl Batch {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.at.len()
    }

    /// The device name for `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn device(&self, row: usize) -> &str {
        &self.devices[self.device_idx[row] as usize]
    }

    /// Approximate resident size: columns plus the device dictionary.
    pub fn approx_bytes(&self) -> u64 {
        let dict: u64 = self.devices.iter().map(|d| d.len() as u64 + 24).sum();
        dict + self.device_idx.len() as u64 * 4
            + self.at.len() as u64 * 8
            + self.values.approx_bytes()
    }
}

/// Flush watermarks: a builder flushes when it holds `max_rows`
/// samples, or when its oldest pending sample is `max_age` old.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watermarks {
    /// Size watermark (rows per batch).
    pub max_rows: usize,
    /// Age watermark (oldest pending sample).
    pub max_age: SimDuration,
}

impl Default for Watermarks {
    fn default() -> Self {
        Watermarks {
            max_rows: 256,
            max_age: SimDuration::from_secs(60),
        }
    }
}

/// Accumulates samples for one (experiment, channel) into the next
/// [`Batch`].
#[derive(Debug)]
pub struct BatchBuilder {
    exp: String,
    channel: String,
    template: Template,
    watermarks: Watermarks,
    devices: Vec<String>,
    device_idx: Vec<u32>,
    at: Vec<SimTime>,
    values: Column,
}

impl BatchBuilder {
    /// A fresh builder for `exp`/`channel` with the given template.
    pub fn new(exp: &str, channel: &str, template: Template, watermarks: Watermarks) -> Self {
        BatchBuilder {
            exp: exp.to_owned(),
            channel: channel.to_owned(),
            template,
            watermarks,
            devices: Vec::new(),
            device_idx: Vec::new(),
            at: Vec::new(),
            values: Column::empty(template),
        }
    }

    /// Rows currently pending (not yet flushed).
    pub fn pending_rows(&self) -> usize {
        self.at.len()
    }

    /// Timestamp of the oldest pending sample, if any.
    pub fn oldest(&self) -> Option<SimTime> {
        self.at.first().copied()
    }

    /// The builder's age watermark.
    pub fn max_age(&self) -> SimDuration {
        self.watermarks.max_age
    }

    /// Appends one sample. Returns `true` when the size watermark is
    /// reached and the caller should [`BatchBuilder::flush`].
    ///
    /// # Errors
    ///
    /// [`IngestError::SchemaMismatch`] when the value does not belong
    /// in this builder's typed column; the builder is unchanged.
    pub fn append(
        &mut self,
        device: &str,
        at: SimTime,
        value: SampleValue,
    ) -> Result<bool, IngestError> {
        if !value.matches(self.template) {
            return Err(IngestError::SchemaMismatch {
                exp: self.exp.clone(),
                channel: self.channel.clone(),
                device: device.to_owned(),
                expected: self.template,
                got: value.type_name().to_owned(),
            });
        }
        let idx = match self.devices.iter().position(|d| d == device) {
            Some(i) => i as u32,
            None => {
                self.devices.push(device.to_owned());
                (self.devices.len() - 1) as u32
            }
        };
        self.device_idx.push(idx);
        self.at.push(at);
        self.values.push(value);
        Ok(self.at.len() >= self.watermarks.max_rows)
    }

    /// Drains the pending rows into a [`Batch`]; `None` when empty.
    pub fn flush(&mut self) -> Option<Batch> {
        if self.at.is_empty() {
            return None;
        }
        let batch = Batch {
            exp: self.exp.clone(),
            channel: self.channel.clone(),
            devices: std::mem::take(&mut self.devices),
            device_idx: std::mem::take(&mut self.device_idx),
            at: std::mem::take(&mut self.at),
            values: Column::empty(self.template),
        };
        let values = std::mem::replace(&mut self.values, Column::empty(self.template));
        Some(Batch { values, ..batch })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn size_watermark_reports_full() {
        let mut b = BatchBuilder::new(
            "e",
            "c",
            Template::I64,
            Watermarks {
                max_rows: 3,
                max_age: SimDuration::from_secs(60),
            },
        );
        assert!(!b.append("d1", t(1), SampleValue::I64(1)).unwrap());
        assert!(!b.append("d2", t(2), SampleValue::I64(2)).unwrap());
        assert!(b.append("d1", t(3), SampleValue::I64(3)).unwrap());
        let batch = b.flush().expect("non-empty");
        assert_eq!(batch.rows(), 3);
        assert_eq!(batch.devices, vec!["d1", "d2"]);
        assert_eq!(batch.device(2), "d1");
        assert_eq!(batch.values, Column::I64(vec![1, 2, 3]));
        assert_eq!(b.pending_rows(), 0);
        assert!(b.flush().is_none(), "flush drained the builder");
    }

    #[test]
    fn mismatch_rejects_without_mutating() {
        let mut b = BatchBuilder::new("e", "c", Template::I64, Watermarks::default());
        let err = b
            .append("d", t(1), SampleValue::Str("no".into()))
            .unwrap_err();
        assert_eq!(err.code(), "INGEST_SCHEMA_MISMATCH");
        assert_eq!(b.pending_rows(), 0);
    }

    #[test]
    fn batch_bytes_account_for_strings() {
        let mut b = BatchBuilder::new("e", "c", Template::Str, Watermarks::default());
        b.append("d", t(1), SampleValue::Str("hello".into()))
            .unwrap();
        let batch = b.flush().unwrap();
        assert!(batch.approx_bytes() > "hello".len() as u64);
    }
}
