//! The ingestion pipeline: registered channels, per-channel batch
//! builders, watermark-driven flushes into the [`SampleStore`].
//!
//! The pipeline is the write side of the collector's registry API. The
//! collector extracts a [`SampleValue`] from each inbound data message
//! (per the channel's [`ChannelSchema`]) and appends it here; the
//! pipeline accumulates columnar batches and flushes them when the
//! size watermark is hit or the age watermark expires (a one-shot sim
//! timer armed when a builder goes non-empty — deterministic, like
//! every other timer in the simulation).
//!
//! Observability (when enabled): `ingest.batch.flushes`,
//! `ingest.batch.rows`, `ingest.batch.bytes` per flush,
//! `ingest.schema_mismatch` per rejected sample, and
//! `ingest.store.rows` / `ingest.store.bytes` gauges.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use pogo_obs::Obs;
use pogo_sim::Sim;

use crate::batch::{BatchBuilder, Watermarks};
use crate::error::IngestError;
use crate::schema::{ChannelSchema, SampleValue};
use crate::store::SampleStore;

struct ChannelState {
    schema: ChannelSchema,
    builder: BatchBuilder,
    /// An age-watermark flush timer is pending for this channel.
    flush_armed: bool,
}

struct PipelineInner {
    sim: Sim,
    obs: Obs,
    watermarks: Watermarks,
    channels: BTreeMap<(String, String), ChannelState>,
    store: SampleStore,
    ingested_rows: u64,
    schema_mismatches: u64,
    batches_flushed: u64,
}

/// Write-side counters, surfaced through `CollectorStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestStats {
    /// Samples accepted into a batch builder.
    pub ingested_rows: u64,
    /// Samples rejected with `INGEST_SCHEMA_MISMATCH`.
    pub schema_mismatches: u64,
    /// Batches flushed into the store.
    pub batches_flushed: u64,
    /// Rows sitting in builders, below the flush watermarks.
    pub pending_rows: u64,
    /// Rows resident in the store.
    pub store_rows: u64,
    /// Approximate bytes resident in the store.
    pub store_bytes: u64,
}

/// The collector's ingestion pipeline. Cheap to clone; clones share
/// state.
#[derive(Clone)]
pub struct IngestPipeline {
    inner: Rc<RefCell<PipelineInner>>,
}

impl IngestPipeline {
    /// A pipeline with the default watermarks.
    pub fn new(sim: &Sim, obs: &Obs) -> Self {
        Self::with_watermarks(sim, obs, Watermarks::default())
    }

    /// A pipeline with explicit flush watermarks.
    pub fn with_watermarks(sim: &Sim, obs: &Obs, watermarks: Watermarks) -> Self {
        IngestPipeline {
            inner: Rc::new(RefCell::new(PipelineInner {
                sim: sim.clone(),
                obs: obs.clone(),
                watermarks,
                channels: BTreeMap::new(),
                store: SampleStore::new(),
                ingested_rows: 0,
                schema_mismatches: 0,
                batches_flushed: 0,
            })),
        }
    }

    /// Registers a channel. Re-registering with an identical schema is
    /// a no-op returning `false`; `true` means newly registered.
    ///
    /// # Errors
    ///
    /// [`IngestError::ChannelConflict`] when the channel is already
    /// registered with a different schema.
    pub fn register(
        &self,
        exp: &str,
        channel: &str,
        schema: ChannelSchema,
    ) -> Result<bool, IngestError> {
        let mut inner = self.inner.borrow_mut();
        let key = (exp.to_owned(), channel.to_owned());
        if let Some(existing) = inner.channels.get(&key) {
            if existing.schema == schema {
                return Ok(false);
            }
            return Err(IngestError::ChannelConflict {
                exp: exp.to_owned(),
                channel: channel.to_owned(),
            });
        }
        inner
            .store
            .declare(exp, channel, schema.template, schema.retention);
        let builder = BatchBuilder::new(exp, channel, schema.template, inner.watermarks);
        inner.channels.insert(
            key,
            ChannelState {
                schema,
                builder,
                flush_armed: false,
            },
        );
        Ok(true)
    }

    /// The schema a channel was registered with.
    pub fn schema(&self, exp: &str, channel: &str) -> Option<ChannelSchema> {
        self.inner
            .borrow()
            .channels
            .get(&(exp.to_owned(), channel.to_owned()))
            .map(|c| c.schema.clone())
    }

    /// Appends one extracted sample at the current sim time, flushing
    /// if a watermark is crossed.
    ///
    /// # Errors
    ///
    /// [`IngestError::UnknownChannel`] for unregistered channels;
    /// [`IngestError::SchemaMismatch`] (counted, and metered as
    /// `ingest.schema_mismatch`) when the value does not fit the
    /// channel's template — the sample is rejected, never coerced.
    pub fn append(
        &self,
        exp: &str,
        channel: &str,
        device: &str,
        value: SampleValue,
    ) -> Result<(), IngestError> {
        let arm = {
            let mut inner = self.inner.borrow_mut();
            let now = inner.sim.now();
            let key = (exp.to_owned(), channel.to_owned());
            let Some(state) = inner.channels.get_mut(&key) else {
                return Err(IngestError::UnknownChannel {
                    exp: exp.to_owned(),
                    channel: channel.to_owned(),
                });
            };
            let full = match state.builder.append(device, now, value) {
                Ok(full) => full,
                Err(e) => {
                    inner.schema_mismatches += 1;
                    if inner.obs.is_enabled() {
                        inner.obs.metrics().inc("ingest.schema_mismatch", 1);
                    }
                    return Err(e);
                }
            };
            inner.ingested_rows += 1;
            if full {
                Self::flush_locked(&mut inner, exp, channel);
                false
            } else {
                let state = inner.channels.get_mut(&key).expect("still registered");
                !state.flush_armed && state.builder.pending_rows() > 0
            }
        };
        if arm {
            self.arm_age_flush(exp, channel);
        }
        Ok(())
    }

    /// Records a sample the caller could not even extract per the
    /// channel's schema (e.g. an object missing the declared value
    /// field). Counts like [`IngestPipeline::append`]'s mismatch path
    /// and returns the error to surface — `got` is a short description
    /// of what actually arrived.
    pub fn reject_mismatch(
        &self,
        exp: &str,
        channel: &str,
        device: &str,
        got: &str,
    ) -> IngestError {
        let mut inner = self.inner.borrow_mut();
        let key = (exp.to_owned(), channel.to_owned());
        let Some(state) = inner.channels.get(&key) else {
            return IngestError::UnknownChannel {
                exp: exp.to_owned(),
                channel: channel.to_owned(),
            };
        };
        let expected = state.schema.template;
        inner.schema_mismatches += 1;
        if inner.obs.is_enabled() {
            inner.obs.metrics().inc("ingest.schema_mismatch", 1);
        }
        IngestError::SchemaMismatch {
            exp: exp.to_owned(),
            channel: channel.to_owned(),
            device: device.to_owned(),
            expected,
            got: got.to_owned(),
        }
    }

    /// Schedules the age-watermark flush for a channel whose builder
    /// just went non-empty.
    fn arm_age_flush(&self, exp: &str, channel: &str) {
        let (sim, delay) = {
            let mut inner = self.inner.borrow_mut();
            let key = (exp.to_owned(), channel.to_owned());
            let Some(state) = inner.channels.get_mut(&key) else {
                return;
            };
            if state.flush_armed {
                return;
            }
            let Some(oldest) = state.builder.oldest() else {
                return;
            };
            state.flush_armed = true;
            let deadline = oldest + state.builder.max_age();
            let now = inner.sim.now();
            (inner.sim.clone(), deadline.saturating_duration_since(now))
        };
        let me = self.clone();
        let (exp, channel) = (exp.to_owned(), channel.to_owned());
        sim.schedule_in(delay, move || me.age_flush_due(&exp, &channel));
    }

    /// The age-watermark timer fired: flush if the oldest pending
    /// sample really is due (a size flush may have raced it), else
    /// re-arm for the remaining age.
    fn age_flush_due(&self, exp: &str, channel: &str) {
        let rearm = {
            let mut inner = self.inner.borrow_mut();
            let key = (exp.to_owned(), channel.to_owned());
            let Some(state) = inner.channels.get_mut(&key) else {
                return;
            };
            state.flush_armed = false;
            match state.builder.oldest() {
                None => false,
                Some(oldest) => {
                    let due = oldest + state.builder.max_age();
                    if inner.sim.now() >= due {
                        Self::flush_locked(&mut inner, exp, channel);
                        false
                    } else {
                        true
                    }
                }
            }
        };
        if rearm {
            self.arm_age_flush(exp, channel);
        }
    }

    /// Flushes one channel's pending rows (no-op when empty).
    pub fn flush_channel(&self, exp: &str, channel: &str) {
        let mut inner = self.inner.borrow_mut();
        Self::flush_locked(&mut inner, exp, channel);
    }

    /// Flushes every channel's pending rows — the read barrier before
    /// scanning or exporting.
    pub fn flush_all(&self) {
        let keys: Vec<(String, String)> = self.inner.borrow().channels.keys().cloned().collect();
        let mut inner = self.inner.borrow_mut();
        for (exp, channel) in keys {
            Self::flush_locked(&mut inner, &exp, &channel);
        }
    }

    fn flush_locked(inner: &mut PipelineInner, exp: &str, channel: &str) {
        let key = (exp.to_owned(), channel.to_owned());
        let Some(state) = inner.channels.get_mut(&key) else {
            return;
        };
        let Some(batch) = state.builder.flush() else {
            return;
        };
        let rows = batch.rows() as u64;
        let now = inner.sim.now();
        let bytes = inner.store.push_batch(batch, now);
        inner.batches_flushed += 1;
        if inner.obs.is_enabled() {
            let m = inner.obs.metrics();
            m.inc("ingest.batch.flushes", 1);
            m.inc("ingest.batch.bytes", bytes);
            m.observe("ingest.batch.rows", rows as f64);
            m.gauge("ingest.store.rows", inner.store.rows() as f64);
            m.gauge("ingest.store.bytes", inner.store.bytes() as f64);
        }
    }

    /// The queryable store this pipeline flushes into.
    pub fn store(&self) -> SampleStore {
        self.inner.borrow().store.clone()
    }

    /// Write-side counters.
    pub fn stats(&self) -> IngestStats {
        let inner = self.inner.borrow();
        IngestStats {
            ingested_rows: inner.ingested_rows,
            schema_mismatches: inner.schema_mismatches,
            batches_flushed: inner.batches_flushed,
            pending_rows: inner
                .channels
                .values()
                .map(|c| c.builder.pending_rows() as u64)
                .sum(),
            store_rows: inner.store.rows(),
            store_bytes: inner.store.bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Template;
    use crate::store::ScanQuery;
    use pogo_sim::SimDuration;

    #[test]
    fn register_conflicts_and_idempotence() {
        let sim = Sim::new();
        let p = IngestPipeline::new(&sim, &Obs::off());
        assert!(p
            .register("e", "c", ChannelSchema::new(Template::I64))
            .unwrap());
        assert!(!p
            .register("e", "c", ChannelSchema::new(Template::I64))
            .unwrap());
        let err = p
            .register("e", "c", ChannelSchema::new(Template::F64))
            .unwrap_err();
        assert_eq!(err.code(), "INGEST_CHANNEL_CONFLICT");
    }

    #[test]
    fn size_watermark_flushes_into_the_store() {
        let sim = Sim::new();
        let p = IngestPipeline::with_watermarks(
            &sim,
            &Obs::off(),
            Watermarks {
                max_rows: 2,
                max_age: SimDuration::from_secs(600),
            },
        );
        p.register("e", "c", ChannelSchema::new(Template::I64))
            .unwrap();
        p.append("e", "c", "d", SampleValue::I64(1)).unwrap();
        assert_eq!(p.stats().pending_rows, 1);
        p.append("e", "c", "d", SampleValue::I64(2)).unwrap();
        let stats = p.stats();
        assert_eq!(stats.pending_rows, 0);
        assert_eq!(stats.batches_flushed, 1);
        assert_eq!(stats.store_rows, 2);
    }

    #[test]
    fn age_watermark_flushes_on_the_sim_clock() {
        let sim = Sim::new();
        let p = IngestPipeline::with_watermarks(
            &sim,
            &Obs::off(),
            Watermarks {
                max_rows: 1000,
                max_age: SimDuration::from_secs(30),
            },
        );
        p.register("e", "c", ChannelSchema::new(Template::I64))
            .unwrap();
        p.append("e", "c", "d", SampleValue::I64(7)).unwrap();
        sim.run_for(SimDuration::from_secs(29));
        assert_eq!(p.stats().batches_flushed, 0, "age watermark not reached");
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(p.stats().batches_flushed, 1, "age watermark flushed");
        assert_eq!(p.store().scan(&ScanQuery::exp("e")).len(), 1);
    }

    #[test]
    fn unknown_channel_and_mismatch_are_stable_codes() {
        let sim = Sim::new();
        let p = IngestPipeline::new(&sim, &Obs::off());
        let err = p.append("e", "c", "d", SampleValue::I64(1)).unwrap_err();
        assert_eq!(err.code(), "INGEST_UNKNOWN_CHANNEL");
        p.register("e", "c", ChannelSchema::new(Template::I64))
            .unwrap();
        let err = p
            .append("e", "c", "d", SampleValue::Str("x".into()))
            .unwrap_err();
        assert_eq!(err.code(), "INGEST_SCHEMA_MISMATCH");
        assert_eq!(p.stats().schema_mismatches, 1);
        assert_eq!(p.stats().ingested_rows, 0);
    }
}
