//! Ingest-layer errors with stable `INGEST_*` codes.
//!
//! The codes follow the same contract as the umbrella crate's
//! `pogo::ErrorCode`: the string form is machine-readable, asserted on
//! by chaos/CI, and never renamed — only added. The umbrella crate
//! lifts [`IngestError`] into `pogo::Error::Ingest`.

use std::fmt;

use crate::schema::Template;

/// An error raised by the ingestion pipeline or sample store.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// A sample did not match its channel's declared type template
    /// (e.g. a string arriving on a numerical channel). The sample is
    /// rejected, never silently coerced.
    SchemaMismatch {
        /// Experiment the channel belongs to.
        exp: String,
        /// Channel the sample arrived on.
        channel: String,
        /// Device that sent the sample (empty when not applicable).
        device: String,
        /// The template the channel was registered with.
        expected: Template,
        /// Short description of what actually arrived.
        got: String,
    },
    /// A channel was registered twice with incompatible schemas.
    ChannelConflict {
        /// Experiment the channel belongs to.
        exp: String,
        /// The conflicting channel.
        channel: String,
    },
    /// An operation referenced a channel nobody registered.
    UnknownChannel {
        /// Experiment the channel belongs to.
        exp: String,
        /// The unknown channel.
        channel: String,
    },
}

impl IngestError {
    /// The stable string code for this error (`INGEST_*`).
    pub fn code(&self) -> &'static str {
        match self {
            IngestError::SchemaMismatch { .. } => "INGEST_SCHEMA_MISMATCH",
            IngestError::ChannelConflict { .. } => "INGEST_CHANNEL_CONFLICT",
            IngestError::UnknownChannel { .. } => "INGEST_UNKNOWN_CHANNEL",
        }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::SchemaMismatch {
                exp,
                channel,
                device,
                expected,
                got,
            } => {
                write!(
                    f,
                    "sample on {exp}/{channel} from {device:?} does not match \
                     template {expected:?}: got {got}"
                )
            }
            IngestError::ChannelConflict { exp, channel } => {
                write!(
                    f,
                    "channel {exp}/{channel} already registered with a different schema"
                )
            }
            IngestError::UnknownChannel { exp, channel } => {
                write!(f, "channel {exp}/{channel} is not registered")
            }
        }
    }
}

impl std::error::Error for IngestError {}
