//! # pogo-ingest — the collector's ingestion pipeline
//!
//! Per-(experiment, channel, device) sample streams are accumulated by
//! a [`BatchBuilder`] into typed columnar batches (i64/f64/bool/str/
//! json value columns plus a [`pogo_sim::SimTime`] timestamp column),
//! flushed by size/age watermarks ([`Watermarks`]) into a queryable
//! [`SampleStore`] with per-channel [`Retention`] and time-range /
//! device / channel predicate scans ([`ScanQuery`]), and exported via
//! CSV, JSONL, and SenML-style writers ([`export`]) that reuse the
//! allocation-free JSON writer ([`jsonw`]).
//!
//! This crate sits *below* `pogo-core`: it knows nothing about the
//! message model or the network. The collector extracts a
//! [`SampleValue`] from each inbound message per the channel's
//! declared [`ChannelSchema`] and appends it to the [`IngestPipeline`];
//! everything downstream of that point — batching, retention, scans,
//! export — lives here.

#![warn(missing_docs)]

pub mod batch;
pub mod error;
pub mod export;
pub mod jsonw;
pub mod pipeline;
pub mod schema;
pub mod store;

pub use batch::{Batch, BatchBuilder, Column, Watermarks};
pub use error::IngestError;
pub use pipeline::{IngestPipeline, IngestStats};
pub use schema::{ChannelSchema, Retention, SampleValue, Template};
pub use store::{ChannelCounters, Row, SampleStore, ScanQuery};
