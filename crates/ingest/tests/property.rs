//! Property suite over the ingestion pipeline: for 1,600 seeds, a
//! randomized stream of appends/flushes/time-advances must leave the
//! store exactly equal to a flat log-replay oracle under every scan
//! predicate, and the same seed must export byte-identical CSV, JSONL,
//! and SenML.
//!
//! The oracle is deliberately dumb: a `Vec` of `(channel, device, at,
//! value)` in append order. Scans replay the log with the query's
//! filters; `KeepAll` channels must match exactly, `MaxRows` channels
//! must be a suffix of the log with `rows + evicted` accounting for
//! every append.

use pogo_ingest::{
    export, ChannelSchema, IngestPipeline, Retention, SampleValue, ScanQuery, Template, Watermarks,
};
use pogo_obs::Obs;
use pogo_sim::{Sim, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const EXP: &str = "prop";
const DEVICES: [&str; 3] = ["d0@pogo", "d1@pogo", "d2@pogo"];
const TEMPLATES: [Template; 5] = [
    Template::I64,
    Template::F64,
    Template::Bool,
    Template::Str,
    Template::Json,
];

/// One oracle entry: a sample the pipeline accepted.
#[derive(Debug, Clone, PartialEq)]
struct LogEntry {
    channel: String,
    device: String,
    at: SimTime,
    value: SampleValue,
}

struct Channel {
    name: String,
    template: Template,
    max_rows_cap: Option<usize>,
}

fn value_for(template: Template, rng: &mut SmallRng) -> SampleValue {
    match template {
        Template::I64 => SampleValue::I64(rng.gen_range(0u64..2000) as i64 - 1000),
        Template::F64 => SampleValue::F64((rng.gen_range(0u64..20) as f64 - 10.0) * 0.5),
        Template::Bool => SampleValue::Bool(rng.gen_range(0u64..2) == 0),
        Template::Str => SampleValue::Str(format!("s{},\"q\"", rng.gen_range(0u64..100))),
        Template::Json => SampleValue::Json(format!("{{\"k\":{}}}", rng.gen_range(0u64..100))),
    }
}

/// A value that never matches `template` (exercises the rejection path).
fn mismatched_for(template: Template) -> SampleValue {
    match template {
        Template::Str => SampleValue::I64(7),
        _ => SampleValue::Str("wrong".into()),
    }
}

struct RunResult {
    log: Vec<LogEntry>,
    channels: Vec<Channel>,
    mismatches: u64,
    end: SimTime,
    pipeline: IngestPipeline,
}

/// Drives one randomized stream through a fresh pipeline.
fn run_stream(seed: u64) -> RunResult {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xA5A5_5A5A_1234_5678);
    let sim = Sim::new();
    let pipeline = IngestPipeline::with_watermarks(
        &sim,
        &Obs::off(),
        Watermarks {
            max_rows: rng.gen_range(1usize..8),
            max_age: SimDuration::from_secs(rng.gen_range(5u64..120)),
        },
    );

    let n_channels = rng.gen_range(1usize..4);
    let mut channels = Vec::new();
    for i in 0..n_channels {
        let template = TEMPLATES[rng.gen_range(0..TEMPLATES.len())];
        // Roughly one channel in four runs a MaxRows retention cap.
        let max_rows_cap = if rng.gen_range(0u64..4) == 0 {
            Some(rng.gen_range(2usize..10))
        } else {
            None
        };
        let retention = match max_rows_cap {
            Some(cap) => Retention::MaxRows(cap),
            None => Retention::KeepAll,
        };
        let name = format!("ch{i}");
        pipeline
            .register(
                EXP,
                &name,
                ChannelSchema::new(template).retention(retention),
            )
            .expect("fresh channel registers");
        channels.push(Channel {
            name,
            template,
            max_rows_cap,
        });
    }

    let mut log = Vec::new();
    let mut mismatches = 0u64;
    for _ in 0..rng.gen_range(30usize..90) {
        sim.run_for(SimDuration::from_secs(rng.gen_range(0u64..30)));
        let ch = &channels[rng.gen_range(0..channels.len())];
        match rng.gen_range(0u64..10) {
            0 => pipeline.flush_channel(EXP, &ch.name),
            1 => pipeline.flush_all(),
            2 => {
                pipeline
                    .append(EXP, &ch.name, DEVICES[0], mismatched_for(ch.template))
                    .expect_err("mismatched value is rejected");
                mismatches += 1;
            }
            _ => {
                let device = DEVICES[rng.gen_range(0..DEVICES.len())];
                let value = value_for(ch.template, &mut rng);
                pipeline
                    .append(EXP, &ch.name, device, value.clone())
                    .expect("valid value ingests");
                log.push(LogEntry {
                    channel: ch.name.clone(),
                    device: device.to_owned(),
                    at: sim.now(),
                    value,
                });
            }
        }
    }
    pipeline.flush_all();
    RunResult {
        log,
        channels,
        mismatches,
        end: sim.now(),
        pipeline,
    }
}

/// Replays the oracle log under a scan predicate, in the store's output
/// order (channels lexicographic, append order within a channel).
fn replay(log: &[LogEntry], channels: &[Channel], q: &ScanQuery) -> Vec<LogEntry> {
    let mut names: Vec<&str> = channels.iter().map(|c| c.name.as_str()).collect();
    names.sort_unstable();
    let mut out = Vec::new();
    for name in names {
        if q.channel.as_deref().is_some_and(|want| want != name) {
            continue;
        }
        out.extend(
            log.iter()
                .filter(|e| e.channel == name)
                .filter(|e| q.device.as_deref().is_none_or(|d| d == e.device))
                .filter(|e| q.since.is_none_or(|s| e.at >= s))
                .filter(|e| q.until.is_none_or(|u| e.at < u))
                .cloned(),
        );
    }
    out
}

fn queries(end: SimTime, channels: &[Channel], rng: &mut SmallRng) -> Vec<ScanQuery> {
    let mut out = vec![ScanQuery::exp(EXP)];
    for _ in 0..4 {
        let mut q = ScanQuery::exp(EXP);
        if rng.gen_range(0u64..2) == 0 {
            q = q.channel(&channels[rng.gen_range(0..channels.len())].name);
        }
        if rng.gen_range(0u64..2) == 0 {
            q = q.device(DEVICES[rng.gen_range(0..DEVICES.len())]);
        }
        if rng.gen_range(0u64..2) == 0 {
            let end_ms = end.as_millis();
            let a = SimTime::from_millis(rng.gen_range(0..=end_ms));
            let b = SimTime::from_millis(rng.gen_range(0..=end_ms));
            q = q.since(a.min(b)).until(a.max(b));
        }
        out.push(q);
    }
    out
}

#[test]
fn store_scans_equal_the_log_replay_oracle() {
    const SEEDS: u64 = 1600;
    let mut compared = 0usize;
    for seed in 0..SEEDS {
        let run = run_stream(seed);
        let store = run.pipeline.store();
        let stats = run.pipeline.stats();
        assert_eq!(
            stats.schema_mismatches, run.mismatches,
            "seed {seed}: every rejected append is counted"
        );
        assert_eq!(stats.pending_rows, 0, "seed {seed}: flush_all drained");

        // Channels with a retention cap: the resident rows must be a
        // suffix of the oracle log, and eviction accounts for the rest.
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x0DDC_0FFE_E0DD_F00D);
        for ch in &run.channels {
            let rows = store.scan(&ScanQuery::exp(EXP).channel(&ch.name));
            let oracle = replay(
                &run.log,
                &run.channels,
                &ScanQuery::exp(EXP).channel(&ch.name),
            );
            let counters = store
                .channel_counters(EXP, &ch.name)
                .expect("registered channel has counters");
            assert_eq!(
                counters.rows + counters.evicted,
                oracle.len() as u64,
                "seed {seed} {}: every accepted sample is resident or evicted",
                ch.name
            );
            let tail = &oracle[oracle.len() - rows.len()..];
            for (row, entry) in rows.iter().zip(tail) {
                assert_eq!(row.exp, EXP);
                assert_eq!(row.channel, entry.channel, "seed {seed}");
                assert_eq!(row.device, entry.device, "seed {seed}");
                assert_eq!(row.at, entry.at, "seed {seed}");
                assert_eq!(row.value, entry.value, "seed {seed}");
            }
            if ch.max_rows_cap.is_none() {
                assert_eq!(
                    rows.len(),
                    oracle.len(),
                    "seed {seed} {}: KeepAll retains everything",
                    ch.name
                );
            }
        }

        // KeepAll-only runs: arbitrary predicates match the replay
        // exactly (retention-capped channels are covered above).
        if run.channels.iter().all(|c| c.max_rows_cap.is_none()) {
            for q in queries(run.end, &run.channels, &mut rng) {
                let rows = store.scan(&q);
                let oracle = replay(&run.log, &run.channels, &q);
                assert_eq!(rows.len(), oracle.len(), "seed {seed} query {q:?}");
                for (row, entry) in rows.iter().zip(&oracle) {
                    assert!(
                        row.channel == entry.channel
                            && row.device == entry.device
                            && row.at == entry.at
                            && row.value == entry.value,
                        "seed {seed} query {q:?}: {row:?} != {entry:?}"
                    );
                }
                compared += 1;
            }
        }
    }
    assert!(
        compared > 2000,
        "suspiciously few predicate comparisons: {compared}"
    );
}

#[test]
fn same_seed_exports_are_byte_identical() {
    for seed in [3u64, 17, 99, 1234] {
        let export_of = || {
            let run = run_stream(seed);
            let rows = run.pipeline.store().scan(&ScanQuery::exp(EXP));
            (
                export::to_csv(&rows),
                export::to_jsonl(&rows),
                export::to_senml(&rows),
            )
        };
        let (csv_a, jsonl_a, senml_a) = export_of();
        let (csv_b, jsonl_b, senml_b) = export_of();
        assert!(!csv_a.is_empty());
        assert_eq!(csv_a, csv_b, "seed {seed}: CSV diverged");
        assert_eq!(jsonl_a, jsonl_b, "seed {seed}: JSONL diverged");
        assert_eq!(senml_a, senml_b, "seed {seed}: SenML diverged");
    }
}
