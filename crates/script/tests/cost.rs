//! Cost-bound soundness: the static analyzer's budget bounds must
//! bracket what the watchdog actually bills at runtime.
//!
//! The contract under test, per entry point:
//!
//! - `budget_min()` ≤ dynamic charge: the deploy gate rejects a script
//!   only when even the *cheapest* execution exceeds the budget, so an
//!   inflated `min` would block deployable scripts.
//! - dynamic charge ≤ `budget_max()` (when finite): a finite `max`
//!   below the real charge would let the gate wave through scripts the
//!   watchdog then kills in the field.
//!
//! The dynamic charge is measured the same way the host measures it:
//! arm the instruction budget, run, subtract `steps_remaining`. Both
//! engines bill the same counter (VM per instruction, tree-walk per
//! AST node, both plus bytes for string building), but the *static*
//! model is built from bytecode, so the bytecode engine must satisfy
//! the bounds exactly while the tree-walk engine — whose node count
//! differs from the instruction count by a bounded shape factor — is
//! held to the same max with that factor applied.

mod common;

use std::rc::Rc;

use common::paper_scripts;
use pogo_script::absint::{analyze_costs, EntryKind, Max, KNOWN_NATIVES};
use pogo_script::value::{NativeFn, ObjMap};
use pogo_script::{compile_with, CompileOptions, Engine, Interpreter, Value};

/// Watchdog arming value for the measurements; large enough that no
/// test program exhausts it, so `BUDGET - steps_remaining` is exact.
const BUDGET: u64 = 10_000_000;

/// An interpreter with every host native the paper scripts touch
/// stubbed out. `String`/`Number` keep real conversion semantics (a
/// null-returning stub would change downstream arithmetic); the
/// middleware verbs are inert.
fn sensing_interp(engine: Engine) -> Interpreter {
    let mut interp = Interpreter::with_engine(engine);
    for &name in KNOWN_NATIVES {
        match name {
            // The real host returns a subscription handle with
            // `release()`/`renew()`; the paper scripts call both.
            "subscribe" => interp.register_native("subscribe", |_, _| {
                let mut obj = ObjMap::new();
                for verb in ["release", "renew"] {
                    obj.insert(
                        verb,
                        Value::Native(Rc::new(NativeFn {
                            name: verb.to_owned(),
                            func: Box::new(|_, _| Ok(Value::Null)),
                        })),
                    );
                }
                Ok(Value::object(obj))
            }),
            "String" => interp.register_native("String", |_, args| {
                Ok(Value::str(
                    args.first()
                        .map(Value::to_display_string)
                        .unwrap_or_default(),
                ))
            }),
            "Number" | "parseFloat" => interp.register_native(name, |_, args| {
                Ok(match args.first() {
                    Some(Value::Num(x)) => Value::Num(*x),
                    Some(Value::Str(s)) => s
                        .trim()
                        .parse::<f64>()
                        .map(Value::Num)
                        .unwrap_or(Value::Num(f64::NAN)),
                    _ => Value::Num(f64::NAN),
                })
            }),
            "isNaN" => interp.register_native("isNaN", |_, args| {
                Ok(Value::Bool(
                    matches!(args.first(), Some(Value::Num(x)) if x.is_nan()),
                ))
            }),
            _ => interp.register_native(name, |_, _| Ok(Value::Null)),
        }
    }
    interp
}

/// Runs the top-level body of `src` on `engine` and returns the billed
/// budget units. Errors (none expected for these sources) fail loudly.
fn dynamic_load_charge(engine: Engine, name: &str, src: &str) -> u64 {
    let mut interp = sensing_interp(engine);
    interp.set_budget(Some(BUDGET));
    if let Err(e) = interp.eval(src) {
        panic!("{name}: load run failed on {engine:?}: {e}");
    }
    BUDGET - interp.steps_remaining()
}

/// The static load-entry cost of `src`, from the same compiled form
/// the deploy gate analyzes (optimizer on — the bounds must describe
/// the chunk that actually ships).
fn static_load_bounds(name: &str, src: &str) -> (u64, Max) {
    let program = compile_with(src, &CompileOptions { optimize: true })
        .unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
    let report = analyze_costs(&program);
    let load = report
        .entries
        .iter()
        .find(|e| e.kind == EntryKind::Load)
        .unwrap_or_else(|| panic!("{name}: no load entry in cost report"));
    (load.cost.budget_min(), load.cost.budget_max())
}

/// Tree-walk executions bill per AST node, not per instruction; a
/// single bytecode instruction corresponds to at most a few nodes and
/// vice versa. The static max (built from bytecode) is held against
/// the tree-walk charge with this shape factor of slack — soundness
/// up to engine accounting, not a free pass (an unbounded loop still
/// blows any finite bound regardless of factor).
const TREE_WALK_SHAPE_FACTOR: u64 = 4;

#[test]
fn paper_script_load_bounds_bracket_the_dynamic_charge() {
    for (name, src) in paper_scripts() {
        let (min, max) = static_load_bounds(&name, &src);
        let vm = dynamic_load_charge(Engine::Bytecode, &name, &src);
        let tree = dynamic_load_charge(Engine::TreeWalk, &name, &src);

        assert!(
            min <= vm,
            "{name}: static min {min} exceeds actual VM load charge {vm}"
        );
        if let Max::Finite(m) = max {
            assert!(
                vm <= m,
                "{name}: VM load charge {vm} exceeds static max {m}"
            );
            assert!(
                tree <= m.saturating_mul(TREE_WALK_SHAPE_FACTOR),
                "{name}: tree-walk load charge {tree} exceeds static max {m} \
                 even with the ×{TREE_WALK_SHAPE_FACTOR} shape factor"
            );
        }
    }
}

/// Synthetic programs where the analyzer proves *finite* bounds — the
/// interesting case, since an unbounded max is trivially sound. Loops
/// with constant trip counts, branchy arithmetic, constant string
/// building, and a statically-resolvable function call.
#[test]
fn finite_static_bounds_are_sound_on_both_engines() {
    let cases: &[(&str, &str)] = &[
        (
            "counted-loop",
            "var total = 0;\n\
             for (var i = 0; i < 200; i++) { total = total + i * 2; }\n\
             total;\n",
        ),
        (
            "nested-counted-loops",
            "var acc = 0;\n\
             for (var i = 0; i < 12; i++) {\n\
             \x20 for (var j = 0; j < 9; j++) { acc = acc + i * j; }\n\
             }\n\
             acc;\n",
        ),
        (
            "branchy-arithmetic",
            "var x = 17;\n\
             var y = 0;\n\
             if (x % 2 == 1) { y = x * 3 + 1; } else { y = x / 2; }\n\
             y + 1;\n",
        ),
        (
            "const-string-building",
            "var tag = 'pogo' + '-' + 'node';\n\
             var banner = tag + ': ' + 'ready';\n\
             banner;\n",
        ),
        // Call results are `Any` (returns are not summarized), so the
        // results are observed directly rather than combined with `+`
        // — adding two `Any`s would legitimately widen the byte
        // charge to unbounded.
        (
            "resolvable-call",
            "function area(w, h) { return w * h; }\n\
             var a = area(3, 4);\n\
             var b = area(5, 6);\n\
             b;\n",
        ),
        // Trip counting needs a slot-resident counter: `for` headers
        // always compile the counter to a slot, and inside a function
        // every `var` does — a bare top-level `while` over a global
        // is (documented) beyond the loop-bound pattern.
        (
            "for-countdown",
            "var steps = 0;\n\
             for (var n = 64; n > 0; n--) { steps = steps + 2; }\n\
             steps;\n",
        ),
        (
            "while-in-function",
            "function drain() {\n\
             \x20 var i = 0;\n\
             \x20 var acc = 0;\n\
             \x20 while (i < 40) { i++; acc = acc + i; }\n\
             \x20 return acc;\n\
             }\n\
             var out = drain();\n\
             out;\n",
        ),
    ];

    for (name, src) in cases {
        let (min, max) = static_load_bounds(name, src);
        let m = match max {
            Max::Finite(m) => m,
            Max::Unbounded => panic!("{name}: expected a finite static bound"),
        };
        let vm = dynamic_load_charge(Engine::Bytecode, name, src);
        let tree = dynamic_load_charge(Engine::TreeWalk, name, src);

        assert!(
            min <= vm && vm <= m,
            "{name}: VM charge {vm} outside static bounds [{min}, {m}]"
        );
        assert!(
            tree <= m.saturating_mul(TREE_WALK_SHAPE_FACTOR),
            "{name}: tree-walk charge {tree} exceeds {m} × {TREE_WALK_SHAPE_FACTOR}"
        );
    }
}

/// The optimizer must never *raise* the static cost of a program: the
/// bounds the gate sees for the shipped (optimized) chunk are at most
/// the bounds of the naive compilation.
#[test]
fn optimizer_never_raises_static_bounds() {
    for (name, src) in paper_scripts() {
        let opt = compile_with(&src, &CompileOptions { optimize: true }).unwrap();
        let raw = compile_with(&src, &CompileOptions { optimize: false }).unwrap();
        let (opt_load, raw_load) = (
            analyze_costs(&opt)
                .entries
                .iter()
                .find(|e| e.kind == EntryKind::Load)
                .unwrap()
                .cost,
            analyze_costs(&raw)
                .entries
                .iter()
                .find(|e| e.kind == EntryKind::Load)
                .unwrap()
                .cost,
        );
        if let (Max::Finite(o), Max::Finite(r)) = (opt_load.budget_max(), raw_load.budget_max()) {
            assert!(
                o <= r,
                "{name}: optimized static max {o} exceeds unoptimized {r}"
            );
        }
    }
}
