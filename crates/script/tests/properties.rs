#![cfg(feature = "heavy-tests")]

//! Property-based tests for PogoScript: pretty-print round-trips,
//! arithmetic agreement with a Rust reference model, and watchdog
//! monotonicity.

use proptest::prelude::*;

use pogo_script::pretty::print_program;
use pogo_script::{parse, Interpreter, Value};

// ---- expression model --------------------------------------------------------

/// A little arithmetic AST with a Rust-side evaluator, rendered to
/// PogoScript source and compared against the interpreter.
#[derive(Debug, Clone)]
enum Expr {
    Num(i32),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Div(Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self) -> f64 {
        match self {
            Expr::Num(n) => *n as f64,
            Expr::Add(a, b) => a.eval() + b.eval(),
            Expr::Sub(a, b) => a.eval() - b.eval(),
            Expr::Mul(a, b) => a.eval() * b.eval(),
            Expr::Div(a, b) => a.eval() / b.eval(),
            Expr::Neg(a) => -a.eval(),
            Expr::Ternary(c, t, e) => {
                let cv = c.eval();
                if cv != 0.0 && !cv.is_nan() {
                    t.eval()
                } else {
                    e.eval()
                }
            }
        }
    }

    fn render(&self) -> String {
        match self {
            Expr::Num(n) => {
                if *n < 0 {
                    format!("({n})")
                } else {
                    n.to_string()
                }
            }
            Expr::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            Expr::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            Expr::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            Expr::Div(a, b) => format!("({} / {})", a.render(), b.render()),
            Expr::Neg(a) => format!("(-{})", a.render()),
            Expr::Ternary(c, t, e) => {
                format!("({} ? {} : {})", c.render(), t.render(), e.render())
            }
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = (-1000i32..1000).prop_map(Expr::Num);
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Div(a.into(), b.into())),
            inner.clone().prop_map(|a| Expr::Neg(a.into())),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| Expr::Ternary(
                c.into(),
                t.into(),
                e.into()
            )),
        ]
    })
}

// ---- program generator for round-trip tests ------------------------------------

/// Renders a small random program: declarations, loops, functions.
fn program_strategy() -> impl Strategy<Value = String> {
    let ident = proptest::sample::select(vec!["a", "b", "c", "total", "x9", "_tmp"]);
    let stmt = (ident, expr_strategy(), 0u8..5).prop_map(|(name, expr, kind)| match kind {
        0 => format!("var {name} = {};", expr.render()),
        1 => format!(
            "if ({}) {{ {name} = 1; }} else {{ {name} = 2; }}",
            expr.render()
        ),
        2 => format!(
            "for (var i = 0; i < 3; i++) {{ {name} = {}; }}",
            expr.render()
        ),
        3 => format!("function f_{name}(p) {{ return p + {}; }}", expr.render()),
        _ => format!("while (false) {{ {name} = {}; }}", expr.render()),
    });
    proptest::collection::vec(stmt, 1..8).prop_map(|stmts| {
        // Declare all the names first so the program is also runnable.
        let mut src = String::from("var a = 0, b = 0, c = 0, total = 0, x9 = 0, _tmp = 0;\n");
        for s in stmts {
            src.push_str(&s);
            src.push('\n');
        }
        src
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arithmetic_matches_rust_model(expr in expr_strategy()) {
        let mut interp = Interpreter::new();
        let got = interp
            .eval(&format!("{};", expr.render()))
            .expect("generated expression evaluates");
        let expected = expr.eval();
        match got {
            Value::Num(n) => {
                // Identical f64 semantics, including NaN and infinities.
                prop_assert!(
                    n == expected || (n.is_nan() && expected.is_nan()),
                    "{} => {n} vs {expected}",
                    expr.render()
                );
            }
            other => prop_assert!(false, "non-numeric result {other:?}"),
        }
    }

    #[test]
    fn pretty_print_roundtrips(src in program_strategy()) {
        let ast1 = parse(&src).expect("generated program parses");
        let printed = print_program(&ast1);
        let ast2 = parse(&printed)
            .unwrap_or_else(|e| panic!("printed program failed to reparse: {e}\n{printed}"));
        // The printer is the normal form: printing again must be a fixpoint.
        prop_assert_eq!(print_program(&ast2), printed);
    }

    #[test]
    fn generated_programs_run_within_budget(src in program_strategy()) {
        let mut interp = Interpreter::new();
        interp.set_budget(Some(1_000_000));
        // Programs draw from terminating constructs only; they must
        // neither error nor trip the watchdog.
        interp.eval(&src).expect("generated program runs");
    }

    #[test]
    fn budget_is_monotone(expr in expr_strategy()) {
        // If a program completes within N steps it completes within any
        // larger budget with the same result.
        let src = format!("{};", expr.render());
        let mut small = Interpreter::new();
        small.set_budget(Some(10_000));
        let with_small = small.eval(&src);
        prop_assume!(with_small.is_ok());
        let mut big = Interpreter::new();
        big.set_budget(Some(1_000_000));
        let with_big = big.eval(&src).expect("bigger budget cannot fail");
        match (with_small.unwrap(), with_big) {
            (Value::Num(a), Value::Num(b)) => {
                prop_assert!(a == b || (a.is_nan() && b.is_nan()));
            }
            _ => prop_assert!(false, "non-numeric results"),
        }
    }

    #[test]
    fn number_literals_roundtrip_through_the_lexer(n in proptest::num::f64::POSITIVE) {
        // Any positive float printed with Rust's shortest-roundtrip
        // formatting must lex back to exactly the same f64.
        let mut interp = Interpreter::new();
        let v = interp
            .eval(&format!("{n:?};"))
            .expect("float literal evaluates");
        match v {
            Value::Num(back) => prop_assert!(back == n, "{n:?} -> {back:?}"),
            other => prop_assert!(false, "non-numeric {other:?}"),
        }
    }

    #[test]
    fn string_conversion_roundtrips_integers(n in -1_000_000_000i64..1_000_000_000) {
        let mut interp = Interpreter::new();
        let v = interp
            .eval(&format!("Number(String({n}));"))
            .expect("conversion chain runs");
        prop_assert_eq!(v, Value::from(n as f64));
    }
}
