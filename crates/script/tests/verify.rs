//! Verifier properties over the differential corpus.
//!
//! Two obligations, mirroring the two halves of the verifier's
//! contract:
//!
//! 1. **Completeness on compiler output** — every chunk the compiler
//!    emits (optimized or not, random corpus or the real paper
//!    scripts) passes `verify::check`. A verifier that rejects valid
//!    output would silently disable the VM fast path and, worse, fail
//!    deployments at the gate.
//!
//! 2. **Robustness on corrupted chunks** — a mutated chunk (flipped
//!    opcodes, perturbed operands, out-of-range jump targets,
//!    truncated tails) is *diagnosed*, never executed and never
//!    panicked over: `check` returns a `VerifyError` whose code is in
//!    the stable `VERIFY_CODES` table. This is what lets a host treat
//!    any verifier failure as a deterministic `VERIFY_*` diagnostic
//!    instead of a crash.

mod common;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use common::{paper_scripts, VmGen};
use pogo_script::bytecode::{Chunk, CompiledProgram, FnProto, Op};
use pogo_script::{compile_with, verify, CompileOptions, VERIFY_CODES};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

// ---- completeness ----------------------------------------------------------

/// Every compiler-emitted chunk across the full 1,600-seed
/// differential corpus verifies, under both pipelines. `compile_with`
/// already runs the verifier internally and would fall back, so the
/// real assertion is `is_verified()` on every chunk — the fast-path
/// mark is only granted when verification succeeded.
#[test]
fn corpus_chunks_all_pass_the_verifier() {
    const CASES: u64 = 1600;
    let mut chunks = 0usize;
    for seed in 0..CASES {
        let src = VmGen::generate(seed);
        for optimize in [true, false] {
            let program = match compile_with(&src, &CompileOptions { optimize }) {
                Ok(p) => p,
                // Scope-buggy corpus programs still compile (PogoScript
                // resolves names at runtime); a parse error here would
                // be a generator bug.
                Err(e) => panic!("seed {seed}: compile failed: {e}\n--- script ---\n{src}"),
            };
            verify::check(&program).unwrap_or_else(|e| {
                panic!("seed {seed} (optimize={optimize}): {e}\n--- script ---\n{src}")
            });
            chunks += assert_all_marked(&program.main, seed, optimize);
        }
    }
    assert!(
        chunks > 3200,
        "corpus produced suspiciously few chunks: {chunks}"
    );
}

fn assert_all_marked(proto: &FnProto, seed: u64, optimize: bool) -> usize {
    assert!(
        proto.chunk.is_verified(),
        "seed {seed} (optimize={optimize}): chunk for `{}` compiled without the verified mark",
        proto.name
    );
    1 + proto
        .chunk
        .protos
        .iter()
        .map(|p| assert_all_marked(p, seed, optimize))
        .sum::<usize>()
}

#[test]
fn paper_scripts_pass_the_verifier() {
    for (name, src) in paper_scripts() {
        for optimize in [true, false] {
            let program = compile_with(&src, &CompileOptions { optimize })
                .unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
            verify::check(&program).unwrap_or_else(|e| panic!("{name} (optimize={optimize}): {e}"));
        }
    }
}

// ---- robustness ------------------------------------------------------------

/// Rebuilds a program around a mutated main chunk. `Chunk: Clone`
/// resets the verified mark, so the mutant goes through the checked
/// VM path if anyone ever ran it — but these tests never run mutants,
/// they only diagnose them.
fn with_main_chunk(orig: &CompiledProgram, chunk: Chunk) -> CompiledProgram {
    CompiledProgram {
        main: Rc::new(FnProto {
            name: orig.main.name.clone(),
            params: orig.main.params.clone(),
            upvals: orig.main.upvals.clone(),
            chunk,
        }),
        op_count: orig.op_count,
        fn_count: orig.fn_count,
    }
}

/// One structural corruption of a chunk. Returns a label for failure
/// messages and whether this mutation class is *guaranteed* invalid
/// (out-of-range indices and dangling control flow must always be
/// rejected; opcode/operand flips may accidentally produce a valid
/// chunk, which the verifier is right to accept).
fn mutate(chunk: &mut Chunk, rng: &mut SmallRng) -> (&'static str, bool) {
    let n = chunk.ops.len();
    match rng.gen_range(0..8usize) {
        // Control flow out of the chunk entirely.
        0 => {
            let i = rng.gen_range(0..n);
            chunk.ops[i] = Op::Jump((n + rng.gen_range(1..64usize)) as u32);
            ("jump-out-of-range", true)
        }
        // Retarget an existing jump out of range (offset flip). Falls
        // back to planting one if the chunk is jump-free.
        1 => {
            let jumps: Vec<usize> = (0..n)
                .filter(|&i| {
                    matches!(
                        chunk.ops[i],
                        Op::Jump(_)
                            | Op::JumpIfFalse(_)
                            | Op::JumpIfTruePeek(_)
                            | Op::JumpIfFalsePeek(_)
                            | Op::ForInNext(_, _)
                    )
                })
                .collect();
            if let Some(&i) = jumps.get(rng.gen_range(0..jumps.len().max(1))) {
                let bad = (n + rng.gen_range(1..1000usize)) as u32;
                chunk.ops[i] = match chunk.ops[i] {
                    Op::Jump(_) => Op::Jump(bad),
                    Op::JumpIfFalse(_) => Op::JumpIfFalse(bad),
                    Op::JumpIfTruePeek(_) => Op::JumpIfTruePeek(bad),
                    Op::JumpIfFalsePeek(_) => Op::JumpIfFalsePeek(bad),
                    Op::ForInNext(s, _) => Op::ForInNext(s, bad),
                    _ => unreachable!(),
                };
            } else {
                chunk.ops[n - 1] = Op::Jump(n as u32 + 1);
            }
            ("jump-offset-flip", true)
        }
        // Table indices past their pools.
        2 => {
            let i = rng.gen_range(0..n);
            chunk.ops[i] = Op::Const((chunk.consts.len() + rng.gen_range(0..9usize)) as u16);
            ("const-out-of-range", true)
        }
        3 => {
            let i = rng.gen_range(0..n);
            chunk.ops[i] = match rng.gen_range(0..4usize) {
                0 => Op::LoadLocal((chunk.n_slots as usize + rng.gen_range(1..9usize)) as u16),
                1 => Op::StoreGlobal((chunk.globals.len() + rng.gen_range(0..9usize)) as u16),
                2 => Op::GetMember((chunk.members.len() + rng.gen_range(0..9usize)) as u16),
                _ => Op::MakeClosure((chunk.protos.len() + rng.gen_range(0..9usize)) as u16),
            };
            ("table-index-out-of-range", true)
        }
        // Drop the tail: either dangling jumps or a lost terminator.
        4 => {
            chunk.ops.truncate(n - 1);
            chunk.lines.truncate(n - 1);
            ("truncated-tail", false)
        }
        // Swap two opcodes (order flip).
        5 if n >= 2 => {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            chunk.ops.swap(i, j);
            ("opcode-swap", false)
        }
        // Replace an opcode with a stack-hungry one.
        6 => {
            let i = rng.gen_range(0..n);
            chunk.ops[i] = [Op::Pop, Op::Add, Op::SetIndex, Op::Swap][rng.gen_range(0..4usize)];
            ("opcode-flip", false)
        }
        // Widen a call's argument count (operand flip): the verifier
        // must catch the deeper stack pop.
        _ => {
            let i = rng.gen_range(0..n);
            chunk.ops[i] = Op::Call(250);
            ("call-arity-flip", false)
        }
    }
}

/// Mutated chunks never panic the verifier, always come back with a
/// stable code when rejected, and the guaranteed-invalid mutation
/// classes are always rejected.
#[test]
fn mutated_chunks_are_rejected_with_stable_codes_and_never_panic() {
    const SEEDS: u64 = 120;
    const MUTATIONS_PER_PROGRAM: usize = 24;
    let mut rng = SmallRng::seed_from_u64(0x9e3779b97f4a7c15);
    let mut total = 0usize;
    let mut rejected = 0usize;

    for seed in 0..SEEDS {
        let src = VmGen::generate(seed);
        let program = compile_with(&src, &CompileOptions::default()).unwrap();
        if program.main.chunk.ops.is_empty() {
            continue;
        }
        for _ in 0..MUTATIONS_PER_PROGRAM {
            // Mutate the main chunk or, when present, a nested proto —
            // the verifier must descend.
            let mut chunk = program.main.chunk.clone();
            let nested = !chunk.protos.is_empty() && rng.gen_range(0..10usize) < 3;
            let (label, must_reject) = if nested {
                let k = rng.gen_range(0..chunk.protos.len());
                let inner = &chunk.protos[k];
                let mut inner_chunk = inner.chunk.clone();
                let m = mutate(&mut inner_chunk, &mut rng);
                chunk.protos[k] = Rc::new(FnProto {
                    name: inner.name.clone(),
                    params: inner.params.clone(),
                    upvals: inner.upvals.clone(),
                    chunk: inner_chunk,
                });
                m
            } else {
                mutate(&mut chunk, &mut rng)
            };
            let mutant = with_main_chunk(&program, chunk);

            total += 1;
            let outcome = catch_unwind(AssertUnwindSafe(|| verify::check(&mutant)));
            match outcome {
                Err(_) => panic!(
                    "seed {seed}: verifier PANICKED on a {label} mutation\n--- script ---\n{src}"
                ),
                Ok(Err(e)) => {
                    rejected += 1;
                    assert!(
                        VERIFY_CODES.contains(&e.code),
                        "seed {seed}: {label} rejection used unknown code {:?}",
                        e.code
                    );
                    assert!(
                        !e.message.is_empty() && !e.func.is_empty(),
                        "seed {seed}: {label} rejection has an empty diagnostic: {e:?}"
                    );
                }
                Ok(Ok(())) => assert!(
                    !must_reject,
                    "seed {seed}: verifier accepted a {label} mutation\n--- script ---\n{src}"
                ),
            }
        }
    }

    // Opcode swaps can be benign, but the corpus as a whole must be
    // overwhelmingly caught or the checks are too weak to trust.
    assert!(
        rejected * 10 >= total * 7,
        "verifier caught only {rejected}/{total} mutations"
    );
}
