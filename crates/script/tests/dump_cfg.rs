//! Golden-file tests over `pogo-lint --dump-cfg`.
//!
//! Every deployable script in `assets/scripts/` has a pinned
//! control-flow-graph + cost-report render under `tests/golden/`.
//! Where the bytecode goldens pin *what* each script compiles to,
//! these pin what the analyzer *concludes* about it: block structure,
//! loop trip bounds, and the per-entry cost report the deploy gate
//! prices against the watchdog budgets. A drift here means deployment
//! decisions changed for an unmodified script. Regenerate
//! intentionally with
//! `POGO_BLESS=1 cargo test -p pogo-script --test dump_cfg`.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    // crates/script -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn dump(script: &Path) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_pogo-lint"))
        .arg("--dump-cfg")
        .arg(script)
        .current_dir(repo_root())
        .output()
        .expect("pogo-lint runs");
    assert!(
        out.status.success(),
        "--dump-cfg failed for {}: {}",
        script.display(),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).expect("CFG render is UTF-8");
    // The first line echoes the (platform-dependent) path; the golden
    // pins everything after it.
    let (first, rest) = text.split_once('\n').expect("header line");
    assert!(first.starts_with(";; "), "header: {first}");
    rest.to_owned()
}

#[test]
fn asset_scripts_match_cfg_goldens() {
    let scripts_dir = repo_root().join("assets/scripts");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&scripts_dir)
        .expect("assets/scripts exists")
        .filter_map(|e| {
            let p = e.expect("dir entry").path();
            (p.extension().is_some_and(|x| x == "js")).then_some(p)
        })
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 4,
        "expected the shipped scripts, got {paths:?}"
    );

    let bless = std::env::var_os("POGO_BLESS").is_some();
    for script in &paths {
        let name = script.file_stem().expect("stem").to_string_lossy();
        let golden_path = golden_dir().join(format!("{name}.cfg.txt"));
        let got = dump(script);
        assert_eq!(got, dump(script), "CFG render must be deterministic");
        if bless {
            std::fs::write(&golden_path, &got).expect("write golden");
            continue;
        }
        let want = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!(
                "missing golden {} ({e}); run with POGO_BLESS=1 to create it",
                golden_path.display()
            )
        });
        assert!(
            got == want,
            "{name}: CFG/cost render drifted from {}; if the analyzer change \
             is intentional, re-bless with POGO_BLESS=1",
            golden_path.display()
        );
    }
}

#[test]
fn dump_cfg_reports_compile_errors() {
    let dir = std::env::temp_dir().join("pogo-dump-cfg-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bad = dir.join("bad.js");
    std::fs::write(&bad, "var x = ;").expect("write fixture");
    let out = Command::new(env!("CARGO_BIN_EXE_pogo-lint"))
        .arg("--dump-cfg")
        .arg(&bad)
        .output()
        .expect("pogo-lint runs");
    assert_eq!(out.status.code(), Some(1), "compile errors exit 1");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains(";; compile error:"), "stdout: {text}");
}
