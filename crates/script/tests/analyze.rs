//! Fixture coverage for the static analyzer: one positive and one
//! negative case per rule code, the ISSUE acceptance fixture, the
//! assets/scripts bundle, and a randomized scope-soundness property
//! (analyzer-clean scripts never raise reference errors at runtime).

use pogo_script::{analyze, analyze_bundle, analyze_with, AnalyzeOptions, ErrorKind, Interpreter};

fn codes(src: &str) -> Vec<&'static str> {
    analyze(src).iter().map(|d| d.rule.code()).collect()
}

fn has(src: &str, code: &str) -> bool {
    codes(src).contains(&code)
}

// ---- P000 parse error ---------------------------------------------------------

#[test]
fn p000_parse_error() {
    let diags = analyze("var = ;");
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule.code(), "P000");
    assert!(diags[0].is_error());
}

#[test]
fn p000_not_on_valid_source() {
    assert!(!has("var a = 1; print(a);", "P000"));
}

// ---- P001 undeclared read -----------------------------------------------------

#[test]
fn p001_undeclared_read() {
    let diags = analyze("var a = missing;");
    assert!(diags.iter().any(|d| d.rule.code() == "P001" && d.line == 1));
}

#[test]
fn p001_not_on_declared_read() {
    assert!(!has("var present = 1; log(present);", "P001"));
}

// ---- P002 use before declaration ----------------------------------------------

#[test]
fn p002_use_before_declaration() {
    // PogoScript does not hoist `var`: this faults at runtime too.
    let src = "log(x);\nvar x = 1;\nlog(x);";
    let diags = analyze(src);
    assert!(diags.iter().any(|d| d.rule.code() == "P002" && d.line == 1));
}

#[test]
fn p002_not_inside_deferred_function_body() {
    // The function only runs after `x` exists; this is the classic
    // mutual-recursion layout and must stay clean.
    let src = "function f() { return x + 1; }\nvar x = 1;\nlog(f());";
    assert!(!has(src, "P002"));
    assert!(!has(src, "P001"));
}

// ---- P003 undeclared write ----------------------------------------------------

#[test]
fn p003_assignment_to_undeclared() {
    // No implicit globals in PogoScript.
    let diags = analyze("ghost = 1;");
    assert!(diags.iter().any(|d| d.rule.code() == "P003" && d.line == 1));
}

#[test]
fn p003_not_on_declared_assignment() {
    assert!(!has("var x; x = 1; log(x);", "P003"));
}

// ---- P004 duplicate declaration -----------------------------------------------

#[test]
fn p004_duplicate_declaration() {
    let src = "var x = 1;\nvar x = 2;\nlog(x);";
    let diags = analyze(src);
    assert!(diags.iter().any(|d| d.rule.code() == "P004" && d.line == 2));
    assert!(diags.iter().all(|d| !d.is_error()), "P004 is a warning");
}

#[test]
fn p004_not_across_scopes() {
    // Same name in a child block is shadowing (P005), not a duplicate.
    let src = "var x = 1;\n{ var x = 2; log(x); }\nlog(x);";
    assert!(!has(src, "P004"));
}

// ---- P005 shadowing -----------------------------------------------------------

#[test]
fn p005_shadowing_outer_declaration() {
    let src = "var x = 1;\n{ var x = 2; log(x); }\nlog(x);";
    let diags = analyze(src);
    assert!(diags.iter().any(|d| d.rule.code() == "P005" && d.line == 2));
}

#[test]
fn p005_shadowing_a_builtin() {
    assert!(has("var parseFloat = 1; log(parseFloat);", "P005"));
}

#[test]
fn p005_not_on_distinct_names() {
    assert!(!has("var x = 1;\n{ var y = x + 1; log(y); }", "P005"));
}

// ---- P101 wrong arity ---------------------------------------------------------

#[test]
fn p101_wrong_arity_publish() {
    let diags = analyze("publish('ch');");
    assert!(diags.iter().any(|d| d.rule.code() == "P101" && d.line == 1));
}

#[test]
fn p101_wrong_arity_math() {
    assert!(has("var r = Math.pow(2); log(r);", "P101"));
}

#[test]
fn p101_not_on_correct_arity() {
    assert!(!has("publish('ch', 1);", "P101"));
    assert!(!has("var r = Math.pow(2, 8); log(r);", "P101"));
    // Shadowed natives are the script's business, not the table's.
    assert!(!has(
        "function publish(a) { return a; }\nlog(publish(1));",
        "P101"
    ));
}

// ---- P102 non-callable callee --------------------------------------------------

#[test]
fn p102_literal_callee() {
    assert!(has("5();", "P102"));
}

#[test]
fn p102_math_constant_called() {
    assert!(has("var x = Math.PI(); log(x);", "P102"));
}

#[test]
fn p102_unknown_math_method() {
    assert!(has("var x = Math.tan(1); log(x);", "P102"));
}

#[test]
fn p102_not_when_math_is_patched() {
    // Assigning through `Math.` invalidates the static member table.
    let src = "Math.tan = function (x) { return x; };\nvar y = Math.tan(1);\nlog(y);";
    assert!(!has(src, "P102"));
}

#[test]
fn p102_not_on_real_math_method() {
    assert!(!has("var x = Math.sqrt(4); log(x);", "P102"));
}

// ---- P103 subscribed channel never published (bundle) --------------------------

#[test]
fn p103_unpublished_channel_in_bundle() {
    let bundle = [
        ("sub.js", "subscribe('resuls', function (m) { log(m); });"),
        ("pub.js", "publish('results', { ok: true });"),
    ];
    let diags = analyze_bundle(&bundle);
    assert!(diags
        .iter()
        .any(|(name, d)| name == "sub.js" && d.rule.code() == "P103" && d.line == 1));
}

#[test]
fn p103_not_for_published_or_sensor_channels() {
    let bundle = [
        (
            "sub.js",
            "subscribe('results', function (m) { log(m); });\n\
             subscribe('battery', function (m) { log(m); });",
        ),
        ("pub.js", "publish('results', { ok: true });"),
    ];
    assert!(analyze_bundle(&bundle)
        .iter()
        .all(|(_, d)| d.rule.code() != "P103"));
}

#[test]
fn p103_suppressed_by_dynamic_publish() {
    // A computed channel name could feed anything; stay quiet.
    let bundle = [
        ("sub.js", "subscribe('mystery', function (m) { log(m); });"),
        ("pub.js", "var ch = 'mys' + 'tery';\npublish(ch, 1);"),
    ];
    assert!(analyze_bundle(&bundle)
        .iter()
        .all(|(_, d)| d.rule.code() != "P103"));
}

#[test]
fn p103_never_fires_in_single_script_mode() {
    assert!(!has(
        "subscribe('mystery', function (m) { log(m); });",
        "P103"
    ));
}

// ---- P104 literal argument type mismatch ---------------------------------------

#[test]
fn p104_numeric_channel_name() {
    assert!(has("subscribe(42, function (m) { log(m); });", "P104"));
}

#[test]
fn p104_publish_without_string_channel() {
    assert!(has("publish(1, 2);", "P104"));
}

#[test]
fn p104_settimeout_non_function() {
    assert!(has("setTimeout('later');", "P104"));
}

#[test]
fn p104_not_on_well_typed_call() {
    assert!(!has("subscribe('ch', function (m) { log(m); });", "P104"));
    assert!(!has("publish({ v: 1 }, 'ch');", "P104"), "either arg order");
}

// ---- P201 unreachable code -----------------------------------------------------

#[test]
fn p201_statement_after_return() {
    let src = "function f() {\n  return 1;\n  log('dead');\n}\nf();";
    let diags = analyze(src);
    assert!(diags.iter().any(|d| d.rule.code() == "P201" && d.line == 3));
}

#[test]
fn p201_after_exhaustive_if() {
    let src =
        "function f(c) {\n  if (c) { return 1; } else { return 2; }\n  log('dead');\n}\nf(1);";
    assert!(has(src, "P201"));
}

#[test]
fn p201_not_for_hoisted_function_after_return() {
    // `g` is hoisted, so declaring it after `return` is legal style.
    let src = "function f() {\n  return g();\n  function g() { return 1; }\n}\nf();";
    assert!(!has(src, "P201"));
}

// ---- P202 constant condition ----------------------------------------------------

#[test]
fn p202_constant_if() {
    let diags = analyze("if (false) { log('no'); }");
    assert!(diags.iter().any(|d| d.rule.code() == "P202" && d.line == 1));
}

#[test]
fn p202_constant_false_loop() {
    assert!(has("while (0) { log('no'); }", "P202"));
}

#[test]
fn p202_not_on_identifier_condition() {
    // A flag variable is not a literal, even if it never changes —
    // clustering.js gates freeze/thaw this way.
    assert!(!has("var USE_X = false;\nif (USE_X) { log('x'); }", "P202"));
}

// ---- P203 infinite loop ----------------------------------------------------------

#[test]
fn p203_while_true_without_break() {
    let diags = analyze("while (true) { log('spin'); }");
    assert!(diags.iter().any(|d| d.rule.code() == "P203" && d.line == 1));
}

#[test]
fn p203_for_without_condition() {
    assert!(has("for (;;) { log('spin'); }", "P203"));
}

#[test]
fn p203_not_with_break_or_return() {
    assert!(!has(
        "var n = 0;\nwhile (true) { n++; if (n > 3) { break; } }\nlog(n);",
        "P203"
    ));
    assert!(!has(
        "function f() { while (true) { return 1; } }\nlog(f());",
        "P203"
    ));
}

// ---- P204 assignment in condition ------------------------------------------------

#[test]
fn p204_assignment_in_if_condition() {
    let src = "var a = 0;\nvar b = 1;\nif (a = b) { log(a); }";
    let diags = analyze(src);
    assert!(diags.iter().any(|d| d.rule.code() == "P204" && d.line == 3));
}

#[test]
fn p204_not_on_comparison() {
    assert!(!has(
        "var a = 0;\nvar b = 1;\nif (a == b) { log(a); }",
        "P204"
    ));
}

// ---- P205 unused variable ---------------------------------------------------------

#[test]
fn p205_unused_variable() {
    let diags = analyze("var unused = 1;");
    assert!(diags.iter().any(|d| d.rule.code() == "P205" && d.line == 1));
}

#[test]
fn p205_not_for_underscore_prefixed() {
    assert!(!has("var _scratch = 1;", "P205"));
}

// ---- P206 unused function ----------------------------------------------------------

#[test]
fn p206_unused_function() {
    assert!(has("function helper() { return 1; }", "P206"));
}

#[test]
fn p206_not_for_start_convention() {
    // `start()` is the host-invoked entry point (RogueFinder style).
    assert!(!has("function start() { log('go'); }", "P206"));
}

// ---- P207 unused parameter -----------------------------------------------------------

#[test]
fn p207_unused_named_function_param() {
    let src = "function f(a, b) { return a; }\nlog(f(1, 2));";
    assert!(has(src, "P207"));
}

#[test]
fn p207_not_for_callback_params() {
    // Handlers routinely ignore `from`; anonymous functions are exempt.
    assert!(!has(
        "subscribe('battery', function (msg, from) { log(msg); });",
        "P207"
    ));
}

// ---- P401 unknown native ---------------------------------------------------------------

#[test]
fn p401_call_to_unknown_native() {
    let diags = analyze("mystery(1);");
    assert!(diags
        .iter()
        .any(|d| d.rule.code() == "P401" && !d.is_error()));
}

#[test]
fn p401_not_when_native_is_allowed() {
    let opts = AnalyzeOptions {
        extra_natives: vec!["mystery".into()],
    };
    assert!(analyze_with("mystery(1);", &opts)
        .iter()
        .all(|d| d.rule.code() != "P401"));
}

// ---- P402 write-only global -------------------------------------------------------------

#[test]
fn p402_global_written_never_read() {
    let src = "var flag = 0;\nsubscribe('battery', function (m) { flag = 1; });";
    let diags = analyze(src);
    assert!(diags.iter().any(|d| d.rule.code() == "P402" && d.line == 1));
}

#[test]
fn p402_not_when_global_is_read() {
    let src = "var flag = 0;\n\
               subscribe('battery', function (m) { flag = 1; });\n\
               subscribe('location', function (m) { log(flag); });";
    assert!(!has(src, "P402"));
}

// ---- acceptance fixture (ISSUE criterion) ------------------------------------------------

#[test]
fn acceptance_fixture_yields_exactly_three_codes_with_lines() {
    let src = "function f() {\n\
               \x20   publish('pings');\n\
               \x20   return 1;\n\
               \x20   log('dead');\n\
               }\n\
               log(mystery_value);\n\
               f();";
    let diags = analyze(src);
    let found: Vec<(&str, u32)> = diags.iter().map(|d| (d.rule.code(), d.line)).collect();
    assert_eq!(
        found,
        vec![("P101", 2), ("P201", 4), ("P001", 6)],
        "exactly the three expected rule codes with correct lines: {diags:?}"
    );
}

// ---- assets/scripts bundle ----------------------------------------------------------------

#[test]
fn asset_scripts_lint_clean_as_a_bundle() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../assets/scripts");
    let mut sources = Vec::new();
    for entry in std::fs::read_dir(dir).expect("assets/scripts exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) == Some("js") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).expect("readable script");
            sources.push((name, text));
        }
    }
    assert!(
        sources.len() >= 5,
        "expected the asset scripts, got {sources:?}"
    );
    let bundle: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    // collect.js calls `geolocate`, registered by the collector as an
    // extension native (see examples/localization.rs).
    let opts = AnalyzeOptions {
        extra_natives: vec!["geolocate".into()],
    };
    let diags = pogo_script::analyze_bundle_with(&bundle, &opts);
    assert!(
        diags.is_empty(),
        "asset scripts must lint clean: {diags:#?}"
    );
}

// ---- pogo-lint binary ----------------------------------------------------------------------

#[test]
fn pogo_lint_binary_exit_codes() {
    let bin = env!("CARGO_BIN_EXE_pogo-lint");
    let assets = concat!(env!("CARGO_MANIFEST_DIR"), "/../../assets/scripts");
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(assets)
        .expect("assets dir")
        .filter_map(|e| {
            let p = e.expect("dir entry").path();
            (p.extension().and_then(|x| x.to_str()) == Some("js")).then_some(p)
        })
        .collect();
    files.sort();

    // `pogo-lint assets/scripts/*.js` exits 0 (the acceptance bar).
    let ok = std::process::Command::new(bin)
        .args(&files)
        .output()
        .expect("pogo-lint runs");
    assert!(
        ok.status.success(),
        "stdout: {}",
        String::from_utf8_lossy(&ok.stdout)
    );

    // An error-bearing script exits 1.
    let tmp = std::env::temp_dir().join("pogo_lint_fixture_bad.js");
    std::fs::write(&tmp, "publish(oops, 'ch');\n").expect("write fixture");
    let bad = std::process::Command::new(bin)
        .arg(&tmp)
        .output()
        .expect("pogo-lint runs");
    assert_eq!(bad.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("P001"), "stdout: {stdout}");
    std::fs::remove_file(&tmp).ok();
}

// ---- property: scope-clean scripts never fault with reference errors ------------------------

/// Generates a random straight-line PogoScript program from a seed.
/// Statements: declarations, assignments, expression reads, `if`
/// blocks, bounded `for` loops, nested blocks. With small probability
/// it injects scope bugs (undeclared reads/writes, use before
/// declaration) so both sides of the implication get exercised.
struct ScriptGen {
    rng: rand::rngs::SmallRng,
    /// Scope chain of declared names, innermost last.
    scopes: Vec<Vec<String>>,
    next_id: usize,
    out: String,
}

impl ScriptGen {
    fn generate(seed: u64) -> String {
        use rand::SeedableRng;
        let mut g = ScriptGen {
            rng: rand::rngs::SmallRng::seed_from_u64(seed),
            scopes: vec![Vec::new()],
            next_id: 0,
            out: String::new(),
        };
        let n = g.range(3, 9);
        for _ in 0..n {
            g.stmt(0);
        }
        g.out
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        use rand::Rng;
        self.rng.gen_range(lo..hi)
    }

    fn chance(&mut self, percent: usize) -> bool {
        self.range(0, 100) < percent
    }

    fn fresh_name(&mut self) -> String {
        let id = self.next_id;
        self.next_id += 1;
        format!("v{id}")
    }

    fn declared_name(&mut self) -> Option<String> {
        let all: Vec<String> = self.scopes.iter().flatten().cloned().collect();
        if all.is_empty() {
            return None;
        }
        let i = self.range(0, all.len());
        Some(all[i].clone())
    }

    /// An arithmetic expression over declared names and literals; with
    /// `buggy` percent chance one leaf is an undeclared name.
    fn expr(&mut self, depth: usize, buggy: usize) -> String {
        if depth < 2 && self.chance(40) {
            let op = ["+", "-", "*"][self.range(0, 3)];
            let l = self.expr(depth + 1, buggy);
            let r = self.expr(depth + 1, buggy);
            return format!("({l} {op} {r})");
        }
        if self.chance(buggy) {
            return format!("undeclared_{}", self.range(0, 3));
        }
        match self.declared_name() {
            Some(name) if self.chance(60) => name,
            _ => format!("{}", self.range(0, 100)),
        }
    }

    fn stmt(&mut self, depth: usize) {
        match self.range(0, 10) {
            // var declaration (sometimes a duplicate/shadow — warnings
            // only, which the property ignores).
            0..=2 => {
                let name = self.fresh_name();
                let init = self.expr(0, 5);
                self.out.push_str(&format!("var {name} = {init};\n"));
                self.scopes.last_mut().unwrap().push(name);
            }
            // assignment to a declared (or, rarely, undeclared) name
            3..=4 => {
                let target = if self.chance(8) {
                    Some(format!("undeclared_{}", self.range(0, 3)))
                } else {
                    self.declared_name()
                };
                if let Some(target) = target {
                    let value = self.expr(0, 5);
                    self.out.push_str(&format!("{target} = {value};\n"));
                }
            }
            // expression statement (a read)
            5 => {
                let e = self.expr(0, 8);
                self.out.push_str(&format!("{e};\n"));
            }
            // use-before-declaration in this scope
            6 if self.chance(25) => {
                let name = self.fresh_name();
                self.out
                    .push_str(&format!("{name} + 1;\nvar {name} = 2;\n"));
                self.scopes.last_mut().unwrap().push(name);
            }
            // if with block arms
            6..=7 => {
                let c = self.expr(1, 3);
                self.out.push_str(&format!("if ({c} < 50) {{\n"));
                self.block(depth);
                if self.chance(40) {
                    self.out.push_str("} else {\n");
                    self.block(depth);
                }
                self.out.push_str("}\n");
            }
            // bounded for loop
            8 if depth < 2 => {
                let i = self.fresh_name();
                self.out
                    .push_str(&format!("for (var {i} = 0; {i} < 3; {i} = {i} + 1) {{\n"));
                self.scopes.push(vec![i]);
                self.block_inner(depth);
                self.scopes.pop();
                self.out.push_str("}\n");
            }
            // bare nested block
            _ => {
                self.out.push_str("{\n");
                self.block(depth);
                self.out.push_str("}\n");
            }
        }
    }

    fn block(&mut self, depth: usize) {
        self.scopes.push(Vec::new());
        self.block_inner(depth);
        self.scopes.pop();
    }

    fn block_inner(&mut self, depth: usize) {
        self.scopes.push(Vec::new());
        let n = self.range(1, 4);
        for _ in 0..n {
            self.stmt(depth + 1);
        }
        self.scopes.pop();
    }
}

#[test]
fn property_scope_clean_scripts_never_raise_reference_errors() {
    const CASES: u64 = 300;
    let mut clean = 0usize;
    let mut flagged = 0usize;
    for seed in 0..CASES {
        let src = ScriptGen::generate(seed);
        let scope_errors: Vec<_> = analyze(&src)
            .into_iter()
            .filter(|d| matches!(d.rule.code(), "P001" | "P002" | "P003"))
            .collect();
        let mut interp = Interpreter::new();
        interp.set_budget(Some(2_000_000));
        let runtime_ref = matches!(interp.eval(&src), Err(e) if e.kind() == ErrorKind::Reference);
        if scope_errors.is_empty() {
            clean += 1;
            assert!(
                !runtime_ref,
                "seed {seed}: analyzer saw no scope errors but the interpreter \
                 raised a reference error\n--- script ---\n{src}"
            );
        } else {
            flagged += 1;
        }
    }
    // Make sure the property is not vacuous: both populations exist.
    assert!(clean > 50, "too few clean programs: {clean}/{CASES}");
    assert!(flagged > 20, "too few buggy programs: {flagged}/{CASES}");
}
