//! Shared infrastructure for the integration-test suites: the random
//! program generator (`VmGen`), the engine runner that observes a
//! program's full behavior (`run_engine`), and structural value
//! equality across engine heaps (`eq_val`).
//!
//! Each test binary compiles its own copy (`mod common;`), so not
//! every consumer uses every item.
#![allow(dead_code)]

use std::cell::RefCell;
use std::rc::Rc;

use pogo_script::{CompileOptions, Engine, ErrorKind, Interpreter, Value};

// ---- structural value equality ---------------------------------------------

/// Structural equality across engine heaps: numbers with `NaN == NaN`,
/// containers element-wise, functions by type only (closure identity is
/// meaningless across engines).
pub fn eq_val(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Num(x), Value::Num(y)) => x == y || (x.is_nan() && y.is_nan()),
        (Value::Array(x), Value::Array(y)) => {
            let (x, y) = (x.borrow(), y.borrow());
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(a, b)| eq_val(a, b))
        }
        (Value::Object(x), Value::Object(y)) => {
            let (x, y) = (x.borrow(), y.borrow());
            x.len() == y.len()
                && x.iter()
                    .zip(y.iter())
                    .all(|((ka, va), (kb, vb))| ka == kb && eq_val(va, vb))
        }
        (Value::Func(_), Value::Func(_)) => true,
        (Value::Native(_), Value::Native(_)) => true,
        _ => a == b,
    }
}

/// One engine's observation of a program: result or error, plus every
/// value the program passed to `emit` (rendered, so heap identity does
/// not leak in).
pub struct Run {
    pub result: Result<Value, (ErrorKind, String)>,
    pub emitted: Vec<String>,
}

fn fresh(engine: Engine, sink: &Rc<RefCell<Vec<String>>>) -> Interpreter {
    let sink = Rc::clone(sink);
    let mut interp = Interpreter::with_engine(engine);
    interp.register_native("emit", move |_, args| {
        let mut out = sink.borrow_mut();
        for a in args {
            out.push(a.to_display_string());
        }
        Ok(Value::Null)
    });
    interp
}

fn finish(
    result: Result<Value, pogo_script::ScriptError>,
    emitted: Rc<RefCell<Vec<String>>>,
) -> Run {
    Run {
        result: result.map_err(|e| (e.kind(), e.message().to_owned())),
        emitted: Rc::try_unwrap(emitted)
            .map(RefCell::into_inner)
            .unwrap_or_else(|rc| rc.borrow().clone()),
    }
}

pub fn run_engine(engine: Engine, src: &str) -> Run {
    let emitted = Rc::new(RefCell::new(Vec::new()));
    let mut interp = fresh(engine, &emitted);
    let result = interp.eval(src);
    finish(result, emitted)
}

/// Runs `src` on the bytecode VM with explicit compile options —
/// bypassing `Interpreter::eval` (which always uses the defaults) so
/// the optimized and unoptimized pipelines can be compared.
pub fn run_bytecode_with(src: &str, options: &CompileOptions) -> Run {
    let emitted = Rc::new(RefCell::new(Vec::new()));
    let mut interp = fresh(Engine::Bytecode, &emitted);
    let result = match pogo_script::compile_with(src, options) {
        Ok(compiled) => interp.run_compiled(&compiled),
        Err(e) => Err(e),
    };
    finish(result, emitted)
}

// ---- paper scripts ----------------------------------------------------------

/// The real PogoScript sources shipped in `assets/scripts/`, as
/// `(file-stem, source)` pairs. These are the deployment-shaped
/// programs — subscriptions, timers, publish fan-out — that the
/// verifier and cost analyzer must handle without regressing.
pub fn paper_scripts() -> Vec<(String, String)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../assets/scripts");
    let mut out = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "js"))
        .collect();
    entries.sort();
    for path in entries {
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).unwrap();
        out.push((stem, src));
    }
    assert!(
        out.len() >= 4,
        "expected the paper script set in {}",
        dir.display()
    );
    out
}

// ---- program generator ------------------------------------------------------

/// Random-program generator aimed at the compiler's hard spots: slot vs
/// chain resolution (use-before-decl, shadowing, conditional
/// declarations), cells (closures capturing loop variables), evaluation
/// order (compound assignment, update expressions, call arguments),
/// `Math` fast-path eligibility, and the error paths (undeclared
/// reads/writes, bad operand types).
pub struct VmGen {
    rng: rand::rngs::SmallRng,
    /// Scope chain of declared names (name, holds-a-number), innermost
    /// last. The numeric flag steers expression leaves toward
    /// well-typed operands; a small leak of any-typed names keeps the
    /// operator-type-error paths in the corpus without drowning it.
    scopes: Vec<Vec<(String, bool)>>,
    /// Names statically known to hold callable functions, with arity.
    funcs: Vec<(String, usize)>,
    next_id: usize,
    out: String,
}

impl VmGen {
    pub fn generate(seed: u64) -> String {
        use rand::SeedableRng;
        let mut g = VmGen {
            rng: rand::rngs::SmallRng::seed_from_u64(seed),
            scopes: vec![Vec::new()],
            funcs: Vec::new(),
            next_id: 0,
            out: String::new(),
        };
        let n = g.range(4, 11);
        for _ in 0..n {
            g.stmt(0);
        }
        // Always end observing the accumulated state so structurally
        // different-but-silent divergence cannot hide.
        if let Some(name) = g.declared_name() {
            g.out.push_str(&format!("emit({name});\n{name};\n"));
        }
        g.out
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        use rand::Rng;
        self.rng.gen_range(lo..hi)
    }

    fn chance(&mut self, percent: usize) -> bool {
        self.range(0, 100) < percent
    }

    fn fresh_name(&mut self) -> String {
        let id = self.next_id;
        self.next_id += 1;
        format!("v{id}")
    }

    fn declared_name(&mut self) -> Option<String> {
        let all: Vec<String> = self
            .scopes
            .iter()
            .flatten()
            .map(|(n, _)| n.clone())
            .collect();
        if all.is_empty() {
            return None;
        }
        let i = self.range(0, all.len());
        Some(all[i].clone())
    }

    fn numeric_name(&mut self) -> Option<String> {
        let all: Vec<String> = self
            .scopes
            .iter()
            .flatten()
            .filter(|(_, num)| *num)
            .map(|(n, _)| n.clone())
            .collect();
        if all.is_empty() {
            return None;
        }
        let i = self.range(0, all.len());
        Some(all[i].clone())
    }

    fn declare_here(&mut self, name: String, numeric: bool) {
        self.scopes.last_mut().unwrap().push((name, numeric));
    }

    /// Re-marks `name` after a plain assignment changed its type.
    fn set_numeric(&mut self, name: &str, numeric: bool) {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(entry) = scope.iter_mut().rev().find(|(n, _)| n == name) {
                entry.1 = numeric;
                return;
            }
        }
    }

    /// A numeric-ish expression; `buggy` percent chance of an
    /// undeclared-name leaf (exercising the Reference error path).
    fn expr(&mut self, depth: usize, buggy: usize) -> String {
        if depth < 3 && self.chance(45) {
            return match self.range(0, 8) {
                0 | 1 => {
                    let op = ["+", "-", "*", "%"][self.range(0, 4)];
                    format!(
                        "({} {op} {})",
                        self.expr(depth + 1, buggy),
                        self.expr(depth + 1, buggy)
                    )
                }
                2 => {
                    let op = ["<", ">", "<=", ">=", "==", "!="][self.range(0, 6)];
                    format!(
                        "(({} {op} {}) ? {} : {})",
                        self.expr(depth + 1, buggy),
                        self.expr(depth + 1, buggy),
                        self.expr(depth + 1, buggy),
                        self.expr(depth + 1, buggy)
                    )
                }
                3 => {
                    let op = ["&&", "||"][self.range(0, 2)];
                    format!(
                        "({} {op} {})",
                        self.expr(depth + 1, buggy),
                        self.expr(depth + 1, buggy)
                    )
                }
                4 => {
                    let f = ["Math.abs", "Math.floor", "Math.sqrt", "Math.round"][self.range(0, 4)];
                    format!("{f}({})", self.expr(depth + 1, buggy))
                }
                5 => {
                    let f = ["Math.min", "Math.max", "Math.pow"][self.range(0, 3)];
                    format!(
                        "{f}({}, {})",
                        self.expr(depth + 1, buggy),
                        self.expr(depth + 1, buggy)
                    )
                }
                6 => format!("(-{})", self.expr(depth + 1, buggy)),
                _ => match self
                    .funcs
                    .clone()
                    .get(self.range(0, self.funcs.len().max(1)))
                {
                    Some((name, arity)) if !self.funcs.is_empty() => {
                        let args: Vec<String> =
                            (0..*arity).map(|_| self.expr(depth + 1, buggy)).collect();
                        format!("{name}({})", args.join(", "))
                    }
                    _ => self.leaf(buggy),
                },
            };
        }
        self.leaf(buggy)
    }

    fn leaf(&mut self, buggy: usize) -> String {
        if self.chance(buggy) {
            return format!("undeclared_{}", self.range(0, 3));
        }
        if self.chance(7) {
            // Any-typed leak: keeps operator-type errors in the corpus.
            if let Some(name) = self.declared_name() {
                return name;
            }
        }
        match self.numeric_name() {
            Some(name) if self.chance(60) => name,
            _ => {
                if self.chance(15) {
                    format!("{}.5", self.range(0, 50))
                } else {
                    format!("{}", self.range(0, 100))
                }
            }
        }
    }

    fn stmt(&mut self, depth: usize) {
        // Past depth 3, only non-recursing statement kinds: unbounded
        // block nesting would overflow the host (and parser) stack.
        let kind = if depth >= 3 {
            self.range(0, 8)
        } else {
            self.range(0, 16)
        };
        match kind {
            // var declaration: number, string, array, or object init
            0..=2 => {
                let name = self.fresh_name();
                let (init, numeric) = match self.range(0, 6) {
                    0..=2 => (self.expr(0, 2), true),
                    3 => (format!("'s{}'", self.range(0, 10)), false),
                    4 => {
                        let a = self.expr(1, 1);
                        let b = self.expr(1, 1);
                        (format!("[{a}, {b}, {}]", self.range(0, 9)), false)
                    }
                    _ => {
                        let v = self.expr(1, 1);
                        (
                            format!(
                                "{{ k{}: {v}, tag: 't{}' }}",
                                self.range(0, 3),
                                self.range(0, 5)
                            ),
                            false,
                        )
                    }
                };
                self.out.push_str(&format!("var {name} = {init};\n"));
                self.declare_here(name, numeric);
            }
            // assignment — plain, compound, or rarely undeclared
            3..=4 => {
                let plain = self.chance(40);
                let target = if self.chance(3) {
                    Some(format!("undeclared_{}", self.range(0, 3)))
                } else if plain {
                    // Plain `=` retypes the target to a number, so any
                    // name is fair game.
                    self.declared_name()
                } else {
                    self.numeric_name()
                };
                if let Some(target) = target {
                    let op = if plain {
                        "="
                    } else {
                        ["+=", "-=", "*="][self.range(0, 3)]
                    };
                    let value = self.expr(0, 2);
                    self.out.push_str(&format!("{target} {op} {value};\n"));
                    if plain {
                        self.set_numeric(&target, true);
                    }
                }
            }
            // update statement / emit of an update expression
            5 => {
                if let Some(name) = self.numeric_name() {
                    match self.range(0, 3) {
                        0 => self.out.push_str(&format!("{name}++;\n")),
                        1 => self.out.push_str(&format!("--{name};\n")),
                        _ => self.out.push_str(&format!("emit({name}++ + {name});\n")),
                    }
                }
            }
            // observe an expression
            6..=7 => {
                let e = self.expr(0, 3);
                self.out.push_str(&format!("emit({e});\n"));
            }
            // use-before-declaration (chain fall-through), sometimes
            // with an outer binding of the same name (shadow timing)
            8 if self.chance(25) => {
                let name = self.fresh_name();
                if self.chance(50) {
                    self.out.push_str(&format!(
                        "emit(undeclared_probe_{name});\nvar {name} = 1;\n",
                    ));
                } else {
                    self.out
                        .push_str(&format!("{name} = 7;\nvar {name} = 2;\nemit({name});\n"));
                }
                self.declare_here(name, true);
            }
            // if / else, with conditional declaration leaking out
            8..=9 => {
                let c = self.expr(1, 1);
                let name = self.fresh_name();
                self.out.push_str(&format!("if ({c} < 50) {{\n"));
                self.block(depth);
                self.out.push_str("} else {\n");
                self.out.push_str(&format!("var {name}_inner = 3;\n"));
                self.block(depth);
                self.out.push_str("}\n");
            }
            // bounded counter loop (while or for), break/continue
            // inside. The counter is deliberately NOT registered as a
            // declared name while the body is generated: a random
            // `--i` / `i = 0` inside the body would loop forever under
            // the unlimited differential budget.
            10..=11 if depth < 2 => {
                let i = self.fresh_name();
                let bound = self.range(2, 5);
                let is_while = self.chance(50);
                if is_while {
                    self.out
                        .push_str(&format!("var {i} = 0;\nwhile ({i} < {bound}) {{\n{i}++;\n"));
                } else {
                    self.out
                        .push_str(&format!("for (var {i} = 0; {i} < {bound}; {i}++) {{\n"));
                }
                self.scopes.push(Vec::new());
                if self.chance(30) {
                    self.out
                        .push_str(&format!("if ({i} == 1) {{ continue; }}\n"));
                }
                let n = self.range(1, 3);
                for _ in 0..n {
                    self.stmt(depth + 1);
                }
                if self.chance(20) {
                    self.out.push_str("break;\n");
                }
                self.scopes.pop();
                self.out.push_str("}\n");
                if is_while {
                    // Post-loop the counter is safely mutable.
                    self.declare_here(i, true);
                }
            }
            // function declaration (pure, bounded) then a call
            12 => {
                let name = self.fresh_name();
                let arity = self.range(0, 3);
                let params: Vec<String> = (0..arity).map(|k| format!("p{k}")).collect();
                self.scopes
                    .push(params.iter().map(|p| (p.clone(), true)).collect());
                let body = self.expr(1, 1);
                self.scopes.pop();
                self.out.push_str(&format!(
                    "function {name}({}) {{ return {body}; }}\n",
                    params.join(", ")
                ));
                // Only top-level functions stay callable later: a decl
                // hoisted inside a block is out of scope after it.
                if depth == 0 {
                    self.funcs.push((name.clone(), arity));
                }
                self.declare_here(name.clone(), false);
                let args: Vec<String> = (0..arity).map(|_| self.expr(1, 1)).collect();
                self.out
                    .push_str(&format!("emit({name}({}));\n", args.join(", ")));
            }
            // closures over a loop variable — the cell-per-iteration case
            13 if depth < 2 => {
                let fs = self.fresh_name();
                let i = self.fresh_name();
                let mult = self.range(1, 5);
                self.out.push_str(&format!(
                    "var {fs} = [];\n\
                     for (var {i} = 0; {i} < 3; {i}++) {{\n\
                     \x20 var c{i} = {i} * {mult};\n\
                     \x20 {fs}.push(function () {{ return c{i}; }});\n\
                     }}\n\
                     emit({fs}[0]() + {fs}[1]() + {fs}[2]());\n"
                ));
                self.declare_here(fs, false);
            }
            // for-in over an array or object
            14 if depth < 2 => {
                let k = self.fresh_name();
                let acc = self.fresh_name();
                let obj = if self.chance(50) {
                    let a = self.expr(1, 1);
                    format!("[{a}, {}, {}]", self.range(0, 9), self.range(0, 9))
                } else {
                    format!("{{ a: {}, b: {} }}", self.range(0, 9), self.range(0, 9))
                };
                self.out.push_str(&format!(
                    "var {acc} = '';\nfor (var {k} in {obj}) {{ {acc} += {k}; }}\nemit({acc});\n"
                ));
                self.declare_here(acc, false);
            }
            // type-confusion error path: call a number, index a number
            15 if self.chance(12) => {
                let n = self.range(0, 9);
                if self.chance(50) {
                    self.out.push_str(&format!("emit(({n})());\n"));
                } else {
                    self.out.push_str(&format!("emit(({n}).length);\n"));
                }
            }
            // nested block
            _ => {
                self.out.push_str("{\n");
                self.block(depth);
                self.out.push_str("}\n");
            }
        }
    }

    fn block(&mut self, depth: usize) {
        self.scopes.push(Vec::new());
        let n = self.range(1, 4);
        for _ in 0..n {
            self.stmt(depth + 1);
        }
        self.scopes.pop();
    }
}
