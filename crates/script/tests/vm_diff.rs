//! Differential execution: the bytecode VM against the tree-walk
//! oracle.
//!
//! The tree-walk interpreter is the semantic reference (it predates the
//! VM and is exercised by the whole conformance suite); the VM must be
//! observationally identical. For every random program we compare:
//!
//! - the program result (structurally — `NaN == NaN`, containers by
//!   shape not identity, since the two engines build distinct heaps);
//! - the full sequence of values passed to a host native (`emit`),
//!   which observes evaluation *order*, not just final state;
//! - on error, the error **kind and message** (line numbers may
//!   legitimately differ inside multi-line expressions, the same
//!   slack the tree-walk itself has across statement kinds).
//!
//! A third obligation: programs the static analyzer passes as
//! scope-clean must never trip the VM's internal slot invariants
//! ("internal: unbound slot access" is a compiler bug by definition).
//! Programs with injected scope bugs stay in the corpus so the error
//! paths of both engines are compared too.
//!
//! A fourth, since the bytecode optimizer landed: the optimized
//! pipeline (the default) must be observationally identical to the
//! unoptimized one — same results, same emit sequence, same error
//! kind *and message*. Note the main differential above already runs
//! the optimizer (it is on by default), so tree-walk vs optimized-VM
//! equivalence is covered there; the dedicated test below pins
//! optimized-VM vs unoptimized-VM so an optimizer bug cannot hide
//! behind a matching tree-walk bug.

mod common;

use common::{eq_val, run_bytecode_with, run_engine, VmGen};
use pogo_script::{CompileOptions, Engine, ErrorKind};

// ---- the differential property ----------------------------------------------

#[test]
fn vm_matches_tree_walk_on_random_programs() {
    const CASES: u64 = 1200;
    let mut ok_runs = 0usize;
    let mut err_runs = 0usize;
    let mut err_kinds: std::collections::BTreeMap<String, usize> = Default::default();
    for seed in 0..CASES {
        let src = VmGen::generate(seed);
        let tree = run_engine(Engine::TreeWalk, &src);
        let vm = run_engine(Engine::Bytecode, &src);

        assert_eq!(
            tree.emitted, vm.emitted,
            "seed {seed}: emitted sequences diverge\n--- script ---\n{src}"
        );
        match (&tree.result, &vm.result) {
            (Ok(a), Ok(b)) => {
                ok_runs += 1;
                assert!(
                    eq_val(a, b),
                    "seed {seed}: results diverge: {a:?} vs {b:?}\n--- script ---\n{src}"
                );
            }
            (Err((ka, ma)), Err((kb, mb))) => {
                err_runs += 1;
                *err_kinds.entry(ma.clone()).or_insert(0usize) += 1;
                assert_eq!(
                    (ka, ma.as_str()),
                    (kb, mb.as_str()),
                    "seed {seed}: error divergence\n--- script ---\n{src}"
                );
                assert!(
                    !mb.starts_with("internal:"),
                    "seed {seed}: VM internal invariant tripped: {mb}\n--- script ---\n{src}"
                );
            }
            (a, b) => panic!(
                "seed {seed}: one engine errors, the other does not:\n\
                 tree-walk: {a:?}\nvm: {b:?}\n--- script ---\n{src}"
            ),
        }
    }
    // The corpus must exercise both outcomes or the property is weak.
    assert!(
        ok_runs > 400,
        "too few successful programs: {ok_runs}/{CASES}\nerror histogram: {err_kinds:#?}"
    );
    assert!(
        err_runs > 100,
        "too few erroring programs: {err_runs}/{CASES}"
    );
}

/// Programs the analyzer passes as scope-clean must run on the VM
/// without tripping slot-resolution invariants — and without reference
/// errors at all (the analyzer's own guarantee, now extended to the
/// compiled engine).
#[test]
fn analyzer_clean_programs_never_trip_vm_slot_invariants() {
    const CASES: u64 = 400;
    let mut clean = 0usize;
    for seed in 0..CASES {
        let src = VmGen::generate(seed);
        let scope_clean = pogo_script::analyze(&src)
            .iter()
            .all(|d| !matches!(d.rule.code(), "P000" | "P001" | "P002" | "P003"));
        if !scope_clean {
            continue;
        }
        clean += 1;
        let vm = run_engine(Engine::Bytecode, &src);
        if let Err((kind, msg)) = &vm.result {
            assert!(
                *kind != ErrorKind::Reference,
                "seed {seed}: analyzer-clean program raised a reference error \
                 on the VM: {msg}\n--- script ---\n{src}"
            );
        }
    }
    assert!(
        clean > 100,
        "too few analyzer-clean programs: {clean}/{CASES}"
    );
}

/// The bytecode optimizer must be semantics-preserving under the same
/// observational criteria as the engine differential: results,
/// emit order, and error kind + message all identical between the
/// optimized (default) and unoptimized pipelines, across the whole
/// random corpus.
#[test]
fn optimizer_preserves_observable_behavior() {
    const CASES: u64 = 1200;
    let on = CompileOptions { optimize: true };
    let off = CompileOptions { optimize: false };
    for seed in 0..CASES {
        let src = VmGen::generate(seed);
        let opt = run_bytecode_with(&src, &on);
        let raw = run_bytecode_with(&src, &off);

        assert_eq!(
            raw.emitted, opt.emitted,
            "seed {seed}: optimizer changed the emitted sequence\n--- script ---\n{src}"
        );
        match (&raw.result, &opt.result) {
            (Ok(a), Ok(b)) => assert!(
                eq_val(a, b),
                "seed {seed}: optimizer changed the result: {a:?} vs {b:?}\n--- script ---\n{src}"
            ),
            (Err(a), Err(b)) => assert_eq!(
                a, b,
                "seed {seed}: optimizer changed the error\n--- script ---\n{src}"
            ),
            (a, b) => panic!(
                "seed {seed}: optimizer changed success/failure:\n\
                 unoptimized: {a:?}\noptimized: {b:?}\n--- script ---\n{src}"
            ),
        }
    }
}
