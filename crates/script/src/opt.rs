//! Bytecode optimization passes.
//!
//! Runs over a finished [`Chunk`] between compilation and execution:
//! constant folding, branch folding, jump threading, dead-code
//! elimination, and constant-slot propagation (backed by the
//! [`crate::absint`] lattice). Every pass preserves the observable
//! semantics the differential oracle pins down — results, published
//! messages, error codes *and* watchdog accounting:
//!
//! * **String concatenation is never folded.** The interpreter bills
//!   produced bytes against the instruction budget; folding `'a' + 'b'`
//!   would change how much a script is charged.
//! * Arithmetic folds use the exact `f64` operations the VM executes
//!   (`/` by zero folds to the same infinity the VM would produce).
//! * `==`/`!=` fold through [`Value`]'s own `PartialEq`, the strict
//!   equality both engines share.
//!
//! The compiler re-verifies every optimized chunk ([`crate::verify`])
//! and falls back to the unoptimized form if a pass ever emits an
//! invalid chunk, so an optimizer bug degrades performance, never
//! correctness.

use crate::bytecode::{Chunk, Op};
use crate::value::Value;

/// Upper bound on fold/thread/DCE rounds per chunk. Each round only
/// runs if the previous one changed something; three rounds reach a
/// fixpoint on everything the test corpus produces.
const MAX_ROUNDS: usize = 4;

/// Optimizes one function's chunk in place. `params` is the owning
/// prototype's parameter list (needed to seed the abstract entry state
/// for constant-slot propagation). Nested prototypes are *not*
/// visited: the compiler calls this once per function as each chunk is
/// finished.
pub fn optimize_chunk(chunk: &mut Chunk, params: &[(u16, bool)]) {
    for _ in 0..MAX_ROUNDS {
        let mut changed = propagate_const_slots(chunk, params);
        changed |= fold_constants(chunk);
        changed |= thread_jumps(chunk);
        changed |= eliminate_dead_code(chunk);
        if !changed {
            return;
        }
    }
}

// ---- shared helpers ---------------------------------------------------------

/// The constant an op pushes, if it is a pure single-constant push.
fn const_of(chunk: &Chunk, op: Op) -> Option<Value> {
    match op {
        Op::Const(i) => chunk.consts.get(i as usize).cloned(),
        Op::PushTrue => Some(Value::Bool(true)),
        Op::PushFalse => Some(Value::Bool(false)),
        Op::PushNull => Some(Value::Null),
        _ => None,
    }
}

/// The op that pushes `v`, interning into the constant pool when
/// needed. Returns `None` if the pool is full (folding just doesn't
/// happen then).
fn op_for_const(chunk: &mut Chunk, v: &Value) -> Option<Op> {
    match v {
        Value::Bool(true) => return Some(Op::PushTrue),
        Value::Bool(false) => return Some(Op::PushFalse),
        Value::Null => return Some(Op::PushNull),
        _ => {}
    }
    let found = chunk.consts.iter().position(|c| match (c, v) {
        // Bit-exact match so NaN payloads and -0.0 round-trip.
        (Value::Num(a), Value::Num(b)) => a.to_bits() == b.to_bits(),
        (Value::Str(a), Value::Str(b)) => a == b,
        _ => false,
    });
    let idx = match found {
        Some(i) => i,
        None if chunk.consts.len() < u16::MAX as usize => {
            chunk.consts.push(v.clone());
            chunk.consts.len() - 1
        }
        None => return None,
    };
    Some(Op::Const(idx as u16))
}

/// Every instruction index some jump lands on. Ops in this set must
/// keep their position-relative meaning, so peephole windows never
/// rewrite across them.
fn jump_targets(chunk: &Chunk) -> Vec<bool> {
    let mut t = vec![false; chunk.ops.len()];
    for &op in &chunk.ops {
        if let Some(dst) = jump_target(op) {
            if let Some(slot) = t.get_mut(dst) {
                *slot = true;
            }
        }
    }
    t
}

fn jump_target(op: Op) -> Option<usize> {
    match op {
        Op::Jump(t)
        | Op::JumpIfFalse(t)
        | Op::JumpIfTruePeek(t)
        | Op::JumpIfFalsePeek(t)
        | Op::ForInNext(_, t) => Some(t as usize),
        _ => None,
    }
}

fn with_target(op: Op, t: u32) -> Op {
    match op {
        Op::Jump(_) => Op::Jump(t),
        Op::JumpIfFalse(_) => Op::JumpIfFalse(t),
        Op::JumpIfTruePeek(_) => Op::JumpIfTruePeek(t),
        Op::JumpIfFalsePeek(_) => Op::JumpIfFalsePeek(t),
        Op::ForInNext(s, _) => Op::ForInNext(s, t),
        _ => op,
    }
}

fn is_terminal(op: Op) -> bool {
    matches!(
        op,
        Op::Return | Op::ReturnNull | Op::ReturnResult | Op::FlowErr(_) | Op::Jump(_)
    )
}

/// Rebuilds `ops`/`lines` keeping only `keep[i]` instructions and
/// remapping every jump target. A deleted target is mapped to the next
/// kept instruction — the passes only delete instructions whose
/// execution is a no-op from that entry point (or that are
/// unreachable), so "continue at the next survivor" is exact.
fn compact(chunk: &mut Chunk, keep: &[bool]) {
    let n = chunk.ops.len();
    // map[i] = new index of instruction i (or of the next survivor).
    let mut map = vec![0u32; n];
    let mut next = 0u32;
    for i in 0..n {
        map[i] = next;
        if keep[i] {
            next += 1;
        }
    }
    let mut ops = Vec::with_capacity(next as usize);
    let mut lines = Vec::with_capacity(next as usize);
    for (i, &kept) in keep.iter().enumerate().take(n) {
        if !kept {
            continue;
        }
        let mut op = chunk.ops[i];
        if let Some(t) = jump_target(op) {
            op = with_target(op, map[t]);
        }
        ops.push(op);
        lines.push(chunk.lines[i]);
    }
    chunk.ops = ops;
    chunk.lines = lines;
}

// ---- pass: constant folding -------------------------------------------------

/// Exact fold of one binary op over two constants, mirroring the VM's
/// arithmetic byte for byte. `None` = not foldable (strings under `+`
/// stay live because concat *charges* the budget; non-numeric operands
/// of arithmetic/ordering ops raise runtime errors we must preserve).
fn fold_binary(op: Op, a: &Value, b: &Value) -> Option<Value> {
    match op {
        Op::Eq => Some(Value::Bool(a == b)),
        Op::Ne => Some(Value::Bool(a != b)),
        _ => {
            let (Value::Num(x), Value::Num(y)) = (a, b) else {
                return None;
            };
            let (x, y) = (*x, *y);
            Some(match op {
                Op::Add => Value::Num(x + y),
                Op::Sub => Value::Num(x - y),
                Op::Mul => Value::Num(x * y),
                Op::Div => Value::Num(x / y),
                Op::Rem => Value::Num(x % y),
                Op::Lt => Value::Bool(x < y),
                Op::Gt => Value::Bool(x > y),
                Op::Le => Value::Bool(x <= y),
                Op::Ge => Value::Bool(x >= y),
                _ => return None,
            })
        }
    }
}

/// Peephole constant/branch folding. Every window requires that its
/// interior instructions are not jump targets (execution cannot enter
/// mid-window) — entering at the window *head* is always fine because
/// the rewrite preserves head-entry behavior.
fn fold_constants(chunk: &mut Chunk) -> bool {
    let n = chunk.ops.len();
    let targets = jump_targets(chunk);
    let mut keep = vec![true; n];
    let mut replace: Vec<Option<Op>> = vec![None; n];
    let mut changed = false;

    let mut i = 0;
    while i < n {
        let op0 = chunk.ops[i];
        // Window: const, const, binop  →  folded const.
        if i + 2 < n && !targets[i + 1] && !targets[i + 2] {
            let (op1, op2) = (chunk.ops[i + 1], chunk.ops[i + 2]);
            if let (Some(a), Some(b)) = (const_of(chunk, op0), const_of(chunk, op1)) {
                if let Some(v) = fold_binary(op2, &a, &b) {
                    // Never fold a concat: `Add` on strings bills the
                    // produced bytes at runtime.
                    let is_concat = matches!(op2, Op::Add)
                        && (matches!(a, Value::Str(_)) || matches!(b, Value::Str(_)));
                    if !is_concat {
                        if let Some(new_op) = op_for_const(chunk, &v) {
                            replace[i] = Some(new_op);
                            keep[i + 1] = false;
                            keep[i + 2] = false;
                            changed = true;
                            i += 3;
                            continue;
                        }
                    }
                }
            }
        }
        // Windows over a single constant.
        if i + 1 < n && !targets[i + 1] {
            if let Some(v) = const_of(chunk, op0) {
                match chunk.ops[i + 1] {
                    Op::Not => {
                        replace[i] = Some(if v.is_truthy() {
                            Op::PushFalse
                        } else {
                            Op::PushTrue
                        });
                        keep[i + 1] = false;
                        changed = true;
                        i += 2;
                        continue;
                    }
                    Op::Neg => {
                        if let Value::Num(x) = v {
                            if let Some(new_op) = op_for_const(chunk, &Value::Num(-x)) {
                                replace[i] = Some(new_op);
                                keep[i + 1] = false;
                                changed = true;
                                i += 2;
                                continue;
                            }
                        }
                    }
                    Op::UnaryPlus => {
                        if matches!(v, Value::Num(_)) {
                            keep[i + 1] = false;
                            changed = true;
                            i += 2;
                            continue;
                        }
                    }
                    Op::TypeOf => {
                        if let Some(new_op) = op_for_const(chunk, &Value::str(v.type_name())) {
                            replace[i] = Some(new_op);
                            keep[i + 1] = false;
                            changed = true;
                            i += 2;
                            continue;
                        }
                    }
                    Op::JumpIfFalse(t) => {
                        if v.is_truthy() {
                            // Branch never taken: push + pop cancel.
                            keep[i] = false;
                            keep[i + 1] = false;
                        } else {
                            // Branch always taken.
                            keep[i] = false;
                            replace[i + 1] = Some(Op::Jump(t));
                        }
                        changed = true;
                        i += 2;
                        continue;
                    }
                    Op::JumpIfTruePeek(t) => {
                        if v.is_truthy() {
                            // Value stays on the stack and we jump.
                            replace[i + 1] = Some(Op::Jump(t));
                        } else {
                            // Value stays, execution falls through.
                            keep[i + 1] = false;
                        }
                        changed = true;
                        i += 2;
                        continue;
                    }
                    Op::JumpIfFalsePeek(t) => {
                        if v.is_truthy() {
                            keep[i + 1] = false;
                        } else {
                            replace[i + 1] = Some(Op::Jump(t));
                        }
                        changed = true;
                        i += 2;
                        continue;
                    }
                    _ => {}
                }
            }
        }
        i += 1;
    }

    if !changed {
        return false;
    }
    for (i, r) in replace.into_iter().enumerate() {
        if let Some(op) = r {
            chunk.ops[i] = op;
        }
    }
    compact(chunk, &keep);
    true
}

// ---- pass: jump threading ---------------------------------------------------

/// Retargets jumps whose destination is itself an unconditional jump,
/// and deletes jumps to the immediately following instruction.
fn thread_jumps(chunk: &mut Chunk) -> bool {
    let n = chunk.ops.len();
    let mut changed = false;
    for i in 0..n {
        let Some(mut t) = jump_target(chunk.ops[i]) else {
            continue;
        };
        // Follow Jump→Jump chains; the visited set breaks Jump cycles
        // (an empty `while(true);` compiles to a self-jump).
        let mut seen = vec![i];
        while let Op::Jump(next) = chunk.ops[t] {
            if seen.contains(&(next as usize)) {
                break;
            }
            seen.push(t);
            t = next as usize;
        }
        if t != jump_target(chunk.ops[i]).unwrap() {
            chunk.ops[i] = with_target(chunk.ops[i], t as u32);
            changed = true;
        }
    }
    // Jump-to-next is a no-op; deleting it maps inbound jumps to the
    // next survivor, which is exactly the old destination.
    let mut keep = vec![true; n];
    let mut deleted = false;
    for (i, kept) in keep.iter_mut().enumerate().take(n) {
        if let Op::Jump(t) = chunk.ops[i] {
            if t as usize == i + 1 {
                *kept = false;
                deleted = true;
            }
        }
    }
    if deleted {
        compact(chunk, &keep);
    }
    changed | deleted
}

// ---- pass: dead-code elimination --------------------------------------------

/// Removes instructions no path from the entry reaches. Anything that
/// jumps *to* an unreachable instruction is itself unreachable, so the
/// remap in [`compact`] never rewires live control flow.
fn eliminate_dead_code(chunk: &mut Chunk) -> bool {
    let n = chunk.ops.len();
    if n == 0 {
        return false;
    }
    let mut live = vec![false; n];
    let mut work = vec![0usize];
    while let Some(ip) = work.pop() {
        if ip >= n || live[ip] {
            continue;
        }
        live[ip] = true;
        let op = chunk.ops[ip];
        if let Some(t) = jump_target(op) {
            work.push(t);
        }
        if !is_terminal(op) {
            work.push(ip + 1);
        }
    }
    if live.iter().all(|&l| l) {
        return false;
    }
    // Keep the final instruction even if dead: the verifier requires a
    // non-empty stream, and an unreachable trailing terminal is the
    // cheapest way to keep "last op" well-formed when everything after
    // an infinite loop dies.
    if !live[n - 1] && is_terminal(chunk.ops[n - 1]) && live.iter().filter(|&&l| l).count() == 0 {
        return false;
    }
    compact(chunk, &live);
    true
}

// ---- pass: constant-slot propagation ----------------------------------------

/// Replaces `LoadLocal(s)` with a constant push when the abstract
/// interpreter proves the slot holds that exact constant at that
/// point. One-for-one replacement: no indices shift, no jump targets
/// move. Cells and chains are left alone (they can be observed by
/// closures / rebound at runtime).
fn propagate_const_slots(chunk: &mut Chunk, params: &[(u16, bool)]) -> bool {
    use crate::absint::{analyze_chunk, AbsVal, SlotAbs};

    if !chunk.ops.iter().any(|op| matches!(op, Op::LoadLocal(_))) {
        return false;
    }
    let analysis = analyze_chunk(chunk, params, None);
    let mut edits: Vec<(usize, Value)> = Vec::new();
    for (ip, &op) in chunk.ops.iter().enumerate() {
        let Op::LoadLocal(s) = op else { continue };
        let Some(st) = &analysis.in_states[ip] else {
            continue;
        };
        let Some(SlotAbs::Val(v)) = st.slots.get(s as usize) else {
            continue;
        };
        let c = match v {
            AbsVal::ConstNum(bits) => Value::Num(f64::from_bits(*bits)),
            AbsVal::ConstStr(rc) => Value::Str(rc.clone()),
            AbsVal::ConstBool(b) => Value::Bool(*b),
            AbsVal::ConstNull => Value::Null,
            _ => continue,
        };
        edits.push((ip, c));
    }
    let mut changed = false;
    for (ip, c) in edits {
        if let Some(new_op) = op_for_const(chunk, &c) {
            chunk.ops[ip] = new_op;
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use crate::bytecode::disassemble;
    use crate::compile::{compile_with, CompileOptions};

    fn opts(optimize: bool) -> CompileOptions {
        CompileOptions { optimize }
    }

    fn ops_of(src: &str, optimize: bool) -> String {
        let prog = compile_with(src, &opts(optimize)).expect("compile");
        disassemble(&prog)
    }

    #[test]
    fn folds_numeric_arithmetic() {
        let dis = ops_of("var x = 2 + 3 * 4;", true);
        assert!(!dis.contains("Mul"), "{dis}");
        assert!(!dis.contains("Add"), "{dis}");
    }

    #[test]
    fn never_folds_string_concat() {
        // Concat bills produced bytes at runtime; it must stay live.
        let dis = ops_of("var s = 'a' + 'b';", true);
        assert!(dis.contains("Add"), "{dis}");
    }

    #[test]
    fn folds_constant_branches_and_drops_dead_code() {
        let unopt = ops_of("if (false) { publish('x', 1); } var y = 2;", false);
        let opt = ops_of("if (false) { publish('x', 1); } var y = 2;", true);
        assert!(unopt.contains("JumpIfFalse"), "{unopt}");
        assert!(!opt.contains("JumpIfFalse"), "{opt}");
        assert!(!opt.contains("publish"), "{opt}");
    }

    #[test]
    fn optimized_chunks_verify() {
        let srcs = [
            "var x = 1 + 2; if (x == 3) { publish('ch', x); }",
            "if (true) { var a = 1; } else { var b = 2; }",
            "var i = 0; while (true) { i = i + 1; if (i > 3) { break; } }",
            "var t = typeof 3; var n = -(2 * 2); var u = !false;",
        ];
        for src in srcs {
            let prog = compile_with(src, &opts(true)).expect(src);
            crate::verify::check(&prog).expect(src);
        }
    }
}
