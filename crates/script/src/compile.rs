//! The AST → bytecode compiler.
//!
//! The compiler's one hard job is reproducing the tree-walk scope
//! semantics with *indexed* storage. PogoScript `var` does not hoist:
//! a name only exists in its scope once the declaration statement has
//! executed, and reads before that fall through to an outer scope (or
//! the globals). Three mechanisms cover this:
//!
//! - **Slots.** Every binding a scope can create is pre-assigned a
//!   frame slot (reusing `analyze.rs`'s `collect_scope_vars`, which
//!   mirrors exactly where the interpreter's `env.declare` lands,
//!   including `var`s inside non-block `if`/`while` arms). A slot
//!   starts *empty* and only `Decl*` instructions bind it.
//! - **Cells.** A binding whose name is referenced anywhere inside a
//!   nested function is allocated as a heap cell so closures share
//!   mutations. Cells are created at scope entry and *rebound* (never
//!   replaced) by declarations, matching the tree-walk's "same map
//!   entry" identity; block scopes re-create their cells on each loop
//!   iteration, which is what makes per-iteration capture work.
//! - **Chains.** A read/write whose innermost binding may still be
//!   unbound at runtime compiles to a `LoadChain`/`StoreChain` over
//!   the candidate bindings outward (ending at the globals), probed in
//!   order at runtime. When the innermost binding is statically known
//!   to be bound, a direct one-slot instruction is emitted instead —
//!   that is the common, fast case.
//!
//! Determinism: slot numbers, constant-pool indices and site tables
//! depend only on source order (the dedup map is lookup-only), so the
//! same source always compiles to byte-identical chunks — a property
//! the chaos soak's byte-identical-trace gate leans on.

use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;

use crate::analyze;
use crate::ast::{BinOp, Expr, LogicalOp, Stmt, UnaryOp};
use crate::builtins;
use crate::bytecode::{
    ChainInfo, ChainRef, Chunk, CompiledProgram, FnProto, GlobalSite, MemberSite, Op, UpvalSrc,
};
use crate::error::{ErrorKind, ScriptError};
use crate::parser::parse;
use crate::value::Value;

/// Parses and compiles a source string.
///
/// # Errors
///
/// Parse errors, or a compile error for programs exceeding the
/// bytecode format's (generous) size limits.
pub fn compile(source: &str) -> Result<CompiledProgram, ScriptError> {
    compile_with(source, &CompileOptions::default())
}

/// Knobs for [`compile_with`] / [`compile_program_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Run the [`crate::opt`] bytecode passes (constant folding, jump
    /// threading, DCE, constant-slot propagation) on every function.
    pub optimize: bool,
}

impl Default for CompileOptions {
    /// Optimization defaults on; `POGO_SCRIPT_OPT=0` in the
    /// environment turns it off process-wide (an escape hatch for
    /// benchmarking and for bisecting a suspected optimizer bug).
    fn default() -> Self {
        static OPT: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        let optimize =
            *OPT.get_or_init(|| std::env::var("POGO_SCRIPT_OPT").map_or(true, |v| v != "0"));
        CompileOptions { optimize }
    }
}

/// [`compile`] with explicit [`CompileOptions`].
///
/// # Errors
///
/// As for [`compile`].
pub fn compile_with(source: &str, opts: &CompileOptions) -> Result<CompiledProgram, ScriptError> {
    let program = parse(source)?;
    compile_program_with(&program, opts)
}

/// Parses and compiles a source string through a per-thread cache, so
/// the same script deployed to many simulated phones is compiled once
/// and the resulting chunks (immutable except for their inline caches)
/// are shared. Only successful compiles are cached; errors re-run so
/// the caller always gets the real diagnostic.
///
/// # Errors
///
/// As for [`compile`].
pub fn compile_cached(source: &str) -> Result<Rc<CompiledProgram>, ScriptError> {
    thread_local! {
        static CACHE: std::cell::RefCell<HashMap<String, Rc<CompiledProgram>>> =
            std::cell::RefCell::new(HashMap::new());
    }
    if let Some(hit) = CACHE.with(|c| c.borrow().get(source).cloned()) {
        return Ok(hit);
    }
    let prog = Rc::new(compile(source)?);
    CACHE.with(|c| {
        c.borrow_mut().insert(source.to_owned(), Rc::clone(&prog));
    });
    Ok(prog)
}

/// Compiles an already-parsed program.
///
/// # Errors
///
/// As for [`compile`].
pub fn compile_program(program: &[Stmt]) -> Result<CompiledProgram, ScriptError> {
    compile_program_with(program, &CompileOptions::default())
}

/// Compiles an already-parsed program with explicit options.
///
/// Every emitted program is structurally verified ([`crate::verify`])
/// before it is returned; chunks that pass are marked so the VM can
/// take its unchecked-dispatch fast path. If the optimizer ever
/// produces a chunk the verifier rejects, the program is recompiled
/// without optimization — an optimizer bug costs speed, not
/// correctness (and aborts loudly in debug builds).
///
/// # Errors
///
/// As for [`compile`].
pub fn compile_program_with(
    program: &[Stmt],
    opts: &CompileOptions,
) -> Result<CompiledProgram, ScriptError> {
    let prog = lower_program(program, opts.optimize)?;
    match crate::verify::verify(&prog) {
        Ok(()) => Ok(prog),
        Err(e) if opts.optimize => {
            debug_assert!(false, "optimizer emitted an invalid chunk: {e}");
            let prog = lower_program(program, false)?;
            let fallback = crate::verify::verify(&prog);
            debug_assert!(
                fallback.is_ok(),
                "compiler emitted an invalid chunk: {fallback:?}"
            );
            Ok(prog)
        }
        Err(e) => {
            // A compiler bug: the chunk stays unverified and the VM
            // keeps every bounds check on. Loud in debug builds.
            debug_assert!(false, "compiler emitted an invalid chunk: {e}");
            Ok(prog)
        }
    }
}

fn lower_program(program: &[Stmt], optimize: bool) -> Result<CompiledProgram, ScriptError> {
    let mut c = Compiler {
        funcs: Vec::new(),
        math_ok: program_math_ok(program),
        optimize,
    };
    c.push_func(collect_captured(program));
    // The top-level scope is the shared global environment, not a
    // frame: declarations go through named `DeclGlobal` sites so they
    // persist across host evals and are visible to natives.
    c.fun().scopes.push(ScopeCtx {
        bindings: Vec::new(),
        entry_cond_depth: 0,
        is_global: true,
        is_func_top: false,
    });
    c.hoist_funcs(program, true)?;
    for stmt in program {
        if let Stmt::Expr { expr, line } = stmt {
            // Top-level expression statements feed the program result
            // (the tree-walk's `last`); nested ones are discarded.
            c.fun().cur_line = *line;
            c.compile_expr(expr)?;
            c.emit(Op::SetResult);
        } else {
            c.compile_stmt(stmt)?;
        }
    }
    c.emit(Op::ReturnResult);
    let fun = c.funcs.pop().expect("main function context");
    let mut chunk = fun.finish();
    if optimize {
        crate::opt::optimize_chunk(&mut chunk, &[]);
    }
    let op_count = chunk.total_ops();
    let fn_count = 1 + chunk.total_fns();
    Ok(CompiledProgram {
        main: Rc::new(FnProto {
            name: Rc::from("<main>"),
            params: Vec::new(),
            upvals: Vec::new(),
            chunk,
        }),
        op_count,
        fn_count,
    })
}

// ---- compiler state --------------------------------------------------------

/// One binding a scope can create (parameter, hoisted function, or
/// `var`), pre-assigned a frame slot.
struct Binding {
    name: Rc<str>,
    slot: u16,
    /// Heap cell (captured by some nested function) vs. plain slot.
    cell: bool,
    /// Statically known to be bound from the current compile position
    /// on (parameters, hoisted functions, and `var`s already compiled
    /// at an unconditional position of their scope).
    bound: bool,
    is_param: bool,
}

struct ScopeCtx {
    bindings: Vec<Binding>,
    /// `cond_depth` at scope entry: a `var` compiled deeper than this
    /// sits under a branch and cannot mark its binding bound.
    entry_cond_depth: u32,
    /// The program top level (storage is the global environment).
    is_global: bool,
    /// A function's outermost scope (slots are fresh per frame, so no
    /// `ClearSlot` prologue is needed).
    is_func_top: bool,
}

struct LoopCtx {
    /// `Jump` indices to patch to the loop exit.
    breaks: Vec<usize>,
    /// `Jump` indices to patch to the continue target.
    continues: Vec<usize>,
}

#[derive(Hash, PartialEq, Eq)]
enum ConstKey {
    Num(u64),
    Str(Rc<str>),
}

/// Per-function compile state.
struct FuncCtx {
    chunk: Chunk,
    scopes: Vec<ScopeCtx>,
    upvals: Vec<UpvalSrc>,
    loops: Vec<LoopCtx>,
    next_slot: u32,
    cond_depth: u32,
    cur_line: u32,
    /// Names referenced anywhere inside nested functions: bindings
    /// with these names become cells.
    captured: BTreeSet<Rc<str>>,
    /// `(slot, is_cell)` per declared parameter, in order.
    param_info: Vec<(u16, bool)>,
    const_map: HashMap<ConstKey, u16>,
}

impl FuncCtx {
    fn finish(mut self) -> Chunk {
        self.chunk.n_slots = self.next_slot as u16;
        self.chunk
    }
}

/// Where one candidate binding for an identifier lives, from the
/// perspective of the function being compiled.
enum Cand {
    Local { slot: u16, cell: bool },
    Up { idx: u16 },
    Global,
}

struct Compiler {
    funcs: Vec<FuncCtx>,
    /// `Math` is provably the untouched builtin everywhere in this
    /// program, enabling direct `MathCall` dispatch.
    math_ok: bool,
    /// Run [`crate::opt`] on every chunk as it is finished.
    optimize: bool,
}

const LIMIT_ERR: &str = "script too large to compile";

impl Compiler {
    fn fun(&mut self) -> &mut FuncCtx {
        self.funcs.last_mut().expect("active function context")
    }

    fn push_func(&mut self, captured: BTreeSet<Rc<str>>) {
        let cur_line = self.funcs.last().map_or(0, |f| f.cur_line);
        self.funcs.push(FuncCtx {
            chunk: Chunk::default(),
            scopes: Vec::new(),
            upvals: Vec::new(),
            loops: Vec::new(),
            next_slot: 0,
            cond_depth: 0,
            cur_line,
            captured,
            param_info: Vec::new(),
            const_map: HashMap::new(),
        });
    }

    fn emit(&mut self, op: Op) {
        let f = self.fun();
        let line = f.cur_line;
        f.chunk.ops.push(op);
        f.chunk.lines.push(line);
    }

    fn here(&mut self) -> usize {
        self.fun().chunk.ops.len()
    }

    /// Emits a placeholder jump and returns its index for patching.
    fn emit_jump(&mut self, make: fn(u32) -> Op) -> usize {
        self.emit(make(u32::MAX));
        self.fun().chunk.ops.len() - 1
    }

    fn patch_jump(&mut self, at: usize) {
        let target = self.fun().chunk.ops.len() as u32;
        self.patch_jump_to(at, target);
    }

    fn patch_jump_to(&mut self, at: usize, target: u32) {
        let op = &mut self.fun().chunk.ops[at];
        *op = match *op {
            Op::Jump(_) => Op::Jump(target),
            Op::JumpIfFalse(_) => Op::JumpIfFalse(target),
            Op::JumpIfTruePeek(_) => Op::JumpIfTruePeek(target),
            Op::JumpIfFalsePeek(_) => Op::JumpIfFalsePeek(target),
            Op::ForInNext(slot, _) => Op::ForInNext(slot, target),
            other => unreachable!("patching non-jump {other:?}"),
        };
    }

    fn limit(&self, n: usize) -> Result<u16, ScriptError> {
        u16::try_from(n).map_err(|_| ScriptError::new(ErrorKind::Parse, LIMIT_ERR, 0))
    }

    fn alloc_slot(&mut self) -> Result<u16, ScriptError> {
        let f = self.fun();
        let slot = f.next_slot;
        f.next_slot += 1;
        self.limit(slot as usize)
    }

    fn add_const(&mut self, key: ConstKey, value: Value) -> Result<u16, ScriptError> {
        if let Some(&idx) = self.fun().const_map.get(&key) {
            return Ok(idx);
        }
        let n = self.fun().chunk.consts.len();
        let idx = self.limit(n)?;
        let f = self.fun();
        f.chunk.consts.push(value);
        f.const_map.insert(key, idx);
        Ok(idx)
    }

    fn global_site(&mut self, name: &Rc<str>) -> Result<u16, ScriptError> {
        let n = self.fun().chunk.globals.len();
        let idx = self.limit(n)?;
        self.fun().chunk.globals.push(GlobalSite {
            name: name.clone(),
            cache: std::cell::Cell::new(u32::MAX),
        });
        Ok(idx)
    }

    fn member_site(&mut self, name: &Rc<str>) -> Result<u16, ScriptError> {
        let n = self.fun().chunk.members.len();
        let idx = self.limit(n)?;
        self.fun().chunk.members.push(MemberSite {
            name: name.clone(),
            cache: std::cell::Cell::new(u32::MAX),
        });
        Ok(idx)
    }

    // ---- scopes and resolution ---------------------------------------------

    /// Opens a scope and pre-registers every binding it can create:
    /// parameters, direct function declarations, and the `var` names
    /// `collect_scope_vars` attributes to it (which mirrors where the
    /// tree-walk's `declare` lands).
    fn push_scope(
        &mut self,
        params: &[Rc<str>],
        stmts: &[Stmt],
        extra_vars: &[Rc<str>],
        is_func_top: bool,
    ) -> Result<(), ScriptError> {
        let entry_cond_depth = self.fun().cond_depth;
        self.fun().scopes.push(ScopeCtx {
            bindings: Vec::new(),
            entry_cond_depth,
            is_global: false,
            is_func_top,
        });
        for p in params {
            let (slot, cell) = self.register_binding(p, true, true)?;
            self.fun().param_info.push((slot, cell));
        }
        for name in extra_vars {
            self.register_binding(name, false, false)?;
        }
        for s in stmts {
            if let Stmt::Func { name, .. } = s {
                // Hoisted: bound from scope entry, before any `var`.
                self.register_binding(name, true, false)?;
            }
        }
        let mut vars = Vec::new();
        analyze::collect_scope_vars(stmts, &mut vars);
        for (name, _) in &vars {
            self.register_binding(name, false, false)?;
        }
        Ok(())
    }

    /// Registers `name` in the current scope (reusing the existing
    /// binding if declared twice) and returns `(slot, is_cell)`.
    fn register_binding(
        &mut self,
        name: &Rc<str>,
        bound: bool,
        is_param: bool,
    ) -> Result<(u16, bool), ScriptError> {
        let cell = self.fun().captured.contains(name);
        let scope = self.fun().scopes.last_mut().expect("open scope");
        if let Some(b) = scope.bindings.iter_mut().find(|b| b.name == *name) {
            b.bound |= bound;
            let out = (b.slot, b.cell);
            return Ok(out);
        }
        let slot = self.alloc_slot()?;
        let scope = self.fun().scopes.last_mut().expect("open scope");
        scope.bindings.push(Binding {
            name: name.clone(),
            slot,
            cell,
            bound,
            is_param,
        });
        Ok((slot, cell))
    }

    /// Emits the scope prologue: slot initialisation (cells must exist
    /// before any closure captures them) followed by hoisted function
    /// declarations, in source order — the same order the tree-walk's
    /// `hoist` declares them.
    fn emit_scope_prologue(&mut self, stmts: &[Stmt]) -> Result<(), ScriptError> {
        let scope = self.fun().scopes.last().expect("open scope");
        let is_func_top = scope.is_func_top;
        let is_global = scope.is_global;
        let mut init = Vec::new();
        if !is_global {
            for b in &scope.bindings {
                if b.is_param {
                    continue; // frame entry binds parameters
                }
                if b.cell {
                    init.push(Op::NewCell(b.slot));
                } else if !is_func_top {
                    // Block/loop scopes re-enter within one frame; a
                    // function's own slots start empty anyway.
                    init.push(Op::ClearSlot(b.slot));
                }
            }
        }
        for op in init {
            self.emit(op);
        }
        self.hoist_funcs(stmts, is_global)
    }

    fn hoist_funcs(&mut self, stmts: &[Stmt], is_global: bool) -> Result<(), ScriptError> {
        for s in stmts {
            if let Stmt::Func {
                name, params, body, ..
            } = s
            {
                let proto = self.compile_function(name.clone(), params, body)?;
                self.emit(Op::MakeClosure(proto));
                if is_global {
                    let site = self.global_site(name)?;
                    self.emit(Op::DeclGlobal(site));
                } else {
                    self.emit_decl(name)?;
                }
            }
        }
        Ok(())
    }

    fn pop_scope(&mut self) {
        self.fun().scopes.pop();
    }

    /// Resolves `name` from the current position: candidate bindings
    /// innermost-out, stopping at the first definitely-bound one or
    /// falling through to the globals.
    fn resolve(&mut self, name: &str) -> Vec<Cand> {
        let mut cands = Vec::new();
        let cur = self.funcs.len() - 1;
        for fi in (0..self.funcs.len()).rev() {
            for si in (0..self.funcs[fi].scopes.len()).rev() {
                if self.funcs[fi].scopes[si].is_global {
                    cands.push(Cand::Global);
                    return cands;
                }
                let found = self.funcs[fi].scopes[si]
                    .bindings
                    .iter()
                    .find(|b| &*b.name == name)
                    .map(|b| (b.slot, b.cell, b.bound));
                if let Some((slot, cell, bound)) = found {
                    if fi == cur {
                        cands.push(Cand::Local { slot, cell });
                    } else {
                        // Cross-function references are always cells:
                        // `captured` collects every name mentioned
                        // inside nested functions.
                        debug_assert!(cell, "captured binding must be a cell");
                        let idx = self.upval_for(fi, slot);
                        cands.push(Cand::Up { idx });
                    }
                    if bound {
                        return cands;
                    }
                }
            }
        }
        cands.push(Cand::Global);
        cands
    }

    /// Threads an upvalue for the cell at `slot` of `funcs[owner]`
    /// through every function level down to the current one.
    fn upval_for(&mut self, owner: usize, slot: u16) -> u16 {
        let mut src = UpvalSrc::ParentCell(slot);
        let mut idx = 0;
        for fi in owner + 1..self.funcs.len() {
            idx = self.add_upval(fi, src);
            src = UpvalSrc::ParentUpval(idx);
        }
        idx
    }

    fn add_upval(&mut self, fi: usize, src: UpvalSrc) -> u16 {
        if let Some(i) = self.funcs[fi].upvals.iter().position(|u| *u == src) {
            return i as u16;
        }
        self.funcs[fi].upvals.push(src);
        (self.funcs[fi].upvals.len() - 1) as u16
    }

    fn make_chain(&mut self, name: &Rc<str>, cands: Vec<Cand>) -> Result<u16, ScriptError> {
        let refs: Box<[ChainRef]> = cands
            .into_iter()
            .map(|c| match c {
                Cand::Local { slot, cell: false } => ChainRef::Local(slot),
                Cand::Local { slot, cell: true } => ChainRef::CellSlot(slot),
                Cand::Up { idx } => ChainRef::Upval(idx),
                Cand::Global => ChainRef::Global,
            })
            .collect();
        let n = self.fun().chunk.chains.len();
        let idx = self.limit(n)?;
        self.fun().chunk.chains.push(ChainInfo {
            name: name.clone(),
            cands: refs,
        });
        Ok(idx)
    }

    fn emit_load_ident(&mut self, name: &Rc<str>) -> Result<(), ScriptError> {
        let cands = self.resolve(name);
        if cands.len() == 1 {
            // A single candidate is either the globals or a binding
            // that is definitely bound here — direct access.
            let op = match cands[0] {
                Cand::Local { slot, cell: false } => Op::LoadLocal(slot),
                Cand::Local { slot, cell: true } => Op::LoadCell(slot),
                Cand::Up { idx } => Op::LoadUpval(idx),
                Cand::Global => Op::LoadGlobal(self.global_site(name)?),
            };
            self.emit(op);
        } else {
            let chain = self.make_chain(name, cands)?;
            self.emit(Op::LoadChain(chain));
        }
        Ok(())
    }

    fn emit_store_ident(&mut self, name: &Rc<str>) -> Result<(), ScriptError> {
        let cands = self.resolve(name);
        if cands.len() == 1 {
            let op = match cands[0] {
                Cand::Local { slot, cell: false } => Op::StoreLocal(slot),
                Cand::Local { slot, cell: true } => Op::StoreCell(slot),
                Cand::Up { idx } => Op::StoreUpval(idx),
                Cand::Global => Op::StoreGlobal(self.global_site(name)?),
            };
            self.emit(op);
        } else {
            let chain = self.make_chain(name, cands)?;
            self.emit(Op::StoreChain(chain));
        }
        Ok(())
    }

    /// Emits the declaration for a `var` in the current scope and, at
    /// an unconditional position, marks the binding bound from here on.
    fn emit_decl(&mut self, name: &Rc<str>) -> Result<(), ScriptError> {
        let scope = self.fun().scopes.last().expect("open scope");
        if scope.is_global {
            let site = self.global_site(name)?;
            self.emit(Op::DeclGlobal(site));
            return Ok(());
        }
        let cond_depth = self.fun().cond_depth;
        let scope = self.fun().scopes.last_mut().expect("open scope");
        let unconditional = cond_depth == scope.entry_cond_depth;
        let b = scope
            .bindings
            .iter_mut()
            .find(|b| b.name == *name)
            .expect("declaration was pre-registered by push_scope");
        if unconditional {
            b.bound = true;
        }
        let op = if b.cell {
            Op::DeclCell(b.slot)
        } else {
            Op::DeclLocal(b.slot)
        };
        self.emit(op);
        Ok(())
    }

    // ---- functions ---------------------------------------------------------

    fn compile_function(
        &mut self,
        name: Rc<str>,
        params: &[Rc<str>],
        body: &[Stmt],
    ) -> Result<u16, ScriptError> {
        self.push_func(collect_captured(body));
        self.push_scope(params, body, &[], true)?;
        self.emit_scope_prologue(body)?;
        self.compile_stmts(body)?;
        self.emit(Op::ReturnNull);
        let fun = self.funcs.pop().expect("function context");
        let param_info = fun.param_info.clone();
        let upvals = fun.upvals.clone();
        let mut chunk = fun.finish();
        if self.optimize {
            crate::opt::optimize_chunk(&mut chunk, &param_info);
        }
        let proto = FnProto {
            name,
            params: param_info,
            upvals,
            chunk,
        };
        let n = self.fun().chunk.protos.len();
        let idx = self.limit(n)?;
        self.fun().chunk.protos.push(Rc::new(proto));
        Ok(idx)
    }

    // ---- statements --------------------------------------------------------

    fn compile_stmts(&mut self, stmts: &[Stmt]) -> Result<(), ScriptError> {
        for s in stmts {
            self.compile_stmt(s)?;
        }
        Ok(())
    }

    fn compile_stmt(&mut self, s: &Stmt) -> Result<(), ScriptError> {
        self.fun().cur_line = s.line();
        match s {
            Stmt::Var { decls, .. } => {
                for (name, init) in decls {
                    match init {
                        Some(e) => self.compile_expr(e)?,
                        None => self.emit(Op::PushNull),
                    }
                    self.emit_decl(name)?;
                }
                Ok(())
            }
            // Function statements only take effect through hoisting at
            // the entry of a *direct* enclosing scope; anywhere else
            // (e.g. as a bare `if` arm) the tree-walk executes them as
            // a no-op, so the compiler emits nothing either.
            Stmt::Func { .. } => Ok(()),
            Stmt::Expr { expr, .. } => {
                self.compile_expr(expr)?;
                self.emit(Op::Pop);
                Ok(())
            }
            Stmt::If {
                cond, then, els, ..
            } => {
                self.compile_expr(cond)?;
                let jf = self.emit_jump(Op::JumpIfFalse);
                self.fun().cond_depth += 1;
                self.compile_stmt(then)?;
                self.fun().cond_depth -= 1;
                if let Some(els) = els {
                    let jend = self.emit_jump(Op::Jump);
                    self.patch_jump(jf);
                    self.fun().cond_depth += 1;
                    self.compile_stmt(els)?;
                    self.fun().cond_depth -= 1;
                    self.patch_jump(jend);
                } else {
                    self.patch_jump(jf);
                }
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                let start = self.here() as u32;
                self.compile_expr(cond)?;
                let jf = self.emit_jump(Op::JumpIfFalse);
                self.fun().loops.push(LoopCtx {
                    breaks: Vec::new(),
                    continues: Vec::new(),
                });
                self.fun().cond_depth += 1;
                self.compile_stmt(body)?;
                self.fun().cond_depth -= 1;
                self.emit(Op::Jump(start));
                self.patch_jump(jf);
                let ctx = self.fun().loops.pop().expect("loop context");
                self.finish_loop(ctx, start);
                Ok(())
            }
            Stmt::DoWhile { body, cond, .. } => {
                let start = self.here() as u32;
                self.fun().loops.push(LoopCtx {
                    breaks: Vec::new(),
                    continues: Vec::new(),
                });
                self.fun().cond_depth += 1;
                self.compile_stmt(body)?;
                self.fun().cond_depth -= 1;
                let cond_pos = self.here() as u32;
                self.compile_expr(cond)?;
                // Loop back while truthy: invert and fall through.
                self.emit(Op::Not);
                self.emit(Op::JumpIfFalse(start));
                let ctx = self.fun().loops.pop().expect("loop context");
                self.finish_loop(ctx, cond_pos);
                Ok(())
            }
            Stmt::ForIn {
                name, object, body, ..
            } => {
                // The enumerated object is evaluated in the *outer*
                // scope (the loop variable is not visible to it).
                self.compile_expr(object)?;
                let mut extra = Vec::new();
                if !analyze::creates_scope(body) {
                    let mut vars = Vec::new();
                    analyze::collect_scope_vars_stmt(body, &mut vars);
                    extra.extend(vars.into_iter().map(|(n, _)| n));
                }
                let loop_vars = [name.clone()];
                self.push_scope(&[], &[], &[&loop_vars[..], &extra[..]].concat(), false)?;
                // Un-mark the loop variable: `push_scope` extra vars
                // start unbound, and the per-iteration declaration
                // below dominates every body read.
                self.emit_scope_prologue(&[])?;
                let iter_slot = self.alloc_slot()?;
                self.emit(Op::ForInPrep(iter_slot));
                let next = self.here();
                self.emit(Op::ForInNext(iter_slot, u32::MAX));
                self.emit_decl(name)?;
                self.fun().loops.push(LoopCtx {
                    breaks: Vec::new(),
                    continues: Vec::new(),
                });
                self.fun().cond_depth += 1;
                self.compile_stmt(body)?;
                self.fun().cond_depth -= 1;
                self.emit(Op::Jump(next as u32));
                self.patch_jump(next); // ForInNext exit
                let ctx = self.fun().loops.pop().expect("loop context");
                self.finish_loop(ctx, next as u32);
                self.pop_scope();
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                let mut extra = Vec::new();
                if !analyze::creates_scope(body) {
                    let mut vars = Vec::new();
                    analyze::collect_scope_vars_stmt(body, &mut vars);
                    extra.extend(vars.into_iter().map(|(n, _)| n));
                }
                // `push_scope` also scans `init` (passed as the
                // statement list) for its `var` names.
                let init_stmts: &[Stmt] = match init {
                    Some(b) => std::slice::from_ref(&**b),
                    None => &[],
                };
                self.push_scope(&[], init_stmts, &extra, false)?;
                self.emit_scope_prologue(init_stmts)?;
                if let Some(init) = init {
                    self.compile_stmt(init)?;
                }
                let start = self.here() as u32;
                let jf = match cond {
                    Some(cond) => {
                        self.compile_expr(cond)?;
                        Some(self.emit_jump(Op::JumpIfFalse))
                    }
                    None => None,
                };
                self.fun().loops.push(LoopCtx {
                    breaks: Vec::new(),
                    continues: Vec::new(),
                });
                self.fun().cond_depth += 1;
                self.compile_stmt(body)?;
                self.fun().cond_depth -= 1;
                let step_pos = self.here() as u32;
                if let Some(step) = step {
                    self.compile_expr(step)?;
                    self.emit(Op::Pop);
                }
                self.emit(Op::Jump(start));
                if let Some(jf) = jf {
                    self.patch_jump(jf);
                }
                let ctx = self.fun().loops.pop().expect("loop context");
                self.finish_loop(ctx, step_pos);
                self.pop_scope();
                Ok(())
            }
            Stmt::Return { value, .. } => {
                match value {
                    Some(e) => self.compile_expr(e)?,
                    None => self.emit(Op::PushNull),
                }
                self.emit(Op::Return);
                Ok(())
            }
            Stmt::Break { .. } => {
                if self.fun().loops.is_empty() {
                    self.emit(Op::FlowErr(0));
                } else {
                    let j = self.emit_jump(Op::Jump);
                    self.fun().loops.last_mut().expect("loop").breaks.push(j);
                }
                Ok(())
            }
            Stmt::Continue { .. } => {
                if self.fun().loops.is_empty() {
                    self.emit(Op::FlowErr(1));
                } else {
                    let j = self.emit_jump(Op::Jump);
                    self.fun().loops.last_mut().expect("loop").continues.push(j);
                }
                Ok(())
            }
            Stmt::Block { body, .. } => {
                self.push_scope(&[], body, &[], false)?;
                self.emit_scope_prologue(body)?;
                self.compile_stmts(body)?;
                self.pop_scope();
                Ok(())
            }
            Stmt::Empty { .. } => Ok(()),
        }
    }

    fn finish_loop(&mut self, ctx: LoopCtx, continue_target: u32) {
        for j in ctx.breaks {
            self.patch_jump(j);
        }
        for j in ctx.continues {
            self.patch_jump_to(j, continue_target);
        }
    }

    // ---- expressions -------------------------------------------------------

    fn compile_expr(&mut self, e: &Expr) -> Result<(), ScriptError> {
        match e {
            Expr::Number(n) => {
                let idx = self.add_const(ConstKey::Num(n.to_bits()), Value::Num(*n))?;
                self.emit(Op::Const(idx));
            }
            Expr::Str(s) => {
                let idx = self.add_const(ConstKey::Str(s.clone()), Value::Str(s.clone()))?;
                self.emit(Op::Const(idx));
            }
            Expr::Bool(true) => self.emit(Op::PushTrue),
            Expr::Bool(false) => self.emit(Op::PushFalse),
            Expr::Null => self.emit(Op::PushNull),
            Expr::Ident(name) => self.emit_load_ident(name)?,
            Expr::Array(items) => {
                for item in items {
                    self.compile_expr(item)?;
                }
                let n = self.limit(items.len())?;
                self.emit(Op::MakeArray(n));
            }
            Expr::Object(props) => {
                for (_, value) in props {
                    self.compile_expr(value)?;
                }
                let keys: Rc<[Rc<str>]> = props.iter().map(|(k, _)| k.clone()).collect();
                let n = self.fun().chunk.shapes.len();
                let idx = self.limit(n)?;
                self.fun().chunk.shapes.push(keys);
                self.emit(Op::MakeObject(idx));
            }
            Expr::Func { params, body } => {
                let proto = self.compile_function(Rc::from("<anonymous>"), params, body)?;
                self.emit(Op::MakeClosure(proto));
            }
            Expr::Unary { op, expr } => {
                self.compile_expr(expr)?;
                self.emit(match op {
                    UnaryOp::Not => Op::Not,
                    UnaryOp::Neg => Op::Neg,
                    UnaryOp::Plus => Op::UnaryPlus,
                    UnaryOp::Typeof => Op::TypeOf,
                });
            }
            Expr::Binary { op, lhs, rhs } => {
                self.compile_expr(lhs)?;
                self.compile_expr(rhs)?;
                self.emit(bin_op(*op));
            }
            Expr::Logical { op, lhs, rhs } => {
                self.compile_expr(lhs)?;
                let j = match op {
                    LogicalOp::And => self.emit_jump(Op::JumpIfFalsePeek),
                    LogicalOp::Or => self.emit_jump(Op::JumpIfTruePeek),
                };
                self.emit(Op::Pop);
                self.compile_expr(rhs)?;
                self.patch_jump(j);
            }
            Expr::Ternary { cond, then, els } => {
                self.compile_expr(cond)?;
                let jf = self.emit_jump(Op::JumpIfFalse);
                self.compile_expr(then)?;
                let jend = self.emit_jump(Op::Jump);
                self.patch_jump(jf);
                self.compile_expr(els)?;
                self.patch_jump(jend);
            }
            Expr::Assign { target, op, value } => {
                // Evaluation order matches the tree-walk exactly: rhs
                // first, then the current value (for compound ops),
                // then the target's object/index expressions *again*
                // for the store — including their side effects.
                self.compile_expr(value)?;
                if let Some(op) = op {
                    self.compile_read_of_target(target)?;
                    self.emit(Op::Swap);
                    self.emit(bin_op(*op));
                }
                self.compile_store_to_target(target)?;
            }
            Expr::Update {
                target,
                increment,
                prefix,
            } => {
                self.compile_read_of_target(target)?;
                if !*prefix {
                    self.emit(Op::Dup);
                }
                self.emit(if *increment { Op::Inc } else { Op::Dec });
                self.compile_store_to_target(target)?;
                if !*prefix {
                    self.emit(Op::Pop);
                }
            }
            Expr::Call { callee, args, line } => {
                self.fun().cur_line = *line;
                let argc = u8::try_from(args.len())
                    .map_err(|_| ScriptError::new(ErrorKind::Parse, LIMIT_ERR, *line))?;
                // Arguments evaluate before the callee / receiver —
                // the tree-walk's order.
                for a in args {
                    self.compile_expr(a)?;
                }
                if let Expr::Member { object, name } = callee.as_ref() {
                    if let Some(f) = self.math_fast_path(object, name) {
                        self.emit(Op::MathCall(f, argc));
                        return Ok(());
                    }
                    self.compile_expr(object)?;
                    let site = self.member_site(name)?;
                    self.emit(Op::CallMethod(site, argc));
                } else {
                    self.compile_expr(callee)?;
                    self.emit(Op::Call(argc));
                }
            }
            Expr::Member { object, name } => {
                self.compile_expr(object)?;
                let site = self.member_site(name)?;
                self.emit(Op::GetMember(site));
            }
            Expr::Index { object, index } => {
                self.compile_expr(object)?;
                self.compile_expr(index)?;
                self.emit(Op::GetIndex);
            }
        }
        Ok(())
    }

    /// `Math.fn(..)` resolves to a direct [`Op::MathCall`] only when
    /// the program provably never rebinds, shadows, mutates or aliases
    /// `Math` and the name is a dispatchable builtin.
    fn math_fast_path(&mut self, object: &Expr, name: &str) -> Option<u8> {
        if !self.math_ok {
            return None;
        }
        let Expr::Ident(obj_name) = object else {
            return None;
        };
        if &**obj_name != "Math" {
            return None;
        }
        // Shadowing cannot happen when `math_ok` (no binding anywhere
        // is named Math), so resolution is necessarily the globals.
        debug_assert!(matches!(self.resolve("Math")[..], [Cand::Global]));
        builtins::math_fn_index(name)
    }

    /// Pushes the current value of an assignment target (the object /
    /// index sub-expressions are evaluated here, and evaluated *again*
    /// by the matching store — tree-walk semantics).
    fn compile_read_of_target(&mut self, target: &Expr) -> Result<(), ScriptError> {
        match target {
            Expr::Ident(name) => self.emit_load_ident(name),
            Expr::Member { object, name } => {
                self.compile_expr(object)?;
                let site = self.member_site(name)?;
                self.emit(Op::GetMember(site));
                Ok(())
            }
            Expr::Index { object, index } => {
                self.compile_expr(object)?;
                self.compile_expr(index)?;
                self.emit(Op::GetIndex);
                Ok(())
            }
            // The parser rejects other targets (`is_lvalue`).
            _ => Err(ScriptError::new(
                ErrorKind::Type,
                "invalid assignment target",
                self.funcs.last().map_or(0, |f| f.cur_line),
            )),
        }
    }

    /// Stores the top of stack into `target`, leaving it on the stack
    /// (assignment is an expression).
    fn compile_store_to_target(&mut self, target: &Expr) -> Result<(), ScriptError> {
        match target {
            Expr::Ident(name) => self.emit_store_ident(name),
            Expr::Member { object, name } => {
                self.compile_expr(object)?;
                let site = self.member_site(name)?;
                self.emit(Op::SetMember(site));
                Ok(())
            }
            Expr::Index { object, index } => {
                self.compile_expr(object)?;
                self.compile_expr(index)?;
                self.emit(Op::SetIndex);
                Ok(())
            }
            _ => Err(ScriptError::new(
                ErrorKind::Type,
                "invalid assignment target",
                self.funcs.last().map_or(0, |f| f.cur_line),
            )),
        }
    }
}

fn bin_op(op: BinOp) -> Op {
    match op {
        BinOp::Add => Op::Add,
        BinOp::Sub => Op::Sub,
        BinOp::Mul => Op::Mul,
        BinOp::Div => Op::Div,
        BinOp::Rem => Op::Rem,
        BinOp::Eq => Op::Eq,
        BinOp::NotEq => Op::Ne,
        BinOp::Lt => Op::Lt,
        BinOp::Gt => Op::Gt,
        BinOp::Le => Op::Le,
        BinOp::Ge => Op::Ge,
    }
}

// ---- whole-program analyses ------------------------------------------------

/// Names referenced (as identifiers) anywhere inside functions nested
/// below this statement list — the conservative capture set.
fn collect_captured(stmts: &[Stmt]) -> BTreeSet<Rc<str>> {
    let mut out = BTreeSet::new();
    for s in stmts {
        captured_stmt(s, &mut out);
    }
    out
}

fn captured_stmt(s: &Stmt, out: &mut BTreeSet<Rc<str>>) {
    match s {
        Stmt::Var { decls, .. } => {
            for (_, init) in decls {
                if let Some(e) = init {
                    captured_expr(e, out);
                }
            }
        }
        Stmt::Func { body, .. } => all_idents_stmts(body, out),
        Stmt::Expr { expr, .. } => captured_expr(expr, out),
        Stmt::If {
            cond, then, els, ..
        } => {
            captured_expr(cond, out);
            captured_stmt(then, out);
            if let Some(els) = els {
                captured_stmt(els, out);
            }
        }
        Stmt::While { cond, body, .. } | Stmt::DoWhile { body, cond, .. } => {
            captured_expr(cond, out);
            captured_stmt(body, out);
        }
        Stmt::ForIn { object, body, .. } => {
            captured_expr(object, out);
            captured_stmt(body, out);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            if let Some(init) = init {
                captured_stmt(init, out);
            }
            if let Some(cond) = cond {
                captured_expr(cond, out);
            }
            if let Some(step) = step {
                captured_expr(step, out);
            }
            captured_stmt(body, out);
        }
        Stmt::Return { value, .. } => {
            if let Some(e) = value {
                captured_expr(e, out);
            }
        }
        Stmt::Block { body, .. } => {
            for s in body {
                captured_stmt(s, out);
            }
        }
        Stmt::Break { .. } | Stmt::Continue { .. } | Stmt::Empty { .. } => {}
    }
}

fn captured_expr(e: &Expr, out: &mut BTreeSet<Rc<str>>) {
    match e {
        Expr::Func { body, .. } => all_idents_stmts(body, out),
        other => walk_subexprs(other, &mut |sub| captured_expr(sub, out)),
    }
}

/// Every identifier mentioned in a nested-function body, at any depth.
fn all_idents_stmts(stmts: &[Stmt], out: &mut BTreeSet<Rc<str>>) {
    for s in stmts {
        all_idents_stmt(s, out);
    }
}

fn all_idents_stmt(s: &Stmt, out: &mut BTreeSet<Rc<str>>) {
    match s {
        Stmt::Var { decls, .. } => {
            for (_, init) in decls {
                if let Some(e) = init {
                    all_idents_expr(e, out);
                }
            }
        }
        Stmt::Func { body, .. } => all_idents_stmts(body, out),
        Stmt::Expr { expr, .. } => all_idents_expr(expr, out),
        Stmt::If {
            cond, then, els, ..
        } => {
            all_idents_expr(cond, out);
            all_idents_stmt(then, out);
            if let Some(els) = els {
                all_idents_stmt(els, out);
            }
        }
        Stmt::While { cond, body, .. } | Stmt::DoWhile { body, cond, .. } => {
            all_idents_expr(cond, out);
            all_idents_stmt(body, out);
        }
        Stmt::ForIn { object, body, .. } => {
            all_idents_expr(object, out);
            all_idents_stmt(body, out);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            if let Some(init) = init {
                all_idents_stmt(init, out);
            }
            if let Some(cond) = cond {
                all_idents_expr(cond, out);
            }
            if let Some(step) = step {
                all_idents_expr(step, out);
            }
            all_idents_stmt(body, out);
        }
        Stmt::Return { value, .. } => {
            if let Some(e) = value {
                all_idents_expr(e, out);
            }
        }
        Stmt::Block { body, .. } => all_idents_stmts(body, out),
        Stmt::Break { .. } | Stmt::Continue { .. } | Stmt::Empty { .. } => {}
    }
}

fn all_idents_expr(e: &Expr, out: &mut BTreeSet<Rc<str>>) {
    if let Expr::Ident(name) = e {
        out.insert(name.clone());
    }
    walk_subexprs(e, &mut |sub| all_idents_expr(sub, out));
}

/// Calls `f` on every direct sub-expression of `e` (function bodies
/// are *not* descended — callers decide what nesting means).
fn walk_subexprs(e: &Expr, f: &mut impl FnMut(&Expr)) {
    match e {
        Expr::Number(_)
        | Expr::Str(_)
        | Expr::Bool(_)
        | Expr::Null
        | Expr::Ident(_)
        | Expr::Func { .. } => {}
        Expr::Array(items) => items.iter().for_each(f),
        Expr::Object(props) => props.iter().for_each(|(_, v)| f(v)),
        Expr::Unary { expr, .. } => f(expr),
        Expr::Binary { lhs, rhs, .. } | Expr::Logical { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        Expr::Ternary { cond, then, els } => {
            f(cond);
            f(then);
            f(els);
        }
        Expr::Assign { target, value, .. } => {
            f(target);
            f(value);
        }
        Expr::Update { target, .. } => f(target),
        Expr::Call { callee, args, .. } => {
            f(callee);
            args.iter().for_each(f);
        }
        Expr::Member { object, .. } => f(object),
        Expr::Index { object, index } => {
            f(object);
            f(index);
        }
    }
}

/// True when `Math` is provably the untouched builtin for the whole
/// program: never declared, assigned, mutated through, or mentioned
/// outside `Math.<prop>` / `Math[<expr>]` *read* position (a bare
/// mention could alias it, letting mutations escape the static view).
fn program_math_ok(stmts: &[Stmt]) -> bool {
    let mut ok = true;
    for s in stmts {
        math_scan_stmt(s, &mut ok);
    }
    ok
}

fn is_math_ident(e: &Expr) -> bool {
    matches!(e, Expr::Ident(n) if &**n == "Math")
}

fn math_scan_stmt(s: &Stmt, ok: &mut bool) {
    if !*ok {
        return;
    }
    match s {
        Stmt::Var { decls, .. } => {
            for (name, init) in decls {
                if &**name == "Math" {
                    *ok = false;
                }
                if let Some(e) = init {
                    math_scan_expr(e, ok);
                }
            }
        }
        Stmt::Func {
            name, params, body, ..
        } => {
            if &**name == "Math" || params.iter().any(|p| &**p == "Math") {
                *ok = false;
            }
            for s in body.iter() {
                math_scan_stmt(s, ok);
            }
        }
        Stmt::Expr { expr, .. } => math_scan_expr(expr, ok),
        Stmt::If {
            cond, then, els, ..
        } => {
            math_scan_expr(cond, ok);
            math_scan_stmt(then, ok);
            if let Some(els) = els {
                math_scan_stmt(els, ok);
            }
        }
        Stmt::While { cond, body, .. } | Stmt::DoWhile { body, cond, .. } => {
            math_scan_expr(cond, ok);
            math_scan_stmt(body, ok);
        }
        Stmt::ForIn {
            name, object, body, ..
        } => {
            if &**name == "Math" {
                *ok = false;
            }
            math_scan_expr(object, ok);
            math_scan_stmt(body, ok);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            if let Some(init) = init {
                math_scan_stmt(init, ok);
            }
            if let Some(cond) = cond {
                math_scan_expr(cond, ok);
            }
            if let Some(step) = step {
                math_scan_expr(step, ok);
            }
            math_scan_stmt(body, ok);
        }
        Stmt::Return { value, .. } => {
            if let Some(e) = value {
                math_scan_expr(e, ok);
            }
        }
        Stmt::Block { body, .. } => {
            for s in body {
                math_scan_stmt(s, ok);
            }
        }
        Stmt::Break { .. } | Stmt::Continue { .. } | Stmt::Empty { .. } => {}
    }
}

fn math_scan_expr(e: &Expr, ok: &mut bool) {
    if !*ok {
        return;
    }
    match e {
        // A bare `Math` anywhere outside member/index read position
        // could alias the object.
        Expr::Ident(n) => {
            if &**n == "Math" {
                *ok = false;
            }
        }
        // `Math.x` / `Math[e]` reads are fine; anything deeper scans.
        Expr::Member { object, .. } if is_math_ident(object) => {}
        Expr::Index { object, index } if is_math_ident(object) => math_scan_expr(index, ok),
        // Writing through `Math.x` / `Math[e]` mutates the builtin.
        Expr::Assign { target, value, .. } => {
            match target.as_ref() {
                Expr::Member { object, .. } | Expr::Index { object, .. }
                    if is_math_ident(object) =>
                {
                    *ok = false;
                }
                other => math_scan_expr(other, ok),
            }
            math_scan_expr(value, ok);
        }
        Expr::Update { target, .. } => match target.as_ref() {
            Expr::Member { object, .. } | Expr::Index { object, .. } if is_math_ident(object) => {
                *ok = false;
            }
            other => math_scan_expr(other, ok),
        },
        Expr::Func { body, .. } => {
            for s in body.iter() {
                math_scan_stmt(s, ok);
            }
        }
        other => walk_subexprs(other, &mut |sub| math_scan_expr(sub, ok)),
    }
}
