//! Structured diagnostics produced by the static analyzer.
//!
//! Every finding carries a stable [`Rule`] code (`P001`-style), a
//! [`Severity`], the 1-based source line it anchors to, and a rendered
//! message. Rule codes are append-only: tooling (CI grep filters,
//! editor integrations) may key on them, so existing codes never change
//! meaning.

use std::fmt;

/// How serious a diagnostic is.
///
/// `Error`s predict a runtime `ScriptError` (or code that can never
/// work) and block deployment; `Warning`s flag suspicious-but-legal
/// code and are forwarded to the collector log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable rule codes. The numeric bands group the analyzer passes:
/// P0xx scope resolution, P1xx API contracts, P2xx flow, P4xx
/// purity/sandbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// P000 — the script does not parse at all.
    ParseError,
    /// P001 — read of a variable that is never declared in any
    /// enclosing scope.
    UndeclaredRead,
    /// P002 — a variable is used before the `var` statement that
    /// declares it executes (PogoScript does not hoist `var`).
    UseBeforeDecl,
    /// P003 — assignment to a variable that is never declared
    /// (PogoScript has no implicit globals).
    UndeclaredWrite,
    /// P004 — the same name is declared twice in one scope.
    DuplicateDecl,
    /// P005 — a declaration shadows a binding in an enclosing scope.
    Shadowing,
    /// P101 — a known API/builtin function is called with the wrong
    /// number of arguments.
    WrongArity,
    /// P102 — the callee can never be a function (a literal, or a
    /// known non-callable builtin such as `Math.PI`).
    NotCallable,
    /// P103 — bundle analysis: a subscribed channel is never published
    /// by any script in the deployment and is not a sensor channel.
    UnpublishedChannel,
    /// P104 — a literal argument to a known API has the wrong type
    /// (e.g. a numeric channel name passed to `subscribe`).
    BadArgType,
    /// P201 — statement is unreachable: every path through the
    /// preceding code returns, breaks, or continues.
    UnreachableCode,
    /// P202 — a condition is a constant literal, so one branch can
    /// never run.
    ConstantCondition,
    /// P203 — a loop whose condition is a truthy literal contains no
    /// `break` or `return`: it will spin until the instruction budget
    /// kills the callback.
    InfiniteLoop,
    /// P204 — an assignment appears inside a condition (`=` where `==`
    /// was probably meant).
    AssignInCondition,
    /// P205 — a variable is declared but never read or written.
    UnusedVariable,
    /// P206 — a function is declared but never referenced.
    UnusedFunction,
    /// P207 — a named function's parameter is never used in its body.
    UnusedParam,
    /// P301 — the *guaranteed minimum* static cost of a callback
    /// (instruction steps + charged bytes on every execution path)
    /// exceeds the watchdog budget: the callback cannot complete even
    /// once, so deploying it only burns device budgets.
    CostBudgetExceeded,
    /// P302 — a callback's worst-case cost is statically unbounded
    /// (a loop with no inferable trip count, recursion, or a call
    /// through a value the analyzer cannot resolve). Legal — the
    /// watchdog still protects the phone — but worth knowing before
    /// tasking a fleet.
    CostUnbounded,
    /// P303 — the worst-case cost bound is finite but exceeds the
    /// watchdog budget: some inputs will trip the watchdog.
    CostMayExceedBudget,
    /// P304 — one event can fan out into a large or unbounded number
    /// of `publish` calls, multiplying radio/broker load per trigger.
    PublishFanout,
    /// P401 — a call to a name that is neither declared in the script
    /// nor part of the Pogo API: it only works if the host registers
    /// an extension native with that name.
    UnknownNative,
    /// P402 — a global is written but never read: the script spends
    /// budget maintaining state nothing observes.
    WriteOnlyGlobal,
}

impl Rule {
    /// The stable `Pxxx` code for this rule.
    pub fn code(self) -> &'static str {
        match self {
            Rule::ParseError => "P000",
            Rule::UndeclaredRead => "P001",
            Rule::UseBeforeDecl => "P002",
            Rule::UndeclaredWrite => "P003",
            Rule::DuplicateDecl => "P004",
            Rule::Shadowing => "P005",
            Rule::WrongArity => "P101",
            Rule::NotCallable => "P102",
            Rule::UnpublishedChannel => "P103",
            Rule::BadArgType => "P104",
            Rule::UnreachableCode => "P201",
            Rule::ConstantCondition => "P202",
            Rule::InfiniteLoop => "P203",
            Rule::AssignInCondition => "P204",
            Rule::UnusedVariable => "P205",
            Rule::UnusedFunction => "P206",
            Rule::UnusedParam => "P207",
            Rule::CostBudgetExceeded => "P301",
            Rule::CostUnbounded => "P302",
            Rule::CostMayExceedBudget => "P303",
            Rule::PublishFanout => "P304",
            Rule::UnknownNative => "P401",
            Rule::WriteOnlyGlobal => "P402",
        }
    }

    /// The fixed severity of this rule. Errors are exactly the rules
    /// that predict a guaranteed runtime fault.
    pub fn severity(self) -> Severity {
        match self {
            Rule::ParseError
            | Rule::UndeclaredRead
            | Rule::UseBeforeDecl
            | Rule::UndeclaredWrite
            | Rule::WrongArity
            | Rule::NotCallable
            | Rule::BadArgType
            // A minimum-cost bound over budget predicts a guaranteed
            // watchdog kill, same class as a guaranteed runtime fault.
            | Rule::CostBudgetExceeded => Severity::Error,
            Rule::DuplicateDecl
            | Rule::Shadowing
            | Rule::UnpublishedChannel
            | Rule::UnreachableCode
            | Rule::ConstantCondition
            | Rule::InfiniteLoop
            | Rule::AssignInCondition
            | Rule::UnusedVariable
            | Rule::UnusedFunction
            | Rule::UnusedParam
            | Rule::CostUnbounded
            | Rule::CostMayExceedBudget
            | Rule::PublishFanout
            | Rule::UnknownNative
            | Rule::WriteOnlyGlobal => Severity::Warning,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub rule: Rule,
    /// 1-based source line the finding anchors to.
    pub line: u32,
    pub message: String,
}

impl Diagnostic {
    pub fn new(rule: Rule, line: u32, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            line,
            message: message.into(),
        }
    }

    /// Severity is a property of the rule, not the individual finding.
    pub fn severity(&self) -> Severity {
        self.rule.severity()
    }

    pub fn is_error(&self) -> bool {
        self.severity() == Severity::Error
    }

    /// Renders the diagnostic with a source excerpt:
    ///
    /// ```text
    /// error[P001] line 3: `x` is not defined
    ///   3 | publish(x, 'telemetry');
    /// ```
    pub fn render(&self, source: &str) -> String {
        let mut out = self.to_string();
        if let Some(text) = source.lines().nth(self.line.saturating_sub(1) as usize) {
            let trimmed = text.trim_end();
            if !trimmed.trim().is_empty() {
                out.push_str(&format!("\n  {} | {}", self.line, trimmed));
            }
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] line {}: {}",
            self.severity(),
            self.rule,
            self.line,
            self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let rules = [
            Rule::ParseError,
            Rule::UndeclaredRead,
            Rule::UseBeforeDecl,
            Rule::UndeclaredWrite,
            Rule::DuplicateDecl,
            Rule::Shadowing,
            Rule::WrongArity,
            Rule::NotCallable,
            Rule::UnpublishedChannel,
            Rule::BadArgType,
            Rule::UnreachableCode,
            Rule::ConstantCondition,
            Rule::InfiniteLoop,
            Rule::AssignInCondition,
            Rule::UnusedVariable,
            Rule::UnusedFunction,
            Rule::UnusedParam,
            Rule::CostBudgetExceeded,
            Rule::CostUnbounded,
            Rule::CostMayExceedBudget,
            Rule::PublishFanout,
            Rule::UnknownNative,
            Rule::WriteOnlyGlobal,
        ];
        let mut seen = std::collections::HashSet::new();
        for r in rules {
            assert!(seen.insert(r.code()), "duplicate code {}", r.code());
            assert!(r.code().starts_with('P') && r.code().len() == 4);
        }
    }

    #[test]
    fn errors_outrank_warnings() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Rule::UndeclaredRead.severity() == Severity::Error);
        assert!(Rule::Shadowing.severity() == Severity::Warning);
    }

    #[test]
    fn render_includes_source_excerpt() {
        let d = Diagnostic::new(Rule::UndeclaredRead, 2, "`x` is not defined");
        let src = "var a = 1;\npublish(x, 'ch');\n";
        let rendered = d.render(src);
        assert!(rendered.contains("error[P001] line 2"));
        assert!(rendered.contains("2 | publish(x, 'ch');"));
    }
}
