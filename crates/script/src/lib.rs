//! # pogo-script — PogoScript, an embeddable JavaScript-like language
//!
//! The Pogo middleware executes experiment scripts "using Rhino, a
//! JavaScript runtime for Java" (§4.4). This crate is the reproduction's
//! Rhino: a from-scratch lexer, parser, and tree-walking interpreter for
//! **PogoScript**, a JavaScript subset rich enough to express the paper's
//! most demanding workload — the sliding-window DBSCAN clustering
//! algorithm of `clustering.js` — while remaining fully sandboxed:
//!
//! * scripts see **only** the natives the embedder registers (the 11-method
//!   Pogo API lives in `pogo-core`, not here);
//! * every host→script invocation runs under an *instruction budget*, the
//!   deterministic analogue of the paper's 100 ms callback watchdog
//!   (§4.5: "all calls to JavaScript functions by the framework must
//!   complete within a certain timeframe");
//! * there is no I/O, no reflection, no clock, and no nondeterminism in
//!   the language itself.
//!
//! ## Language
//!
//! Supported: `var`, functions (declarations and expressions, full
//! closures), `if`/`else`, `while`, `for`, `break`/`continue`/`return`,
//! numbers (f64), strings, booleans, `null`, arrays, objects, the usual
//! operators (including `? :`, `&&`/`||` with short-circuit, compound
//! assignment and `++`/`--`), member/index access, and a standard library
//! of array/string/`Math` methods ([`builtins`]).
//!
//! Deviations from JavaScript (documented, deliberate): `==` is strict
//! (`===`), `undefined` is an alias for `null`, and there is no prototype
//! chain — objects are plain ordered maps.
//!
//! ## Example
//!
//! ```
//! use pogo_script::{Interpreter, Value};
//!
//! # fn main() -> Result<(), pogo_script::ScriptError> {
//! let mut interp = Interpreter::new();
//! let v = interp.eval(
//!     "function fib(n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
//!      fib(10);",
//! )?;
//! assert_eq!(v, Value::from(55.0));
//! # Ok(())
//! # }
//! ```

pub mod absint;
pub mod analyze;
pub mod ast;
pub mod builtins;
pub mod bytecode;
pub mod compile;
pub mod diag;
pub mod env;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod opt;
pub mod parser;
pub mod pretty;
pub mod sloc;
pub mod token;
pub mod value;
pub mod verify;
pub(crate) mod vm;

pub use absint::{analyze_costs, cost_diagnostics, Bound, Cost, CostBudgets, CostReport, Max};
pub use analyze::{analyze, analyze_bundle, analyze_bundle_with, analyze_with, AnalyzeOptions};
pub use bytecode::{disassemble, CompiledProgram};
pub use compile::{compile, compile_cached, compile_program, compile_with, CompileOptions};
pub use diag::{Diagnostic, Rule, Severity};
pub use error::{ErrorKind, ScriptError};
pub use interp::{Engine, Interpreter};
pub use parser::parse;
pub use sloc::{count_sloc, SourceStats};
pub use value::{NativeFn, ObjMap, Value};
pub use verify::{verify, VerifyError, VERIFY_CODES};
