//! Source-lines-of-code counting, following the paper's convention for
//! Table 2: "Empty lines and comments are not counted."

/// Size statistics of one script source, as reported in Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SourceStats {
    /// Source lines of code (non-empty, non-comment).
    pub sloc: usize,
    /// Size in bytes of the raw source.
    pub bytes: usize,
}

/// Counts SLOC and byte size of a script.
///
/// A line counts if, after stripping `//` comments and any parts inside
/// `/* */` block comments, non-whitespace characters remain. String
/// literals are respected (a `//` inside a string does not start a
/// comment).
///
/// # Example
///
/// ```
/// let stats = pogo_script::count_sloc("// header\nvar x = 1;\n\nvar y = 2;\n");
/// assert_eq!(stats.sloc, 2);
/// ```
pub fn count_sloc(source: &str) -> SourceStats {
    let bytes = source.len();
    let mut sloc = 0;
    let mut in_block_comment = false;

    for line in source.lines() {
        let mut has_code = false;
        let mut chars = line.chars().peekable();
        let mut in_string: Option<char> = None;
        while let Some(c) = chars.next() {
            if in_block_comment {
                if c == '*' && chars.peek() == Some(&'/') {
                    chars.next();
                    in_block_comment = false;
                }
                continue;
            }
            if let Some(quote) = in_string {
                has_code = true;
                if c == '\\' {
                    chars.next();
                } else if c == quote {
                    in_string = None;
                }
                continue;
            }
            match c {
                '"' | '\'' => {
                    in_string = Some(c);
                    has_code = true;
                }
                '/' if chars.peek() == Some(&'/') => break,
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    in_block_comment = true;
                }
                c if c.is_whitespace() => {}
                _ => has_code = true,
            }
        }
        if has_code {
            sloc += 1;
        }
    }
    SourceStats { sloc, bytes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_code_lines_only() {
        let src = "var a = 1;\n\n// comment\nvar b = 2;\n";
        let stats = count_sloc(src);
        assert_eq!(stats.sloc, 2);
        assert_eq!(stats.bytes, src.len());
    }

    #[test]
    fn block_comments_spanning_lines_excluded() {
        let src = "/* one\n two\n three */\nvar x = 1;\n";
        assert_eq!(count_sloc(src).sloc, 1);
    }

    #[test]
    fn code_before_and_after_comments_counts() {
        assert_eq!(count_sloc("var x = 1; // trailing\n").sloc, 1);
        assert_eq!(count_sloc("/* a */ var x = 1;\n").sloc, 1);
        assert_eq!(
            count_sloc("var a = 1; /* start\n still comment\n end */ var b;\n").sloc,
            2
        );
    }

    #[test]
    fn slashes_inside_strings_are_not_comments() {
        assert_eq!(count_sloc("var url = 'http://x';\n").sloc, 1);
        assert_eq!(count_sloc("var s = \"a /* b */ c\";\n").sloc, 1);
    }

    #[test]
    fn whitespace_only_lines_do_not_count() {
        assert_eq!(count_sloc("   \n\t\n  var x;  \n").sloc, 1);
    }

    #[test]
    fn empty_source() {
        assert_eq!(count_sloc(""), SourceStats { sloc: 0, bytes: 0 });
    }
}
