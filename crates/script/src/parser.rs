//! Recursive-descent parser for PogoScript.

use std::rc::Rc;

use crate::ast::{BinOp, Expr, LogicalOp, Stmt, UnaryOp};
use crate::error::{ErrorKind, ScriptError};
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};

/// Parses a complete program.
///
/// # Errors
///
/// Returns the first lexical or syntactic error, annotated with its line.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), pogo_script::ScriptError> {
/// let program = pogo_script::parse("var x = 1 + 2;")?;
/// assert_eq!(program.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(source: &str) -> Result<Vec<Stmt>, ScriptError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    while !parser.check(&TokenKind::Eof) {
        stmts.push(parser.statement()?);
    }
    Ok(stmts)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Parameter list and body shared by function declarations and expressions.
type FuncRest = (Vec<Rc<str>>, Rc<Vec<Stmt>>);

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn line(&self) -> u32 {
        self.peek().line
    }

    fn check(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn advance(&mut self) -> Token {
        let tok = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        tok
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, context: &str) -> Result<Token, ScriptError> {
        if self.check(kind) {
            Ok(self.advance())
        } else {
            Err(self.err(format!(
                "expected {kind:?} {context}, found `{}`",
                self.peek().kind
            )))
        }
    }

    fn err(&self, msg: impl Into<String>) -> ScriptError {
        ScriptError::new(ErrorKind::Parse, msg, self.line())
    }

    fn expect_ident(&mut self, context: &str) -> Result<Rc<str>, ScriptError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(name.into())
            }
            other => Err(self.err(format!("expected identifier {context}, found `{other}`"))),
        }
    }

    // ---- statements -------------------------------------------------------

    fn statement(&mut self) -> Result<Stmt, ScriptError> {
        let line = self.line();
        match self.peek().kind {
            TokenKind::Var => self.var_decl(),
            TokenKind::Function => self.func_decl(),
            TokenKind::If => self.if_stmt(),
            TokenKind::While => self.while_stmt(),
            TokenKind::Do => self.do_while_stmt(),
            TokenKind::For => self.for_stmt(),
            TokenKind::Return => {
                self.advance();
                let value = if self.check(&TokenKind::Semicolon) || self.check(&TokenKind::RBrace) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.eat(&TokenKind::Semicolon);
                Ok(Stmt::Return { value, line })
            }
            TokenKind::Break => {
                self.advance();
                self.eat(&TokenKind::Semicolon);
                Ok(Stmt::Break { line })
            }
            TokenKind::Continue => {
                self.advance();
                self.eat(&TokenKind::Semicolon);
                Ok(Stmt::Continue { line })
            }
            TokenKind::LBrace => self.block(),
            TokenKind::Semicolon => {
                self.advance();
                Ok(Stmt::Empty { line })
            }
            _ => {
                let expr = self.expression()?;
                self.eat(&TokenKind::Semicolon);
                Ok(Stmt::Expr { expr, line })
            }
        }
    }

    fn var_decl(&mut self) -> Result<Stmt, ScriptError> {
        let line = self.line();
        self.advance(); // var
        let mut decls = Vec::new();
        loop {
            let name = self.expect_ident("after `var`")?;
            let init = if self.eat(&TokenKind::Assign) {
                Some(self.assignment()?)
            } else {
                None
            };
            decls.push((name, init));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.eat(&TokenKind::Semicolon);
        Ok(Stmt::Var { decls, line })
    }

    fn func_decl(&mut self) -> Result<Stmt, ScriptError> {
        let line = self.line();
        self.advance(); // function
        let name = self.expect_ident("after `function`")?;
        let (params, body) = self.func_rest()?;
        Ok(Stmt::Func {
            name,
            params,
            body,
            line,
        })
    }

    /// Parses `(params) { body }` shared by declarations and expressions.
    fn func_rest(&mut self) -> Result<FuncRest, ScriptError> {
        self.expect(&TokenKind::LParen, "before parameter list")?;
        let mut params = Vec::new();
        if !self.check(&TokenKind::RParen) {
            loop {
                params.push(self.expect_ident("in parameter list")?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen, "after parameter list")?;
        self.expect(&TokenKind::LBrace, "before function body")?;
        let mut body = Vec::new();
        while !self.check(&TokenKind::RBrace) {
            if self.check(&TokenKind::Eof) {
                return Err(self.err("unterminated function body"));
            }
            body.push(self.statement()?);
        }
        self.advance(); // }
        Ok((params, Rc::new(body)))
    }

    fn if_stmt(&mut self) -> Result<Stmt, ScriptError> {
        let line = self.line();
        self.advance(); // if
        self.expect(&TokenKind::LParen, "after `if`")?;
        let cond = self.expression()?;
        self.expect(&TokenKind::RParen, "after if condition")?;
        let then = Box::new(self.statement()?);
        let els = if self.eat(&TokenKind::Else) {
            Some(Box::new(self.statement()?))
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then,
            els,
            line,
        })
    }

    fn while_stmt(&mut self) -> Result<Stmt, ScriptError> {
        let line = self.line();
        self.advance(); // while
        self.expect(&TokenKind::LParen, "after `while`")?;
        let cond = self.expression()?;
        self.expect(&TokenKind::RParen, "after while condition")?;
        let body = Box::new(self.statement()?);
        Ok(Stmt::While { cond, body, line })
    }

    fn do_while_stmt(&mut self) -> Result<Stmt, ScriptError> {
        let line = self.line();
        self.advance(); // do
        let body = Box::new(self.statement()?);
        self.expect(&TokenKind::While, "after do-while body")?;
        self.expect(&TokenKind::LParen, "after `while`")?;
        let cond = self.expression()?;
        self.expect(&TokenKind::RParen, "after do-while condition")?;
        self.eat(&TokenKind::Semicolon);
        Ok(Stmt::DoWhile { body, cond, line })
    }

    fn for_stmt(&mut self) -> Result<Stmt, ScriptError> {
        let line = self.line();
        self.advance(); // for
        self.expect(&TokenKind::LParen, "after `for`")?;
        // for (var name in object) — lookahead for the `in` form.
        if self.check(&TokenKind::Var) {
            if let (TokenKind::Ident(name), TokenKind::In) = (
                self.tokens[self.pos + 1].kind.clone(),
                self.tokens[(self.pos + 2).min(self.tokens.len() - 1)]
                    .kind
                    .clone(),
            ) {
                self.advance(); // var
                self.advance(); // name
                self.advance(); // in
                let object = self.expression()?;
                self.expect(&TokenKind::RParen, "after for-in object")?;
                let body = Box::new(self.statement()?);
                return Ok(Stmt::ForIn {
                    name: name.into(),
                    object,
                    body,
                    line,
                });
            }
        }
        let init = if self.eat(&TokenKind::Semicolon) {
            None
        } else if self.check(&TokenKind::Var) {
            Some(Box::new(self.var_decl()?))
        } else {
            let expr = self.expression()?;
            let init_line = line;
            self.expect(&TokenKind::Semicolon, "after for initializer")?;
            Some(Box::new(Stmt::Expr {
                expr,
                line: init_line,
            }))
        };
        let cond = if self.check(&TokenKind::Semicolon) {
            None
        } else {
            Some(self.expression()?)
        };
        self.expect(&TokenKind::Semicolon, "after for condition")?;
        let step = if self.check(&TokenKind::RParen) {
            None
        } else {
            Some(self.expression()?)
        };
        self.expect(&TokenKind::RParen, "after for clauses")?;
        let body = Box::new(self.statement()?);
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
            line,
        })
    }

    fn block(&mut self) -> Result<Stmt, ScriptError> {
        let line = self.line();
        self.advance(); // {
        let mut body = Vec::new();
        while !self.check(&TokenKind::RBrace) {
            if self.check(&TokenKind::Eof) {
                return Err(self.err("unterminated block"));
            }
            body.push(self.statement()?);
        }
        self.advance(); // }
        Ok(Stmt::Block { body, line })
    }

    // ---- expressions ------------------------------------------------------

    fn expression(&mut self) -> Result<Expr, ScriptError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, ScriptError> {
        let target = self.ternary()?;
        let op = match self.peek().kind {
            TokenKind::Assign => None,
            TokenKind::PlusAssign => Some(BinOp::Add),
            TokenKind::MinusAssign => Some(BinOp::Sub),
            TokenKind::StarAssign => Some(BinOp::Mul),
            TokenKind::SlashAssign => Some(BinOp::Div),
            TokenKind::PercentAssign => Some(BinOp::Rem),
            _ => return Ok(target),
        };
        if !target.is_lvalue() {
            return Err(self.err("invalid assignment target"));
        }
        self.advance(); // the assignment operator
        let value = self.assignment()?;
        Ok(Expr::Assign {
            target: Box::new(target),
            op,
            value: Box::new(value),
        })
    }

    fn ternary(&mut self) -> Result<Expr, ScriptError> {
        let cond = self.logical_or()?;
        if self.eat(&TokenKind::Question) {
            let then = self.assignment()?;
            self.expect(&TokenKind::Colon, "in ternary expression")?;
            let els = self.assignment()?;
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
            })
        } else {
            Ok(cond)
        }
    }

    fn logical_or(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.logical_and()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.logical_and()?;
            lhs = Expr::Logical {
                op: LogicalOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn logical_and(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.equality()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.equality()?;
            lhs = Expr::Logical {
                op: LogicalOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.comparison()?;
        loop {
            // `===`/`!==` are strict in JS; PogoScript's `==`/`!=` are
            // already strict, so both spellings map to the same ops.
            let op = match self.peek().kind {
                TokenKind::EqEq | TokenKind::EqEqEq => BinOp::Eq,
                TokenKind::NotEq | TokenKind::NotEqEq => BinOp::NotEq,
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.comparison()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn comparison(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Ge => BinOp::Ge,
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.additive()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn additive(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn unary(&mut self) -> Result<Expr, ScriptError> {
        let op = match self.peek().kind {
            TokenKind::Not => Some(UnaryOp::Not),
            TokenKind::Minus => Some(UnaryOp::Neg),
            TokenKind::Plus => Some(UnaryOp::Plus),
            TokenKind::Typeof => Some(UnaryOp::Typeof),
            TokenKind::PlusPlus | TokenKind::MinusMinus => {
                let increment = self.peek().kind == TokenKind::PlusPlus;
                self.advance();
                let target = self.unary()?;
                if !target.is_lvalue() {
                    return Err(self.err("invalid increment/decrement target"));
                }
                return Ok(Expr::Update {
                    target: Box::new(target),
                    increment,
                    prefix: true,
                });
            }
            _ => None,
        };
        match op {
            Some(op) => {
                self.advance();
                let expr = self.unary()?;
                Ok(Expr::Unary {
                    op,
                    expr: Box::new(expr),
                })
            }
            None => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ScriptError> {
        let mut expr = self.primary()?;
        loop {
            match self.peek().kind {
                TokenKind::Dot => {
                    self.advance();
                    let name = self.expect_ident("after `.`")?;
                    expr = Expr::Member {
                        object: Box::new(expr),
                        name,
                    };
                }
                TokenKind::LBracket => {
                    self.advance();
                    let index = self.expression()?;
                    self.expect(&TokenKind::RBracket, "after index expression")?;
                    expr = Expr::Index {
                        object: Box::new(expr),
                        index: Box::new(index),
                    };
                }
                TokenKind::LParen => {
                    let line = self.line();
                    self.advance();
                    let mut args = Vec::new();
                    if !self.check(&TokenKind::RParen) {
                        loop {
                            args.push(self.assignment()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen, "after call arguments")?;
                    expr = Expr::Call {
                        callee: Box::new(expr),
                        args,
                        line,
                    };
                }
                TokenKind::PlusPlus | TokenKind::MinusMinus => {
                    let increment = self.peek().kind == TokenKind::PlusPlus;
                    if !expr.is_lvalue() {
                        return Ok(expr); // e.g. `a + b ++` is a parse-level oddity; stop here
                    }
                    self.advance();
                    expr = Expr::Update {
                        target: Box::new(expr),
                        increment,
                        prefix: false,
                    };
                }
                _ => return Ok(expr),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, ScriptError> {
        let tok = self.advance();
        match tok.kind {
            TokenKind::Number(n) => Ok(Expr::Number(n)),
            TokenKind::Str(s) => Ok(Expr::Str(s.into())),
            TokenKind::True => Ok(Expr::Bool(true)),
            TokenKind::False => Ok(Expr::Bool(false)),
            TokenKind::Null | TokenKind::Undefined => Ok(Expr::Null),
            TokenKind::Ident(name) => Ok(Expr::Ident(name.into())),
            TokenKind::LParen => {
                let expr = self.expression()?;
                self.expect(&TokenKind::RParen, "after parenthesized expression")?;
                Ok(expr)
            }
            TokenKind::LBracket => {
                let mut items = Vec::new();
                if !self.check(&TokenKind::RBracket) {
                    loop {
                        items.push(self.assignment()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                        // allow trailing comma
                        if self.check(&TokenKind::RBracket) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RBracket, "after array literal")?;
                Ok(Expr::Array(items))
            }
            TokenKind::LBrace => {
                let mut props = Vec::new();
                if !self.check(&TokenKind::RBrace) {
                    loop {
                        let key = match self.peek().kind.clone() {
                            TokenKind::Ident(name) => {
                                self.advance();
                                name
                            }
                            TokenKind::Str(s) => {
                                self.advance();
                                s
                            }
                            other => {
                                return Err(
                                    self.err(format!("expected object key, found `{other}`"))
                                )
                            }
                        };
                        self.expect(&TokenKind::Colon, "after object key")?;
                        let value = self.assignment()?;
                        props.push((key.into(), value));
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                        if self.check(&TokenKind::RBrace) {
                            break; // trailing comma
                        }
                    }
                }
                self.expect(&TokenKind::RBrace, "after object literal")?;
                Ok(Expr::Object(props))
            }
            TokenKind::Function => {
                let (params, body) = self.func_rest()?;
                Ok(Expr::Func { params, body })
            }
            other => Err(ScriptError::new(
                ErrorKind::Parse,
                format!("unexpected token `{other}`"),
                tok.line,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_var_with_multiple_decls() {
        let p = parse("var a = 1, b, c = 'x';").unwrap();
        match &p[0] {
            Stmt::Var { decls, .. } => {
                assert_eq!(decls.len(), 3);
                assert_eq!(&*decls[0].0, "a");
                assert!(decls[1].1.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("1 + 2 * 3;").unwrap();
        match &p[0] {
            Stmt::Expr {
                expr:
                    Expr::Binary {
                        op: BinOp::Add,
                        rhs,
                        ..
                    },
                ..
            } => {
                assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_nested_member_index_call_chain() {
        let p = parse("a.b[0].c(1, 2)(3);").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn function_declaration_and_expression() {
        let p = parse("function f(a, b) { return a + b; } var g = function (x) { return x; };")
            .unwrap();
        assert!(matches!(p[0], Stmt::Func { .. }));
        match &p[1] {
            Stmt::Var { decls, .. } => {
                assert!(matches!(decls[0].1, Some(Expr::Func { .. })));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_classic_for_loop() {
        let p = parse("for (var i = 0; i < 10; i++) { x += i; }").unwrap();
        match &p[0] {
            Stmt::For {
                init, cond, step, ..
            } => {
                assert!(init.is_some());
                assert!(cond.is_some());
                assert!(matches!(
                    step,
                    Some(Expr::Update {
                        prefix: false,
                        increment: true,
                        ..
                    })
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn for_loop_with_empty_clauses() {
        let p = parse("for (;;) break;").unwrap();
        match &p[0] {
            Stmt::For {
                init, cond, step, ..
            } => {
                assert!(init.is_none() && cond.is_none() && step.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn object_literal_with_string_and_ident_keys() {
        let p = parse("var o = { interval: 60000, 'provider': 'GPS' };").unwrap();
        match &p[0] {
            Stmt::Var { decls, .. } => match &decls[0].1 {
                Some(Expr::Object(props)) => {
                    assert_eq!(&*props[0].0, "interval");
                    assert_eq!(&*props[1].0, "provider");
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn strict_and_loose_equality_both_map_to_eq() {
        let a = parse("a == b;").unwrap();
        let b = parse("a === b;").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ternary_parses_right_associative() {
        let p = parse("a ? b : c ? d : e;").unwrap();
        match &p[0] {
            Stmt::Expr {
                expr: Expr::Ternary { els, .. },
                ..
            } => assert!(matches!(**els, Expr::Ternary { .. })),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn invalid_assignment_target_rejected() {
        let err = parse("1 = 2;").unwrap_err();
        assert!(err.message().contains("assignment target"));
    }

    #[test]
    fn error_carries_line_number() {
        let err = parse("var x = 1;\nvar = 2;").unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn unterminated_block_reports_error() {
        assert!(parse("{ var x = 1;").is_err());
        assert!(parse("function f() { ").is_err());
    }

    #[test]
    fn trailing_commas_allowed_in_literals() {
        assert!(parse("var a = [1, 2, 3,];").is_ok());
        assert!(parse("var o = { a: 1, b: 2, };").is_ok());
    }

    #[test]
    fn listing2_roguefinder_fragment_parses() {
        // The paper's Listing 2, verbatim modulo the API functions being
        // plain identifiers here.
        let src = r#"
function start()
{
    var polygon = [{ x:1, y:1}, { x:2, y:2 }, { x:3, y:0 }];

    var subscription = subscribe('wifi-scan', function(msg) {
        publish(msg, 'filtered-scans');
    }, { interval : 60 * 1000 });

    subscription.release();

    subscribe('location', function(msg) {
        if (locationInPolygon(msg, polygon))
            subscription.renew();
        else
            subscription.release();
    });
}
"#;
        let p = parse(src).unwrap();
        assert_eq!(p.len(), 1);
    }
}
