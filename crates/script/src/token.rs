//! Token definitions for the PogoScript lexer.

use std::fmt;

/// A lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// Every token kind PogoScript knows.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals and identifiers
    Number(f64),
    Str(String),
    Ident(String),

    // Keywords
    Var,
    Function,
    Do,
    In,
    Return,
    If,
    Else,
    While,
    For,
    Break,
    Continue,
    True,
    False,
    Null,
    Undefined,
    Typeof,

    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Colon,
    Dot,
    Question,

    // Operators
    Assign,        // =
    PlusAssign,    // +=
    MinusAssign,   // -=
    StarAssign,    // *=
    SlashAssign,   // /=
    PercentAssign, // %=
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    PlusPlus,
    MinusMinus,
    EqEq,   // == (strict in PogoScript)
    NotEq,  // !=
    EqEqEq, // ===
    NotEqEq,
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    Not,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Keyword lookup for identifiers.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        Some(match word {
            "var" => TokenKind::Var,
            "do" => TokenKind::Do,
            "in" => TokenKind::In,
            "let" => TokenKind::Var, // accepted as a synonym
            "function" => TokenKind::Function,
            "return" => TokenKind::Return,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "for" => TokenKind::For,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "null" => TokenKind::Null,
            "undefined" => TokenKind::Undefined,
            "typeof" => TokenKind::Typeof,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Number(n) => write!(f, "{n}"),
            Str(s) => write!(f, "{s:?}"),
            Ident(s) => write!(f, "{s}"),
            Var => write!(f, "var"),
            Do => write!(f, "do"),
            In => write!(f, "in"),
            Function => write!(f, "function"),
            Return => write!(f, "return"),
            If => write!(f, "if"),
            Else => write!(f, "else"),
            While => write!(f, "while"),
            For => write!(f, "for"),
            Break => write!(f, "break"),
            Continue => write!(f, "continue"),
            True => write!(f, "true"),
            False => write!(f, "false"),
            Null => write!(f, "null"),
            Undefined => write!(f, "undefined"),
            Typeof => write!(f, "typeof"),
            LParen => write!(f, "("),
            RParen => write!(f, ")"),
            LBrace => write!(f, "{{"),
            RBrace => write!(f, "}}"),
            LBracket => write!(f, "["),
            RBracket => write!(f, "]"),
            Comma => write!(f, ","),
            Semicolon => write!(f, ";"),
            Colon => write!(f, ":"),
            Dot => write!(f, "."),
            Question => write!(f, "?"),
            Assign => write!(f, "="),
            PlusAssign => write!(f, "+="),
            MinusAssign => write!(f, "-="),
            StarAssign => write!(f, "*="),
            SlashAssign => write!(f, "/="),
            PercentAssign => write!(f, "%="),
            Plus => write!(f, "+"),
            Minus => write!(f, "-"),
            Star => write!(f, "*"),
            Slash => write!(f, "/"),
            Percent => write!(f, "%"),
            PlusPlus => write!(f, "++"),
            MinusMinus => write!(f, "--"),
            EqEq => write!(f, "=="),
            NotEq => write!(f, "!="),
            EqEqEq => write!(f, "==="),
            NotEqEq => write!(f, "!=="),
            Lt => write!(f, "<"),
            Gt => write!(f, ">"),
            Le => write!(f, "<="),
            Ge => write!(f, ">="),
            AndAnd => write!(f, "&&"),
            OrOr => write!(f, "||"),
            Not => write!(f, "!"),
            Eof => write!(f, "<eof>"),
        }
    }
}
