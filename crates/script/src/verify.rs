//! Structural bytecode verifier.
//!
//! [`verify`] checks every invariant the VM's hot loop relies on, so a
//! compiler (or optimizer) bug surfaces as a deterministic
//! [`VerifyError`] with a stable `VERIFY_*` code instead of a VM panic
//! that the differential fuzz happens to miss. The checks are in three
//! layers:
//!
//! 1. **Table shape** — side tables are internally consistent:
//!    `lines` parallels `ops`, site/chain names are non-empty,
//!    resolution chains have at least one candidate with slot/upvalue
//!    references inside the frame, params fit the frame, and nested
//!    prototypes' upvalue recipes index *their parent's* frame/upvalue
//!    space.
//! 2. **Operand bounds** — every instruction's operand indexes its
//!    side table in bounds, and every jump target lands inside the
//!    instruction stream. Checked for *all* instructions, reachable or
//!    not, because dead code is still decoded by tooling.
//! 3. **Stack discipline** — an abstract stack-depth simulation over
//!    the reachable instructions proves the operand stack never
//!    underflows, every control-flow join is entered at one consistent
//!    depth, and execution cannot fall off the end of the stream.
//!
//! A chunk that passes all three is *marked verified*
//! ([`Chunk::is_verified`]), which licenses the VM's unchecked
//! instruction fetch: layer 2 plus the fall-through check guarantee
//! the instruction pointer stays in bounds, and layer 3 guarantees
//! `pop()` always has an operand. The mark lives on the exact chunk
//! object and is deliberately dropped by `Chunk::clone`, so
//! hand-mutated copies (the mutation-test harness, hostile inputs)
//! never inherit the privilege.

use std::fmt;

use crate::bytecode::{ChainRef, Chunk, CompiledProgram, FnProto, Op, UpvalSrc};

/// Every code a [`VerifyError`] can carry. The set and spellings are
/// stable: tests, CI gates, and `pogo-lint --json` consumers match on
/// them, so treat additions as append-only.
pub const VERIFY_CODES: &[&str] = &[
    "VERIFY_LINES_LEN",
    "VERIFY_EMPTY_CHUNK",
    "VERIFY_PARAM_SLOT",
    "VERIFY_UPVAL_SRC",
    "VERIFY_SITE_NAME",
    "VERIFY_CHAIN_SHAPE",
    "VERIFY_CONST_INDEX",
    "VERIFY_PROTO_INDEX",
    "VERIFY_SHAPE_INDEX",
    "VERIFY_SLOT_INDEX",
    "VERIFY_UPVAL_INDEX",
    "VERIFY_GLOBAL_INDEX",
    "VERIFY_MEMBER_INDEX",
    "VERIFY_CHAIN_INDEX",
    "VERIFY_MATH_INDEX",
    "VERIFY_OPERAND",
    "VERIFY_JUMP_TARGET",
    "VERIFY_STACK_UNDERFLOW",
    "VERIFY_STACK_MERGE",
    "VERIFY_FALLTHROUGH_END",
];

/// A structural defect in a compiled chunk. `code` is from
/// [`VERIFY_CODES`]; `func` is a dotted path of function names from
/// `<main>` down; `at` is the offending instruction index (0 for
/// table-level defects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    pub code: &'static str,
    pub func: String,
    pub at: usize,
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in {} at {:04}: {}",
            self.code, self.func, self.at, self.message
        )
    }
}

impl std::error::Error for VerifyError {}

/// Verify a whole compiled program. On success every chunk in it
/// (main and all nested prototypes) is marked verified for the VM
/// fast path; on failure nothing is marked.
pub fn verify(program: &CompiledProgram) -> Result<(), VerifyError> {
    check(program)?;
    mark_all(&program.main);
    Ok(())
}

/// Run all checks without granting the fast-path mark. Useful for
/// diagnosing chunks you do not intend to run (mutation harnesses).
pub fn check(program: &CompiledProgram) -> Result<(), VerifyError> {
    verify_proto(&program.main, None, &mut String::from("<main>"))
}

fn mark_all(proto: &FnProto) {
    proto.chunk.mark_verified();
    for p in &proto.chunk.protos {
        mark_all(p);
    }
}

fn err(code: &'static str, func: &str, at: usize, message: String) -> VerifyError {
    debug_assert!(VERIFY_CODES.contains(&code));
    VerifyError {
        code,
        func: func.to_owned(),
        at,
        message,
    }
}

fn verify_proto(
    proto: &FnProto,
    parent: Option<&FnProto>,
    path: &mut String,
) -> Result<(), VerifyError> {
    let chunk = &proto.chunk;
    verify_tables(proto, parent, path)?;
    verify_operands(proto, path)?;
    verify_stack(chunk, path)?;
    for p in &chunk.protos {
        let saved = path.len();
        path.push('.');
        path.push_str(&p.name);
        verify_proto(p, Some(proto), path)?;
        path.truncate(saved);
    }
    Ok(())
}

/// Layer 1: side tables and the function header.
fn verify_tables(proto: &FnProto, parent: Option<&FnProto>, path: &str) -> Result<(), VerifyError> {
    let chunk = &proto.chunk;
    if chunk.lines.len() != chunk.ops.len() {
        return Err(err(
            "VERIFY_LINES_LEN",
            path,
            0,
            format!(
                "line table has {} entries for {} instructions",
                chunk.lines.len(),
                chunk.ops.len()
            ),
        ));
    }
    if chunk.ops.is_empty() {
        // The VM fetches ops[0] unconditionally on frame entry.
        return Err(err(
            "VERIFY_EMPTY_CHUNK",
            path,
            0,
            "instruction stream is empty (no terminator)".into(),
        ));
    }
    for &(slot, _) in &proto.params {
        if slot >= chunk.n_slots {
            return Err(err(
                "VERIFY_PARAM_SLOT",
                path,
                0,
                format!(
                    "parameter slot {slot} outside frame of {} slots",
                    chunk.n_slots
                ),
            ));
        }
    }
    match parent {
        None => {
            if !proto.upvals.is_empty() {
                return Err(err(
                    "VERIFY_UPVAL_SRC",
                    path,
                    0,
                    "top-level function cannot capture upvalues".into(),
                ));
            }
        }
        Some(parent) => {
            for (i, src) in proto.upvals.iter().enumerate() {
                let ok = match *src {
                    UpvalSrc::ParentCell(s) => s < parent.chunk.n_slots,
                    UpvalSrc::ParentUpval(u) => (u as usize) < parent.upvals.len(),
                };
                if !ok {
                    return Err(err(
                        "VERIFY_UPVAL_SRC",
                        path,
                        0,
                        format!("upvalue {i} recipe {src:?} outside parent frame"),
                    ));
                }
            }
        }
    }
    for site in chunk.globals.iter().map(|s| &s.name).chain(
        chunk
            .members
            .iter()
            .map(|s| &s.name)
            .chain(chunk.chains.iter().map(|c| &c.name)),
    ) {
        if site.is_empty() {
            return Err(err(
                "VERIFY_SITE_NAME",
                path,
                0,
                "named access site with empty name".into(),
            ));
        }
    }
    for (i, chain) in chunk.chains.iter().enumerate() {
        if chain.cands.is_empty() {
            return Err(err(
                "VERIFY_CHAIN_SHAPE",
                path,
                0,
                format!("chain {i} ({}) has no candidates", chain.name),
            ));
        }
        for (j, cand) in chain.cands.iter().enumerate() {
            let (ok, last_only) = match *cand {
                ChainRef::Local(s) | ChainRef::CellSlot(s) => (s < chunk.n_slots, false),
                ChainRef::Upval(u) => ((u as usize) < proto.upvals.len(), false),
                // The compiler emits the global fallback only as the
                // final candidate; a mid-chain global would shadow
                // later frame candidates and change probe semantics.
                ChainRef::Global => (true, true),
            };
            if !ok {
                return Err(err(
                    "VERIFY_CHAIN_SHAPE",
                    path,
                    0,
                    format!(
                        "chain {i} ({}) candidate {j} {cand:?} out of range",
                        chain.name
                    ),
                ));
            }
            if last_only && j + 1 != chain.cands.len() {
                return Err(err(
                    "VERIFY_CHAIN_SHAPE",
                    path,
                    0,
                    format!(
                        "chain {i} ({}) has Global candidate before the end",
                        chain.name
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Layer 2: operand bounds for every instruction, reachable or not.
fn verify_operands(proto: &FnProto, path: &str) -> Result<(), VerifyError> {
    let chunk = &proto.chunk;
    let n_ops = chunk.ops.len();
    let oob = |code: &'static str, at: usize, what: &str, idx: usize, len: usize| {
        Err(err(
            code,
            path,
            at,
            format!("{what} index {idx} out of range (table has {len})"),
        ))
    };
    for (at, &op) in chunk.ops.iter().enumerate() {
        match op {
            Op::Const(i) if i as usize >= chunk.consts.len() => {
                return oob(
                    "VERIFY_CONST_INDEX",
                    at,
                    "constant",
                    i as usize,
                    chunk.consts.len(),
                );
            }
            Op::MakeClosure(i) if i as usize >= chunk.protos.len() => {
                return oob(
                    "VERIFY_PROTO_INDEX",
                    at,
                    "prototype",
                    i as usize,
                    chunk.protos.len(),
                );
            }
            Op::MakeObject(i) if i as usize >= chunk.shapes.len() => {
                return oob(
                    "VERIFY_SHAPE_INDEX",
                    at,
                    "shape",
                    i as usize,
                    chunk.shapes.len(),
                );
            }
            Op::LoadLocal(s)
            | Op::StoreLocal(s)
            | Op::DeclLocal(s)
            | Op::LoadCell(s)
            | Op::StoreCell(s)
            | Op::DeclCell(s)
            | Op::NewCell(s)
            | Op::ClearSlot(s)
            | Op::ForInPrep(s)
            | Op::ForInNext(s, _)
                if s >= chunk.n_slots =>
            {
                return oob(
                    "VERIFY_SLOT_INDEX",
                    at,
                    "frame slot",
                    s as usize,
                    chunk.n_slots as usize,
                );
            }
            Op::LoadUpval(u) | Op::StoreUpval(u) if u as usize >= proto.upvals.len() => {
                return oob(
                    "VERIFY_UPVAL_INDEX",
                    at,
                    "upvalue",
                    u as usize,
                    proto.upvals.len(),
                );
            }
            Op::LoadGlobal(i) | Op::StoreGlobal(i) | Op::DeclGlobal(i)
                if i as usize >= chunk.globals.len() =>
            {
                return oob(
                    "VERIFY_GLOBAL_INDEX",
                    at,
                    "global site",
                    i as usize,
                    chunk.globals.len(),
                );
            }
            Op::GetMember(i) | Op::SetMember(i) | Op::CallMethod(i, _)
                if i as usize >= chunk.members.len() =>
            {
                return oob(
                    "VERIFY_MEMBER_INDEX",
                    at,
                    "member site",
                    i as usize,
                    chunk.members.len(),
                );
            }
            Op::LoadChain(i) | Op::StoreChain(i) if i as usize >= chunk.chains.len() => {
                return oob(
                    "VERIFY_CHAIN_INDEX",
                    at,
                    "chain",
                    i as usize,
                    chunk.chains.len(),
                );
            }
            Op::MathCall(f, _) => {
                let n = crate::builtins::MATH_DISPATCH.len();
                if f as usize >= n {
                    return oob("VERIFY_MATH_INDEX", at, "Math builtin", f as usize, n);
                }
            }
            Op::FlowErr(kind) if kind > 1 => {
                return Err(err(
                    "VERIFY_OPERAND",
                    path,
                    at,
                    format!("FlowErr kind {kind} (expected 0=break or 1=continue)"),
                ));
            }
            Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTruePeek(t) | Op::JumpIfFalsePeek(t)
                if t as usize >= n_ops =>
            {
                return oob("VERIFY_JUMP_TARGET", at, "jump target", t as usize, n_ops);
            }
            _ => {}
        }
        // ForInNext carries a jump target too, alongside its slot.
        if let Op::ForInNext(_, t) = op {
            if t as usize >= n_ops {
                return oob("VERIFY_JUMP_TARGET", at, "jump target", t as usize, n_ops);
            }
        }
    }
    Ok(())
}

/// `(pops, pushes)` of one instruction, mirroring `vm.rs` exactly.
/// Jump-related asymmetries (ForInNext) are handled by the caller.
fn stack_effect(op: Op, chunk: &Chunk) -> (usize, usize) {
    match op {
        Op::Const(_)
        | Op::PushNull
        | Op::PushTrue
        | Op::PushFalse
        | Op::MakeClosure(_)
        | Op::LoadLocal(_)
        | Op::LoadCell(_)
        | Op::LoadUpval(_)
        | Op::LoadGlobal(_)
        | Op::LoadChain(_) => (0, 1),
        Op::MakeArray(n) => (n as usize, 1),
        Op::MakeObject(i) => (chunk.shapes[i as usize].len(), 1),
        // Stores peek the value (it remains the expression result).
        Op::StoreLocal(_)
        | Op::StoreCell(_)
        | Op::StoreUpval(_)
        | Op::StoreGlobal(_)
        | Op::StoreChain(_) => (1, 1),
        Op::DeclLocal(_) | Op::DeclCell(_) | Op::DeclGlobal(_) => (1, 0),
        Op::NewCell(_) | Op::ClearSlot(_) => (0, 0),
        Op::Pop | Op::SetResult => (1, 0),
        Op::Dup => (1, 2),
        Op::Swap => (2, 2),
        Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::Rem
        | Op::Eq
        | Op::Ne
        | Op::Lt
        | Op::Gt
        | Op::Le
        | Op::Ge => (2, 1),
        Op::Not | Op::Neg | Op::UnaryPlus | Op::TypeOf | Op::Inc | Op::Dec => (1, 1),
        Op::GetMember(_) => (1, 1),
        // SetMember pops the object; the stored value stays pushed.
        Op::SetMember(_) => (2, 1),
        Op::GetIndex => (2, 1),
        // SetIndex pops index and object; the value stays pushed.
        Op::SetIndex => (3, 1),
        Op::Call(n) => (n as usize + 1, 1),
        Op::CallMethod(_, n) => (n as usize + 1, 1),
        Op::MathCall(_, n) => (n as usize, 1),
        Op::Jump(_) => (0, 0),
        Op::JumpIfFalse(_) => (1, 0),
        // Peeks require an operand but leave it in place.
        Op::JumpIfTruePeek(_) | Op::JumpIfFalsePeek(_) => (1, 1),
        Op::Return => (1, 0),
        Op::ReturnNull | Op::ReturnResult | Op::FlowErr(_) => (0, 0),
        Op::ForInPrep(_) => (1, 0),
        // Fall-through pushes the next key; the exit edge pushes
        // nothing. Modeled explicitly in the walk below.
        Op::ForInNext(_, _) => (0, 0),
    }
}

/// Layer 3: abstract stack-depth walk over reachable instructions.
fn verify_stack(chunk: &Chunk, path: &str) -> Result<(), VerifyError> {
    let n_ops = chunk.ops.len();
    let mut depth_in: Vec<Option<u32>> = vec![None; n_ops];
    let mut work: Vec<usize> = Vec::with_capacity(16);
    depth_in[0] = Some(0);
    work.push(0);

    // Records `depth` as the entry depth of `ip`, queueing it on first
    // visit and rejecting inconsistent joins.
    let flow_to = |depth_in: &mut Vec<Option<u32>>,
                   work: &mut Vec<usize>,
                   from: usize,
                   ip: usize,
                   depth: u32|
     -> Result<(), VerifyError> {
        match depth_in[ip] {
            None => {
                depth_in[ip] = Some(depth);
                work.push(ip);
                Ok(())
            }
            Some(prev) if prev == depth => Ok(()),
            Some(prev) => Err(err(
                "VERIFY_STACK_MERGE",
                path,
                from,
                format!("join at {ip:04} entered at depth {depth} but previously {prev}"),
            )),
        }
    };

    while let Some(ip) = work.pop() {
        let op = chunk.ops[ip];
        let d = depth_in[ip].expect("worklist entries have a depth");
        let (pops, pushes) = stack_effect(op, chunk);
        if (d as usize) < pops {
            return Err(err(
                "VERIFY_STACK_UNDERFLOW",
                path,
                ip,
                format!("{op:?} needs {pops} operand(s), stack has {d}"),
            ));
        }
        let out = d - pops as u32 + pushes as u32;
        match op {
            Op::Jump(t) => flow_to(&mut depth_in, &mut work, ip, t as usize, out)?,
            Op::JumpIfFalse(t) | Op::JumpIfTruePeek(t) | Op::JumpIfFalsePeek(t) => {
                flow_to(&mut depth_in, &mut work, ip, t as usize, out)?;
                if ip + 1 == n_ops {
                    return Err(fallthrough(path, ip, op));
                }
                flow_to(&mut depth_in, &mut work, ip, ip + 1, out)?;
            }
            Op::ForInNext(_, t) => {
                // Exit edge: nothing pushed. Fall-through: the key.
                flow_to(&mut depth_in, &mut work, ip, t as usize, out)?;
                if ip + 1 == n_ops {
                    return Err(fallthrough(path, ip, op));
                }
                flow_to(&mut depth_in, &mut work, ip, ip + 1, out + 1)?;
            }
            Op::Return | Op::ReturnNull | Op::ReturnResult | Op::FlowErr(_) => {}
            _ => {
                if ip + 1 == n_ops {
                    return Err(fallthrough(path, ip, op));
                }
                flow_to(&mut depth_in, &mut work, ip, ip + 1, out)?;
            }
        }
    }

    Ok(())
}

fn fallthrough(path: &str, ip: usize, op: Op) -> VerifyError {
    err(
        "VERIFY_FALLTHROUGH_END",
        path,
        ip,
        format!("{op:?} at end of stream can fall off the chunk"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn compiled(src: &str) -> CompiledProgram {
        compile(src).expect("fixture compiles")
    }

    #[test]
    fn verify_codes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in VERIFY_CODES {
            assert!(seen.insert(*c), "duplicate code {c}");
            assert!(c.starts_with("VERIFY_"));
        }
    }

    #[test]
    fn compiler_output_verifies_and_is_marked() {
        let prog = compiled(
            "var total = 0;\n\
             function add(x) { total = total + x; return total; }\n\
             for (var i = 0; i < 10; i++) { add(i); }\n\
             total;",
        );
        // compile() already verifies; re-check explicitly.
        check(&prog).expect("compiler output is structurally valid");
        assert!(prog.main.chunk.is_verified());
        for p in &prog.main.chunk.protos {
            assert!(p.chunk.is_verified());
        }
    }

    #[test]
    fn clone_drops_the_verified_mark() {
        let prog = compiled("var x = 1; x + 1;");
        assert!(prog.main.chunk.is_verified());
        let copy = prog.main.chunk.clone();
        assert!(!copy.is_verified());
    }

    #[test]
    fn truncated_chunk_is_rejected_not_panicked() {
        let prog = compiled("1 + 2;");
        let mut chunk = prog.main.chunk.clone();
        chunk.ops.pop(); // drop the ReturnResult terminator
        chunk.lines.pop();
        let main = std::rc::Rc::new(FnProto {
            name: prog.main.name.clone(),
            params: prog.main.params.clone(),
            upvals: prog.main.upvals.clone(),
            chunk,
        });
        let bad = CompiledProgram {
            main,
            op_count: prog.op_count,
            fn_count: prog.fn_count,
        };
        let e = check(&bad).unwrap_err();
        assert_eq!(e.code, "VERIFY_FALLTHROUGH_END");
    }
}
