//! The PogoScript lexer.

use crate::error::{ErrorKind, ScriptError};
use crate::token::{Token, TokenKind};

/// Tokenizes `source` into a vector ending with [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns [`ErrorKind::Parse`] errors for unterminated strings or
/// comments, malformed numbers, and unexpected characters.
pub fn tokenize(source: &str) -> Result<Vec<Token>, ScriptError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().peekable(),
            line: 1,
            tokens: Vec::new(),
        }
    }

    fn err(&self, msg: impl Into<String>) -> ScriptError {
        ScriptError::new(ErrorKind::Parse, msg, self.line)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if c == Some('\n') {
            self.line += 1;
        }
        c
    }

    fn eat(&mut self, expected: char) -> bool {
        if self.chars.peek() == Some(&expected) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn push(&mut self, kind: TokenKind, line: u32) {
        self.tokens.push(Token { kind, line });
    }

    fn run(mut self) -> Result<Vec<Token>, ScriptError> {
        while let Some(&c) = self.chars.peek() {
            let line = self.line;
            match c {
                ' ' | '\t' | '\r' | '\n' => {
                    self.bump();
                }
                '/' => {
                    self.bump();
                    if self.eat('/') {
                        while let Some(&c) = self.chars.peek() {
                            if c == '\n' {
                                break;
                            }
                            self.bump();
                        }
                    } else if self.eat('*') {
                        self.block_comment()?;
                    } else if self.eat('=') {
                        self.push(TokenKind::SlashAssign, line);
                    } else {
                        self.push(TokenKind::Slash, line);
                    }
                }
                '"' | '\'' => {
                    let s = self.string(c)?;
                    self.push(TokenKind::Str(s), line);
                }
                '0'..='9' => {
                    let n = self.number()?;
                    self.push(TokenKind::Number(n), line);
                }
                c if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                    let word = self.ident();
                    let kind = TokenKind::keyword(&word).unwrap_or(TokenKind::Ident(word));
                    self.push(kind, line);
                }
                _ => {
                    self.bump();
                    let kind = match c {
                        '(' => TokenKind::LParen,
                        ')' => TokenKind::RParen,
                        '{' => TokenKind::LBrace,
                        '}' => TokenKind::RBrace,
                        '[' => TokenKind::LBracket,
                        ']' => TokenKind::RBracket,
                        ',' => TokenKind::Comma,
                        ';' => TokenKind::Semicolon,
                        ':' => TokenKind::Colon,
                        '.' => TokenKind::Dot,
                        '?' => TokenKind::Question,
                        '+' => {
                            if self.eat('+') {
                                TokenKind::PlusPlus
                            } else if self.eat('=') {
                                TokenKind::PlusAssign
                            } else {
                                TokenKind::Plus
                            }
                        }
                        '-' => {
                            if self.eat('-') {
                                TokenKind::MinusMinus
                            } else if self.eat('=') {
                                TokenKind::MinusAssign
                            } else {
                                TokenKind::Minus
                            }
                        }
                        '*' => {
                            if self.eat('=') {
                                TokenKind::StarAssign
                            } else {
                                TokenKind::Star
                            }
                        }
                        '%' => {
                            if self.eat('=') {
                                TokenKind::PercentAssign
                            } else {
                                TokenKind::Percent
                            }
                        }
                        '=' => {
                            if self.eat('=') {
                                if self.eat('=') {
                                    TokenKind::EqEqEq
                                } else {
                                    TokenKind::EqEq
                                }
                            } else {
                                TokenKind::Assign
                            }
                        }
                        '!' => {
                            if self.eat('=') {
                                if self.eat('=') {
                                    TokenKind::NotEqEq
                                } else {
                                    TokenKind::NotEq
                                }
                            } else {
                                TokenKind::Not
                            }
                        }
                        '<' => {
                            if self.eat('=') {
                                TokenKind::Le
                            } else {
                                TokenKind::Lt
                            }
                        }
                        '>' => {
                            if self.eat('=') {
                                TokenKind::Ge
                            } else {
                                TokenKind::Gt
                            }
                        }
                        '&' => {
                            if self.eat('&') {
                                TokenKind::AndAnd
                            } else {
                                return Err(self.err("single '&' is not supported"));
                            }
                        }
                        '|' => {
                            if self.eat('|') {
                                TokenKind::OrOr
                            } else {
                                return Err(self.err("single '|' is not supported"));
                            }
                        }
                        other => {
                            return Err(self.err(format!("unexpected character {other:?}")));
                        }
                    };
                    self.push(kind, line);
                }
            }
        }
        let line = self.line;
        self.push(TokenKind::Eof, line);
        Ok(self.tokens)
    }

    fn block_comment(&mut self) -> Result<(), ScriptError> {
        loop {
            match self.bump() {
                Some('*') if self.eat('/') => return Ok(()),
                Some(_) => {}
                None => return Err(self.err("unterminated block comment")),
            }
        }
    }

    fn string(&mut self, quote: char) -> Result<String, ScriptError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(c) if c == quote => return Ok(out),
                Some('\\') => {
                    let esc = self.bump().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(match esc {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        '0' => '\0',
                        '\\' => '\\',
                        '\'' => '\'',
                        '"' => '"',
                        other => {
                            return Err(self.err(format!("unknown escape \\{other}")));
                        }
                    });
                }
                Some('\n') | None => return Err(self.err("unterminated string")),
                Some(c) => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<f64, ScriptError> {
        let mut text = String::new();
        while let Some(&c) = self.chars.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part: only if a digit follows the dot, so `a.b` after
        // a number literal (e.g. `1.toString`) is not mis-lexed — PogoScript
        // doesn't support that anyway, but `slice(0, arr.length)` must work.
        if self.chars.peek() == Some(&'.') {
            let mut clone = self.chars.clone();
            clone.next();
            if clone.peek().is_some_and(|c| c.is_ascii_digit()) {
                text.push('.');
                self.bump();
                while let Some(&c) = self.chars.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Exponent.
        if matches!(self.chars.peek(), Some('e') | Some('E')) {
            let mut clone = self.chars.clone();
            clone.next();
            let next = clone.peek().copied();
            if next.is_some_and(|c| c.is_ascii_digit() || c == '+' || c == '-') {
                text.push('e');
                self.bump();
                if matches!(self.chars.peek(), Some('+') | Some('-')) {
                    text.push(self.bump().expect("peeked"));
                }
                while let Some(&c) = self.chars.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        text.parse::<f64>()
            .map_err(|_| self.err(format!("malformed number literal {text:?}")))
    }

    fn ident(&mut self) -> String {
        let mut out = String::new();
        while let Some(&c) = self.chars.peek() {
            if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                out.push(c);
                self.bump();
            } else {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("var x = 1 + 2.5;"),
            vec![
                Var,
                Ident("x".into()),
                Assign,
                Number(1.0),
                Plus,
                Number(2.5),
                Semicolon,
                Eof
            ]
        );
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            kinds("function foo(bar) { return bar; }"),
            vec![
                Function,
                Ident("foo".into()),
                LParen,
                Ident("bar".into()),
                RParen,
                LBrace,
                Return,
                Ident("bar".into()),
                Semicolon,
                RBrace,
                Eof
            ]
        );
        // `let` lexes as Var.
        assert_eq!(kinds("let x;")[0], Var);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#"'a\n' "b\"c""#),
            vec![Str("a\n".into()), Str("b\"c".into()), Eof]
        );
    }

    #[test]
    fn unterminated_string_errors_with_line() {
        let err = tokenize("\n\n'oops").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Parse);
        assert_eq!(err.line(), 3);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 // line\n/* block\n over lines */ 2"),
            vec![Number(1.0), Number(2.0), Eof]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(tokenize("/* never ends").is_err());
    }

    #[test]
    fn multi_char_operators() {
        assert_eq!(
            kinds("== != === !== <= >= && || ++ -- += -= *= /= %="),
            vec![
                EqEq,
                NotEq,
                EqEqEq,
                NotEqEq,
                Le,
                Ge,
                AndAnd,
                OrOr,
                PlusPlus,
                MinusMinus,
                PlusAssign,
                MinusAssign,
                StarAssign,
                SlashAssign,
                PercentAssign,
                Eof
            ]
        );
    }

    #[test]
    fn numbers_with_exponent_and_member_dot() {
        assert_eq!(kinds("1e3"), vec![Number(1_000.0), Eof]);
        assert_eq!(kinds("2.5e-2"), vec![Number(0.025), Eof]);
        // The dot in `arr.length` is a member access, not a fraction.
        assert_eq!(
            kinds("a.length"),
            vec![Ident("a".into()), Dot, Ident("length".into()), Eof]
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = tokenize("a\nb\n\nc").unwrap();
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4, 4]);
    }

    #[test]
    fn unexpected_character_reports_error() {
        let err = tokenize("a # b").unwrap_err();
        assert!(err.message().contains("unexpected character"));
    }

    #[test]
    fn single_ampersand_rejected() {
        assert!(tokenize("a & b").is_err());
        assert!(tokenize("a | b").is_err());
    }
}
