//! The bytecode stack VM — the default PogoScript execution engine.
//!
//! One [`Machine`] executes one host invocation (a program run or a
//! callback). Script-to-script calls between compiled closures reuse
//! the machine's explicit frame stack (no host recursion); calls that
//! cross representations (a compiled closure invoking a tree-walk
//! closure or a native, and vice versa) go through
//! [`Interpreter::call_value`], which may nest another machine — the
//! shared `Interpreter::depth` counter bounds the total exactly like
//! the tree-walk's `MAX_DEPTH`.
//!
//! The watchdog is a per-instruction budget decrement on
//! `Interpreter::steps_remaining` — the same counter, message, and
//! error kind as the tree-walk's per-node check, so the 100 ms-budget
//! semantics (§4.5) are preserved across engines. Long-running natives
//! additionally charge their input size via `Interpreter::charge`.
//!
//! Error behavior is defined by delegation: every slow path (mixed-type
//! arithmetic, member/index access on odd receivers, method dispatch)
//! calls the *same* `Interpreter` helpers the tree-walk uses, so error
//! kinds and messages agree by construction. The fast paths only cover
//! cases those helpers succeed on.

use std::cell::RefCell;
use std::mem;
use std::rc::Rc;

use crate::ast::BinOp;
use crate::builtins;
use crate::bytecode::{ChainRef, CompiledProgram, FnProto, Op, UpvalSrc};
use crate::error::{ErrorKind, ScriptError};
use crate::interp::{Interpreter, MAX_DEPTH};
use crate::value::{Closure, ClosureRepr, ObjMap, UpvalCell, Value};

/// Runs a compiled program's main chunk in the interpreter's global
/// scope. The caller has armed the budget.
pub(crate) fn run_main(
    interp: &mut Interpreter,
    program: &CompiledProgram,
) -> Result<Value, ScriptError> {
    let mut machine = Machine::new(interp);
    machine.run(program.main.clone(), Rc::from([]), &[])
}

/// Calls a compiled closure (host callback delivery, or a tree-walk /
/// native caller invoking a compiled function value).
pub(crate) fn call_closure(
    interp: &mut Interpreter,
    proto: &Rc<FnProto>,
    upvals: &Rc<[UpvalCell]>,
    args: &[Value],
) -> Result<Value, ScriptError> {
    if interp.depth >= MAX_DEPTH {
        return Err(interp.rt_err(ErrorKind::StackOverflow, "call stack exhausted"));
    }
    interp.depth += 1;
    let result = {
        let mut machine = Machine::new(interp);
        machine.run(proto.clone(), upvals.clone(), args)
    };
    interp.depth -= 1;
    result
}

/// A frame slot. Bindings start [`Slot::Empty`] ("declaration has not
/// executed yet" — PogoScript `var` does not hoist) and become values
/// or shared cells; `for..in` iterator state hides in a slot too.
enum Slot {
    Empty,
    Val(Value),
    Cell(UpvalCell),
    Iter(Vec<Value>, usize),
}

/// An execution frame. The running frame lives *outside* the machine
/// (borrow-friendly for the dispatch loop); `Machine::frames` holds
/// only suspended callers.
struct Frame {
    proto: Rc<FnProto>,
    upvals: Rc<[UpvalCell]>,
    ip: usize,
    slot_base: usize,
    stack_base: usize,
}

struct Machine<'a> {
    interp: &'a mut Interpreter,
    stack: Vec<Value>,
    slots: Vec<Slot>,
    frames: Vec<Frame>,
    /// The main chunk's result register (top-level expression
    /// statements; the program value on fall-off).
    result: Value,
}

const TIMEOUT_MSG: &str = "instruction budget exhausted (callback watchdog)";

impl<'a> Machine<'a> {
    fn new(interp: &'a mut Interpreter) -> Self {
        Machine {
            interp,
            stack: Vec::with_capacity(16),
            slots: Vec::with_capacity(16),
            frames: Vec::new(),
            result: Value::Null,
        }
    }

    fn run(
        &mut self,
        proto: Rc<FnProto>,
        upvals: Rc<[UpvalCell]>,
        args: &[Value],
    ) -> Result<Value, ScriptError> {
        self.slots
            .resize_with(proto.chunk.n_slots as usize, || Slot::Empty);
        for (i, &(slot, is_cell)) in proto.params.iter().enumerate() {
            let v = args.get(i).cloned().unwrap_or(Value::Null);
            self.slots[slot as usize] = if is_cell {
                Slot::Cell(Rc::new(RefCell::new(Some(v))))
            } else {
                Slot::Val(v)
            };
        }
        let mut frame = Frame {
            proto,
            upvals,
            ip: 0,
            slot_base: 0,
            stack_base: 0,
        };
        let result = self.exec(&mut frame);
        if result.is_err() {
            // Each suspended frame was entered through `push_frame`,
            // which incremented the shared depth counter.
            self.interp.depth -= self.frames.len();
        }
        result
    }

    fn err(&self, kind: ErrorKind, msg: impl Into<String>) -> ScriptError {
        self.interp.rt_err(kind, msg)
    }

    fn internal_unbound(&self) -> ScriptError {
        // Unreachable for compiler-produced chunks (direct slot ops are
        // only emitted for statically-bound bindings); kept as an error
        // rather than a panic so no script input can crash the host.
        self.err(ErrorKind::Reference, "internal: unbound slot access")
    }

    fn pop(&mut self) -> Value {
        self.stack
            .pop()
            .expect("operand stack underflow (compiler invariant)")
    }

    fn top(&mut self) -> &mut Value {
        self.stack
            .last_mut()
            .expect("operand stack underflow (compiler invariant)")
    }

    /// Suspends `cur` and enters a compiled callee whose `argc`
    /// arguments are on top of the stack.
    fn push_frame(
        &mut self,
        cur: &mut Frame,
        proto: Rc<FnProto>,
        upvals: Rc<[UpvalCell]>,
        argc: usize,
    ) -> Result<(), ScriptError> {
        if self.interp.depth >= MAX_DEPTH {
            return Err(self.err(ErrorKind::StackOverflow, "call stack exhausted"));
        }
        self.interp.depth += 1;
        let slot_base = self.slots.len();
        self.slots
            .resize_with(slot_base + proto.chunk.n_slots as usize, || Slot::Empty);
        let args_start = self.stack.len() - argc;
        for (i, &(slot, is_cell)) in proto.params.iter().enumerate() {
            // Missing arguments become null; extras are dropped;
            // duplicate names share a slot so the last wins — the
            // tree-walk's sequential `declare` semantics.
            let v = self
                .stack
                .get(args_start + i)
                .cloned()
                .unwrap_or(Value::Null);
            self.slots[slot_base + slot as usize] = if is_cell {
                Slot::Cell(Rc::new(RefCell::new(Some(v))))
            } else {
                Slot::Val(v)
            };
        }
        self.stack.truncate(args_start);
        let callee = Frame {
            proto,
            upvals,
            ip: 0,
            slot_base,
            stack_base: self.stack.len(),
        };
        self.frames.push(mem::replace(cur, callee));
        Ok(())
    }

    /// Leaves the current frame with return value `v`. Returns the
    /// machine's final value when the root frame exits.
    fn pop_frame(&mut self, cur: &mut Frame, v: Value) -> Option<Value> {
        self.slots.truncate(cur.slot_base);
        self.stack.truncate(cur.stack_base);
        match self.frames.pop() {
            Some(prev) => {
                self.interp.depth -= 1;
                *cur = prev;
                self.stack.push(v);
                None
            }
            None => Some(v),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn exec(&mut self, cur: &mut Frame) -> Result<Value, ScriptError> {
        // The running frame's chunk is borrowed once per frame switch
        // (`'frame` iteration), not re-derived per instruction; the
        // borrow comes from a local `Rc` clone, so `self` stays free
        // for the dispatch arms. Source lines are *not* tracked per
        // instruction: `set_line!` materializes `current_line` only on
        // error paths and before delegating to interpreter helpers
        // that may fail — the only observers of the line number.
        'frame: loop {
            let proto = cur.proto.clone();
            let chunk = &proto.chunk;
            // Fast path: a chunk the verifier has accepted is known to
            // keep every ip inside `ops` (all jump targets are
            // in-bounds and no instruction falls off the end), so the
            // fetch can skip the bounds check. Unverified chunks —
            // clones, hand-built chunks in tests, or a compile whose
            // verification failed — keep the checked fetch.
            let fast = chunk.is_verified();
            macro_rules! set_line {
                () => {
                    self.interp.current_line = chunk.lines[cur.ip - 1]
                };
            }
            loop {
                let op = if fast {
                    debug_assert!(cur.ip < chunk.ops.len());
                    // SAFETY: `fast` means `verify::verify` proved all
                    // control flow stays within `0..ops.len()`, and
                    // `ops` is immutable after compilation.
                    unsafe { *chunk.ops.get_unchecked(cur.ip) }
                } else {
                    chunk.ops[cur.ip]
                };
                cur.ip += 1;
                // The watchdog: one budget step per instruction (the
                // tree-walk charges one per AST node — same counter, same
                // error, coarser grain there, finer here).
                if self.interp.steps_remaining == 0 {
                    set_line!();
                    return Err(self.err(ErrorKind::Timeout, TIMEOUT_MSG));
                }
                self.interp.steps_remaining -= 1;
                match op {
                    Op::Const(i) => {
                        let v = chunk.consts[i as usize].clone();
                        self.stack.push(v);
                    }
                    Op::PushNull => self.stack.push(Value::Null),
                    Op::PushTrue => self.stack.push(Value::Bool(true)),
                    Op::PushFalse => self.stack.push(Value::Bool(false)),
                    Op::MakeArray(n) => {
                        let items = self.stack.split_off(self.stack.len() - n as usize);
                        self.stack.push(Value::array(items));
                    }
                    Op::MakeObject(i) => {
                        let keys = chunk.shapes[i as usize].clone();
                        let values = self.stack.split_off(self.stack.len() - keys.len());
                        let mut map = ObjMap::new();
                        for (k, v) in keys.iter().zip(values) {
                            map.insert(k.to_string(), v);
                        }
                        self.stack.push(Value::object(map));
                    }
                    Op::MakeClosure(i) => {
                        let fn_proto = chunk.protos[i as usize].clone();
                        let mut ups = Vec::with_capacity(fn_proto.upvals.len());
                        for src in &fn_proto.upvals {
                            ups.push(match *src {
                                UpvalSrc::ParentCell(s) => {
                                    match &self.slots[cur.slot_base + s as usize] {
                                        Slot::Cell(c) => c.clone(),
                                        _ => {
                                            set_line!();
                                            return Err(self.internal_unbound());
                                        }
                                    }
                                }
                                UpvalSrc::ParentUpval(u) => cur.upvals[u as usize].clone(),
                            });
                        }
                        let name = fn_proto.name.clone();
                        self.stack.push(Value::Func(Rc::new(Closure {
                            params: Vec::new(),
                            name,
                            repr: ClosureRepr::Compiled {
                                proto: fn_proto,
                                upvals: Rc::from(ups),
                            },
                        })));
                    }

                    Op::LoadLocal(s) => match &self.slots[cur.slot_base + s as usize] {
                        Slot::Val(v) => {
                            let v = v.clone();
                            self.stack.push(v);
                        }
                        _ => {
                            set_line!();
                            return Err(self.internal_unbound());
                        }
                    },
                    Op::StoreLocal(s) => {
                        let v = self.top().clone();
                        self.slots[cur.slot_base + s as usize] = Slot::Val(v);
                    }
                    Op::DeclLocal(s) => {
                        let v = self.pop();
                        self.slots[cur.slot_base + s as usize] = Slot::Val(v);
                    }
                    Op::LoadCell(s) => match &self.slots[cur.slot_base + s as usize] {
                        Slot::Cell(c) => match &*c.borrow() {
                            Some(v) => {
                                let v = v.clone();
                                self.stack.push(v);
                            }
                            None => {
                                set_line!();
                                return Err(self.internal_unbound());
                            }
                        },
                        _ => {
                            set_line!();
                            return Err(self.internal_unbound());
                        }
                    },
                    Op::StoreCell(s) => {
                        let v = self.top().clone();
                        match &self.slots[cur.slot_base + s as usize] {
                            Slot::Cell(c) => *c.borrow_mut() = Some(v),
                            _ => {
                                set_line!();
                                return Err(self.internal_unbound());
                            }
                        }
                    }
                    Op::DeclCell(s) => {
                        let v = self.pop();
                        match &self.slots[cur.slot_base + s as usize] {
                            Slot::Cell(c) => *c.borrow_mut() = Some(v),
                            _ => {
                                set_line!();
                                return Err(self.internal_unbound());
                            }
                        }
                    }
                    Op::NewCell(s) => {
                        self.slots[cur.slot_base + s as usize] =
                            Slot::Cell(Rc::new(RefCell::new(None)));
                    }
                    Op::ClearSlot(s) => {
                        self.slots[cur.slot_base + s as usize] = Slot::Empty;
                    }
                    Op::LoadUpval(u) => match &*cur.upvals[u as usize].borrow() {
                        Some(v) => {
                            let v = v.clone();
                            self.stack.push(v);
                        }
                        None => {
                            set_line!();
                            return Err(self.internal_unbound());
                        }
                    },
                    Op::StoreUpval(u) => {
                        let v = self.top().clone();
                        *cur.upvals[u as usize].borrow_mut() = Some(v);
                    }

                    Op::LoadGlobal(i) => {
                        let site = &chunk.globals[i as usize];
                        let cached = site.cache.get();
                        let hit = if cached == u32::MAX {
                            None
                        } else {
                            self.interp.globals.slot_get(cached as usize, &site.name)
                        };
                        let v = match hit {
                            Some(v) => v,
                            None => match self.interp.globals.get(&site.name) {
                                Some(v) => {
                                    if let Some(idx) = self.interp.globals.slot_of(&site.name) {
                                        site.cache.set(idx as u32);
                                    }
                                    v
                                }
                                None => {
                                    set_line!();
                                    return Err(self.err(
                                        ErrorKind::Reference,
                                        format!("`{}` is not defined", site.name),
                                    ));
                                }
                            },
                        };
                        self.stack.push(v);
                    }
                    Op::StoreGlobal(i) => {
                        let site = &chunk.globals[i as usize];
                        let v = self.stack.last().cloned().expect("store operand");
                        let cached = site.cache.get();
                        let done = cached != u32::MAX
                            && self
                                .interp
                                .globals
                                .slot_set(cached as usize, &site.name, v.clone());
                        if !done {
                            if !self.interp.globals.assign(&site.name, v) {
                                set_line!();
                                return Err(self.err(
                                    ErrorKind::Reference,
                                    format!("assignment to undeclared variable `{}`", site.name),
                                ));
                            }
                            if let Some(idx) = self.interp.globals.slot_of(&site.name) {
                                site.cache.set(idx as u32);
                            }
                        }
                    }
                    Op::DeclGlobal(i) => {
                        let v = self.pop();
                        let site = &chunk.globals[i as usize];
                        let idx = self.interp.globals.declare_indexed(site.name.clone(), v);
                        site.cache.set(idx as u32);
                    }

                    Op::LoadChain(i) => {
                        let line = chunk.lines[cur.ip - 1];
                        let v = self.load_chain(cur, i, line)?;
                        self.stack.push(v);
                    }
                    Op::StoreChain(i) => {
                        let line = chunk.lines[cur.ip - 1];
                        let v = self.top().clone();
                        self.store_chain(cur, i, v, line)?;
                    }

                    Op::Pop => {
                        self.pop();
                    }
                    Op::Dup => {
                        let v = self.top().clone();
                        self.stack.push(v);
                    }
                    Op::Swap => {
                        let n = self.stack.len();
                        self.stack.swap(n - 1, n - 2);
                    }
                    Op::SetResult => {
                        self.result = self.pop();
                    }

                    Op::Add => {
                        let b = self.pop();
                        let a = self.stack.last_mut().expect("operand");
                        if let (Value::Num(x), Value::Num(y)) = (&*a, &b) {
                            *a = Value::Num(x + y);
                        } else {
                            let lhs = mem::take(a);
                            set_line!();
                            *a = self.interp.eval_binary(BinOp::Add, lhs, b)?;
                        }
                    }
                    Op::Sub => {
                        let line = chunk.lines[cur.ip - 1];
                        self.num_bin(BinOp::Sub, |x, y| x - y, line)?;
                    }
                    Op::Mul => {
                        let line = chunk.lines[cur.ip - 1];
                        self.num_bin(BinOp::Mul, |x, y| x * y, line)?;
                    }
                    Op::Div => {
                        let line = chunk.lines[cur.ip - 1];
                        self.num_bin(BinOp::Div, |x, y| x / y, line)?;
                    }
                    Op::Rem => {
                        let line = chunk.lines[cur.ip - 1];
                        self.num_bin(BinOp::Rem, |x, y| x % y, line)?;
                    }
                    Op::Eq => {
                        let b = self.pop();
                        let a = self.top();
                        let eq = *a == b;
                        *a = Value::Bool(eq);
                    }
                    Op::Ne => {
                        let b = self.pop();
                        let a = self.top();
                        let ne = *a != b;
                        *a = Value::Bool(ne);
                    }
                    Op::Lt => {
                        let line = chunk.lines[cur.ip - 1];
                        self.cmp_bin(BinOp::Lt, line)?;
                    }
                    Op::Gt => {
                        let line = chunk.lines[cur.ip - 1];
                        self.cmp_bin(BinOp::Gt, line)?;
                    }
                    Op::Le => {
                        let line = chunk.lines[cur.ip - 1];
                        self.cmp_bin(BinOp::Le, line)?;
                    }
                    Op::Ge => {
                        let line = chunk.lines[cur.ip - 1];
                        self.cmp_bin(BinOp::Ge, line)?;
                    }
                    Op::Not => {
                        let a = self.top();
                        *a = Value::Bool(!a.is_truthy());
                    }
                    Op::Neg => {
                        let a = self.stack.last_mut().expect("operand");
                        match a {
                            Value::Num(n) => *n = -*n,
                            _ => {
                                let msg = format!("cannot negate a {}", a.type_name());
                                set_line!();
                                return Err(self.interp.rt_err(ErrorKind::Type, msg));
                            }
                        }
                    }
                    Op::UnaryPlus => {
                        let a = self.stack.last_mut().expect("operand");
                        if !matches!(a, Value::Num(_)) {
                            let msg = format!("unary + applied to a {}", a.type_name());
                            set_line!();
                            return Err(self.interp.rt_err(ErrorKind::Type, msg));
                        }
                    }
                    Op::TypeOf => {
                        let a = self.top();
                        *a = Value::str(a.type_name());
                    }
                    Op::Inc | Op::Dec => {
                        let inc = matches!(op, Op::Inc);
                        let a = self.stack.last_mut().expect("operand");
                        match a {
                            Value::Num(n) => *n += if inc { 1.0 } else { -1.0 },
                            _ => {
                                let msg = format!(
                                    "cannot {} a {}",
                                    if inc { "increment" } else { "decrement" },
                                    a.type_name()
                                );
                                set_line!();
                                return Err(self.interp.rt_err(ErrorKind::Type, msg));
                            }
                        }
                    }

                    Op::GetMember(i) => {
                        let obj = self.pop();
                        let site = &chunk.members[i as usize];
                        let v = match &obj {
                            Value::Object(map) => {
                                let map = map.borrow();
                                let cached = site.cache.get();
                                let hit = if cached == u32::MAX {
                                    None
                                } else {
                                    map.get_at(cached as usize, &site.name)
                                };
                                match hit {
                                    Some(v) => v.clone(),
                                    None => match map.index_of(&site.name) {
                                        Some(idx) => {
                                            site.cache.set(idx as u32);
                                            map.get_at(idx, &site.name)
                                                .cloned()
                                                .unwrap_or(Value::Null)
                                        }
                                        None => Value::Null,
                                    },
                                }
                            }
                            other => {
                                set_line!();
                                self.interp.get_member(other, &site.name)?
                            }
                        };
                        self.stack.push(v);
                    }
                    Op::SetMember(i) => {
                        let obj = self.pop();
                        let name = chunk.members[i as usize].name.clone();
                        let v = self.top().clone();
                        set_line!();
                        self.interp.set_member_value(&obj, &name, v)?;
                    }
                    Op::GetIndex => {
                        let idx = self.pop();
                        let obj = self.stack.last_mut().expect("operand");
                        if let (Value::Array(items), Value::Num(n)) = (&*obj, &idx) {
                            let v = if *n < 0.0 || n.fract() != 0.0 {
                                Value::Null
                            } else {
                                items
                                    .borrow()
                                    .get(*n as usize)
                                    .cloned()
                                    .unwrap_or(Value::Null)
                            };
                            *obj = v;
                        } else {
                            let o = mem::take(obj);
                            set_line!();
                            *obj = self.interp.get_index(&o, &idx)?;
                        }
                    }
                    Op::SetIndex => {
                        let idx = self.pop();
                        let obj = self.pop();
                        let v = self.top().clone();
                        set_line!();
                        self.interp.set_index_value(&obj, &idx, v)?;
                    }

                    Op::Call(argc) => {
                        set_line!();
                        let callee = self.pop();
                        let compiled = match &callee {
                            Value::Func(cl) => match &cl.repr {
                                ClosureRepr::Compiled { proto, upvals } => {
                                    Some((proto.clone(), upvals.clone()))
                                }
                                ClosureRepr::Ast { .. } => None,
                            },
                            _ => None,
                        };
                        if let Some((proto, upvals)) = compiled {
                            self.push_frame(cur, proto, upvals, argc as usize)?;
                            continue 'frame;
                        }
                        let args_start = self.stack.len() - argc as usize;
                        let result = self.interp.call_value(&callee, &self.stack[args_start..]);
                        self.stack.truncate(args_start);
                        self.stack.push(result?);
                    }
                    Op::CallMethod(i, argc) => {
                        let name = chunk.members[i as usize].name.clone();
                        set_line!();
                        if self.call_method(cur, &name, argc as usize)? {
                            continue 'frame;
                        }
                    }
                    Op::MathCall(f, argc) => {
                        let line = chunk.lines[cur.ip - 1];
                        let func = builtins::MATH_DISPATCH[f as usize].1;
                        let args_start = self.stack.len() - argc as usize;
                        let result =
                            func(&self.stack[args_start..]).map_err(|e| e.with_line_if_unset(line));
                        self.stack.truncate(args_start);
                        self.stack.push(result?);
                    }

                    Op::Jump(t) => cur.ip = t as usize,
                    Op::JumpIfFalse(t) => {
                        if !self.pop().is_truthy() {
                            cur.ip = t as usize;
                        }
                    }
                    Op::JumpIfTruePeek(t) => {
                        if self.top().is_truthy() {
                            cur.ip = t as usize;
                        }
                    }
                    Op::JumpIfFalsePeek(t) => {
                        if !self.top().is_truthy() {
                            cur.ip = t as usize;
                        }
                    }

                    Op::Return => {
                        let v = self.pop();
                        if let Some(v) = self.pop_frame(cur, v) {
                            return Ok(v);
                        }
                        continue 'frame;
                    }
                    Op::ReturnNull => {
                        if let Some(v) = self.pop_frame(cur, Value::Null) {
                            return Ok(v);
                        }
                        continue 'frame;
                    }
                    Op::ReturnResult => {
                        let v = mem::take(&mut self.result);
                        if let Some(v) = self.pop_frame(cur, v) {
                            return Ok(v);
                        }
                        continue 'frame;
                    }

                    Op::ForInPrep(s) => {
                        let v = self.pop();
                        let keys = match &v {
                            Value::Object(map) => {
                                map.borrow().keys().map(Value::str).collect::<Vec<_>>()
                            }
                            Value::Array(items) => (0..items.borrow().len())
                                .map(|i| Value::Num(i as f64))
                                .collect(),
                            Value::Null => Vec::new(),
                            other => {
                                let msg = format!("cannot enumerate a {}", other.type_name());
                                set_line!();
                                return Err(self.err(ErrorKind::Type, msg));
                            }
                        };
                        self.slots[cur.slot_base + s as usize] = Slot::Iter(keys, 0);
                    }
                    Op::ForInNext(s, exit) => match &mut self.slots[cur.slot_base + s as usize] {
                        Slot::Iter(keys, pos) => {
                            if *pos < keys.len() {
                                let v = keys[*pos].clone();
                                *pos += 1;
                                self.stack.push(v);
                            } else {
                                cur.ip = exit as usize;
                            }
                        }
                        _ => {
                            set_line!();
                            return Err(self.internal_unbound());
                        }
                    },

                    Op::FlowErr(_) => {
                        set_line!();
                        return Err(self.err(ErrorKind::Parse, "break/continue outside of a loop"));
                    }
                }
            }
        }
    }

    /// Arithmetic with an inline number fast path; every other operand
    /// combination delegates to the tree-walk's `eval_binary` for
    /// identical coercions and error messages.
    fn num_bin(&mut self, op: BinOp, f: fn(f64, f64) -> f64, line: u32) -> Result<(), ScriptError> {
        let b = self.pop();
        let a = self.stack.last_mut().expect("operand");
        if let (Value::Num(x), Value::Num(y)) = (&*a, &b) {
            *a = Value::Num(f(*x, *y));
            Ok(())
        } else {
            let lhs = mem::take(a);
            self.interp.current_line = line;
            *a = self.interp.eval_binary(op, lhs, b)?;
            Ok(())
        }
    }

    fn cmp_bin(&mut self, op: BinOp, line: u32) -> Result<(), ScriptError> {
        let b = self.pop();
        let a = self.stack.last_mut().expect("operand");
        if let (Value::Num(x), Value::Num(y)) = (&*a, &b) {
            let r = match op {
                BinOp::Lt => x < y,
                BinOp::Gt => x > y,
                BinOp::Le => x <= y,
                BinOp::Ge => x >= y,
                _ => unreachable!(),
            };
            *a = Value::Bool(r);
            Ok(())
        } else {
            let lhs = mem::take(a);
            self.interp.current_line = line;
            *a = self.interp.eval_binary(op, lhs, b)?;
            Ok(())
        }
    }

    /// Probes a resolution chain innermost-out; the first bound
    /// candidate wins, reproducing the tree-walk environment chain for
    /// identifiers read before their declaration executes.
    fn load_chain(&mut self, cur: &Frame, i: u16, line: u32) -> Result<Value, ScriptError> {
        let chain = &cur.proto.chunk.chains[i as usize];
        for cand in chain.cands.iter() {
            match cand {
                ChainRef::Local(s) => {
                    if let Slot::Val(v) = &self.slots[cur.slot_base + *s as usize] {
                        return Ok(v.clone());
                    }
                }
                ChainRef::CellSlot(s) => {
                    if let Slot::Cell(c) = &self.slots[cur.slot_base + *s as usize] {
                        if let Some(v) = &*c.borrow() {
                            return Ok(v.clone());
                        }
                    }
                }
                ChainRef::Upval(u) => {
                    if let Some(v) = &*cur.upvals[*u as usize].borrow() {
                        return Ok(v.clone());
                    }
                }
                ChainRef::Global => {
                    if let Some(v) = self.interp.globals.get(&chain.name) {
                        return Ok(v);
                    }
                }
            }
        }
        self.interp.current_line = line;
        Err(self.err(
            ErrorKind::Reference,
            format!("`{}` is not defined", chain.name),
        ))
    }

    fn store_chain(&mut self, cur: &Frame, i: u16, v: Value, line: u32) -> Result<(), ScriptError> {
        let chain = &cur.proto.chunk.chains[i as usize];
        for cand in chain.cands.iter() {
            match cand {
                ChainRef::Local(s) => {
                    let slot = &mut self.slots[cur.slot_base + *s as usize];
                    if matches!(slot, Slot::Val(_)) {
                        *slot = Slot::Val(v);
                        return Ok(());
                    }
                }
                ChainRef::CellSlot(s) => {
                    if let Slot::Cell(c) = &self.slots[cur.slot_base + *s as usize] {
                        let mut c = c.borrow_mut();
                        if c.is_some() {
                            *c = Some(v);
                            return Ok(());
                        }
                    }
                }
                ChainRef::Upval(u) => {
                    let mut c = cur.upvals[*u as usize].borrow_mut();
                    if c.is_some() {
                        *c = Some(v);
                        return Ok(());
                    }
                }
                ChainRef::Global => {
                    if self.interp.globals.assign(&chain.name, v) {
                        return Ok(());
                    }
                    break;
                }
            }
        }
        self.interp.current_line = line;
        Err(self.err(
            ErrorKind::Reference,
            format!("assignment to undeclared variable `{}`", chain.name),
        ))
    }

    /// `receiver.name(args)` — the dispatch mirrors
    /// `Interpreter::call_method` case-for-case (including every error
    /// message), with one addition: an object property holding a
    /// *compiled* closure enters the machine's own frame stack instead
    /// of recursing through the host. Returns `true` when a frame was
    /// pushed (the dispatch loop must re-derive its chunk borrow).
    fn call_method(
        &mut self,
        cur: &mut Frame,
        name: &Rc<str>,
        argc: usize,
    ) -> Result<bool, ScriptError> {
        let recv = self.pop();
        let args_start = self.stack.len() - argc;
        match &recv {
            Value::Object(map) => {
                let method = map.borrow().get(name).cloned();
                match method {
                    Some(Value::Func(cl)) => match &cl.repr {
                        ClosureRepr::Compiled { proto, upvals } => {
                            let (proto, upvals) = (proto.clone(), upvals.clone());
                            self.push_frame(cur, proto, upvals, argc)?;
                            Ok(true)
                        }
                        ClosureRepr::Ast { .. } => {
                            let f = Value::Func(cl.clone());
                            let result = self.interp.call_value(&f, &self.stack[args_start..]);
                            self.stack.truncate(args_start);
                            self.stack.push(result?);
                            Ok(false)
                        }
                    },
                    Some(f @ Value::Native(_)) => {
                        let result = self.interp.call_value(&f, &self.stack[args_start..]);
                        self.stack.truncate(args_start);
                        self.stack.push(result?);
                        Ok(false)
                    }
                    Some(other) => Err(self.err(
                        ErrorKind::Type,
                        format!(
                            "property `{name}` is a {}, not a function",
                            other.type_name()
                        ),
                    )),
                    None => {
                        Err(self.err(ErrorKind::Type, format!("object has no method `{name}`")))
                    }
                }
            }
            Value::Array(_) => {
                let result = builtins::call_array_method(
                    self.interp,
                    &recv,
                    name,
                    &self.stack[args_start..],
                );
                self.stack.truncate(args_start);
                self.stack.push(result?);
                Ok(false)
            }
            Value::Str(_) => {
                let result = builtins::call_string_method(
                    self.interp,
                    &recv,
                    name,
                    &self.stack[args_start..],
                );
                self.stack.truncate(args_start);
                self.stack.push(result?);
                Ok(false)
            }
            other => Err(self.err(
                ErrorKind::Type,
                format!("cannot call method `{name}` on a {}", other.type_name()),
            )),
        }
    }
}
