//! AST pretty-printer.
//!
//! Emits PogoScript source from an AST. Exists mainly to power the
//! parse → print → parse round-trip property test (the printed program
//! must parse back to an identical AST), and doubles as a debugging aid.

use crate::ast::{Expr, LogicalOp, Stmt, UnaryOp};
use crate::value::format_number;

/// Pretty-prints a whole program.
pub fn print_program(program: &[Stmt]) -> String {
    let mut out = String::new();
    for stmt in program {
        print_stmt(stmt, 0, &mut out);
    }
    out
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_stmt(stmt: &Stmt, level: usize, out: &mut String) {
    indent(level, out);
    match stmt {
        Stmt::Var { decls, .. } => {
            out.push_str("var ");
            for (i, (name, init)) in decls.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(name);
                if let Some(expr) = init {
                    out.push_str(" = ");
                    print_expr(expr, out);
                }
            }
            out.push_str(";\n");
        }
        Stmt::Func {
            name, params, body, ..
        } => {
            out.push_str("function ");
            out.push_str(name);
            out.push('(');
            out.push_str(&params.join(", "));
            out.push_str(") {\n");
            for s in body.iter() {
                print_stmt(s, level + 1, out);
            }
            indent(level, out);
            out.push_str("}\n");
        }
        Stmt::Expr { expr, .. } => {
            print_expr(expr, out);
            out.push_str(";\n");
        }
        Stmt::If {
            cond, then, els, ..
        } => {
            out.push_str("if (");
            print_expr(cond, out);
            out.push_str(")\n");
            print_stmt(then, level + 1, out);
            if let Some(els) = els {
                indent(level, out);
                out.push_str("else\n");
                print_stmt(els, level + 1, out);
            }
        }
        Stmt::While { cond, body, .. } => {
            out.push_str("while (");
            print_expr(cond, out);
            out.push_str(")\n");
            print_stmt(body, level + 1, out);
        }
        Stmt::DoWhile { body, cond, .. } => {
            out.push_str("do\n");
            print_stmt(body, level + 1, out);
            indent(level, out);
            out.push_str("while (");
            print_expr(cond, out);
            out.push_str(");\n");
        }
        Stmt::ForIn {
            name, object, body, ..
        } => {
            out.push_str("for (var ");
            out.push_str(name);
            out.push_str(" in ");
            print_expr(object, out);
            out.push_str(")\n");
            print_stmt(body, level + 1, out);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            out.push_str("for (");
            match init {
                Some(init) => {
                    // Inline the initializer without indentation/newline.
                    let mut tmp = String::new();
                    print_stmt(init, 0, &mut tmp);
                    out.push_str(tmp.trim_end_matches('\n'));
                }
                None => out.push(';'),
            }
            out.push(' ');
            if let Some(cond) = cond {
                print_expr(cond, out);
            }
            out.push_str("; ");
            if let Some(step) = step {
                print_expr(step, out);
            }
            out.push_str(")\n");
            print_stmt(body, level + 1, out);
        }
        Stmt::Return { value, .. } => {
            out.push_str("return");
            if let Some(v) = value {
                out.push(' ');
                print_expr(v, out);
            }
            out.push_str(";\n");
        }
        Stmt::Break { .. } => out.push_str("break;\n"),
        Stmt::Continue { .. } => out.push_str("continue;\n"),
        Stmt::Block { body, .. } => {
            out.push_str("{\n");
            for s in body {
                print_stmt(s, level + 1, out);
            }
            indent(level, out);
            out.push_str("}\n");
        }
        Stmt::Empty { .. } => out.push_str(";\n"),
    }
}

fn print_expr(expr: &Expr, out: &mut String) {
    match expr {
        Expr::Number(n) => out.push_str(&format_number(*n)),
        Expr::Str(s) => {
            out.push('\'');
            for c in s.chars() {
                match c {
                    '\'' => out.push_str("\\'"),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c => out.push(c),
                }
            }
            out.push('\'');
        }
        Expr::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Expr::Null => out.push_str("null"),
        Expr::Ident(name) => out.push_str(name),
        Expr::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(item, out);
            }
            out.push(']');
        }
        Expr::Object(props) => {
            out.push_str("{ ");
            for (i, (key, value)) in props.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push('\'');
                out.push_str(key);
                out.push_str("': ");
                print_expr(value, out);
            }
            out.push_str(" }");
        }
        Expr::Func { params, body } => {
            out.push_str("function (");
            out.push_str(&params.join(", "));
            out.push_str(") {\n");
            for s in body.iter() {
                print_stmt(s, 1, out);
            }
            out.push('}');
        }
        Expr::Unary { op, expr } => {
            match op {
                UnaryOp::Not => out.push('!'),
                UnaryOp::Neg => out.push('-'),
                UnaryOp::Plus => out.push('+'),
                UnaryOp::Typeof => out.push_str("typeof "),
            }
            out.push('(');
            print_expr(expr, out);
            out.push(')');
        }
        Expr::Binary { op, lhs, rhs } => {
            out.push('(');
            print_expr(lhs, out);
            out.push(' ');
            out.push_str(op.symbol());
            out.push(' ');
            print_expr(rhs, out);
            out.push(')');
        }
        Expr::Logical { op, lhs, rhs } => {
            out.push('(');
            print_expr(lhs, out);
            out.push_str(match op {
                LogicalOp::And => " && ",
                LogicalOp::Or => " || ",
            });
            print_expr(rhs, out);
            out.push(')');
        }
        Expr::Ternary { cond, then, els } => {
            out.push('(');
            print_expr(cond, out);
            out.push_str(" ? ");
            print_expr(then, out);
            out.push_str(" : ");
            print_expr(els, out);
            out.push(')');
        }
        Expr::Assign { target, op, value } => {
            print_expr(target, out);
            match op {
                None => out.push_str(" = "),
                Some(op) => {
                    out.push(' ');
                    out.push_str(op.symbol());
                    out.push_str("= ");
                }
            }
            print_expr(value, out);
        }
        Expr::Update {
            target,
            increment,
            prefix,
        } => {
            let sym = if *increment { "++" } else { "--" };
            if *prefix {
                out.push_str(sym);
                print_expr(target, out);
            } else {
                print_expr(target, out);
                out.push_str(sym);
            }
        }
        Expr::Call { callee, args, .. } => {
            print_expr(callee, out);
            out.push('(');
            for (i, arg) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(arg, out);
            }
            out.push(')');
        }
        Expr::Member { object, name } => {
            print_expr(object, out);
            out.push('.');
            out.push_str(name);
        }
        Expr::Index { object, index } => {
            print_expr(object, out);
            out.push('[');
            print_expr(index, out);
            out.push(']');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Strips line numbers so structurally-identical ASTs compare equal.
    fn normalize(stmts: &[Stmt]) -> String {
        // Printing is itself the normal form: identical prints mean
        // identical structure.
        print_program(stmts)
    }

    fn roundtrip(src: &str) {
        let ast1 = parse(src).unwrap();
        let printed = print_program(&ast1);
        let ast2 = parse(&printed)
            .unwrap_or_else(|e| panic!("printed program failed to parse: {e}\n{printed}"));
        assert_eq!(
            normalize(&ast1),
            normalize(&ast2),
            "round-trip changed the program:\n{printed}"
        );
    }

    #[test]
    fn roundtrips_basic_constructs() {
        roundtrip("var x = 1 + 2 * 3;");
        roundtrip("if (a > b) { c = 1; } else { c = 2; }");
        roundtrip("while (x < 10) x++;");
        roundtrip("for (var i = 0; i < 10; i++) { s += i; }");
        roundtrip("for (;;) break;");
    }

    #[test]
    fn roundtrips_functions_and_calls() {
        roundtrip("function f(a, b) { return a + b; }");
        roundtrip("var g = function (x) { return x * x; };");
        roundtrip("f(1, g(2), 'three');");
        roundtrip("a.b.c(1)[2](3);");
    }

    #[test]
    fn roundtrips_literals() {
        roundtrip("var a = [1, 'two', true, null, [3]];");
        roundtrip("var o = { a: 1, 'b c': [2], d: { e: 3 } };");
        roundtrip("var s = 'quote \\' backslash \\\\ newline \\n';");
    }

    #[test]
    fn roundtrips_operator_zoo() {
        roundtrip("x = a && b || !c;");
        roundtrip("y = a < b ? -c : +d;");
        roundtrip("z = typeof a == 'number';");
        roundtrip("w = (a % b) * (c - d) / e;");
        roundtrip("v += 1; v -= 2; v *= 3; v /= 4; v %= 5;");
        roundtrip("++i; --j; i++; j--;");
    }

    #[test]
    fn roundtrips_do_while_and_for_in() {
        roundtrip("do { n++; } while (n < 5);");
        roundtrip("do n++; while (false);");
        roundtrip("for (var k in obj) { total += obj[k]; }");
        roundtrip("for (var i in [1, 2, 3]) s += i;");
    }

    #[test]
    fn printed_listing2_parses_back() {
        let src = r#"
function start() {
    var polygon = [{ x: 1, y: 1 }, { x: 2, y: 2 }, { x: 3, y: 0 }];
    var subscription = subscribe('wifi-scan', function (msg) {
        publish(msg, 'filtered-scans');
    }, { interval: 60 * 1000 });
    subscription.release();
    subscribe('location', function (msg) {
        if (locationInPolygon(msg, polygon))
            subscription.renew();
        else
            subscription.release();
    });
}
"#;
        roundtrip(src);
    }
}
