//! The compact bytecode format executed by [`crate::vm`].
//!
//! A compiled function is an [`FnProto`]: a flat instruction stream
//! ([`Op`]) plus the side tables it indexes — a constant pool, nested
//! function prototypes, object-literal shapes, named global/member
//! sites (each with an inline cache), and resolution *chains* for
//! identifiers whose binding cannot be pinned at compile time (see
//! `compile.rs` for why PogoScript needs those).
//!
//! Everything here is deterministic: instruction order, constant-pool
//! order and slot numbers depend only on the source text, never on
//! hash-map iteration or addresses. That property is load-bearing —
//! compiled chunks are shared across simulated phones and the chaos
//! soak demands byte-identical traces across runs. The inline caches
//! ([`Cell`]s) are the one mutable part, and they only ever change
//! probe order, never an observable result.

use std::cell::Cell;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::value::Value;

/// One VM instruction. Operands index the side tables of the
/// enclosing [`Chunk`] (constants, protos, sites, chains) or name a
/// frame slot / upvalue directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push `consts[i]`.
    Const(u16),
    /// Push `null` / `true` / `false`.
    PushNull,
    PushTrue,
    PushFalse,
    /// Pop `n` values, push an array of them (in evaluation order).
    MakeArray(u16),
    /// Pop `shapes[i].len()` values, push an object with those keys.
    MakeObject(u16),
    /// Push a closure over `protos[i]`, capturing its upvalues now.
    MakeClosure(u16),

    /// Push / peek-store / pop-store a plain frame slot.
    LoadLocal(u16),
    StoreLocal(u16),
    DeclLocal(u16),
    /// Same for a heap cell held in a frame slot (captured variable).
    LoadCell(u16),
    StoreCell(u16),
    DeclCell(u16),
    /// Install a fresh unbound cell in a slot (scope entry).
    NewCell(u16),
    /// Reset a slot to "no binding yet" (block re-entry in a loop).
    ClearSlot(u16),
    /// Push / peek-store an upvalue of the running closure.
    LoadUpval(u16),
    StoreUpval(u16),
    /// Globals go through `globals[i]`, a named site with a verified
    /// slot cache into the interpreter's root environment.
    LoadGlobal(u16),
    StoreGlobal(u16),
    DeclGlobal(u16),
    /// Identifier whose binding may not exist yet at runtime: probe
    /// `chains[i]` candidates innermost-out (PogoScript `var` has no
    /// hoisting, so reads before the declaration executes fall through
    /// to outer scopes — same as the tree-walk environment chain).
    LoadChain(u16),
    StoreChain(u16),

    Pop,
    Dup,
    Swap,
    /// Pop into the main frame's result register (top-level
    /// expression statements; the program's value on fall-off).
    SetResult,

    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    Not,
    Neg,
    UnaryPlus,
    TypeOf,
    /// `++` / `--` on the top of stack (numbers only).
    Inc,
    Dec,

    /// Property read through `members[i]` (name + inline cache).
    GetMember(u16),
    /// Pop object, store top-of-stack into property `members[i]`.
    SetMember(u16),
    /// Pop index and object, push `object[index]`.
    GetIndex,
    /// Pop index and object, store top-of-stack into `object[index]`.
    SetIndex,

    /// Stack is `[a1..an, callee]`; pop all, push the result.
    Call(u8),
    /// Stack is `[a1..an, receiver]`; method name in `members[i]`.
    CallMethod(u16, u8),
    /// Direct dispatch to a `Math` builtin (compile-time resolved).
    MathCall(u8, u8),

    Jump(u32),
    /// Pop the condition.
    JumpIfFalse(u32),
    /// Peek the condition (short-circuit `||` / `&&`).
    JumpIfTruePeek(u32),
    JumpIfFalsePeek(u32),

    /// Pop the return value and leave the frame.
    Return,
    ReturnNull,
    /// Leave the main frame with its result register.
    ReturnResult,

    /// Pop a value, snapshot its enumerable keys into slot `i`.
    ForInPrep(u16),
    /// Push the next key from slot `i`, or jump past the loop.
    ForInNext(u16, u32),

    /// `break`/`continue` compiled outside any loop: a *runtime*
    /// parse error, matching the tree-walk's execute-time semantics
    /// (`if (false) break;` at top level must not fail at load).
    FlowErr(u8),
}

/// A named global-access site with a verified inline cache: the cached
/// root-environment slot is checked against the name on every use, so
/// a chunk shared across phones with differently-ordered globals stays
/// correct and the cache is a pure speedup.
#[derive(Debug)]
pub struct GlobalSite {
    pub name: Rc<str>,
    pub cache: Cell<u32>,
}

impl Clone for GlobalSite {
    /// A cloned site starts with a cold cache: the clone may be headed
    /// for a different interpreter (or a mutation-testing harness).
    fn clone(&self) -> Self {
        GlobalSite {
            name: self.name.clone(),
            cache: Cell::new(u32::MAX),
        }
    }
}

/// A named property-access site with an inline cache of the property's
/// index inside the receiver's [`crate::value::ObjMap`].
#[derive(Debug)]
pub struct MemberSite {
    pub name: Rc<str>,
    pub cache: Cell<u32>,
}

impl Clone for MemberSite {
    /// A cloned site starts with a cold cache (see [`GlobalSite`]).
    fn clone(&self) -> Self {
        MemberSite {
            name: self.name.clone(),
            cache: Cell::new(u32::MAX),
        }
    }
}

/// Where one candidate binding for a [`ChainInfo`] lives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChainRef {
    /// A plain slot in the current frame.
    Local(u16),
    /// A cell slot in the current frame.
    CellSlot(u16),
    /// An upvalue of the running closure.
    Upval(u16),
    /// Fall through to the interpreter's global environment by name.
    Global,
}

/// Resolution chain for an identifier whose innermost binding may not
/// have executed yet: candidates are probed innermost-out and the
/// first *bound* one wins, reproducing the tree-walk scope chain.
#[derive(Debug, Clone)]
pub struct ChainInfo {
    pub name: Rc<str>,
    pub cands: Box<[ChainRef]>,
}

/// How a closure obtains one of its upvalues when it is created.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpvalSrc {
    /// Share the cell in the creating frame's slot `i`.
    ParentCell(u16),
    /// Share upvalue `i` of the creating closure.
    ParentUpval(u16),
}

/// The instruction stream and side tables of one compiled function.
#[derive(Debug, Default)]
pub struct Chunk {
    pub ops: Vec<Op>,
    /// Source line per instruction (for error attribution).
    pub lines: Vec<u32>,
    pub consts: Vec<Value>,
    pub protos: Vec<Rc<FnProto>>,
    /// Key lists for object literals.
    pub shapes: Vec<Rc<[Rc<str>]>>,
    pub globals: Vec<GlobalSite>,
    pub members: Vec<MemberSite>,
    pub chains: Vec<ChainInfo>,
    /// Frame slots this function needs (locals, cells, iterators).
    pub n_slots: u16,
    /// Set only by [`crate::verify::verify`] after every structural
    /// check passed. The VM uses it to skip redundant bounds checks on
    /// instruction fetch, so nothing outside the verifier may set it.
    verified: Cell<bool>,
}

impl Clone for Chunk {
    /// Clones are **unverified**: a clone is how test harnesses build
    /// mutated chunks, so the fast-path privilege never carries over.
    fn clone(&self) -> Self {
        Chunk {
            ops: self.ops.clone(),
            lines: self.lines.clone(),
            consts: self.consts.clone(),
            protos: self.protos.clone(),
            shapes: self.shapes.clone(),
            globals: self.globals.clone(),
            members: self.members.clone(),
            chains: self.chains.clone(),
            n_slots: self.n_slots,
            verified: Cell::new(false),
        }
    }
}

/// A compiled function: parameter placement, upvalue recipe, body.
#[derive(Debug, Clone)]
pub struct FnProto {
    pub name: Rc<str>,
    /// `(slot, is_cell)` per declared parameter, in order. Duplicate
    /// parameter names share a slot (last assignment wins, like the
    /// tree-walk's repeated `declare`).
    pub params: Vec<(u16, bool)>,
    pub upvals: Vec<UpvalSrc>,
    pub chunk: Chunk,
}

/// A whole compiled program: the top-level chunk plus bookkeeping the
/// host layers report as metrics.
#[derive(Debug)]
pub struct CompiledProgram {
    pub main: Rc<FnProto>,
    /// Total instructions across the main chunk and every nested
    /// prototype — a deterministic "how big is this script" metric.
    pub op_count: u64,
    /// Number of function prototypes (including `main`).
    pub fn_count: u32,
}

impl Chunk {
    /// Whether this exact chunk object has passed the bytecode
    /// verifier. Structural guarantees (jump targets in bounds, no
    /// fall-through past the final terminator, stack never
    /// underflows) let the VM use an unchecked instruction fetch.
    pub fn is_verified(&self) -> bool {
        self.verified.get()
    }

    /// Grant the verified-chunk fast path. Only `verify.rs` calls
    /// this, and only after every check on this chunk has passed.
    pub(crate) fn mark_verified(&self) {
        self.verified.set(true);
    }

    /// Instructions in this chunk and, recursively, its prototypes.
    pub fn total_ops(&self) -> u64 {
        self.ops.len() as u64 + self.protos.iter().map(|p| p.chunk.total_ops()).sum::<u64>()
    }

    /// Prototypes in this chunk and, recursively, below it.
    pub fn total_fns(&self) -> u32 {
        self.protos
            .iter()
            .map(|p| 1 + p.chunk.total_fns())
            .sum::<u32>()
    }
}

// ---- disassembler ----------------------------------------------------------

/// Renders a compiled program as stable, diff-friendly text: one
/// section per function, one line per instruction, with operands
/// resolved against the side tables. `pogo-lint --dump-bytecode` and
/// the golden-file tests are built on this.
pub fn disassemble(program: &CompiledProgram) -> String {
    let mut out = String::new();
    disasm_proto(&program.main, "main", &mut out);
    out
}

fn disasm_proto(proto: &FnProto, label: &str, out: &mut String) {
    let c = &proto.chunk;
    let _ = writeln!(
        out,
        "== {label} (params {}, slots {}, upvals {}, consts {}) ==",
        proto.params.len(),
        c.n_slots,
        proto.upvals.len(),
        c.consts.len()
    );
    let mut last_line = u32::MAX;
    for (i, op) in c.ops.iter().enumerate() {
        let line = c.lines.get(i).copied().unwrap_or(0);
        let line_col = if line == last_line {
            "   |".to_owned()
        } else {
            last_line = line;
            format!("{line:4}")
        };
        let _ = writeln!(out, "{i:04} {line_col}  {}", render_op(c, *op));
    }
    for (pi, p) in c.protos.iter().enumerate() {
        let _ = writeln!(out);
        let sub = format!("{label}.fn{pi} {}", p.name);
        disasm_proto(p, &sub, out);
    }
}

fn render_op(c: &Chunk, op: Op) -> String {
    let global = |i: u16| -> String { format!("g{i} `{}`", c.globals[i as usize].name) };
    let member = |i: u16| -> String { format!("m{i} `{}`", c.members[i as usize].name) };
    match op {
        Op::Const(i) => {
            let v = &c.consts[i as usize];
            let shown = match v {
                Value::Str(s) => format!("{s:?}"),
                other => other.to_display_string(),
            };
            format!("Const        c{i} ; {shown}")
        }
        Op::PushNull => "PushNull".into(),
        Op::PushTrue => "PushTrue".into(),
        Op::PushFalse => "PushFalse".into(),
        Op::MakeArray(n) => format!("MakeArray    {n}"),
        Op::MakeObject(i) => {
            let keys = c.shapes[i as usize]
                .iter()
                .map(|k| k.as_ref())
                .collect::<Vec<_>>()
                .join(", ");
            format!("MakeObject   s{i} ; {{{keys}}}")
        }
        Op::MakeClosure(i) => format!("MakeClosure  p{i} ; {}", c.protos[i as usize].name),
        Op::LoadLocal(s) => format!("LoadLocal    {s}"),
        Op::StoreLocal(s) => format!("StoreLocal   {s}"),
        Op::DeclLocal(s) => format!("DeclLocal    {s}"),
        Op::LoadCell(s) => format!("LoadCell     {s}"),
        Op::StoreCell(s) => format!("StoreCell    {s}"),
        Op::DeclCell(s) => format!("DeclCell     {s}"),
        Op::NewCell(s) => format!("NewCell      {s}"),
        Op::ClearSlot(s) => format!("ClearSlot    {s}"),
        Op::LoadUpval(u) => format!("LoadUpval    {u}"),
        Op::StoreUpval(u) => format!("StoreUpval   {u}"),
        Op::LoadGlobal(i) => format!("LoadGlobal   {}", global(i)),
        Op::StoreGlobal(i) => format!("StoreGlobal  {}", global(i)),
        Op::DeclGlobal(i) => format!("DeclGlobal   {}", global(i)),
        Op::LoadChain(i) => format!(
            "LoadChain    x{i} ; {}",
            render_chain(&c.chains[i as usize])
        ),
        Op::StoreChain(i) => {
            format!(
                "StoreChain   x{i} ; {}",
                render_chain(&c.chains[i as usize])
            )
        }
        Op::Pop => "Pop".into(),
        Op::Dup => "Dup".into(),
        Op::Swap => "Swap".into(),
        Op::SetResult => "SetResult".into(),
        Op::Add => "Add".into(),
        Op::Sub => "Sub".into(),
        Op::Mul => "Mul".into(),
        Op::Div => "Div".into(),
        Op::Rem => "Rem".into(),
        Op::Eq => "Eq".into(),
        Op::Ne => "Ne".into(),
        Op::Lt => "Lt".into(),
        Op::Gt => "Gt".into(),
        Op::Le => "Le".into(),
        Op::Ge => "Ge".into(),
        Op::Not => "Not".into(),
        Op::Neg => "Neg".into(),
        Op::UnaryPlus => "UnaryPlus".into(),
        Op::TypeOf => "TypeOf".into(),
        Op::Inc => "Inc".into(),
        Op::Dec => "Dec".into(),
        Op::GetMember(i) => format!("GetMember    {}", member(i)),
        Op::SetMember(i) => format!("SetMember    {}", member(i)),
        Op::GetIndex => "GetIndex".into(),
        Op::SetIndex => "SetIndex".into(),
        Op::Call(n) => format!("Call         argc {n}"),
        Op::CallMethod(i, n) => format!("CallMethod   {} argc {n}", member(i)),
        Op::MathCall(f, n) => format!(
            "MathCall     Math.{} argc {n}",
            crate::builtins::MATH_DISPATCH[f as usize].0
        ),
        Op::Jump(t) => format!("Jump         -> {t:04}"),
        Op::JumpIfFalse(t) => format!("JumpIfFalse  -> {t:04}"),
        Op::JumpIfTruePeek(t) => format!("JumpIfTrue&  -> {t:04}"),
        Op::JumpIfFalsePeek(t) => format!("JumpIfFalse& -> {t:04}"),
        Op::Return => "Return".into(),
        Op::ReturnNull => "ReturnNull".into(),
        Op::ReturnResult => "ReturnResult".into(),
        Op::ForInPrep(s) => format!("ForInPrep    iter {s}"),
        Op::ForInNext(s, t) => format!("ForInNext    iter {s} exit -> {t:04}"),
        Op::FlowErr(k) => format!("FlowErr      {}", if k == 0 { "break" } else { "continue" }),
    }
}

fn render_chain(chain: &ChainInfo) -> String {
    let cands = chain
        .cands
        .iter()
        .map(|c| match c {
            ChainRef::Local(s) => format!("local {s}"),
            ChainRef::CellSlot(s) => format!("cell {s}"),
            ChainRef::Upval(u) => format!("upval {u}"),
            ChainRef::Global => "global".to_owned(),
        })
        .collect::<Vec<_>>()
        .join(" -> ");
    format!("`{}` via {cands}", chain.name)
}
