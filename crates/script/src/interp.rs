//! Script execution: engine selection, the host-facing [`Interpreter`]
//! API, and the tree-walking engine (kept as the semantic oracle for
//! the bytecode VM in [`crate::vm`]).

use std::rc::Rc;
use std::sync::OnceLock;

use crate::ast::{BinOp, Expr, LogicalOp, Stmt, UnaryOp};
use crate::builtins;
use crate::bytecode::CompiledProgram;
use crate::env::Env;
use crate::error::{ErrorKind, ScriptError};
use crate::parser::parse;
use crate::value::{Closure, ClosureRepr, NativeFn, Value};

/// Default per-invocation instruction budget: the deterministic analogue
/// of the paper's 100 ms callback watchdog (§4.5), at a nominal 1 µs per
/// interpreter step.
pub const DEFAULT_BUDGET: u64 = 100_000;

/// Maximum script call-stack depth. Conservative: each script frame
/// costs several Rust frames in this tree-walking interpreter, and the
/// host may run on a 2 MiB thread stack. Pogo's sensing scripts iterate,
/// they don't recurse deeply.
pub(crate) const MAX_DEPTH: usize = 100;

/// Which execution engine an [`Interpreter`] uses for whole programs.
///
/// Both engines implement the same observable semantics (results,
/// emitted messages, error kinds and messages); the tree-walk is kept
/// as the equivalence oracle and debugging fallback, the bytecode VM
/// is the default. The `POGO_SCRIPT_ENGINE=treewalk` environment
/// variable forces the tree-walk process-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Compile to bytecode and run on the stack VM (default).
    Bytecode,
    /// Walk the AST directly (oracle / debugging).
    TreeWalk,
}

impl Engine {
    /// The process-wide default: [`Engine::Bytecode`] unless the
    /// `POGO_SCRIPT_ENGINE` environment variable says `treewalk`.
    pub fn default_engine() -> Engine {
        static DEFAULT: OnceLock<Engine> = OnceLock::new();
        *DEFAULT.get_or_init(|| match std::env::var("POGO_SCRIPT_ENGINE").as_deref() {
            Ok("treewalk") | Ok("tree-walk") | Ok("ast") => Engine::TreeWalk,
            _ => Engine::Bytecode,
        })
    }
}

/// Statement execution outcome.
enum Flow {
    Normal,
    Return(Value),
    Break,
    Continue,
}

/// A PogoScript interpreter instance: global scope plus watchdog state.
///
/// One interpreter corresponds to one running script in the middleware;
/// the host registers its API as native functions and then calls into
/// script functions as events arrive.
pub struct Interpreter {
    pub(crate) globals: Env,
    pub(crate) steps_remaining: u64,
    budget_limit: Option<u64>,
    pub(crate) depth: usize,
    pub(crate) current_line: u32,
    engine: Engine,
}

impl std::fmt::Debug for Interpreter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interpreter")
            .field("budget_limit", &self.budget_limit)
            .field("steps_remaining", &self.steps_remaining)
            .finish()
    }
}

impl Default for Interpreter {
    fn default() -> Self {
        Self::new()
    }
}

impl Interpreter {
    /// Creates an interpreter with the standard builtins installed and no
    /// instruction budget.
    pub fn new() -> Self {
        Self::with_engine(Engine::default_engine())
    }

    /// Creates an interpreter pinned to a specific execution engine
    /// (the differential tests and the legacy `interpreter` bench use
    /// this; hosts normally take the default).
    pub fn with_engine(engine: Engine) -> Self {
        let globals = Env::new();
        builtins::install(&globals);
        Interpreter {
            globals,
            steps_remaining: u64::MAX,
            budget_limit: None,
            depth: 0,
            current_line: 0,
            engine,
        }
    }

    /// The engine this interpreter executes programs with.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The global scope (for hosts that need direct access).
    pub fn globals(&self) -> &Env {
        &self.globals
    }

    /// Registers a host function under `name` in the global scope.
    pub fn register_native(
        &mut self,
        name: &str,
        f: impl Fn(&mut Interpreter, &[Value]) -> Result<Value, ScriptError> + 'static,
    ) {
        self.globals.declare(
            name,
            Value::Native(Rc::new(NativeFn {
                name: name.to_owned(),
                func: Box::new(f),
            })),
        );
    }

    /// Sets the per-invocation instruction budget. `None` disables the
    /// watchdog. The budget is re-armed on every [`Interpreter::eval`],
    /// [`Interpreter::run`], and [`Interpreter::call`] from the host.
    pub fn set_budget(&mut self, steps: Option<u64>) {
        self.budget_limit = steps;
        self.steps_remaining = steps.unwrap_or(u64::MAX);
    }

    /// Steps left in the current invocation (meaningful only with a
    /// budget set).
    pub fn steps_remaining(&self) -> u64 {
        self.steps_remaining
    }

    /// Parses and executes `source` in the global scope, returning the
    /// value of the last expression statement (or `null`).
    ///
    /// # Errors
    ///
    /// Returns parse errors, runtime errors, or [`ErrorKind::Timeout`] if
    /// the instruction budget is exhausted.
    pub fn eval(&mut self, source: &str) -> Result<Value, ScriptError> {
        let program = parse(source)?;
        self.run(&program)
    }

    /// Executes an already-parsed program in the global scope, through
    /// whichever engine this interpreter is configured with.
    ///
    /// # Errors
    ///
    /// As for [`Interpreter::eval`].
    pub fn run(&mut self, program: &[Stmt]) -> Result<Value, ScriptError> {
        match self.engine {
            Engine::TreeWalk => self.run_tree(program),
            Engine::Bytecode => {
                let compiled = crate::compile::compile_program(program)?;
                self.run_compiled(&compiled)
            }
        }
    }

    /// Executes a pre-compiled program on the bytecode VM (regardless
    /// of the configured engine — compilation already happened). This
    /// is the hot host path: compile once per script spec, run per
    /// event.
    ///
    /// # Errors
    ///
    /// As for [`Interpreter::eval`].
    pub fn run_compiled(&mut self, program: &CompiledProgram) -> Result<Value, ScriptError> {
        self.arm_budget();
        crate::vm::run_main(self, program)
    }

    /// The tree-walk execution path (oracle engine).
    fn run_tree(&mut self, program: &[Stmt]) -> Result<Value, ScriptError> {
        self.arm_budget();
        let env = self.globals.clone();
        self.hoist(program, &env);
        let mut last = Value::Null;
        for stmt in program {
            if let Stmt::Expr { expr, line } = stmt {
                self.current_line = *line;
                last = self.eval_expr(expr, &env)?;
            } else {
                match self.exec_stmt(stmt, &env)? {
                    Flow::Normal => {}
                    Flow::Return(v) => return Ok(v),
                    Flow::Break | Flow::Continue => {
                        return Err(
                            self.rt_err(ErrorKind::Parse, "break/continue outside of a loop")
                        )
                    }
                }
            }
        }
        Ok(last)
    }

    /// Calls a script (or native) function value from the host, re-arming
    /// the instruction budget first. This is how the middleware delivers
    /// subscription events and timer callbacks.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Type`] if `f` is not callable, plus any error
    /// the function raises.
    pub fn call(&mut self, f: &Value, args: &[Value]) -> Result<Value, ScriptError> {
        self.arm_budget();
        self.call_value(f, args)
    }

    fn arm_budget(&mut self) {
        self.steps_remaining = self.budget_limit.unwrap_or(u64::MAX);
    }

    /// Calls a function without touching the budget (used for nested
    /// script-level calls).
    pub(crate) fn call_value(&mut self, f: &Value, args: &[Value]) -> Result<Value, ScriptError> {
        match f {
            Value::Func(closure) => match &closure.repr {
                ClosureRepr::Compiled { proto, upvals } => {
                    crate::vm::call_closure(self, proto, upvals, args)
                }
                ClosureRepr::Ast { body, env } => {
                    if self.depth >= MAX_DEPTH {
                        return Err(self.rt_err(ErrorKind::StackOverflow, "call stack exhausted"));
                    }
                    self.depth += 1;
                    let env = env.child();
                    for (i, param) in closure.params.iter().enumerate() {
                        env.declare(param.clone(), args.get(i).cloned().unwrap_or(Value::Null));
                    }
                    self.hoist(body, &env);
                    let mut result = Value::Null;
                    let mut error = None;
                    for stmt in body.iter() {
                        match self.exec_stmt(stmt, &env) {
                            Ok(Flow::Normal) => {}
                            Ok(Flow::Return(v)) => {
                                result = v;
                                break;
                            }
                            Ok(Flow::Break) | Ok(Flow::Continue) => {
                                error =
                                    Some(self.rt_err(
                                        ErrorKind::Parse,
                                        "break/continue outside of a loop",
                                    ));
                                break;
                            }
                            Err(e) => {
                                error = Some(e);
                                break;
                            }
                        }
                    }
                    self.depth -= 1;
                    match error {
                        Some(e) => Err(e),
                        None => Ok(result),
                    }
                }
            },
            Value::Native(native) => {
                (native.func)(self, args).map_err(|e| e.with_line_if_unset(self.current_line))
            }
            other => Err(self.rt_err(
                ErrorKind::Type,
                format!("{} is not a function", other.type_name()),
            )),
        }
    }

    // ---- helpers -----------------------------------------------------------

    pub(crate) fn rt_err(&self, kind: ErrorKind, msg: impl Into<String>) -> ScriptError {
        ScriptError::new(kind, msg, self.current_line)
    }

    fn step(&mut self) -> Result<(), ScriptError> {
        if self.steps_remaining == 0 {
            return Err(self.rt_err(
                ErrorKind::Timeout,
                "instruction budget exhausted (callback watchdog)",
            ));
        }
        self.steps_remaining -= 1;
        Ok(())
    }

    /// Deducts `cost` steps from the current invocation's budget.
    ///
    /// Natives and builtins whose work is proportional to an input
    /// (array methods, string scans, structure rendering) call this so
    /// a *single* long-running call is still attributed to the
    /// script's watchdog budget instead of counting as one step.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Timeout`] when the budget is exhausted; the budget
    /// is left at zero so any further execution also trips.
    pub fn charge(&mut self, cost: u64) -> Result<(), ScriptError> {
        if self.steps_remaining < cost {
            self.steps_remaining = 0;
            return Err(self.rt_err(
                ErrorKind::Timeout,
                "instruction budget exhausted (callback watchdog)",
            ));
        }
        self.steps_remaining -= cost;
        Ok(())
    }

    /// Declares function statements ahead of execution so forward and
    /// mutual references work (JavaScript hoisting).
    fn hoist(&mut self, body: &[Stmt], env: &Env) {
        for stmt in body {
            if let Stmt::Func {
                name, params, body, ..
            } = stmt
            {
                env.declare(
                    name.clone(),
                    Value::Func(Rc::new(Closure {
                        params: params.clone(),
                        name: name.clone(),
                        repr: ClosureRepr::Ast {
                            body: body.clone(),
                            env: env.clone(),
                        },
                    })),
                );
            }
        }
    }

    // ---- statements ---------------------------------------------------------

    fn exec_stmt(&mut self, stmt: &Stmt, env: &Env) -> Result<Flow, ScriptError> {
        self.current_line = stmt.line();
        self.step()?;
        match stmt {
            Stmt::Var { decls, .. } => {
                for (name, init) in decls {
                    let value = match init {
                        Some(expr) => self.eval_expr(expr, env)?,
                        None => Value::Null,
                    };
                    env.declare(name.clone(), value);
                }
                Ok(Flow::Normal)
            }
            Stmt::Func { .. } => Ok(Flow::Normal), // handled by hoisting
            Stmt::Expr { expr, .. } => {
                self.eval_expr(expr, env)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond, then, els, ..
            } => {
                if self.eval_expr(cond, env)?.is_truthy() {
                    self.exec_stmt(then, env)
                } else if let Some(els) = els {
                    self.exec_stmt(els, env)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While { cond, body, .. } => {
                while self.eval_expr(cond, env)?.is_truthy() {
                    match self.exec_stmt(body, env)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::DoWhile { body, cond, .. } => {
                loop {
                    match self.exec_stmt(body, env)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                    if !self.eval_expr(cond, env)?.is_truthy() {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::ForIn {
                name, object, body, ..
            } => {
                let object = self.eval_expr(object, env)?;
                let keys: Vec<Value> = match &object {
                    Value::Object(map) => map.borrow().keys().map(Value::str).collect(),
                    Value::Array(items) => (0..items.borrow().len())
                        .map(|i| Value::Num(i as f64))
                        .collect(),
                    Value::Null => Vec::new(),
                    other => {
                        return Err(self.rt_err(
                            ErrorKind::Type,
                            format!("cannot enumerate a {}", other.type_name()),
                        ))
                    }
                };
                let scope = env.child();
                scope.declare(name.clone(), Value::Null);
                for key in keys {
                    scope.declare(name.clone(), key);
                    match self.exec_stmt(body, &scope)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                let scope = env.child();
                if let Some(init) = init {
                    self.exec_stmt(init, &scope)?;
                }
                loop {
                    if let Some(cond) = cond {
                        if !self.eval_expr(cond, &scope)?.is_truthy() {
                            break;
                        }
                    }
                    match self.exec_stmt(body, &scope)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                    if let Some(step) = step {
                        self.eval_expr(step, &scope)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return { value, .. } => {
                let v = match value {
                    Some(expr) => self.eval_expr(expr, env)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break { .. } => Ok(Flow::Break),
            Stmt::Continue { .. } => Ok(Flow::Continue),
            Stmt::Block { body, .. } => {
                let scope = env.child();
                self.hoist(body, &scope);
                for stmt in body {
                    match self.exec_stmt(stmt, &scope)? {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Empty { .. } => Ok(Flow::Normal),
        }
    }

    // ---- expressions ----------------------------------------------------------

    fn eval_expr(&mut self, expr: &Expr, env: &Env) -> Result<Value, ScriptError> {
        self.step()?;
        match expr {
            Expr::Number(n) => Ok(Value::Num(*n)),
            Expr::Str(s) => Ok(Value::str(s)),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Null => Ok(Value::Null),
            Expr::Ident(name) => env.get(name).ok_or_else(|| {
                self.rt_err(ErrorKind::Reference, format!("`{name}` is not defined"))
            }),
            Expr::Array(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval_expr(item, env)?);
                }
                Ok(Value::array(out))
            }
            Expr::Object(props) => {
                let mut map = crate::value::ObjMap::new();
                for (key, value) in props {
                    let v = self.eval_expr(value, env)?;
                    map.insert(&**key, v);
                }
                Ok(Value::object(map))
            }
            Expr::Func { params, body } => Ok(Value::Func(Rc::new(Closure {
                params: params.clone(),
                name: Rc::from("<anonymous>"),
                repr: ClosureRepr::Ast {
                    body: body.clone(),
                    env: env.clone(),
                },
            }))),
            Expr::Unary { op, expr } => {
                let v = self.eval_expr(expr, env)?;
                self.eval_unary(*op, v)
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.eval_expr(lhs, env)?;
                let b = self.eval_expr(rhs, env)?;
                self.eval_binary(*op, a, b)
            }
            Expr::Logical { op, lhs, rhs } => {
                let a = self.eval_expr(lhs, env)?;
                match op {
                    LogicalOp::And => {
                        if a.is_truthy() {
                            self.eval_expr(rhs, env)
                        } else {
                            Ok(a)
                        }
                    }
                    LogicalOp::Or => {
                        if a.is_truthy() {
                            Ok(a)
                        } else {
                            self.eval_expr(rhs, env)
                        }
                    }
                }
            }
            Expr::Ternary { cond, then, els } => {
                if self.eval_expr(cond, env)?.is_truthy() {
                    self.eval_expr(then, env)
                } else {
                    self.eval_expr(els, env)
                }
            }
            Expr::Assign { target, op, value } => {
                let rhs = self.eval_expr(value, env)?;
                let new_value = match op {
                    None => rhs,
                    Some(op) => {
                        let current = self.eval_expr(target, env)?;
                        self.eval_binary(*op, current, rhs)?
                    }
                };
                self.assign_to(target, new_value.clone(), env)?;
                Ok(new_value)
            }
            Expr::Update {
                target,
                increment,
                prefix,
            } => {
                let current = self.eval_expr(target, env)?;
                let n = current.as_num().ok_or_else(|| {
                    self.rt_err(
                        ErrorKind::Type,
                        format!(
                            "cannot {} a {}",
                            if *increment { "increment" } else { "decrement" },
                            current.type_name()
                        ),
                    )
                })?;
                let updated = if *increment { n + 1.0 } else { n - 1.0 };
                self.assign_to(target, Value::Num(updated), env)?;
                Ok(Value::Num(if *prefix { updated } else { n }))
            }
            Expr::Call { callee, args, line } => {
                self.current_line = *line;
                let mut arg_values = Vec::with_capacity(args.len());
                for arg in args {
                    arg_values.push(self.eval_expr(arg, env)?);
                }
                self.current_line = *line;
                // Method call: dispatch on the receiver so `arr.push(x)`
                // and `subscription.release()` work.
                if let Expr::Member { object, name } = callee.as_ref() {
                    let receiver = self.eval_expr(object, env)?;
                    self.current_line = *line;
                    return self.call_method(receiver, name, &arg_values);
                }
                let f = self.eval_expr(callee, env)?;
                self.current_line = *line;
                self.call_value(&f, &arg_values)
            }
            Expr::Member { object, name } => {
                let obj = self.eval_expr(object, env)?;
                self.get_member(&obj, name)
            }
            Expr::Index { object, index } => {
                let obj = self.eval_expr(object, env)?;
                let idx = self.eval_expr(index, env)?;
                self.get_index(&obj, &idx)
            }
        }
    }

    pub(crate) fn eval_unary(&self, op: UnaryOp, v: Value) -> Result<Value, ScriptError> {
        match op {
            UnaryOp::Not => Ok(Value::Bool(!v.is_truthy())),
            UnaryOp::Neg => match v.as_num() {
                Some(n) => Ok(Value::Num(-n)),
                None => Err(self.rt_err(
                    ErrorKind::Type,
                    format!("cannot negate a {}", v.type_name()),
                )),
            },
            UnaryOp::Plus => match v.as_num() {
                Some(n) => Ok(Value::Num(n)),
                None => Err(self.rt_err(
                    ErrorKind::Type,
                    format!("unary + applied to a {}", v.type_name()),
                )),
            },
            UnaryOp::Typeof => Ok(Value::str(v.type_name())),
        }
    }

    pub(crate) fn eval_binary(
        &mut self,
        op: BinOp,
        a: Value,
        b: Value,
    ) -> Result<Value, ScriptError> {
        use BinOp::*;
        match op {
            Add => match (&a, &b) {
                (Value::Num(x), Value::Num(y)) => Ok(Value::Num(x + y)),
                (Value::Str(_), _) | (_, Value::Str(_)) => {
                    let s = format!("{}{}", a.to_display_string(), b.to_display_string());
                    // One concatenation can build an arbitrarily large
                    // string for a single step; bill the produced bytes
                    // so an `s = s + s` doubling loop cannot outrun the
                    // watchdog (same attribution rule as `String()`).
                    self.charge(s.len() as u64)?;
                    Ok(Value::from(s))
                }
                _ => Err(self.num_op_err(op, &a, &b)),
            },
            Sub | Mul | Div | Rem => match (a.as_num(), b.as_num()) {
                (Some(x), Some(y)) => Ok(Value::Num(match op {
                    Sub => x - y,
                    Mul => x * y,
                    Div => x / y,
                    Rem => x % y,
                    _ => unreachable!(),
                })),
                _ => Err(self.num_op_err(op, &a, &b)),
            },
            Eq => Ok(Value::Bool(a == b)),
            NotEq => Ok(Value::Bool(a != b)),
            Lt | Gt | Le | Ge => {
                let ord = match (&a, &b) {
                    (Value::Num(x), Value::Num(y)) => x.partial_cmp(y),
                    (Value::Str(x), Value::Str(y)) => Some(x.cmp(y)),
                    _ => return Err(self.num_op_err(op, &a, &b)),
                };
                let result = match (op, ord) {
                    (_, None) => false, // NaN comparisons
                    (Lt, Some(o)) => o == std::cmp::Ordering::Less,
                    (Gt, Some(o)) => o == std::cmp::Ordering::Greater,
                    (Le, Some(o)) => o != std::cmp::Ordering::Greater,
                    (Ge, Some(o)) => o != std::cmp::Ordering::Less,
                    _ => unreachable!(),
                };
                Ok(Value::Bool(result))
            }
        }
    }

    fn num_op_err(&self, op: BinOp, a: &Value, b: &Value) -> ScriptError {
        self.rt_err(
            ErrorKind::Type,
            format!(
                "operator `{}` not applicable to {} and {}",
                op.symbol(),
                a.type_name(),
                b.type_name()
            ),
        )
    }

    fn assign_to(&mut self, target: &Expr, value: Value, env: &Env) -> Result<(), ScriptError> {
        match target {
            Expr::Ident(name) => {
                if env.assign(name, value) {
                    Ok(())
                } else {
                    Err(self.rt_err(
                        ErrorKind::Reference,
                        format!("assignment to undeclared variable `{name}`"),
                    ))
                }
            }
            Expr::Member { object, name } => {
                let obj = self.eval_expr(object, env)?;
                self.set_member_value(&obj, name, value)
            }
            Expr::Index { object, index } => {
                let obj = self.eval_expr(object, env)?;
                let idx = self.eval_expr(index, env)?;
                self.set_index_value(&obj, &idx, value)
            }
            _ => Err(self.rt_err(ErrorKind::Type, "invalid assignment target")),
        }
    }

    /// Stores into `obj.name` (shared by tree-walk `assign_to` and the
    /// VM's `SetMember`).
    pub(crate) fn set_member_value(
        &self,
        obj: &Value,
        name: &str,
        value: Value,
    ) -> Result<(), ScriptError> {
        match obj {
            Value::Object(map) => {
                map.borrow_mut().insert(name, value);
                Ok(())
            }
            other => Err(self.rt_err(
                ErrorKind::Type,
                format!("cannot set property `{name}` on a {}", other.type_name()),
            )),
        }
    }

    /// Stores into `obj[idx]` (shared by tree-walk `assign_to` and the
    /// VM's `SetIndex`).
    pub(crate) fn set_index_value(
        &self,
        obj: &Value,
        idx: &Value,
        value: Value,
    ) -> Result<(), ScriptError> {
        match (obj, idx) {
            (Value::Array(items), Value::Num(n)) => {
                let i = *n as usize;
                if n.fract() != 0.0 || *n < 0.0 {
                    return Err(self.rt_err(ErrorKind::Type, format!("invalid array index {n}")));
                }
                let mut items = items.borrow_mut();
                if i >= items.len() {
                    items.resize(i + 1, Value::Null);
                }
                items[i] = value;
                Ok(())
            }
            (Value::Object(map), Value::Str(key)) => {
                map.borrow_mut().insert(key.to_string(), value);
                Ok(())
            }
            (obj, idx) => Err(self.rt_err(
                ErrorKind::Type,
                format!(
                    "cannot index a {} with a {}",
                    obj.type_name(),
                    idx.type_name()
                ),
            )),
        }
    }

    pub(crate) fn get_member(&self, obj: &Value, name: &str) -> Result<Value, ScriptError> {
        match obj {
            Value::Object(map) => Ok(map.borrow().get(name).cloned().unwrap_or(Value::Null)),
            Value::Array(items) => match name {
                "length" => Ok(Value::Num(items.borrow().len() as f64)),
                _ => Err(self.rt_err(
                    ErrorKind::Type,
                    format!("arrays have no property `{name}` (did you mean to call it?)"),
                )),
            },
            Value::Str(s) => match name {
                "length" => Ok(Value::Num(s.chars().count() as f64)),
                _ => Err(self.rt_err(
                    ErrorKind::Type,
                    format!("strings have no property `{name}` (did you mean to call it?)"),
                )),
            },
            Value::Null => Err(self.rt_err(
                ErrorKind::Type,
                format!("cannot read property `{name}` of null"),
            )),
            other => Err(self.rt_err(
                ErrorKind::Type,
                format!("cannot read property `{name}` of a {}", other.type_name()),
            )),
        }
    }

    pub(crate) fn get_index(&self, obj: &Value, idx: &Value) -> Result<Value, ScriptError> {
        match (obj, idx) {
            (Value::Array(items), Value::Num(n)) => {
                if *n < 0.0 || n.fract() != 0.0 {
                    return Ok(Value::Null);
                }
                Ok(items
                    .borrow()
                    .get(*n as usize)
                    .cloned()
                    .unwrap_or(Value::Null))
            }
            (Value::Object(map), Value::Str(key)) => {
                Ok(map.borrow().get(key).cloned().unwrap_or(Value::Null))
            }
            (Value::Str(s), Value::Num(n)) => {
                if *n < 0.0 || n.fract() != 0.0 {
                    return Ok(Value::Null);
                }
                Ok(s.chars()
                    .nth(*n as usize)
                    .map(|c| Value::from(c.to_string()))
                    .unwrap_or(Value::Null))
            }
            (Value::Null, _) => Err(self.rt_err(ErrorKind::Type, "cannot index null")),
            (obj, idx) => Err(self.rt_err(
                ErrorKind::Type,
                format!(
                    "cannot index a {} with a {}",
                    obj.type_name(),
                    idx.type_name()
                ),
            )),
        }
    }

    /// Dispatches `receiver.name(args)`.
    pub(crate) fn call_method(
        &mut self,
        receiver: Value,
        name: &str,
        args: &[Value],
    ) -> Result<Value, ScriptError> {
        match &receiver {
            Value::Object(map) => {
                let method = map.borrow().get(name).cloned();
                match method {
                    Some(f @ (Value::Func(_) | Value::Native(_))) => self.call_value(&f, args),
                    Some(other) => Err(self.rt_err(
                        ErrorKind::Type,
                        format!(
                            "property `{name}` is a {}, not a function",
                            other.type_name()
                        ),
                    )),
                    None => {
                        Err(self.rt_err(ErrorKind::Type, format!("object has no method `{name}`")))
                    }
                }
            }
            Value::Array(_) => builtins::call_array_method(self, &receiver, name, args),
            Value::Str(_) => builtins::call_string_method(self, &receiver, name, args),
            other => Err(self.rt_err(
                ErrorKind::Type,
                format!("cannot call method `{name}` on a {}", other.type_name()),
            )),
        }
    }

    /// The line currently being executed (for native error reporting).
    pub fn current_line(&self) -> u32 {
        self.current_line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(src: &str) -> Value {
        Interpreter::new().eval(src).unwrap()
    }

    fn eval_err(src: &str) -> ScriptError {
        Interpreter::new().eval(src).unwrap_err()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval("1 + 2 * 3;"), Value::from(7.0));
        assert_eq!(eval("(1 + 2) * 3;"), Value::from(9.0));
        assert_eq!(eval("10 % 3;"), Value::from(1.0));
        assert_eq!(eval("7 / 2;"), Value::from(3.5));
    }

    #[test]
    fn string_concatenation() {
        assert_eq!(eval("'a' + 'b';"), Value::str("ab"));
        assert_eq!(eval("'n=' + 5;"), Value::str("n=5"));
        assert_eq!(eval("1 + ' x';"), Value::str("1 x"));
    }

    #[test]
    fn variables_and_assignment() {
        assert_eq!(eval("var x = 1; x = x + 2; x;"), Value::from(3.0));
        assert_eq!(
            eval("var x = 10; x += 5; x -= 3; x *= 2; x;"),
            Value::from(24.0)
        );
    }

    #[test]
    fn assignment_to_undeclared_is_reference_error() {
        let err = eval_err("y = 1;");
        assert_eq!(err.kind(), ErrorKind::Reference);
    }

    #[test]
    fn if_else_and_truthiness() {
        assert_eq!(
            eval("var r = 0; if ('') { r = 1; } else { r = 2; } r;"),
            Value::from(2.0)
        );
        assert_eq!(eval("var r = 0; if (3) r = 1; r;"), Value::from(1.0));
    }

    #[test]
    fn while_loop_with_break_continue() {
        let v = eval(
            "var sum = 0; var i = 0;
             while (true) {
                 i++;
                 if (i > 10) break;
                 if (i % 2 == 0) continue;
                 sum += i;
             }
             sum;",
        );
        assert_eq!(v, Value::from(25.0)); // 1+3+5+7+9
    }

    #[test]
    fn for_loop() {
        assert_eq!(
            eval("var s = 0; for (var i = 0; i < 5; i++) { s += i; } s;"),
            Value::from(10.0)
        );
    }

    #[test]
    fn functions_and_recursion() {
        assert_eq!(
            eval("function fact(n) { if (n <= 1) return 1; return n * fact(n - 1); } fact(6);"),
            Value::from(720.0)
        );
    }

    #[test]
    fn function_hoisting_allows_forward_calls() {
        assert_eq!(
            eval("var r = f(); function f() { return 42; } r;"),
            Value::from(42.0)
        );
    }

    #[test]
    fn closures_capture_environment() {
        let v = eval(
            "function counter() {
                 var n = 0;
                 return function () { n = n + 1; return n; };
             }
             var c = counter();
             c(); c(); c();",
        );
        assert_eq!(v, Value::from(3.0));
    }

    #[test]
    fn two_closures_share_captured_state() {
        let v = eval(
            "function make() {
                 var n = 0;
                 return { inc: function () { n++; return n; },
                          get: function () { return n; } };
             }
             var m = make();
             m.inc(); m.inc();
             m.get();",
        );
        assert_eq!(v, Value::from(2.0));
    }

    #[test]
    fn arrays_index_and_length() {
        assert_eq!(eval("var a = [1, 2, 3]; a[1];"), Value::from(2.0));
        assert_eq!(eval("var a = [1, 2, 3]; a.length;"), Value::from(3.0));
        assert_eq!(eval("var a = [1]; a[5] = 9; a.length;"), Value::from(6.0));
        assert_eq!(eval("var a = [1, 2]; a[99];"), Value::Null);
    }

    #[test]
    fn objects_members_and_dynamic_keys() {
        assert_eq!(eval("var o = { a: 1 }; o.a;"), Value::from(1.0));
        assert_eq!(eval("var o = { a: 1 }; o.b;"), Value::Null);
        assert_eq!(
            eval("var o = {}; o.x = 7; o['y'] = 8; o.x + o['y'];"),
            Value::from(15.0)
        );
    }

    #[test]
    fn nested_structures() {
        assert_eq!(
            eval("var o = { pts: [{ x: 1 }, { x: 2 }] }; o.pts[1].x;"),
            Value::from(2.0)
        );
    }

    #[test]
    fn ternary_and_logical_short_circuit() {
        assert_eq!(eval("true ? 1 : 2;"), Value::from(1.0));
        // Short-circuit: the undefined function is never called.
        assert_eq!(eval("false && boom();"), Value::from(false));
        assert_eq!(eval("1 || boom();"), Value::from(1.0));
        // || returns the first truthy operand, JS-style.
        assert_eq!(eval("null || 'fallback';"), Value::str("fallback"));
    }

    #[test]
    fn typeof_operator() {
        assert_eq!(eval("typeof 3;"), Value::str("number"));
        assert_eq!(eval("typeof 'x';"), Value::str("string"));
        assert_eq!(eval("typeof [];"), Value::str("array"));
        assert_eq!(eval("typeof {};"), Value::str("object"));
        assert_eq!(eval("typeof null;"), Value::str("null"));
        assert_eq!(eval("typeof function () {};"), Value::str("function"));
    }

    #[test]
    fn update_operators_prefix_vs_postfix() {
        assert_eq!(eval("var i = 5; i++;"), Value::from(5.0));
        assert_eq!(eval("var i = 5; ++i;"), Value::from(6.0));
        assert_eq!(eval("var i = 5; i--; i;"), Value::from(4.0));
        assert_eq!(eval("var a = [1]; a[0]++; a[0];"), Value::from(2.0));
    }

    #[test]
    fn reference_error_on_unknown_identifier() {
        let err = eval_err("nope;");
        assert_eq!(err.kind(), ErrorKind::Reference);
        assert!(err.message().contains("nope"));
    }

    #[test]
    fn type_errors_carry_line_numbers() {
        let err = eval_err("var a = 1;\nvar b = a.x;");
        assert_eq!(err.kind(), ErrorKind::Type);
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn native_functions_are_callable() {
        let mut interp = Interpreter::new();
        interp.register_native("double", |_, args| {
            let n = args[0]
                .as_num()
                .ok_or_else(|| ScriptError::host("want num"))?;
            Ok(Value::Num(n * 2.0))
        });
        assert_eq!(interp.eval("double(21);").unwrap(), Value::from(42.0));
    }

    #[test]
    fn natives_can_call_back_into_script() {
        let mut interp = Interpreter::new();
        interp.register_native("apply3", |interp, args| {
            interp.call_value(&args[0], &[Value::from(3.0)])
        });
        assert_eq!(
            interp
                .eval("apply3(function (x) { return x * x; });")
                .unwrap(),
            Value::from(9.0)
        );
    }

    #[test]
    fn budget_kills_infinite_loop() {
        let mut interp = Interpreter::new();
        interp.set_budget(Some(10_000));
        let err = interp.eval("while (true) {}").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Timeout);
    }

    #[test]
    fn budget_rearms_per_host_invocation() {
        let mut interp = Interpreter::new();
        interp.set_budget(Some(5_000));
        // Each eval gets a fresh budget.
        for _ in 0..5 {
            interp
                .eval("var s = 0; for (var i = 0; i < 100; i++) s += i; s;")
                .unwrap();
        }
    }

    #[test]
    fn deep_recursion_is_stack_overflow_not_crash() {
        let err = eval_err("function f(n) { return f(n + 1); } f(0);");
        assert_eq!(err.kind(), ErrorKind::StackOverflow);
    }

    #[test]
    fn division_by_zero_is_infinity() {
        assert_eq!(eval("1 / 0;"), Value::from(f64::INFINITY));
        assert!(eval("0 / 0;").as_num().unwrap().is_nan());
    }

    #[test]
    fn nan_comparisons_are_false() {
        assert_eq!(eval("var n = 0 / 0; n < 1;"), Value::from(false));
        assert_eq!(eval("var n = 0 / 0; n >= 1;"), Value::from(false));
    }

    #[test]
    fn string_comparison_is_lexicographic() {
        assert_eq!(eval("'apple' < 'banana';"), Value::from(true));
        assert_eq!(eval("'b' >= 'b';"), Value::from(true));
    }

    #[test]
    fn array_reference_semantics() {
        assert_eq!(
            eval("var a = [1]; var b = a; b.push(2); a.length;"),
            Value::from(2.0)
        );
    }

    #[test]
    fn block_scoping_of_for_initializer() {
        // The loop variable lives in the loop's own scope.
        let err = eval_err("for (var i = 0; i < 1; i++) {} i;");
        assert_eq!(err.kind(), ErrorKind::Reference);
    }

    #[test]
    fn do_while_runs_body_at_least_once() {
        assert_eq!(
            eval("var n = 0; do { n++; } while (false); n;"),
            Value::from(1.0)
        );
        assert_eq!(
            eval("var n = 0; do { n++; } while (n < 5); n;"),
            Value::from(5.0)
        );
        // break works inside do-while.
        assert_eq!(
            eval("var n = 0; do { n++; if (n == 3) break; } while (true); n;"),
            Value::from(3.0)
        );
    }

    #[test]
    fn for_in_iterates_object_keys_in_order() {
        assert_eq!(
            eval("var o = { b: 1, a: 2 }; var ks = ''; for (var k in o) ks += k; ks;"),
            Value::str("ba")
        );
        // And the values are reachable through indexing.
        assert_eq!(
            eval("var o = { x: 3, y: 4 }; var s = 0; for (var k in o) s += o[k]; s;"),
            Value::from(7.0)
        );
    }

    #[test]
    fn for_in_over_arrays_yields_indices() {
        assert_eq!(
            eval("var a = [10, 20, 30]; var s = 0; for (var i in a) s += a[i]; s;"),
            Value::from(60.0)
        );
        assert_eq!(
            eval("var n = 0; for (var k in null) n++; n;"),
            Value::from(0.0)
        );
    }

    #[test]
    fn for_in_loop_variable_is_scoped() {
        let err = eval_err("for (var k in { a: 1 }) {} k;");
        assert_eq!(err.kind(), ErrorKind::Reference);
    }

    #[test]
    fn for_in_over_number_is_type_error() {
        let err = eval_err("for (var k in 5) {}");
        assert_eq!(err.kind(), ErrorKind::Type);
    }

    #[test]
    fn cosine_coefficient_in_script() {
        // A miniature of what clustering.js does: cosine similarity
        // between two RSSI maps represented as arrays of {bssid, level}.
        let src = r#"
function cosine(a, b) {
    var dot = 0, na = 0, nb = 0;
    for (var i = 0; i < a.length; i++) {
        na += a[i].level * a[i].level;
        for (var j = 0; j < b.length; j++) {
            if (a[i].bssid == b[j].bssid)
                dot += a[i].level * b[j].level;
        }
    }
    for (var j = 0; j < b.length; j++)
        nb += b[j].level * b[j].level;
    if (na == 0 || nb == 0) return 0;
    return dot / (Math.sqrt(na) * Math.sqrt(nb));
}
cosine([{bssid: 'a', level: 1}], [{bssid: 'a', level: 1}]);
"#;
        let v = eval(src);
        assert!((v.as_num().unwrap() - 1.0).abs() < 1e-12);
    }
}
