//! Lexical environments (scope chains) for the interpreter.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::value::Value;

#[derive(Debug, Default)]
struct Scope {
    /// Keyed by interned names: declaring an AST identifier clones an
    /// `Rc`, and `&str` lookups work through `Borrow<str>`.
    vars: HashMap<Rc<str>, Value>,
    parent: Option<Env>,
}

/// A lexical scope, shared by closures that capture it.
#[derive(Debug, Clone, Default)]
pub struct Env {
    scope: Rc<RefCell<Scope>>,
}

impl Env {
    /// Creates a root (global) scope.
    pub fn new() -> Self {
        Env::default()
    }

    /// Creates a child scope whose lookups fall through to `self`.
    pub fn child(&self) -> Env {
        Env {
            scope: Rc::new(RefCell::new(Scope {
                vars: HashMap::new(),
                parent: Some(self.clone()),
            })),
        }
    }

    /// Declares (or redeclares) a variable in *this* scope.
    pub fn declare(&self, name: impl Into<Rc<str>>, value: Value) {
        self.scope.borrow_mut().vars.insert(name.into(), value);
    }

    /// Looks a name up through the scope chain.
    pub fn get(&self, name: &str) -> Option<Value> {
        // Iterative walk: deep scope chains (recursion-heavy scripts)
        // should not grow the host stack per level.
        let mut current = self.scope.clone();
        loop {
            let parent = {
                let scope = current.borrow();
                if let Some(v) = scope.vars.get(name) {
                    return Some(v.clone());
                }
                scope.parent.as_ref()?.scope.clone()
            };
            current = parent;
        }
    }

    /// Assigns to an existing variable somewhere in the chain. Returns
    /// `false` if the name is not declared anywhere (PogoScript has no
    /// implicit globals — §4.4's sandbox would not want them).
    pub fn assign(&self, name: &str, value: Value) -> bool {
        let mut current = self.scope.clone();
        loop {
            let parent = {
                let mut scope = current.borrow_mut();
                if let Some(slot) = scope.vars.get_mut(name) {
                    *slot = value;
                    return true;
                }
                match &scope.parent {
                    Some(parent) => parent.scope.clone(),
                    None => return false,
                }
            };
            current = parent;
        }
    }

    /// True if `name` is declared in this scope (not the chain).
    pub fn declared_locally(&self, name: &str) -> bool {
        self.scope.borrow().vars.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_walks_the_chain() {
        let root = Env::new();
        root.declare("x", Value::from(1.0));
        let child = root.child();
        assert_eq!(child.get("x"), Some(Value::from(1.0)));
        assert_eq!(child.get("y"), None);
    }

    #[test]
    fn shadowing_in_child_scope() {
        let root = Env::new();
        root.declare("x", Value::from(1.0));
        let child = root.child();
        child.declare("x", Value::from(2.0));
        assert_eq!(child.get("x"), Some(Value::from(2.0)));
        assert_eq!(root.get("x"), Some(Value::from(1.0)));
    }

    #[test]
    fn assign_mutates_outer_variable() {
        let root = Env::new();
        root.declare("x", Value::from(1.0));
        let child = root.child();
        assert!(child.assign("x", Value::from(5.0)));
        assert_eq!(root.get("x"), Some(Value::from(5.0)));
    }

    #[test]
    fn assign_to_undeclared_fails() {
        let root = Env::new();
        assert!(!root.assign("nope", Value::Null));
    }

    #[test]
    fn sibling_scopes_are_independent() {
        let root = Env::new();
        let a = root.child();
        let b = root.child();
        a.declare("x", Value::from(1.0));
        assert_eq!(b.get("x"), None);
    }
}
