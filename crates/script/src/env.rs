//! Lexical environments (scope chains) for the interpreter.
//!
//! Storage is a name→index map over an append-only slot vector. A
//! name's slot index never changes once declared (redeclaration
//! overwrites the value in place), which is what lets the bytecode
//! VM's global-access sites cache a slot index per chunk location and
//! verify it with a cheap name comparison instead of a hash lookup.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::value::Value;

#[derive(Debug, Default)]
struct Scope {
    /// Keyed by interned names: declaring an AST identifier clones an
    /// `Rc`, and `&str` lookups work through `Borrow<str>`. Values
    /// index `slots`.
    vars: HashMap<Rc<str>, usize>,
    /// Append-only storage; an index is stable for the scope's life.
    slots: Vec<(Rc<str>, Value)>,
    parent: Option<Env>,
}

impl Scope {
    fn declare(&mut self, name: Rc<str>, value: Value) -> usize {
        if let Some(&idx) = self.vars.get(&name) {
            self.slots[idx].1 = value;
            idx
        } else {
            let idx = self.slots.len();
            self.slots.push((name.clone(), value));
            self.vars.insert(name, idx);
            idx
        }
    }
}

/// A lexical scope, shared by closures that capture it.
#[derive(Debug, Clone, Default)]
pub struct Env {
    scope: Rc<RefCell<Scope>>,
}

impl Env {
    /// Creates a root (global) scope.
    pub fn new() -> Self {
        Env::default()
    }

    /// Creates a child scope whose lookups fall through to `self`.
    pub fn child(&self) -> Env {
        Env {
            scope: Rc::new(RefCell::new(Scope {
                vars: HashMap::new(),
                slots: Vec::new(),
                parent: Some(self.clone()),
            })),
        }
    }

    /// Declares (or redeclares) a variable in *this* scope.
    pub fn declare(&self, name: impl Into<Rc<str>>, value: Value) {
        self.scope.borrow_mut().declare(name.into(), value);
    }

    /// Declares in *this* scope and returns the (stable) slot index.
    pub(crate) fn declare_indexed(&self, name: Rc<str>, value: Value) -> usize {
        self.scope.borrow_mut().declare(name, value)
    }

    /// The slot index of `name` in *this* scope, if declared here.
    pub(crate) fn slot_of(&self, name: &str) -> Option<usize> {
        self.scope.borrow().vars.get(name).copied()
    }

    /// Reads slot `idx` if it still belongs to `name` (verified inline
    /// cache access — a chunk may be shared across environments with
    /// different declaration orders).
    pub(crate) fn slot_get(&self, idx: usize, name: &Rc<str>) -> Option<Value> {
        let scope = self.scope.borrow();
        match scope.slots.get(idx) {
            Some((n, v)) if Rc::ptr_eq(n, name) || **n == **name => Some(v.clone()),
            _ => None,
        }
    }

    /// Writes slot `idx` if it still belongs to `name`.
    pub(crate) fn slot_set(&self, idx: usize, name: &Rc<str>, value: Value) -> bool {
        let mut scope = self.scope.borrow_mut();
        match scope.slots.get_mut(idx) {
            Some((n, v)) if Rc::ptr_eq(n, name) || **n == **name => {
                *v = value;
                true
            }
            _ => false,
        }
    }

    /// Looks a name up through the scope chain.
    pub fn get(&self, name: &str) -> Option<Value> {
        // Iterative walk: deep scope chains (recursion-heavy scripts)
        // should not grow the host stack per level.
        let mut current = self.scope.clone();
        loop {
            let parent = {
                let scope = current.borrow();
                if let Some(&idx) = scope.vars.get(name) {
                    return Some(scope.slots[idx].1.clone());
                }
                scope.parent.as_ref()?.scope.clone()
            };
            current = parent;
        }
    }

    /// Assigns to an existing variable somewhere in the chain. Returns
    /// `false` if the name is not declared anywhere (PogoScript has no
    /// implicit globals — §4.4's sandbox would not want them).
    pub fn assign(&self, name: &str, value: Value) -> bool {
        let mut current = self.scope.clone();
        loop {
            let parent = {
                let mut scope = current.borrow_mut();
                if let Some(&idx) = scope.vars.get(name) {
                    scope.slots[idx].1 = value;
                    return true;
                }
                match &scope.parent {
                    Some(parent) => parent.scope.clone(),
                    None => return false,
                }
            };
            current = parent;
        }
    }

    /// True if `name` is declared in this scope (not the chain).
    pub fn declared_locally(&self, name: &str) -> bool {
        self.scope.borrow().vars.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_walks_the_chain() {
        let root = Env::new();
        root.declare("x", Value::from(1.0));
        let child = root.child();
        assert_eq!(child.get("x"), Some(Value::from(1.0)));
        assert_eq!(child.get("y"), None);
    }

    #[test]
    fn shadowing_in_child_scope() {
        let root = Env::new();
        root.declare("x", Value::from(1.0));
        let child = root.child();
        child.declare("x", Value::from(2.0));
        assert_eq!(child.get("x"), Some(Value::from(2.0)));
        assert_eq!(root.get("x"), Some(Value::from(1.0)));
    }

    #[test]
    fn assign_mutates_outer_variable() {
        let root = Env::new();
        root.declare("x", Value::from(1.0));
        let child = root.child();
        assert!(child.assign("x", Value::from(5.0)));
        assert_eq!(root.get("x"), Some(Value::from(5.0)));
    }

    #[test]
    fn assign_to_undeclared_fails() {
        let root = Env::new();
        assert!(!root.assign("nope", Value::Null));
    }

    #[test]
    fn sibling_scopes_are_independent() {
        let root = Env::new();
        let a = root.child();
        let b = root.child();
        a.declare("x", Value::from(1.0));
        assert_eq!(b.get("x"), None);
    }

    #[test]
    fn slot_indices_are_stable_across_redeclare() {
        let root = Env::new();
        let name: Rc<str> = Rc::from("x");
        let idx = root.declare_indexed(name.clone(), Value::from(1.0));
        root.declare("y", Value::from(9.0));
        // Redeclaring keeps the slot; the cached index stays valid.
        let again = root.declare_indexed(name.clone(), Value::from(2.0));
        assert_eq!(idx, again);
        assert_eq!(root.slot_get(idx, &name), Some(Value::from(2.0)));
        assert!(root.slot_set(idx, &name, Value::from(3.0)));
        assert_eq!(root.get("x"), Some(Value::from(3.0)));
        // A mismatched name is rejected, not silently aliased.
        let other: Rc<str> = Rc::from("y");
        assert_eq!(root.slot_get(idx, &other), None);
        assert!(!root.slot_set(idx, &other, Value::Null));
    }
}
