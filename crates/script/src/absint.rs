//! Abstract interpretation over compiled bytecode.
//!
//! This module walks a chunk's control-flow graph with a small
//! type/constancy/interval lattice ([`AbsVal`]) and produces two
//! things:
//!
//! * **Per-instruction abstract states** ([`Analysis`]) — what the
//!   operand stack and frame slots can hold at each reachable
//!   instruction. `opt.rs` uses these to drive safe constant
//!   propagation and branch folding.
//! * **Static cost bounds per entry point** ([`analyze_costs`]) — for
//!   the on-load run and for every callback registered through
//!   `subscribe`/`setTimeout`, a lower and upper bound on the
//!   instruction-budget units one invocation can consume (VM steps
//!   plus bytes billed by size-producing natives) and on the number of
//!   `publish` calls per trigger. Loop trip counts are inferred where
//!   the guard compares a locally-updated counter against a constant;
//!   everything else is honestly reported as `unbounded`.
//!
//! The bounds feed the `P3xx` resource diagnostics
//! ([`cost_diagnostics`]): a callback whose *minimum* cost exceeds the
//! watchdog budget can never complete and is rejected at deploy time,
//! while unbounded or over-budget worst cases are surfaced as
//! warnings. Soundness direction matters everywhere: `min` bounds are
//! under-approximations (never larger than any real run), `max`
//! bounds are over-approximations (never smaller), so the deploy gate
//! can reject on `min > budget` without ever rejecting a script that
//! could have worked.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::rc::Rc;

use crate::bytecode::{ChainRef, Chunk, CompiledProgram, FnProto, Op};
use crate::diag::{Diagnostic, Rule};
use crate::value::Value;

// ---- control-flow graph ----------------------------------------------------

/// A maximal straight-line run of instructions.
#[derive(Debug, Clone)]
pub struct Block {
    /// First instruction index (inclusive).
    pub start: usize,
    /// One past the last instruction.
    pub end: usize,
    /// Successor block ids, in (fall-through, jump) order.
    pub succs: Vec<usize>,
}

/// Basic blocks of one chunk, ordered by start index.
#[derive(Debug, Clone)]
pub struct Cfg {
    pub blocks: Vec<Block>,
    /// Block id of each instruction.
    pub block_of: Vec<usize>,
}

fn jump_target(op: Op) -> Option<usize> {
    match op {
        Op::Jump(t)
        | Op::JumpIfFalse(t)
        | Op::JumpIfTruePeek(t)
        | Op::JumpIfFalsePeek(t)
        | Op::ForInNext(_, t) => Some(t as usize),
        _ => None,
    }
}

fn is_terminal(op: Op) -> bool {
    matches!(
        op,
        Op::Return | Op::ReturnNull | Op::ReturnResult | Op::FlowErr(_)
    )
}

/// Build the basic-block graph of a chunk. Works on unverified chunks
/// too: out-of-range jump targets are clamped to the stream end.
pub fn build_cfg(chunk: &Chunk) -> Cfg {
    let n = chunk.ops.len();
    let mut leader = vec![false; n.max(1)];
    if n > 0 {
        leader[0] = true;
    }
    for (ip, &op) in chunk.ops.iter().enumerate() {
        if let Some(t) = jump_target(op) {
            if t < n {
                leader[t] = true;
            }
            if ip + 1 < n {
                leader[ip + 1] = true;
            }
        } else if is_terminal(op) && ip + 1 < n {
            leader[ip + 1] = true;
        }
    }
    let mut blocks = Vec::new();
    let mut block_of = vec![0usize; n];
    for ip in 0..n {
        if leader[ip] {
            blocks.push(Block {
                start: ip,
                end: ip,
                succs: Vec::new(),
            });
        }
        let cur = blocks.len() - 1;
        block_of[ip] = cur;
        blocks[cur].end = ip + 1;
    }
    let nb = blocks.len();
    for b in 0..nb {
        let last = blocks[b].end - 1;
        let op = chunk.ops[last];
        let mut succs = Vec::new();
        match op {
            Op::Jump(t) => {
                if (t as usize) < n {
                    succs.push(block_of[t as usize]);
                }
            }
            _ if is_terminal(op) => {}
            _ => {
                if blocks[b].end < n {
                    succs.push(block_of[blocks[b].end]);
                }
                if let Some(t) = jump_target(op) {
                    if t < n {
                        let tb = block_of[t];
                        if !succs.contains(&tb) {
                            succs.push(tb);
                        }
                    }
                }
            }
        }
        blocks[b].succs = succs;
    }
    Cfg { blocks, block_of }
}

// ---- the lattice -----------------------------------------------------------

/// Abstract value: constancy, numeric intervals, or a type. `Num`
/// means "some number, possibly NaN; its non-NaN values lie in
/// `[lo, hi]`" — bounds are never NaN themselves. `Closure`/`Native`
/// only appear when the analysis runs with whole-program context.
#[derive(Debug, Clone, PartialEq)]
pub enum AbsVal {
    /// A known number, stored as bits so NaN compares equal to itself
    /// for fixpoint purposes.
    ConstNum(u64),
    ConstStr(Rc<str>),
    ConstBool(bool),
    ConstNull,
    Num {
        lo: f64,
        hi: f64,
    },
    Bool,
    Str,
    Array,
    Object,
    /// Some script function (opaque).
    Func,
    /// The closure of program-wide prototype `id` (see [`ProgramCtx`]).
    Closure(u32),
    /// A host native known by name (untouched global binding).
    Native(Rc<str>),
    Any,
    /// No value has flowed here yet: the identity of `join`. Only
    /// appears transiently, inside the global-value fixpoint of
    /// [`ProgramCtx::build`]; finished analyses never expose it.
    Bottom,
}

impl AbsVal {
    pub fn num(x: f64) -> AbsVal {
        AbsVal::ConstNum(x.to_bits())
    }

    pub fn num_any() -> AbsVal {
        AbsVal::Num {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    fn interval(lo: f64, hi: f64) -> AbsVal {
        if lo.is_nan() || hi.is_nan() {
            AbsVal::num_any()
        } else {
            AbsVal::Num { lo, hi }
        }
    }

    /// The numeric interval of a definitely-a-number value.
    pub fn as_interval(&self) -> Option<(f64, f64)> {
        match self {
            AbsVal::ConstNum(b) => {
                let x = f64::from_bits(*b);
                if x.is_nan() {
                    Some((f64::NEG_INFINITY, f64::INFINITY))
                } else {
                    Some((x, x))
                }
            }
            AbsVal::Num { lo, hi } => Some((*lo, *hi)),
            _ => None,
        }
    }

    fn is_numeric(&self) -> bool {
        matches!(self, AbsVal::ConstNum(_) | AbsVal::Num { .. })
    }

    /// Truthiness when statically known (matches `Value::is_truthy`).
    pub fn truthiness(&self) -> Option<bool> {
        match self {
            AbsVal::ConstNum(b) => {
                let x = f64::from_bits(*b);
                Some(x != 0.0 && !x.is_nan())
            }
            AbsVal::ConstStr(s) => Some(!s.is_empty()),
            AbsVal::ConstBool(b) => Some(*b),
            AbsVal::ConstNull => Some(false),
            // Arrays, objects, functions and natives are always truthy.
            AbsVal::Array | AbsVal::Object | AbsVal::Func | AbsVal::Closure(_) => Some(true),
            AbsVal::Native(_) => Some(true),
            _ => None,
        }
    }

    pub fn join(&self, other: &AbsVal) -> AbsVal {
        use AbsVal::*;
        if self == other {
            return self.clone();
        }
        match (self, other) {
            (Bottom, b) => b.clone(),
            (a, Bottom) => a.clone(),
            (a, b) if a.is_numeric() && b.is_numeric() => {
                let (al, ah) = a.as_interval().unwrap();
                let (bl, bh) = b.as_interval().unwrap();
                AbsVal::interval(al.min(bl), ah.max(bh))
            }
            (ConstStr(_) | Str, ConstStr(_) | Str) => Str,
            (ConstBool(_) | Bool, ConstBool(_) | Bool) => Bool,
            (Func | Closure(_), Func | Closure(_)) => Func,
            _ => Any,
        }
    }

    /// Join with widening: any interval bound the join moved gets
    /// pushed to infinity so counter loops reach a fixpoint fast.
    fn widen(&self, other: &AbsVal) -> AbsVal {
        let joined = self.join(other);
        if let (Some((al, ah)), Some((jl, jh))) = (self.as_interval(), joined.as_interval()) {
            if jl < al || jh > ah {
                let lo = if jl < al { f64::NEG_INFINITY } else { jl };
                let hi = if jh > ah { f64::INFINITY } else { jh };
                return AbsVal::interval(lo, hi);
            }
        }
        joined
    }
}

/// What a frame slot holds.
#[derive(Debug, Clone, PartialEq)]
pub enum SlotAbs {
    /// No binding yet (pre-declaration, or cleared on block re-entry).
    Empty,
    Val(AbsVal),
    /// A heap cell (captured variable); contents are opaque because
    /// closures can mutate them between any two instructions.
    Cell,
    /// A for-in key iterator.
    Iter,
    /// Unknown binding state.
    Top,
}

impl SlotAbs {
    fn join(&self, other: &SlotAbs) -> SlotAbs {
        use SlotAbs::*;
        match (self, other) {
            (a, b) if a == b => a.clone(),
            (Val(a), Val(b)) => Val(a.join(b)),
            _ => Top,
        }
    }

    fn widen(&self, other: &SlotAbs) -> SlotAbs {
        use SlotAbs::*;
        match (self, other) {
            (Val(a), Val(b)) => Val(a.widen(b)),
            _ => self.join(other),
        }
    }
}

/// Abstract machine state at one program point.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    pub stack: Vec<AbsVal>,
    pub slots: Vec<SlotAbs>,
}

impl State {
    fn entry(chunk: &Chunk, params: &[(u16, bool)]) -> State {
        let mut slots = vec![SlotAbs::Empty; chunk.n_slots as usize];
        for &(slot, is_cell) in params {
            slots[slot as usize] = if is_cell {
                SlotAbs::Cell
            } else {
                SlotAbs::Val(AbsVal::Any)
            };
        }
        State {
            stack: Vec::new(),
            slots,
        }
    }

    /// Join `other` into `self`; returns whether anything changed.
    /// Verified chunks guarantee equal stack depths at joins; if they
    /// differ anyway (unverified input) the shorter prefix wins.
    fn join_from(&mut self, other: &State, widen: bool) -> bool {
        let mut changed = false;
        if self.stack.len() != other.stack.len() {
            self.stack.truncate(other.stack.len().min(self.stack.len()));
        }
        for (a, b) in self.stack.iter_mut().zip(&other.stack) {
            let j = if widen { a.widen(b) } else { a.join(b) };
            if *a != j {
                *a = j;
                changed = true;
            }
        }
        for (a, b) in self.slots.iter_mut().zip(&other.slots) {
            let j = if widen { a.widen(b) } else { a.join(b) };
            if *a != j {
                *a = j;
                changed = true;
            }
        }
        changed
    }
}

// ---- whole-program context -------------------------------------------------

/// Names the embedder registers as natives (the Pogo API of `host.rs`
/// plus the language builtins). A global read of one of these — when
/// no script declaration shadows it — is abstracted as
/// [`AbsVal::Native`], which is what lets the analyzer recognize
/// `subscribe`/`setTimeout` registrations and cost `publish` calls.
pub const KNOWN_NATIVES: &[&str] = &[
    "setDescription",
    "setAutoStart",
    "print",
    "log",
    "logTo",
    "publish",
    "subscribe",
    "freeze",
    "thaw",
    "json",
    "setTimeout",
    "geolocate",
    "keys",
    "Number",
    "String",
    "isNaN",
    "parseFloat",
];

enum GlobalBinding {
    /// `function f(..)` at top level, never reassigned anywhere.
    Closure(u32),
    /// Declared or assigned by the script in a way we cannot track.
    Opaque,
}

/// Whole-program facts: a flat prototype numbering and the provable
/// global bindings. Built once per [`CompiledProgram`].
pub struct ProgramCtx {
    protos: Vec<Rc<FnProto>>,
    ids: HashMap<usize, u32>,
    globals: HashMap<Rc<str>, GlobalBinding>,
    /// Flow-insensitive abstract value of every global the script
    /// itself stores to: the join of everything any store site can
    /// write, iterated to fixpoint. Assumes the host does not inject
    /// values into script-declared globals (it registers natives under
    /// names scripts don't shadow), which is how `pogo-core` behaves.
    global_vals: HashMap<Rc<str>, AbsVal>,
}

impl ProgramCtx {
    pub fn build(program: &CompiledProgram) -> ProgramCtx {
        let mut ctx = ProgramCtx {
            protos: Vec::new(),
            ids: HashMap::new(),
            globals: HashMap::new(),
            global_vals: HashMap::new(),
        };
        ctx.number(&program.main);
        // Global bindings: a MakeClosure immediately followed by
        // DeclGlobal is a top-level `function` declaration. Any other
        // global declaration/store (or a store through a chain whose
        // fallback is the global scope) makes the name opaque.
        for id in 0..ctx.protos.len() {
            let proto = ctx.protos[id].clone();
            let chunk = &proto.chunk;
            for (ip, &op) in chunk.ops.iter().enumerate() {
                match op {
                    Op::DeclGlobal(g) => {
                        let name = chunk.globals[g as usize].name.clone();
                        let bound = match (ip.checked_sub(1).map(|p| chunk.ops[p]), id) {
                            (Some(Op::MakeClosure(p)), 0) => {
                                let child = &chunk.protos[p as usize];
                                Some(ctx.ids[&(Rc::as_ptr(child) as usize)])
                            }
                            _ => None,
                        };
                        ctx.globals
                            .entry(name)
                            .and_modify(|b| *b = GlobalBinding::Opaque)
                            .or_insert(match bound {
                                Some(pid) => GlobalBinding::Closure(pid),
                                None => GlobalBinding::Opaque,
                            });
                    }
                    Op::StoreGlobal(g) => {
                        let name = chunk.globals[g as usize].name.clone();
                        ctx.globals.insert(name, GlobalBinding::Opaque);
                    }
                    Op::StoreChain(c) => {
                        let chain = &chunk.chains[c as usize];
                        if chain.cands.iter().any(|r| matches!(r, ChainRef::Global)) {
                            ctx.globals
                                .insert(chain.name.clone(), GlobalBinding::Opaque);
                        }
                    }
                    _ => {}
                }
            }
        }
        ctx.solve_global_values();
        ctx
    }

    /// Kleene iteration for [`ProgramCtx::global_vals`]: start every
    /// stored-to global at `Bottom`, re-analyze each function under
    /// the current assumption, join what every store site writes, and
    /// repeat (with widening from round three) until stable. If the
    /// cap trips, everything degrades to `Any` — never unsound, only
    /// imprecise.
    fn solve_global_values(&mut self) {
        const MAX_ROUNDS: usize = 8;
        // Seed: every global with at least one in-script store site.
        for proto in &self.protos {
            let chunk = &proto.chunk;
            for &op in &chunk.ops {
                match op {
                    Op::DeclGlobal(g) | Op::StoreGlobal(g) => {
                        self.global_vals
                            .insert(chunk.globals[g as usize].name.clone(), AbsVal::Bottom);
                    }
                    Op::StoreChain(c) => {
                        let chain = &chunk.chains[c as usize];
                        if chain.cands.iter().any(|r| matches!(r, ChainRef::Global)) {
                            self.global_vals.insert(chain.name.clone(), AbsVal::Bottom);
                        }
                    }
                    _ => {}
                }
            }
        }
        if self.global_vals.is_empty() {
            return;
        }
        let mut converged = false;
        for round in 0..MAX_ROUNDS {
            let mut next: HashMap<Rc<str>, AbsVal> = self
                .global_vals
                .keys()
                .map(|k| (k.clone(), AbsVal::Bottom))
                .collect();
            for proto in self.protos.clone() {
                let chunk = &proto.chunk;
                let analysis = analyze_chunk(chunk, &proto.params, Some(self));
                for (ip, &op) in chunk.ops.iter().enumerate() {
                    let name = match op {
                        Op::DeclGlobal(g) | Op::StoreGlobal(g) => {
                            chunk.globals[g as usize].name.clone()
                        }
                        Op::StoreChain(c) => {
                            let chain = &chunk.chains[c as usize];
                            if !chain.cands.iter().any(|r| matches!(r, ChainRef::Global)) {
                                continue;
                            }
                            chain.name.clone()
                        }
                        _ => continue,
                    };
                    // All three ops take the stored value from the top
                    // of the stack at entry.
                    let stored = match &analysis.in_states[ip] {
                        Some(st) => st.stack.last().cloned().unwrap_or(AbsVal::Any),
                        None => continue, // store never reached
                    };
                    next.entry(name).and_modify(|v| *v = v.join(&stored));
                }
            }
            if round >= 2 {
                for (k, v) in &mut next {
                    *v = self.global_vals[k].widen(v);
                }
            }
            if next == self.global_vals {
                converged = true;
                break;
            }
            self.global_vals = next;
        }
        for v in self.global_vals.values_mut() {
            // Residual Bottom = the only stores are self-referential
            // (dead at runtime); unconverged = give up precision.
            if !converged || matches!(v, AbsVal::Bottom) {
                *v = AbsVal::Any;
            }
        }
    }

    fn number(&mut self, proto: &Rc<FnProto>) {
        let id = self.protos.len() as u32;
        self.ids.insert(Rc::as_ptr(proto) as usize, id);
        self.protos.push(proto.clone());
        for p in &proto.chunk.protos {
            self.number(p);
        }
    }

    pub fn proto(&self, id: u32) -> &Rc<FnProto> {
        &self.protos[id as usize]
    }

    pub fn proto_count(&self) -> usize {
        self.protos.len()
    }

    /// Abstract value of a global read by name.
    fn global_abs(&self, name: &str) -> AbsVal {
        match self.globals.get(name) {
            Some(GlobalBinding::Closure(id)) => AbsVal::Closure(*id),
            Some(GlobalBinding::Opaque) => match self.global_vals.get(name) {
                Some(v) => v.clone(),
                None => AbsVal::Any,
            },
            None if KNOWN_NATIVES.contains(&name) => AbsVal::Native(Rc::from(name)),
            None => AbsVal::Any,
        }
    }
}

// ---- the abstract interpreter ----------------------------------------------

/// Fixpoint result over one chunk: the CFG plus the abstract state at
/// the entry of every reachable instruction (`None` = unreachable).
pub struct Analysis {
    pub cfg: Cfg,
    pub in_states: Vec<Option<State>>,
}

/// Block visits before widening kicks in.
const WIDEN_AFTER: u32 = 8;

/// Run the abstract interpreter to fixpoint over one chunk.
/// `ctx = None` (the optimizer's mode) treats every global and
/// closure as opaque, which only costs precision.
pub fn analyze_chunk(chunk: &Chunk, params: &[(u16, bool)], ctx: Option<&ProgramCtx>) -> Analysis {
    let cfg = build_cfg(chunk);
    let nb = cfg.blocks.len();
    let mut in_states = vec![None; chunk.ops.len()];
    if chunk.ops.is_empty() {
        return Analysis { cfg, in_states };
    }
    let mut entry: Vec<Option<State>> = vec![None; nb];
    let mut visits = vec![0u32; nb];
    entry[0] = Some(State::entry(chunk, params));
    let mut work: Vec<usize> = vec![0];
    let mut rounds = 0usize;
    // Hard backstop: the widening lattice is finite so this always
    // converges, but a bound keeps a pathological chunk cheap.
    let max_rounds = 64 * nb.max(1) + 256;
    while let Some(b) = work.pop() {
        rounds += 1;
        if rounds > max_rounds {
            break;
        }
        visits[b] += 1;
        let mut st = entry[b].clone().expect("queued blocks have a state");
        let block = cfg.blocks[b].clone();
        let mut flows: Vec<(usize, State)> = Vec::new();
        let mut fell_off = true;
        for ip in block.start..block.end {
            let op = chunk.ops[ip];
            match step(&mut st, op, chunk, ctx) {
                Flow::Fall => {}
                Flow::Jump(t) => {
                    flows.push((cfg.block_of[t.min(chunk.ops.len() - 1)], st.clone()));
                    fell_off = false;
                    break;
                }
                Flow::Branch(t) => {
                    flows.push((cfg.block_of[t.min(chunk.ops.len() - 1)], st.clone()));
                    // Fall-through continues with the same state.
                }
                Flow::ForIn(t) => {
                    flows.push((cfg.block_of[t.min(chunk.ops.len() - 1)], st.clone()));
                    // Fall-through additionally holds the next key.
                    st.stack.push(AbsVal::Any);
                }
                Flow::End => {
                    fell_off = false;
                    break;
                }
            }
        }
        if fell_off && block.end < chunk.ops.len() {
            flows.push((cfg.block_of[block.end], st));
        }
        for (succ, fs) in flows {
            let widen = visits[succ] >= WIDEN_AFTER;
            let changed = match &mut entry[succ] {
                Some(cur) => cur.join_from(&fs, widen),
                slot @ None => {
                    *slot = Some(fs);
                    true
                }
            };
            if changed && !work.contains(&succ) {
                work.push(succ);
            }
        }
    }
    // Final pass: record converged per-instruction entry states.
    for (b, entry_st) in entry.iter().enumerate().take(nb) {
        let Some(st) = entry_st else { continue };
        let mut st = st.clone();
        let block = &cfg.blocks[b];
        for (ip, in_state) in in_states
            .iter_mut()
            .enumerate()
            .take(block.end)
            .skip(block.start)
        {
            *in_state = Some(st.clone());
            let op = chunk.ops[ip];
            match step(&mut st, op, chunk, ctx) {
                Flow::Jump(_) | Flow::End => break,
                Flow::ForIn(_) => {
                    st.stack.push(AbsVal::Any);
                }
                _ => {}
            }
        }
    }
    Analysis { cfg, in_states }
}

enum Flow {
    Fall,
    Jump(usize),
    Branch(usize),
    ForIn(usize),
    End,
}

fn abs_of_value(v: &Value) -> AbsVal {
    match v {
        Value::Num(n) => AbsVal::num(*n),
        Value::Str(s) => AbsVal::ConstStr(s.clone()),
        Value::Bool(b) => AbsVal::ConstBool(*b),
        Value::Null => AbsVal::ConstNull,
        _ => AbsVal::Any,
    }
}

/// Abstract binary arithmetic. Only numeric facts are tracked
/// precisely; strings stay at the type level because concatenation has
/// budget-charging semantics the optimizer must not erase.
fn binop(op: Op, a: &AbsVal, b: &AbsVal) -> AbsVal {
    use AbsVal::*;
    // Bottom-strict: an operation on a not-yet-flowed value produces
    // nothing. This is what lets the global-value fixpoint prove that
    // `s = s + 1` keeps a number-initialized `s` numeric.
    if matches!(a, Bottom) || matches!(b, Bottom) {
        return Bottom;
    }
    match op {
        Op::Add => match (a.as_interval(), b.as_interval()) {
            (Some(_), Some(_)) => match (a, b) {
                (ConstNum(x), ConstNum(y)) => AbsVal::num(f64::from_bits(*x) + f64::from_bits(*y)),
                _ => {
                    let (al, ah) = a.as_interval().unwrap();
                    let (bl, bh) = b.as_interval().unwrap();
                    AbsVal::interval(al + bl, ah + bh)
                }
            },
            _ => match (a, b) {
                // Constant concatenation stays constant — the VM does
                // exactly this append, and keeping the value const is
                // what lets chained literal concats (`'a' + '-' + 'b'`)
                // keep an exact byte charge instead of degrading to
                // "some string" after the first `+`.
                (ConstStr(x), ConstStr(y)) => ConstStr(format!("{x}{y}").into()),
                _ if matches!(a, ConstStr(_) | Str) || matches!(b, ConstStr(_) | Str) => {
                    // At least one side may be a string: the result is
                    // a string if either side definitely is.
                    Str
                }
                _ => Any,
            },
        },
        Op::Sub | Op::Mul | Op::Div | Op::Rem => match (a, b) {
            (ConstNum(x), ConstNum(y)) => {
                let (x, y) = (f64::from_bits(*x), f64::from_bits(*y));
                AbsVal::num(match op {
                    Op::Sub => x - y,
                    Op::Mul => x * y,
                    Op::Div => x / y,
                    _ => x % y,
                })
            }
            _ if a.is_numeric() && b.is_numeric() => match op {
                Op::Sub => {
                    let (al, ah) = a.as_interval().unwrap();
                    let (bl, bh) = b.as_interval().unwrap();
                    AbsVal::interval(al - bh, ah - bl)
                }
                // Mul/Div/Rem intervals are easy to get subtly wrong
                // around zeros and infinities; "some number" is enough.
                _ => AbsVal::num_any(),
            },
            _ => Any,
        },
        Op::Eq | Op::Ne => {
            let eq = match (a, b) {
                (ConstNum(x), ConstNum(y)) => Some(f64::from_bits(*x) == f64::from_bits(*y)),
                (ConstStr(x), ConstStr(y)) => Some(x == y),
                (ConstBool(x), ConstBool(y)) => Some(x == y),
                (ConstNull, ConstNull) => Some(true),
                // Distinct known kinds: strict equality is false.
                (ConstNum(_) | ConstStr(_) | ConstBool(_) | ConstNull, _)
                    if is_distinct_const_kind(a, b) =>
                {
                    Some(false)
                }
                _ => None,
            };
            match eq {
                Some(e) => ConstBool(if matches!(op, Op::Eq) { e } else { !e }),
                None => Bool,
            }
        }
        Op::Lt | Op::Gt | Op::Le | Op::Ge => match (a, b) {
            (ConstNum(x), ConstNum(y)) => {
                let (x, y) = (f64::from_bits(*x), f64::from_bits(*y));
                ConstBool(match op {
                    Op::Lt => x < y,
                    Op::Gt => x > y,
                    Op::Le => x <= y,
                    _ => x >= y,
                })
            }
            _ => Bool,
        },
        _ => Any,
    }
}

/// Both are known constants of provably different runtime types.
fn is_distinct_const_kind(a: &AbsVal, b: &AbsVal) -> bool {
    use AbsVal::*;
    let kind = |v: &AbsVal| match v {
        ConstNum(_) => Some(0),
        ConstStr(_) => Some(1),
        ConstBool(_) => Some(2),
        ConstNull => Some(3),
        _ => None,
    };
    matches!((kind(a), kind(b)), (Some(x), Some(y)) if x != y)
}

/// Apply one instruction to `st`. Underflows push/return `Any`
/// defensively — this runs on verifier-approved chunks in production,
/// but lint tooling may walk arbitrary input.
fn step(st: &mut State, op: Op, chunk: &Chunk, ctx: Option<&ProgramCtx>) -> Flow {
    let pop = |st: &mut State| st.stack.pop().unwrap_or(AbsVal::Any);
    match op {
        Op::Const(i) => st.stack.push(abs_of_value(&chunk.consts[i as usize])),
        Op::PushNull => st.stack.push(AbsVal::ConstNull),
        Op::PushTrue => st.stack.push(AbsVal::ConstBool(true)),
        Op::PushFalse => st.stack.push(AbsVal::ConstBool(false)),
        Op::MakeArray(n) => {
            for _ in 0..n {
                pop(st);
            }
            st.stack.push(AbsVal::Array);
        }
        Op::MakeObject(i) => {
            for _ in 0..chunk.shapes[i as usize].len() {
                pop(st);
            }
            st.stack.push(AbsVal::Object);
        }
        Op::MakeClosure(i) => {
            let v = match ctx {
                Some(ctx) => {
                    let child = &chunk.protos[i as usize];
                    match ctx.ids.get(&(Rc::as_ptr(child) as usize)) {
                        Some(&id) => AbsVal::Closure(id),
                        None => AbsVal::Func,
                    }
                }
                None => AbsVal::Func,
            };
            st.stack.push(v);
        }
        Op::LoadLocal(s) => {
            let v = match &st.slots[s as usize] {
                SlotAbs::Val(v) => v.clone(),
                _ => AbsVal::Any,
            };
            st.stack.push(v);
        }
        Op::StoreLocal(s) => {
            let v = st.stack.last().cloned().unwrap_or(AbsVal::Any);
            st.slots[s as usize] = SlotAbs::Val(v);
        }
        Op::DeclLocal(s) => {
            let v = pop(st);
            st.slots[s as usize] = SlotAbs::Val(v);
        }
        Op::LoadCell(_) | Op::LoadUpval(_) => st.stack.push(AbsVal::Any),
        Op::StoreCell(_) | Op::StoreUpval(_) => {}
        Op::DeclCell(s) => {
            pop(st);
            st.slots[s as usize] = SlotAbs::Cell;
        }
        Op::NewCell(s) => st.slots[s as usize] = SlotAbs::Cell,
        Op::ClearSlot(s) => st.slots[s as usize] = SlotAbs::Empty,
        Op::LoadGlobal(g) => {
            let v = match ctx {
                Some(ctx) => ctx.global_abs(&chunk.globals[g as usize].name),
                None => AbsVal::Any,
            };
            st.stack.push(v);
        }
        Op::StoreGlobal(_) => {}
        Op::DeclGlobal(_) => {
            pop(st);
        }
        Op::LoadChain(c) => {
            // Only a pure-global chain is predictable; frame/cell
            // candidates depend on runtime binding order.
            let chain = &chunk.chains[c as usize];
            let v = match (ctx, chain.cands.as_ref()) {
                (Some(ctx), [ChainRef::Global]) => ctx.global_abs(&chain.name),
                _ => AbsVal::Any,
            };
            st.stack.push(v);
        }
        Op::StoreChain(c) => {
            // The store lands in the innermost *bound* candidate; any
            // local-slot candidate may receive it (weak update).
            let v = st.stack.last().cloned().unwrap_or(AbsVal::Any);
            let chain = &chunk.chains[c as usize];
            for cand in chain.cands.iter() {
                if let ChainRef::Local(s) = cand {
                    let cur = st.slots[*s as usize].clone();
                    st.slots[*s as usize] = cur.join(&SlotAbs::Val(v.clone()));
                }
            }
        }
        Op::Pop | Op::SetResult => {
            pop(st);
        }
        Op::Dup => {
            let v = st.stack.last().cloned().unwrap_or(AbsVal::Any);
            st.stack.push(v);
        }
        Op::Swap => {
            let n = st.stack.len();
            if n >= 2 {
                st.stack.swap(n - 1, n - 2);
            }
        }
        Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::Rem
        | Op::Eq
        | Op::Ne
        | Op::Lt
        | Op::Gt
        | Op::Le
        | Op::Ge => {
            let b = pop(st);
            let a = pop(st);
            st.stack.push(binop(op, &a, &b));
        }
        Op::Not => {
            let v = pop(st);
            st.stack.push(match v.truthiness() {
                Some(t) => AbsVal::ConstBool(!t),
                None => AbsVal::Bool,
            });
        }
        Op::Neg | Op::UnaryPlus | Op::Inc | Op::Dec => {
            let v = pop(st);
            let out = match v.as_interval() {
                Some((lo, hi)) => match op {
                    Op::Neg => match v {
                        AbsVal::ConstNum(b) => AbsVal::num(-f64::from_bits(b)),
                        _ => AbsVal::interval(-hi, -lo),
                    },
                    Op::UnaryPlus => v,
                    Op::Inc => match v {
                        AbsVal::ConstNum(b) => AbsVal::num(f64::from_bits(b) + 1.0),
                        _ => AbsVal::interval(lo + 1.0, hi + 1.0),
                    },
                    _ => match v {
                        AbsVal::ConstNum(b) => AbsVal::num(f64::from_bits(b) - 1.0),
                        _ => AbsVal::interval(lo - 1.0, hi - 1.0),
                    },
                },
                None => AbsVal::Any,
            };
            st.stack.push(out);
        }
        Op::TypeOf => {
            pop(st);
            st.stack.push(AbsVal::Str);
        }
        Op::GetMember(_) => {
            pop(st);
            st.stack.push(AbsVal::Any);
        }
        Op::SetMember(_) => {
            // Pops the object; the stored value stays on the stack.
            pop(st);
        }
        Op::GetIndex => {
            pop(st);
            pop(st);
            st.stack.push(AbsVal::Any);
        }
        Op::SetIndex => {
            // Pops index and object; the value stays on the stack.
            pop(st);
            pop(st);
        }
        Op::Call(n) => {
            for _ in 0..=n {
                pop(st);
            }
            st.stack.push(AbsVal::Any);
        }
        Op::CallMethod(_, n) => {
            for _ in 0..=n {
                pop(st);
            }
            st.stack.push(AbsVal::Any);
        }
        Op::MathCall(_, n) => {
            for _ in 0..n {
                pop(st);
            }
            st.stack.push(AbsVal::num_any());
        }
        Op::Jump(t) => return Flow::Jump(t as usize),
        Op::JumpIfFalse(t) => {
            pop(st);
            return Flow::Branch(t as usize);
        }
        Op::JumpIfTruePeek(t) | Op::JumpIfFalsePeek(t) => {
            return Flow::Branch(t as usize);
        }
        Op::Return => {
            pop(st);
            return Flow::End;
        }
        Op::ReturnNull | Op::ReturnResult | Op::FlowErr(_) => return Flow::End,
        Op::ForInPrep(s) => {
            pop(st);
            st.slots[s as usize] = SlotAbs::Iter;
        }
        Op::ForInNext(_, t) => return Flow::ForIn(t as usize),
    }
    Flow::Fall
}

// ---- cost bounds -----------------------------------------------------------

/// Upper bound of a cost dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Max {
    Finite(u64),
    Unbounded,
}

impl Max {
    fn add(self, other: Max) -> Max {
        match (self, other) {
            (Max::Finite(a), Max::Finite(b)) => Max::Finite(a.saturating_add(b)),
            _ => Max::Unbounded,
        }
    }

    fn mul(self, k: Max) -> Max {
        match (self, k) {
            (Max::Finite(0), _) | (_, Max::Finite(0)) => Max::Finite(0),
            (Max::Finite(a), Max::Finite(b)) => Max::Finite(a.saturating_mul(b)),
            _ => Max::Unbounded,
        }
    }

    fn join(self, other: Max) -> Max {
        match (self, other) {
            (Max::Finite(a), Max::Finite(b)) => Max::Finite(a.max(b)),
            _ => Max::Unbounded,
        }
    }

    pub fn exceeds(self, budget: u64) -> bool {
        match self {
            Max::Finite(x) => x > budget,
            Max::Unbounded => true,
        }
    }
}

impl fmt::Display for Max {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Max::Finite(x) => write!(f, "{x}"),
            Max::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// `[min, max]` bound on one cost dimension. `min` is a guaranteed
/// lower bound over every completing execution; `max` an upper bound
/// over all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bound {
    pub min: u64,
    pub max: Max,
}

impl Bound {
    pub const ZERO: Bound = Bound {
        min: 0,
        max: Max::Finite(0),
    };

    pub fn exact(x: u64) -> Bound {
        Bound {
            min: x,
            max: Max::Finite(x),
        }
    }

    pub fn at_most(x: u64) -> Bound {
        Bound {
            min: 0,
            max: Max::Finite(x),
        }
    }

    pub const UNBOUNDED: Bound = Bound {
        min: 0,
        max: Max::Unbounded,
    };

    fn add(self, other: Bound) -> Bound {
        Bound {
            min: self.min.saturating_add(other.min),
            max: self.max.add(other.max),
        }
    }

    /// Join over alternative paths.
    fn join(self, other: Bound) -> Bound {
        Bound {
            min: self.min.min(other.min),
            max: self.max.join(other.max),
        }
    }

    fn scale(self, trips_min: u64, trips_max: Max) -> Bound {
        Bound {
            min: self.min.saturating_mul(trips_min),
            max: self.max.mul(trips_max),
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.min, self.max)
    }
}

/// Static cost of one code region or entry point, in the three
/// currencies the runtime meters: VM instruction steps, bytes billed
/// through `Interpreter::charge` (string building, size-producing
/// natives), and `publish` calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cost {
    pub steps: Bound,
    pub charge: Bound,
    pub publishes: Bound,
}

impl Cost {
    pub const ZERO: Cost = Cost {
        steps: Bound::ZERO,
        charge: Bound::ZERO,
        publishes: Bound::ZERO,
    };

    /// One VM instruction.
    fn step() -> Cost {
        Cost {
            steps: Bound::exact(1),
            ..Cost::ZERO
        }
    }

    /// A call we can say nothing about.
    fn unknown_call() -> Cost {
        Cost {
            steps: Bound::UNBOUNDED,
            charge: Bound::UNBOUNDED,
            publishes: Bound::UNBOUNDED,
        }
    }

    fn add(self, o: Cost) -> Cost {
        Cost {
            steps: self.steps.add(o.steps),
            charge: self.charge.add(o.charge),
            publishes: self.publishes.add(o.publishes),
        }
    }

    fn join(self, o: Cost) -> Cost {
        Cost {
            steps: self.steps.join(o.steps),
            charge: self.charge.join(o.charge),
            publishes: self.publishes.join(o.publishes),
        }
    }

    fn scale(self, trips_min: u64, trips_max: Max) -> Cost {
        Cost {
            steps: self.steps.scale(trips_min, trips_max),
            charge: self.charge.scale(trips_min, trips_max),
            publishes: self.publishes.scale(trips_min, trips_max),
        }
    }

    /// Budget units one invocation is guaranteed to consume (steps and
    /// charged bytes bill the same watchdog counter).
    pub fn budget_min(&self) -> u64 {
        self.steps.min.saturating_add(self.charge.min)
    }

    /// Upper bound on billed budget units.
    pub fn budget_max(&self) -> Max {
        self.steps.max.add(self.charge.max)
    }
}

// ---- loop structure --------------------------------------------------------

/// A natural-loop interval of basic blocks: `header..=last`, where
/// every back-edge targets `header`. The compiler's structured
/// codegen guarantees loops form properly nested intervals.
#[derive(Debug, Clone)]
pub struct LoopRegion {
    pub header: usize,
    pub last: usize,
    pub children: Vec<LoopRegion>,
}

/// Find loop intervals and nest them. Returns `None` when intervals
/// cross (never for compiler output — a bailout for mutated chunks).
pub fn find_loops(cfg: &Cfg) -> Option<Vec<LoopRegion>> {
    let mut by_header: HashMap<usize, usize> = HashMap::new();
    for (b, block) in cfg.blocks.iter().enumerate() {
        for &s in &block.succs {
            if s <= b {
                let last = by_header.entry(s).or_insert(b);
                *last = (*last).max(b);
            }
        }
    }
    let mut loops: Vec<(usize, usize)> = by_header.into_iter().collect();
    // Outermost-first: earlier header, then wider interval.
    loops.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
    let mut roots: Vec<LoopRegion> = Vec::new();
    let mut stack: Vec<LoopRegion> = Vec::new();
    for (header, last) in loops {
        let region = LoopRegion {
            header,
            last,
            children: Vec::new(),
        };
        while let Some(top) = stack.last() {
            if top.last < header {
                let done = stack.pop().unwrap();
                match stack.last_mut() {
                    Some(parent) => parent.children.push(done),
                    None => roots.push(done),
                }
            } else {
                break;
            }
        }
        if let Some(top) = stack.last() {
            if last > top.last {
                return None; // crossing intervals
            }
        }
        stack.push(region);
    }
    while let Some(done) = stack.pop() {
        match stack.last_mut() {
            Some(parent) => parent.children.push(done),
            None => roots.push(done),
        }
    }
    Some(roots)
}

/// Statically inferred trip counts of one loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trips {
    /// Guaranteed iterations (0 when the loop can break out early or
    /// the entry value is not exact).
    pub min: u64,
    /// `None` = no static bound.
    pub max: Option<u64>,
}

fn flip_cmp(op: Op) -> Op {
    match op {
        Op::Lt => Op::Gt,
        Op::Gt => Op::Lt,
        Op::Le => Op::Ge,
        Op::Ge => Op::Le,
        other => other,
    }
}

/// Iterations of a counter loop `while (i cmp limit) { ...; i += d }`
/// entered with `i = init`. Returns `None` on non-termination or
/// ill-conditioned arithmetic.
fn counted_trips(cmp: Op, init: f64, limit: f64, d: f64) -> Option<u64> {
    if !init.is_finite() || !limit.is_finite() || !d.is_finite() || d == 0.0 {
        return None;
    }
    let t = match cmp {
        Op::Lt if d > 0.0 => {
            if init >= limit {
                0.0
            } else {
                ((limit - init) / d).ceil()
            }
        }
        Op::Le if d > 0.0 => {
            if init > limit {
                0.0
            } else {
                ((limit - init) / d).floor() + 1.0
            }
        }
        Op::Gt if d < 0.0 => {
            if init <= limit {
                0.0
            } else {
                ((init - limit) / -d).ceil()
            }
        }
        Op::Ge if d < 0.0 => {
            if init < limit {
                0.0
            } else {
                ((init - limit) / -d).floor() + 1.0
            }
        }
        _ => return None, // wrong direction: loop cannot terminate
    };
    if t.is_finite() && (0.0..=1e15).contains(&t) {
        Some(t as u64)
    } else {
        None
    }
}

/// Infer trip bounds for one loop region by pattern-matching the
/// compiler's counter-loop shape:
///
/// * the header block starts `LoadLocal(i); Const(k); <cmp>;
///   JumpIfFalse(exit)` (or the reversed operand order) with `k` a
///   numeric constant and `exit` beyond the region;
/// * every write to `i` inside the region is a single unconditional
///   `±const` update (`i++`, `i += c`, `i = i + c`, ...), `i` is not
///   re-declared/captured/iterated, and no resolution chain inside the
///   region can store to its slot.
///
/// The entry value comes from the abstract interval at the header
/// (`max` side — the interval's stable bound survives widening) and,
/// for the `min` side, from an exact syntactic initializer directly
/// before the loop. Everything else returns `max: None`.
fn loop_trips(chunk: &Chunk, facts: &Analysis, region: &LoopRegion) -> (Trips, bool) {
    let cfg = &facts.cfg;
    let op_lo = cfg.blocks[region.header].start;
    let op_hi = cfg.blocks[region.last].end;
    let none = Trips { min: 0, max: None };

    // Exit shape: which blocks leave the region?
    let mut exit_sources: Vec<usize> = Vec::new();
    for b in region.header..=region.last {
        let block = &cfg.blocks[b];
        if block
            .succs
            .iter()
            .any(|&s| s < region.header || s > region.last)
            || block.succs.is_empty()
        {
            exit_sources.push(b);
        }
    }
    let single_exit = exit_sources == [region.header];

    // Guard pattern in the header block.
    let header_end = cfg.blocks[region.header].end;
    if op_lo + 4 > header_end {
        return (none, single_exit);
    }
    let w = &chunk.ops[op_lo..op_lo + 4];
    let (slot, limit_idx, cmp) = match (w[0], w[1], w[2]) {
        (Op::LoadLocal(s), Op::Const(k), c @ (Op::Lt | Op::Gt | Op::Le | Op::Ge)) => (s, k, c),
        (Op::Const(k), Op::LoadLocal(s), c @ (Op::Lt | Op::Gt | Op::Le | Op::Ge)) => {
            (s, k, flip_cmp(c))
        }
        _ => return (none, single_exit),
    };
    let Op::JumpIfFalse(exit) = w[3] else {
        return (none, single_exit);
    };
    if (exit as usize) < op_hi {
        return (none, single_exit);
    }
    let Value::Num(limit) = chunk.consts[limit_idx as usize] else {
        return (none, single_exit);
    };

    // Counter integrity: collect update sites, reject anything else
    // that could touch the slot.
    let mut sites: Vec<(usize, f64)> = Vec::new();
    for ip in op_lo..op_hi {
        match chunk.ops[ip] {
            Op::DeclLocal(s) | Op::DeclCell(s) | Op::NewCell(s) | Op::ClearSlot(s) if s == slot => {
                return (none, single_exit)
            }
            Op::ForInPrep(s) | Op::ForInNext(s, _) if s == slot => return (none, single_exit),
            Op::StoreChain(c) => {
                let touches = chunk.chains[c as usize]
                    .cands
                    .iter()
                    .any(|r| matches!(r, ChainRef::Local(s) | ChainRef::CellSlot(s) if *s == slot));
                if touches {
                    return (none, single_exit);
                }
            }
            Op::StoreLocal(s) if s == slot => {
                let delta = update_delta(chunk, ip, slot);
                match delta {
                    Some(d) => sites.push((ip, d)),
                    None => return (none, single_exit),
                }
            }
            _ => {}
        }
    }
    let [(site_ip, d)] = sites[..] else {
        return (none, single_exit);
    };

    // The update must run on every path from header back to header,
    // and not sit inside an inner loop (where it would run a variable
    // number of times per outer iteration).
    let site_block = cfg.block_of[site_ip];
    if inside_child(region, site_block) {
        return (none, single_exit);
    }
    let back_sources: Vec<usize> = (region.header..=region.last)
        .filter(|&b| cfg.blocks[b].succs.contains(&region.header))
        .collect();
    if back_sources.is_empty() || !dominates_backedges(cfg, region, site_block, &back_sources) {
        return (none, single_exit);
    }

    // Entry interval for the max bound: the header's merged interval
    // keeps the init-side bound stable (the counter only moves away
    // from it), so it is a sound worst-case entry value.
    let entry_iv = facts.in_states[op_lo]
        .as_ref()
        .and_then(|st| match &st.slots[slot as usize] {
            SlotAbs::Val(v) => v.as_interval(),
            _ => None,
        });
    let max = entry_iv.and_then(|(lo, hi)| {
        let init = if d > 0.0 { lo } else { hi };
        counted_trips(cmp, init, limit, d)
    });

    // Exact syntactic initializer directly before the loop gives the
    // min bound.
    let exact_init = syntactic_init(chunk, op_lo, slot);
    let min = match (exact_init, single_exit) {
        (Some(init), true) => counted_trips(cmp, init, limit, d).unwrap_or(0),
        _ => 0,
    };
    (Trips { min, max }, single_exit)
}

/// The `±const` delta of a `StoreLocal(slot)` at `ip`, when it is one
/// of the compiler's counter-update shapes.
fn update_delta(chunk: &Chunk, ip: usize, slot: u16) -> Option<f64> {
    let op_at = |i: usize| chunk.ops.get(i).copied();
    let const_num = |i: u16| match chunk.consts.get(i as usize) {
        Some(Value::Num(n)) => Some(*n),
        _ => None,
    };
    // i++ / ++i / i-- / --i:  LoadLocal [Dup] Inc|Dec StoreLocal
    if let Some(delta_op @ (Op::Inc | Op::Dec)) = ip.checked_sub(1).and_then(op_at) {
        let d = if matches!(delta_op, Op::Inc) {
            1.0
        } else {
            -1.0
        };
        let loaded = match (
            ip.checked_sub(2).and_then(op_at),
            ip.checked_sub(3).and_then(op_at),
        ) {
            (Some(Op::LoadLocal(s)), _) if s == slot => true,
            (Some(Op::Dup), Some(Op::LoadLocal(s))) if s == slot => true,
            _ => false,
        };
        return loaded.then_some(d);
    }
    // i = i + c / i = i - c:  LoadLocal Const Add|Sub StoreLocal
    if let (Some(Op::LoadLocal(s)), Some(Op::Const(k)), Some(arith @ (Op::Add | Op::Sub))) = (
        ip.checked_sub(3).and_then(op_at),
        ip.checked_sub(2).and_then(op_at),
        ip.checked_sub(1).and_then(op_at),
    ) {
        if s == slot {
            let c = const_num(k)?;
            return Some(if matches!(arith, Op::Add) { c } else { -c });
        }
    }
    // i += c / i -= c:  Const LoadLocal Swap Add|Sub StoreLocal
    if let (
        Some(Op::Const(k)),
        Some(Op::LoadLocal(s)),
        Some(Op::Swap),
        Some(arith @ (Op::Add | Op::Sub)),
    ) = (
        ip.checked_sub(4).and_then(op_at),
        ip.checked_sub(3).and_then(op_at),
        ip.checked_sub(2).and_then(op_at),
        ip.checked_sub(1).and_then(op_at),
    ) {
        if s == slot {
            let c = const_num(k)?;
            return Some(if matches!(arith, Op::Add) { c } else { -c });
        }
    }
    None
}

fn inside_child(region: &LoopRegion, block: usize) -> bool {
    region
        .children
        .iter()
        .any(|c| block >= c.header && block <= c.last)
}

/// Every header→back-edge path passes through `site_block`?
/// (Checked by deleting it and testing reachability.)
fn dominates_backedges(
    cfg: &Cfg,
    region: &LoopRegion,
    site_block: usize,
    back_sources: &[usize],
) -> bool {
    if back_sources.contains(&site_block) {
        // The update block is itself a back-edge source; paths through
        // other back-edge sources would bypass it.
        return back_sources == [site_block];
    }
    let mut seen = vec![false; cfg.blocks.len()];
    let mut stack = vec![region.header];
    seen[region.header] = true;
    while let Some(b) = stack.pop() {
        for &s in &cfg.blocks[b].succs {
            if s < region.header || s > region.last || s == site_block || s == region.header {
                continue;
            }
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    back_sources.iter().all(|&b| !seen[b] || b == site_block)
}

/// `Const(c); DeclLocal(slot)` or `Const(c); StoreLocal(slot); Pop`
/// directly before `op_lo`: the exact loop-entry value.
fn syntactic_init(chunk: &Chunk, op_lo: usize, slot: u16) -> Option<f64> {
    let op_at = |i: usize| chunk.ops.get(i).copied();
    let const_num = |i: u16| match chunk.consts.get(i as usize) {
        Some(Value::Num(n)) => Some(*n),
        _ => None,
    };
    match (
        op_lo.checked_sub(3).and_then(op_at),
        op_lo.checked_sub(2).and_then(op_at),
        op_lo.checked_sub(1).and_then(op_at),
    ) {
        (_, Some(Op::Const(k)), Some(Op::DeclLocal(s))) if s == slot => const_num(k),
        (Some(Op::Const(k)), Some(Op::StoreLocal(s)), Some(Op::Pop)) if s == slot => const_num(k),
        _ => None,
    }
}

// ---- per-function cost evaluation ------------------------------------------

/// Array methods that bill the element count up front (`builtins.rs`).
const CHARGING_ARRAY_METHODS: &[&str] = &[
    "shift", "unshift", "slice", "splice", "indexOf", "join", "concat", "reverse", "map", "filter",
    "forEach", "sort",
];

/// Array methods that invoke a script callback per element.
const HOF_ARRAY_METHODS: &[&str] = &["map", "filter", "forEach", "sort", "reduce"];

/// Outcome of collapsing one region into a DAG and path-summing it.
#[derive(Debug, Clone, Copy)]
struct RegionOut {
    /// Cost of traversing the region entry→exit once (loops inside
    /// already multiplied out).
    total: Cost,
    /// A `return` (or other terminal) lies inside this region.
    has_return: bool,
}

struct CostCx<'a> {
    ctx: &'a ProgramCtx,
    facts: HashMap<u32, Rc<Analysis>>,
    memo: HashMap<u32, Cost>,
    in_flight: HashSet<u32>,
}

impl<'a> CostCx<'a> {
    fn new(ctx: &'a ProgramCtx) -> Self {
        CostCx {
            ctx,
            facts: HashMap::new(),
            memo: HashMap::new(),
            in_flight: HashSet::new(),
        }
    }

    fn facts(&mut self, id: u32) -> Rc<Analysis> {
        if let Some(f) = self.facts.get(&id) {
            return f.clone();
        }
        let proto = self.ctx.proto(id).clone();
        let f = Rc::new(analyze_chunk(&proto.chunk, &proto.params, Some(self.ctx)));
        self.facts.insert(id, f.clone());
        f
    }

    /// Cost of invoking prototype `id` once. Recursion (direct or
    /// mutual) makes every dimension unbounded.
    fn proto_cost(&mut self, id: u32) -> Cost {
        if let Some(c) = self.memo.get(&id) {
            return *c;
        }
        if !self.in_flight.insert(id) {
            return Cost::unknown_call();
        }
        let facts = self.facts(id);
        let chunk = &self.ctx.proto(id).clone().chunk;
        let cost = match find_loops(&facts.cfg) {
            Some(roots) => {
                let region = LoopRegion {
                    header: 0,
                    last: facts.cfg.blocks.len().saturating_sub(1),
                    children: roots,
                };
                self.region_cost(chunk, &facts, &region, false).total
            }
            None => Cost::unknown_call(),
        };
        self.in_flight.remove(&id);
        self.memo.insert(id, cost);
        cost
    }

    /// Path-sum a region: child loops become supernodes (their cost
    /// multiplied by inferred trips), the rest is a forward DAG walked
    /// in block order.
    ///
    /// For a loop (`is_loop`), the returned total is
    /// `trips_max × iteration_max + one exit traversal` on the max
    /// side and `trips_min × iteration_min` on the min side.
    fn region_cost(
        &mut self,
        chunk: &Chunk,
        facts: &Analysis,
        region: &LoopRegion,
        is_loop: bool,
    ) -> RegionOut {
        let cfg = &facts.cfg;
        let unbounded = RegionOut {
            total: Cost::unknown_call(),
            has_return: true,
        };

        // Collapse children into supernodes, keyed by header block.
        let mut child_out: HashMap<usize, RegionOut> = HashMap::new();
        for child in &region.children {
            child_out.insert(child.header, self.region_cost(chunk, facts, child, true));
        }

        // Entry-cost DP over blocks in index order. `acc[b]` is the
        // joined path cost to the entry of node `b` (None =
        // unreachable from the region entry without a back-edge).
        let nb = cfg.blocks.len();
        let mut acc: Vec<Option<Cost>> = vec![None; nb];
        acc[region.header] = Some(Cost::ZERO);
        let mut iter_done: Option<Cost> = None; // back to header
        let mut exited: Option<Cost> = None; // left the interval
        let mut returned: Option<Cost> = None; // hit a terminal
        let mut has_return = false;

        let mut b = region.header;
        while b <= region.last && b < nb {
            let Some(entry) = acc[b] else {
                b += 1;
                continue;
            };
            let (node_end, out, node_succs, node_ret) =
                if let Some(child) = region.children.iter().find(|c| c.header == b) {
                    let co = child_out[&child.header];
                    if co.has_return {
                        has_return = true;
                        // A path may end inside the child; entering it is
                        // a sound lower bound for that outcome.
                        returned = Some(match returned {
                            Some(r) => r.join(entry),
                            None => entry,
                        });
                    }
                    // Exit edges of the child region.
                    let mut succs: Vec<usize> = Vec::new();
                    for cb in child.header..=child.last.min(nb - 1) {
                        for &s in &cfg.blocks[cb].succs {
                            if (s < child.header || s > child.last) && !succs.contains(&s) {
                                succs.push(s);
                            }
                        }
                    }
                    (child.last, entry.add(co.total), succs, false)
                } else {
                    if inside_child(region, b) {
                        b += 1;
                        continue; // interior of a collapsed child
                    }
                    let block = &cfg.blocks[b];
                    let mut cost = Cost::ZERO;
                    for ip in block.start..block.end {
                        let Some(st) = &facts.in_states[ip] else {
                            continue;
                        };
                        cost = cost.add(self.op_cost(chunk, st, chunk.ops[ip]));
                    }
                    let terminal = block.succs.is_empty();
                    (b, entry.add(cost), block.succs.clone(), terminal)
                };
            if node_ret {
                has_return = true;
                returned = Some(match returned {
                    Some(r) => r.join(out),
                    None => out,
                });
            }
            for s in node_succs {
                if is_loop && s == region.header {
                    iter_done = Some(match iter_done {
                        Some(c) => c.join(out),
                        None => out,
                    });
                } else if s < region.header || s > region.last {
                    exited = Some(match exited {
                        Some(c) => c.join(out),
                        None => out,
                    });
                } else if s <= node_end {
                    // Non-forward edge that is not our own back-edge:
                    // irregular flow (mutated chunk) — give up soundly.
                    return unbounded;
                } else {
                    acc[s] = Some(match acc[s] {
                        Some(c) => c.join(out),
                        None => out,
                    });
                }
            }
            b = node_end + 1;
        }

        if !is_loop {
            // Function (or root interval) level: paths end at
            // terminals; `exited` cannot happen.
            let total = match (returned, exited) {
                (Some(r), Some(e)) => r.join(e),
                (Some(r), None) => r,
                (None, Some(e)) => e,
                (None, None) => Cost::ZERO,
            };
            return RegionOut { total, has_return };
        }

        let (trips, _single_exit) = loop_trips(chunk, facts, region);
        let iter = iter_done.unwrap_or(Cost::ZERO);
        let exit_once = match (exited, returned) {
            (Some(e), Some(r)) => e.join(r),
            (Some(e), None) => e,
            (None, Some(r)) => r,
            (None, None) => Cost::ZERO,
        };
        let trips_max = match (trips.max, iter_done.is_some()) {
            (_, false) => Max::Finite(0), // body never reaches the back-edge
            (Some(t), true) => Max::Finite(t),
            (None, true) => Max::Unbounded,
        };
        let mut total = iter.scale(trips.min, trips_max);
        // One exit traversal (the final failed guard / break path).
        total = Cost {
            steps: Bound {
                min: total.steps.min,
                max: total.steps.max.add(exit_once.steps.max),
            },
            charge: Bound {
                min: total.charge.min,
                max: total.charge.max.add(exit_once.charge.max),
            },
            publishes: Bound {
                min: total.publishes.min,
                max: total.publishes.max.add(exit_once.publishes.max),
            },
        };
        RegionOut { total, has_return }
    }

    /// Cost of one instruction under abstract state `st` (the state
    /// *before* the op): one watchdog step, plus whatever the
    /// operation can bill or trigger.
    fn op_cost(&mut self, chunk: &Chunk, st: &State, op: Op) -> Cost {
        let base = Cost::step();
        let arg = |i: usize| -> &AbsVal {
            let n = st.stack.len();
            st.stack.get(n.wrapping_sub(i + 1)).unwrap_or(&AbsVal::Any)
        };
        match op {
            Op::Add => {
                let (b, a) = (arg(0), arg(1));
                let may_str =
                    |v: &AbsVal| matches!(v, AbsVal::ConstStr(_) | AbsVal::Str | AbsVal::Any);
                let charge = match (a, b) {
                    (AbsVal::ConstStr(x), AbsVal::ConstStr(y)) => {
                        Bound::exact((x.len() + y.len()) as u64)
                    }
                    // String + definitely-number: the rendered number
                    // is at most ~24 bytes.
                    (AbsVal::ConstStr(x), n) | (n, AbsVal::ConstStr(x)) if n.is_numeric() => {
                        Bound {
                            min: x.len() as u64,
                            max: Max::Finite(x.len() as u64 + 24),
                        }
                    }
                    _ if may_str(a) || may_str(b) => Bound::UNBOUNDED,
                    _ => Bound::ZERO,
                };
                base.add(Cost {
                    charge,
                    ..Cost::ZERO
                })
            }
            Op::Call(argc) => {
                let callee = arg(0).clone();
                let extra = match callee {
                    AbsVal::Native(name) => self.native_cost(&name, st, argc),
                    AbsVal::Closure(id) => self.proto_cost(id),
                    // Known non-callables fault at runtime: no cost on
                    // the continuing path.
                    AbsVal::ConstNum(_)
                    | AbsVal::ConstStr(_)
                    | AbsVal::ConstBool(_)
                    | AbsVal::ConstNull
                    | AbsVal::Num { .. } => Cost::ZERO,
                    _ => Cost::unknown_call(),
                };
                base.add(extra)
            }
            Op::CallMethod(m, _) => {
                let receiver = arg(0);
                let name = &*chunk.members[m as usize].name;
                let extra = match receiver {
                    AbsVal::Array => {
                        let mut c = Cost::ZERO;
                        if CHARGING_ARRAY_METHODS.contains(&name) {
                            c.charge = Bound::UNBOUNDED; // bills element count / output bytes
                        }
                        if HOF_ARRAY_METHODS.contains(&name) {
                            // Invokes a script callback per element.
                            c = Cost::unknown_call();
                        }
                        c
                    }
                    AbsVal::ConstStr(s) => Cost {
                        charge: Bound::at_most(s.len() as u64),
                        ..Cost::ZERO
                    },
                    AbsVal::Str => Cost {
                        charge: Bound::UNBOUNDED,
                        ..Cost::ZERO
                    },
                    // A method on an object (or unknown receiver) can
                    // be any stored closure.
                    AbsVal::Object | AbsVal::Any | AbsVal::Func | AbsVal::Closure(_) => {
                        Cost::unknown_call()
                    }
                    _ => Cost::ZERO,
                };
                base.add(extra)
            }
            _ => base,
        }
    }

    /// Extra cost of calling host native `name` (beyond the Call op).
    /// `argc` and the abstract argument values refine string sizes.
    fn native_cost(&mut self, name: &str, st: &State, argc: u8) -> Cost {
        let arg = |i: usize| -> &AbsVal {
            // Stack: [a0 .. a(n-1), callee]; a_i is argc-i slots below.
            let n = st.stack.len();
            st.stack
                .get(n.wrapping_sub(1 + argc as usize - i))
                .unwrap_or(&AbsVal::Any)
        };
        match name {
            "publish" => Cost {
                publishes: Bound::exact(1),
                ..Cost::ZERO
            },
            "String" => {
                let charge = match arg(0) {
                    AbsVal::ConstStr(s) => Bound::exact(s.len() as u64),
                    v if v.is_numeric() => Bound::at_most(24),
                    AbsVal::ConstBool(_) | AbsVal::ConstNull => Bound::at_most(9),
                    _ => Bound::UNBOUNDED,
                };
                Cost {
                    charge,
                    ..Cost::ZERO
                }
            }
            "keys" => Cost {
                charge: Bound::UNBOUNDED,
                ..Cost::ZERO
            },
            // The remaining Pogo API natives run host-side work that
            // is not billed to the script's instruction budget.
            _ if KNOWN_NATIVES.contains(&name) => Cost::ZERO,
            // An extension native may bill arbitrary bytes but cannot
            // consume VM steps.
            _ => Cost {
                charge: Bound::UNBOUNDED,
                ..Cost::ZERO
            },
        }
    }
}

// ---- entry points and the cost report ---------------------------------------

/// How an entry point gets triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// The top-level script body, run once at deployment under the
    /// (10×) load budget.
    Load,
    /// A `subscribe` callback, run per delivered message.
    Callback,
    /// A `setTimeout` callback.
    Timer,
}

impl fmt::Display for EntryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryKind::Load => write!(f, "on-load"),
            EntryKind::Callback => write!(f, "callback"),
            EntryKind::Timer => write!(f, "timer"),
        }
    }
}

/// Static cost bounds for one entry point.
#[derive(Debug, Clone)]
pub struct EntryCost {
    pub kind: EntryKind,
    /// Function name (`<main>`, the callback's name, or `<dynamic>`
    /// when the registered value cannot be resolved statically).
    pub name: String,
    /// Channel, for `subscribe` callbacks with a constant channel.
    pub channel: Option<String>,
    /// Source line of the registration (1 for the load entry).
    pub line: u32,
    pub cost: Cost,
}

/// Cost bounds for every entry point of a compiled program, plus the
/// per-function invocation costs they were assembled from.
#[derive(Debug, Clone)]
pub struct CostReport {
    pub entries: Vec<EntryCost>,
    /// `(function name, one-invocation cost)` in prototype order.
    pub fns: Vec<(String, Cost)>,
}

/// Analyze a compiled program's entry points: the on-load run plus
/// every statically visible `subscribe`/`setTimeout` registration.
pub fn analyze_costs(program: &CompiledProgram) -> CostReport {
    let ctx = ProgramCtx::build(program);
    let mut cx = CostCx::new(&ctx);
    let mut entries = vec![EntryCost {
        kind: EntryKind::Load,
        name: program.main.name.to_string(),
        channel: None,
        line: 1,
        cost: cx.proto_cost(0),
    }];
    for id in 0..ctx.proto_count() as u32 {
        let facts = cx.facts(id);
        let proto = ctx.proto(id).clone();
        let chunk = &proto.chunk;
        for (ip, &op) in chunk.ops.iter().enumerate() {
            let Op::Call(argc) = op else { continue };
            let Some(st) = &facts.in_states[ip] else {
                continue;
            };
            let n = st.stack.len();
            let get = |i: usize| st.stack.get(n.wrapping_sub(i + 1)).cloned();
            let Some(AbsVal::Native(native)) = get(0) else {
                continue;
            };
            let arg = |i: usize| get(argc as usize - i);
            let line = chunk.lines.get(ip).copied().unwrap_or(0);
            let (kind, cb, channel) = match (&*native, argc) {
                ("subscribe", a) if a >= 2 => {
                    let channel = match arg(0) {
                        Some(AbsVal::ConstStr(s)) => Some(s.to_string()),
                        _ => None,
                    };
                    (EntryKind::Callback, arg(1), channel)
                }
                ("setTimeout", a) if a >= 1 => (EntryKind::Timer, arg(0), None),
                _ => continue,
            };
            let (name, cost) = match cb {
                Some(AbsVal::Closure(cb_id)) => {
                    (ctx.proto(cb_id).name.to_string(), cx.proto_cost(cb_id))
                }
                _ => ("<dynamic>".to_string(), Cost::unknown_call()),
            };
            entries.push(EntryCost {
                kind,
                name,
                channel,
                line,
                cost,
            });
        }
    }
    let fns = (0..ctx.proto_count() as u32)
        .map(|id| (ctx.proto(id).name.to_string(), cx.proto_cost(id)))
        .collect();
    CostReport { entries, fns }
}

// ---- diagnostics ------------------------------------------------------------

/// Watchdog budgets the cost bounds are gated against. The defaults
/// mirror the deterministic 100 ms analogue in `pogo-core`
/// (`host::WATCHDOG_BUDGET`): 10M units per callback, 10× for the
/// on-load run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostBudgets {
    pub callback: u64,
    pub load: u64,
}

impl Default for CostBudgets {
    fn default() -> Self {
        CostBudgets {
            callback: 10_000_000,
            load: 100_000_000,
        }
    }
}

/// Publishes-per-event above which fan-out is flagged (P304).
pub const PUBLISH_FANOUT_WARN: u64 = 16;

/// Turn cost bounds into stable `P3xx` diagnostics.
///
/// * **P301 (error)** — the *guaranteed minimum* cost exceeds the
///   budget: the entry point can never complete, deploying it only
///   burns device budgets.
/// * **P302 (warning)** — the worst case is statically unbounded.
/// * **P303 (warning)** — the worst case is finite but over budget.
/// * **P304 (warning)** — one trigger can publish more than
///   [`PUBLISH_FANOUT_WARN`] messages (or unboundedly many).
pub fn cost_diagnostics(report: &CostReport, budgets: &CostBudgets) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for e in &report.entries {
        let budget = match e.kind {
            EntryKind::Load => budgets.load,
            _ => budgets.callback,
        };
        let label = match (&e.channel, e.kind) {
            (Some(ch), _) => format!("{} `{}` (channel \"{}\")", e.kind, e.name, ch),
            (None, EntryKind::Load) => "the on-load script body".to_string(),
            (None, _) => format!("{} `{}`", e.kind, e.name),
        };
        let min = e.cost.budget_min();
        let max = e.cost.budget_max();
        if min > budget {
            out.push(Diagnostic::new(
                Rule::CostBudgetExceeded,
                e.line,
                format!(
                    "{label} needs at least {min} budget units per run; \
                     the watchdog allows {budget} — it can never complete"
                ),
            ));
        } else if max == Max::Unbounded {
            out.push(Diagnostic::new(
                Rule::CostUnbounded,
                e.line,
                format!(
                    "{label} has no static cost bound (a loop, call, or \
                     string build the analyzer cannot bound); the watchdog \
                     will cut it off at {budget} units"
                ),
            ));
        } else if max.exceeds(budget) {
            out.push(Diagnostic::new(
                Rule::CostMayExceedBudget,
                e.line,
                format!(
                    "{label} can cost up to {max} budget units per run; \
                     the watchdog allows {budget}"
                ),
            ));
        }
        if e.cost.publishes.max.exceeds(PUBLISH_FANOUT_WARN) {
            out.push(Diagnostic::new(
                Rule::PublishFanout,
                e.line,
                format!(
                    "{label} can publish {} messages per trigger \
                     (fan-out threshold {PUBLISH_FANOUT_WARN})",
                    e.cost.publishes.max
                ),
            ));
        }
    }
    out
}

// ---- rendering (pogo-lint --dump-cfg) ---------------------------------------

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "steps {}, bytes {}, publishes {}",
            self.steps, self.charge, self.publishes
        )
    }
}

/// Deterministic text rendering of every function's CFG, inferred
/// loops, and cost — the `pogo-lint --dump-cfg` format pinned by the
/// golden tests.
pub fn render_cfg(program: &CompiledProgram) -> String {
    let ctx = ProgramCtx::build(program);
    let mut cx = CostCx::new(&ctx);
    let mut out = String::new();
    for id in 0..ctx.proto_count() as u32 {
        let proto = ctx.proto(id).clone();
        let facts = cx.facts(id);
        let cfg = &facts.cfg;
        out.push_str(&format!(
            "== fn{id} {} (blocks {}) ==\n",
            proto.name,
            cfg.blocks.len()
        ));
        for (b, block) in cfg.blocks.iter().enumerate() {
            let succs = if block.succs.is_empty() {
                "(exit)".to_string()
            } else {
                format!(
                    "-> {}",
                    block
                        .succs
                        .iter()
                        .map(|s| format!("b{s}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                )
            };
            out.push_str(&format!(
                "  b{b}  {:04}..{:04}  {succs}\n",
                block.start, block.end
            ));
        }
        if let Some(roots) = find_loops(cfg) {
            let mut stack: Vec<&LoopRegion> = roots.iter().collect();
            let mut loops: Vec<&LoopRegion> = Vec::new();
            while let Some(l) = stack.pop() {
                loops.push(l);
                stack.extend(l.children.iter());
            }
            loops.sort_by_key(|l| (l.header, l.last));
            for l in loops {
                let (trips, _) = loop_trips(&proto.chunk, &facts, l);
                let max = match trips.max {
                    Some(t) => t.to_string(),
                    None => "unbounded".to_string(),
                };
                out.push_str(&format!(
                    "  loop b{}..b{}  trips [{}, {}]\n",
                    l.header, l.last, trips.min, max
                ));
            }
        }
        out.push_str(&format!("  cost: {}\n", cx.proto_cost(id)));
    }
    out.push_str("== cost report ==\n");
    let report = analyze_costs(program);
    out.push_str(&render_cost_report(&report));
    out
}

/// Deterministic text rendering of a [`CostReport`].
pub fn render_cost_report(report: &CostReport) -> String {
    let mut out = String::new();
    for e in &report.entries {
        let what = match (&e.channel, e.kind) {
            (Some(ch), _) => format!(
                "{} {} (channel \"{}\", line {})",
                e.kind, e.name, ch, e.line
            ),
            (None, EntryKind::Load) => format!("{} {}", e.kind, e.name),
            (None, _) => format!("{} {} (line {})", e.kind, e.name, e.line),
        };
        out.push_str(&format!("{what}: {}\n", e.cost));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;

    fn load_cost(src: &str) -> Cost {
        let prog = compile(src).expect("compile");
        analyze_costs(&prog).entries[0].cost
    }

    #[test]
    fn max_arithmetic() {
        assert_eq!(Max::Finite(2).add(Max::Finite(3)), Max::Finite(5));
        assert_eq!(Max::Finite(2).add(Max::Unbounded), Max::Unbounded);
        assert_eq!(Max::Finite(0).mul(Max::Unbounded), Max::Finite(0));
        assert_eq!(Max::Unbounded.mul(Max::Finite(0)), Max::Finite(0));
        assert_eq!(Max::Finite(4).mul(Max::Finite(3)), Max::Finite(12));
        assert!(Max::Unbounded.exceeds(u64::MAX));
        assert!(!Max::Finite(10).exceeds(10));
        assert!(Max::Finite(11).exceeds(10));
    }

    #[test]
    fn counted_trips_formulas() {
        // for (i = 0; i < 10; i++) -> 10
        assert_eq!(counted_trips(Op::Lt, 0.0, 10.0, 1.0), Some(10));
        // i <= 10 -> 11
        assert_eq!(counted_trips(Op::Le, 0.0, 10.0, 1.0), Some(11));
        // i = 10; i > 0; i-- -> 10
        assert_eq!(counted_trips(Op::Gt, 10.0, 0.0, -1.0), Some(10));
        // i = 10; i >= 0; i-- -> 11
        assert_eq!(counted_trips(Op::Ge, 10.0, 0.0, -1.0), Some(11));
        // step 3: 0,3,6,9 -> 4 trips
        assert_eq!(counted_trips(Op::Lt, 0.0, 10.0, 3.0), Some(4));
        // wrong-direction step never terminates
        assert_eq!(counted_trips(Op::Lt, 0.0, 10.0, -1.0), None);
        // already false at entry -> 0 trips
        assert_eq!(counted_trips(Op::Lt, 10.0, 10.0, 1.0), Some(0));
    }

    #[test]
    fn straight_line_cost_is_exact() {
        let c = load_cost("var x = 1 + 2; var y = x * 3;");
        assert_eq!(Max::Finite(c.steps.min), c.steps.max, "min == max: {c}");
        assert!(c.steps.min > 0);
        assert_eq!(c.charge, Bound::ZERO);
        assert_eq!(c.publishes, Bound::ZERO);
    }

    #[test]
    fn counted_loop_gets_finite_bounds() {
        let c = load_cost(
            "var s = 0;\n\
             for (var i = 0; i < 10; i = i + 1) { s = s + 1; }",
        );
        let Max::Finite(max) = c.steps.max else {
            panic!("expected finite bound, got {c}");
        };
        // 10 iterations of a ~10-op body: a tight but not exact window.
        assert!(max >= 100, "max {max} too small");
        assert!(max < 1_000, "max {max} too large");
        assert!(c.steps.min > 50, "min {} too small", c.steps.min);
        assert!(c.steps.min <= max);
    }

    #[test]
    fn data_dependent_loop_is_unbounded() {
        let prog = compile(
            "function f(n) { var i = 0; while (i < n) { i = i + 1; } }\n\
             subscribe('ch', f);",
        )
        .expect("compile");
        let report = analyze_costs(&prog);
        let cb = report
            .entries
            .iter()
            .find(|e| e.kind == EntryKind::Callback)
            .expect("callback entry");
        assert_eq!(cb.name.as_str(), "f");
        assert_eq!(cb.channel.as_deref(), Some("ch"));
        assert_eq!(cb.cost.steps.max, Max::Unbounded);
        // The loop can run zero times: the minimum stays small.
        assert!(cb.cost.steps.min < 100);
        let diags = cost_diagnostics(&report, &CostBudgets::default());
        assert!(
            diags.iter().any(|d| d.rule == Rule::CostUnbounded),
            "expected P302 in {diags:?}"
        );
    }

    #[test]
    fn guaranteed_over_budget_is_an_error() {
        let prog = compile(
            "var s = 0;\n\
             for (var i = 0; i < 1000; i = i + 1) { s = s + 1; }",
        )
        .expect("compile");
        let report = analyze_costs(&prog);
        let tight = CostBudgets {
            callback: 100,
            load: 100,
        };
        let diags = cost_diagnostics(&report, &tight);
        assert!(
            diags.iter().any(|d| d.rule == Rule::CostBudgetExceeded),
            "expected P301 in {diags:?}"
        );
        // Under the real budgets the same script is fine.
        assert!(cost_diagnostics(&report, &CostBudgets::default()).is_empty());
    }

    #[test]
    fn publish_fanout_is_flagged() {
        let prog =
            compile("for (var i = 0; i < 100; i = i + 1) { publish('ch', i); }").expect("compile");
        let report = analyze_costs(&prog);
        let load = &report.entries[0];
        assert!(load.cost.publishes.max.exceeds(PUBLISH_FANOUT_WARN));
        assert_eq!(load.cost.publishes.min, 100);
        let diags = cost_diagnostics(&report, &CostBudgets::default());
        assert!(
            diags.iter().any(|d| d.rule == Rule::PublishFanout),
            "expected P304 in {diags:?}"
        );
    }

    #[test]
    fn string_concat_charges_bytes() {
        let c = load_cost("var s = 'ab' + 'cde';");
        assert_eq!(c.charge.min, 5);
        assert_eq!(c.charge.max, Max::Finite(5));
        // Concat under a data-dependent loop: charge becomes unbounded.
        let prog = compile(
            "function f(n) {\n\
               var s = '';\n\
               var i = 0;\n\
               while (i < n) { s = s + 'x'; i = i + 1; }\n\
             }\n\
             subscribe('ch', f);",
        )
        .expect("compile");
        let report = analyze_costs(&prog);
        let cb = report
            .entries
            .iter()
            .find(|e| e.kind == EntryKind::Callback)
            .expect("callback entry");
        assert_eq!(cb.cost.charge.max, Max::Unbounded);
    }

    #[test]
    fn recursion_is_unbounded_not_a_hang() {
        let prog = compile(
            "function f(n) { if (n > 0) { f(n - 1); } }\n\
             f(10);",
        )
        .expect("compile");
        let report = analyze_costs(&prog);
        assert_eq!(report.entries[0].cost.steps.max, Max::Unbounded);
    }

    #[test]
    fn timer_entry_is_discovered() {
        let prog = compile(
            "function tick() { publish('beat', 1); }\n\
             setTimeout(tick, 500);",
        )
        .expect("compile");
        let report = analyze_costs(&prog);
        let timer = report
            .entries
            .iter()
            .find(|e| e.kind == EntryKind::Timer)
            .expect("timer entry");
        assert_eq!(timer.name.as_str(), "tick");
        assert_eq!(timer.cost.publishes, Bound::exact(1));
    }

    #[test]
    fn paper_scripts_analyze_without_panicking() {
        for name in ["collect.js", "roguefinder.js", "clustering.js"] {
            let path = format!("{}/../../assets/scripts/{name}", env!("CARGO_MANIFEST_DIR"));
            let src = std::fs::read_to_string(&path).expect(name);
            let prog = compile(&src).expect(name);
            let report = analyze_costs(&prog);
            assert!(!report.entries.is_empty(), "{name}: no entries");
            // No paper script has a statically provable watchdog kill.
            let diags = cost_diagnostics(&report, &CostBudgets::default());
            assert!(
                !diags.iter().any(|d| d.rule == Rule::CostBudgetExceeded),
                "{name}: spurious P301 in {diags:?}"
            );
        }
    }

    #[test]
    fn render_cfg_is_deterministic() {
        let src = "var s = 0;\nfor (var i = 0; i < 4; i = i + 1) { s = s + i; }";
        let prog = compile(src).expect("compile");
        let a = render_cfg(&prog);
        let b = render_cfg(&prog);
        assert_eq!(a, b);
        assert!(a.contains("== fn0"), "{a}");
        assert!(a.contains("loop b"), "{a}");
        assert!(a.contains("trips [4, 4]"), "{a}");
    }
}
