//! The PogoScript abstract syntax tree.

use std::rc::Rc;

/// A statement. Each carries the 1-based source line it starts on, used
/// for runtime error reporting.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var a = 1, b;` — names are interned `Rc<str>` so declaring them
    /// at runtime clones a pointer, not the text.
    Var {
        decls: Vec<(Rc<str>, Option<Expr>)>,
        line: u32,
    },
    /// `function name(params) { body }`
    Func {
        name: Rc<str>,
        params: Vec<Rc<str>>,
        body: Rc<Vec<Stmt>>,
        line: u32,
    },
    /// An expression evaluated for its side effects.
    Expr { expr: Expr, line: u32 },
    /// `if (cond) then else els`
    If {
        cond: Expr,
        then: Box<Stmt>,
        els: Option<Box<Stmt>>,
        line: u32,
    },
    /// `while (cond) body`
    While {
        cond: Expr,
        body: Box<Stmt>,
        line: u32,
    },
    /// `do body while (cond);`
    DoWhile {
        body: Box<Stmt>,
        cond: Expr,
        line: u32,
    },
    /// `for (var name in object) body` — iterates object keys (as
    /// strings) or array indices (as numbers).
    ForIn {
        name: Rc<str>,
        object: Expr,
        body: Box<Stmt>,
        line: u32,
    },
    /// `for (init; cond; step) body`
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Box<Stmt>,
        line: u32,
    },
    /// `return expr;`
    Return { value: Option<Expr>, line: u32 },
    /// `break;`
    Break { line: u32 },
    /// `continue;`
    Continue { line: u32 },
    /// `{ ... }`
    Block { body: Vec<Stmt>, line: u32 },
    /// A bare `;`.
    Empty { line: u32 },
}

impl Stmt {
    /// The source line this statement starts on.
    pub fn line(&self) -> u32 {
        match self {
            Stmt::Var { line, .. }
            | Stmt::Func { line, .. }
            | Stmt::Expr { line, .. }
            | Stmt::If { line, .. }
            | Stmt::While { line, .. }
            | Stmt::DoWhile { line, .. }
            | Stmt::ForIn { line, .. }
            | Stmt::For { line, .. }
            | Stmt::Return { line, .. }
            | Stmt::Break { line }
            | Stmt::Continue { line }
            | Stmt::Block { line, .. }
            | Stmt::Empty { line } => *line,
        }
    }
}

/// Binary arithmetic/comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    NotEq,
    Lt,
    Gt,
    Le,
    Ge,
}

impl BinOp {
    /// Operator spelling as it appears in source.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::NotEq => "!=",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Le => "<=",
            BinOp::Ge => ">=",
        }
    }
}

/// Short-circuiting logical operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicalOp {
    And,
    Or,
}

/// Unary prefix operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Not,
    Neg,
    Plus,
    Typeof,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Number(f64),
    /// String literal, pre-interned so evaluation clones an `Rc`.
    Str(Rc<str>),
    Bool(bool),
    Null,
    /// Identifier reference, interned for cheap scope lookups.
    Ident(Rc<str>),
    /// `[a, b, c]`
    Array(Vec<Expr>),
    /// `{ key: value, ... }` — keys are identifiers or string literals,
    /// interned like every other name in the AST so the interpreter and
    /// the static analyzer share the same cheap `Rc` clones.
    Object(Vec<(Rc<str>, Expr)>),
    /// `function (params) { body }`
    Func {
        params: Vec<Rc<str>>,
        body: Rc<Vec<Stmt>>,
    },
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    Logical {
        op: LogicalOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `cond ? then : els`
    Ternary {
        cond: Box<Expr>,
        then: Box<Expr>,
        els: Box<Expr>,
    },
    /// `target = value` or compound `target op= value`.
    Assign {
        target: Box<Expr>,
        op: Option<BinOp>,
        value: Box<Expr>,
    },
    /// `++x`, `x++`, `--x`, `x--`
    Update {
        target: Box<Expr>,
        increment: bool,
        prefix: bool,
    },
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
        line: u32,
    },
    /// `obj.name`
    Member {
        object: Box<Expr>,
        name: Rc<str>,
    },
    /// `obj[index]`
    Index {
        object: Box<Expr>,
        index: Box<Expr>,
    },
}

impl Expr {
    /// True if this expression is a valid assignment target.
    pub fn is_lvalue(&self) -> bool {
        matches!(
            self,
            Expr::Ident(_) | Expr::Member { .. } | Expr::Index { .. }
        )
    }
}
